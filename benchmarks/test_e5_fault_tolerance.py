"""E5 — lineage replay vs. reliable caching (§1 benefit (4), §2.1).

"Most existing data systems use lineage since replication is costly.
However, a reliable caching layer could be beneficial as it helps reduce
tail latency and potentially cost since the cost of restarting jobs may
offset the cost of extra storage."

Workload: a task chain of depth D whose outputs all live on one node; that
node dies after the job completes and the driver re-reads the final
output.  Lineage must re-execute the whole chain (recovery ~ D * task
cost); a replicated/EC cache reconstructs from surviving copies (flat),
paying storage overhead instead.
"""

from __future__ import annotations


from repro.bench import ResultTable, fmt_seconds
from repro.caching import ErasureCode, ReplicationScheme
from repro.cluster import DeviceKind, build_physical_disagg
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime
from repro.runtime.runtime import make_reliable_cache

TASK_COST = 5e-3
DEPTHS = [2, 4, 8, 16]


def run_and_recover(depth: int, redundancy) -> tuple:
    cluster = build_physical_disagg()
    cache = make_reliable_cache(cluster, redundancy) if redundancy else None
    rt = ServerlessRuntime(
        cluster, RuntimeConfig(resolution=ResolutionMode.PULL), reliable_cache=cache
    )
    cpu = cluster.node("server0").first_of_kind(DeviceKind.CPU)
    ref = rt.submit(lambda: 0, compute_cost=TASK_COST, pinned_device=cpu.device_id)
    for _ in range(depth - 1):
        ref = rt.submit(
            lambda x: x + 1, (ref,), compute_cost=TASK_COST, pinned_device=cpu.device_id
        )
    assert rt.get(ref) == depth - 1
    t_before = rt.sim.now
    rt.fail_node("server0")
    rt.restart_node("server0")
    assert rt.get(ref) == depth - 1  # recovered, by replay or by cache
    recovery_time = rt.sim.now - t_before
    storage = redundancy.storage_overhead if redundancy else 1.0
    return recovery_time, rt.lineage.replays, storage


def test_e5_lineage_vs_reliable_cache(benchmark):
    def sweep():
        rows = []
        for depth in DEPTHS:
            lineage = run_and_recover(depth, None)
            repl = run_and_recover(depth, ReplicationScheme(2))
            ec = run_and_recover(depth, ErasureCode(4, 2))
            rows.append((depth, lineage, repl, ec))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ResultTable(
        "E5: recovery after losing the node holding a depth-D chain",
        [
            "depth",
            "lineage recovery",
            "repl(2) recovery",
            "EC(4,2) recovery",
            "lineage replays",
            "storage lineage/repl/EC",
        ],
    )
    for depth, lineage, repl, ec in rows:
        table.add_row(
            depth,
            fmt_seconds(lineage[0]),
            fmt_seconds(repl[0]),
            fmt_seconds(ec[0]),
            lineage[1],
            f"1.0x / {repl[2]:.1f}x / {ec[2]:.2f}x",
        )
    table.show()

    # lineage recovery grows with chain depth (it replays the whole chain)
    lineage_times = [r[1][0] for r in rows]
    assert lineage_times == sorted(lineage_times)
    assert lineage_times[-1] > lineage_times[0] * 4
    for depth, lineage, repl, ec in rows:
        assert lineage[1] == depth  # replayed every task
        assert repl[1] == 0 and ec[1] == 0  # cache recovery: no replays
        # cache recovery is flat and far below deep-lineage replay
        if depth >= 8:
            assert repl[0] < lineage[0] / 4
            assert ec[0] < lineage[0] / 4
    # storage trade-off: lineage 1x < EC 1.5x < replication 2x
    assert rows[0][2][2] == 2.0
    assert rows[0][3][2] == 1.5
