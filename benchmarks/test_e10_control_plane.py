"""E10 — control-plane behaviours: dispatch under load and gang scheduling.

§2.3: "For workloads with frequent short operators (e.g., ML), [the
control plane] determines performance... If necessary, it could also
integrate gang-scheduling to support SPMD-style sub-graph."
"""

from __future__ import annotations

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import DeviceKind, build_physical_disagg
from repro.runtime import (
    Generation,
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
)

N_TASKS = 96
OP_COST = 2e-5


def dispatch_burst(generation: Generation) -> float:
    """Independent short accelerator ops; control handling is the limit."""
    cluster = build_physical_disagg(n_gpu_cards=2, n_fpga_cards=2)
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(generation=generation, resolution=ResolutionMode.PUSH),
    )
    accel = [
        d.device_id
        for d in cluster.all_devices()
        if d.kind in (DeviceKind.GPU, DeviceKind.FPGA)
    ]
    refs = [
        rt.submit(
            lambda i=i: i,
            compute_cost=OP_COST,
            pinned_device=accel[i % len(accel)],
            name=f"op{i}",
        )
        for i in range(N_TASKS)
    ]
    assert sum(rt.get(refs)) == sum(range(N_TASKS))
    return rt.sim.now


def test_e10_short_op_dispatch_rate(benchmark):
    def both():
        return dispatch_burst(Generation.GEN1), dispatch_burst(Generation.GEN2)

    t1, t2 = benchmark.pedantic(both, rounds=1, iterations=1)

    table = ResultTable(
        f"E10a: {N_TASKS} independent {OP_COST * 1e6:.0f}us accelerator ops",
        ["control plane", "makespan", "ops/sec"],
    )
    table.add_row("CPU(DPU)-centric (Gen-1)", fmt_seconds(t1), f"{N_TASKS / t1:,.0f}")
    table.add_row("device-centric (Gen-2)", fmt_seconds(t2), f"{N_TASKS / t2:,.0f}")
    table.show()

    # the device-centric control plane sustains a higher dispatch rate
    assert t2 < t1


def test_e10_gang_scheduling_spmd(benchmark):
    """An SPMD sub-graph: gang scheduling gives all ranks distinct devices
    and a simultaneous start (lock-step), unlike independent submission."""

    def run(gang: bool):
        cluster = build_physical_disagg(n_fpga_cards=2, n_gpu_cards=0)
        rt = ServerlessRuntime(
            cluster, RuntimeConfig(resolution=ResolutionMode.PULL)
        )
        n_ranks = 4
        refs = [
            rt.submit(
                lambda r=r: r,
                compute_cost=1e-3,
                supported_kinds=frozenset({DeviceKind.FPGA}),
                gang_group="spmd" if gang else None,
                name=f"rank{r}",
            )
            for r in range(n_ranks)
        ]
        if gang:
            rt.launch_gang("spmd")
        rt.get(refs)
        timelines = [rt.timeline_of(r) for r in refs]
        devices = {t.device_id for t in timelines}
        starts = [t.started for t in timelines]
        return devices, max(starts) - min(starts)

    def both():
        return run(gang=False), run(gang=True)

    (free_devices, free_skew), (gang_devices, gang_skew) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    table = ResultTable(
        "E10b: 4-rank SPMD sub-graph",
        ["scheduling", "distinct devices", "start-time skew"],
    )
    table.add_row("independent tasks", len(free_devices), fmt_seconds(free_skew))
    table.add_row("gang-scheduled", len(gang_devices), fmt_seconds(gang_skew))
    table.show()

    # the gang always gets distinct devices and a lock-step start
    assert len(gang_devices) == 4
    assert gang_skew <= free_skew
    assert gang_skew < 1e-4
