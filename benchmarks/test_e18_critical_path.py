"""E18 — telemetry plane: critical-path attribution of end-to-end latency.

Skadi's pitch is that a disaggregated runtime must *explain* where time
goes, not just spend it: the same observability that drives the paper's
pull-vs-push and locality arguments has to come from the runtime itself.
This experiment exercises the full telemetry stack — sim-time metrics,
causal spans, critical-path extraction, Prometheus and Chrome-trace
exports — and checks three properties:

1. **Exactness** — on a hand-built pinned chain the extractor's breakdown
   equals the attribution recomputed independently from ``rt.timelines``.
2. **Determinism** — two runs with the same seed produce byte-identical
   Prometheus text and an identical critical path.
3. **Explanatory power** — on the E1 producer/consumer workload the
   extractor shows push-based resolution shrinking the transfer share of
   the critical path, which is §2.3.2's claim restated as telemetry.

Set ``BENCH_ARTIFACTS=<dir>`` to export the Chrome trace and Prometheus
text for the chaos/telemetry runs (CI uploads these as artifacts).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import DeviceKind, build_physical_disagg, build_serverful
from repro.runtime import (
    Generation,
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
)
from repro.runtime.trace import to_chrome_trace
from repro.telemetry import parse_prometheus_text, to_prometheus_text

PAIRS = 4
OP_COST = 1e-4
PAYLOAD = 256 * 1024
CHAIN = 5


# ---------------------------------------------------------------------------
# workloads


def run_pinned_chain():
    """A chain pinned across servers: every hand-off crosses the fabric."""
    rt = ServerlessRuntime(
        build_serverful(n_servers=3),
        RuntimeConfig(resolution=ResolutionMode.PULL),
    )
    cpus = [
        rt.cluster.node(f"server{i}").first_of_kind(DeviceKind.CPU).device_id
        for i in range(3)
    ]
    ref = rt.submit(
        lambda: 0, name="t0", compute_cost=2e-3, output_nbytes=PAYLOAD,
        pinned_device=cpus[0],
    )
    refs = [ref]
    for i in range(1, CHAIN):
        ref = rt.submit(
            lambda x: x + 1, (ref,), name=f"t{i}", compute_cost=2e-3,
            output_nbytes=PAYLOAD, pinned_device=cpus[i % 3],
        )
        refs.append(ref)
    assert rt.get(ref) == CHAIN - 1
    return rt, refs


def run_pairs(resolution: ResolutionMode):
    """The E1 workload: FPGA producers feeding GPU consumers cross-card."""
    cluster = build_physical_disagg(n_gpu_cards=2, n_fpga_cards=2)
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(generation=Generation.GEN2, resolution=resolution),
    )
    fpgas = [d.device_id for d in cluster.devices_of_kind(DeviceKind.FPGA)]
    gpus = [d.device_id for d in cluster.devices_of_kind(DeviceKind.GPU)]
    consumers = []
    for i in range(PAIRS):
        producer = rt.submit(
            lambda i=i: i, compute_cost=OP_COST, output_nbytes=PAYLOAD,
            pinned_device=fpgas[i % len(fpgas)], name=f"prod{i}",
        )
        consumers.append(
            rt.submit(
                lambda x: x * 2, (producer,), compute_cost=OP_COST,
                pinned_device=gpus[i % len(gpus)], name=f"cons{i}",
            )
        )
    assert rt.get(consumers) == [2 * i for i in range(PAIRS)]
    return rt, consumers


# ---------------------------------------------------------------------------
# independent re-derivation of the attribution from task timelines


def expected_breakdown(rt, refs):
    """Recompute the chain's attribution straight from ``rt.timelines``.

    Mirrors the published semantics (clip each task to the window after
    its gating producer finished; split by milestone) but reads the
    TaskTimeline records, not the span graph — so it cross-checks that the
    spans faithfully carry the runtime's own milestones.
    """
    tls = [rt.timeline_of(r) for r in refs]
    buckets = {"compute": 0.0, "transfer": 0.0, "queue": 0.0, "recovery": 0.0}
    lo = tls[0].submitted
    for i, tl in enumerate(tls):
        gate = tls[i - 1].finished if i else tl.submitted
        lo = max(tl.submitted, gate)
        for a, b, bucket in (
            (tl.submitted, tl.dispatched, "queue"),
            (tl.dispatched, tl.inputs_ready, "transfer"),
            (tl.inputs_ready, tl.started, "queue"),
            (tl.started, tl.finished, "compute"),
        ):
            a = max(a, lo)
            if b > a:
                buckets[bucket] += b - a
    total = tls[-1].finished - tls[0].submitted
    return buckets, total


# ---------------------------------------------------------------------------
# the experiment


def test_e18_critical_path(benchmark):
    def sweep():
        chain_rt, chain_refs = run_pinned_chain()
        pull_rt, pull_refs = run_pairs(ResolutionMode.PULL)
        push_rt, push_refs = run_pairs(ResolutionMode.PUSH)
        return chain_rt, chain_refs, pull_rt, pull_refs, push_rt, push_refs

    chain_rt, chain_refs, pull_rt, pull_refs, push_rt, push_refs = (
        benchmark.pedantic(sweep, rounds=1, iterations=1)
    )

    # -- 1. exactness on the hand-built chain -------------------------------
    result = chain_rt.critical_path(chain_refs[-1])
    want, want_total = expected_breakdown(chain_rt, chain_refs)
    assert result.total == pytest.approx(want_total)
    for bucket, value in want.items():
        assert result.breakdown[bucket] == pytest.approx(value), bucket
    assert result.breakdown["recovery"] == 0.0  # failure-free run
    assert result.task_ids() == [rt_ref.task_id for rt_ref in chain_refs]
    # the path is gapless and covers the whole latency window
    for prev, nxt in zip(result.segments, result.segments[1:], strict=False):
        assert prev.end == pytest.approx(nxt.start)
    assert sum(result.fractions.values()) == pytest.approx(1.0)
    assert sum(result.breakdown.values()) == pytest.approx(result.total)

    # -- 2. determinism under the fixed seed --------------------------------
    chain_rt2, chain_refs2 = run_pinned_chain()
    assert to_prometheus_text(chain_rt2.telemetry.registry) == to_prometheus_text(
        chain_rt.telemetry.registry
    )
    result2 = chain_rt2.critical_path(chain_refs2[-1])
    assert result2.segments == result.segments
    assert result2.breakdown == result.breakdown

    # -- 3. push shrinks the transfer share of the critical path ------------
    pull_frac = max(
        pull_rt.critical_path(r).fractions["transfer"] for r in pull_refs
    )
    push_frac = max(
        push_rt.critical_path(r).fractions["transfer"] for r in push_refs
    )
    assert push_frac < pull_frac

    # -- 4. the exports round-trip through their parsers --------------------
    prom_text = to_prometheus_text(pull_rt.telemetry.registry)
    parsed = parse_prometheus_text(prom_text)
    assert parsed.value("skadi_tasks_finished_total") == pull_rt.tasks_finished
    assert parsed.types["skadi_task_latency_seconds"] == "summary"
    assert (
        parsed.value("skadi_task_latency_seconds_count") == pull_rt.tasks_finished
    )
    events = json.loads(
        json.dumps(to_chrome_trace(pull_rt, spans=True, counters=True))
    )
    phases = {e["ph"] for e in events}
    assert {"X", "C", "s", "f"} <= phases

    # -- the table ----------------------------------------------------------
    table = ResultTable(
        "E18: critical-path attribution (fractions of end-to-end latency)",
        ["scenario", "total", "compute", "transfer", "queue", "recovery"],
    )
    for label, res in (
        ("pinned chain", result),
        ("pairs/pull", pull_rt.critical_path(pull_refs[0])),
        ("pairs/push", push_rt.critical_path(push_refs[0])),
    ):
        frac = res.fractions
        table.add_row(
            label,
            fmt_seconds(res.total),
            f"{frac['compute']:.0%}",
            f"{frac['transfer']:.0%}",
            f"{frac['queue']:.0%}",
            f"{frac['recovery']:.0%}",
        )
    table.show()

    # -- artifacts for CI ---------------------------------------------------
    artifacts = os.environ.get("BENCH_ARTIFACTS")
    if artifacts:
        from repro.runtime.trace import write_chrome_trace

        os.makedirs(artifacts, exist_ok=True)
        write_chrome_trace(
            pull_rt, os.path.join(artifacts, "e18_trace.json"),
            spans=True, counters=True,
        )
        with open(os.path.join(artifacts, "e18_metrics.prom"), "w") as fh:
            fh.write(prom_text)
