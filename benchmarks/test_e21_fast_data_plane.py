"""E21 — fast data plane: chunking, dedup, multicast, contention (§2.3).

Skadi's headline is that the runtime controls *where bytes travel*; this
experiment measures the four data-plane mechanisms this repo layers onto
the simulated fabric, each against its own legacy toggle:

* **chunking** — a large transfer over a >= 3-hop disaggregated route,
  pipelined cut-through vs. store-and-forward;
* **dedup** — N concurrent consumers of one object on one node, counting
  bulk transfers with the in-flight fetch registry on vs. off;
* **multicast** — a push wave to N consumer nodes, spanning-tree
  distribution vs. per-consumer unicasts, per-link savings metered;
* **contention** — a hot-link workload placed by the contention-aware
  cost model vs. the idle-fabric model.

Acceptance: chunking >= 2x on the 4-hop route, dedup does exactly 1
transfer, multicast moves fewer link-bytes than unicasts (savings also
visible in ``skadi_multicast_bytes_saved_total``), contention-aware
placement beats idle-fabric on makespan — and the numbers land in
``BENCH_E21.json`` for the perf trajectory.
"""

from __future__ import annotations

import json
import os

from repro.bench import ResultTable, fmt_bytes, fmt_seconds
from repro.cluster import DeviceKind, build_physical_disagg, build_serverful
from repro.cluster.hardware import MB
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime

XFER_NB = 64 * MB  # the chunking probe payload
FANOUT_NB = 8 * MB  # the dedup / multicast object
N_CONSUMERS = 4


def bench_chunking() -> dict:
    """(a) 64 MB over the 4-hop gpu->dpu->ToR->dpu->gpu route."""

    def timed(chunked: bool) -> float:
        cluster = build_physical_disagg()
        rt = ServerlessRuntime(cluster, RuntimeConfig(chunked_transfers=chunked))
        hops = cluster.topology.hop_count("gpucard0/gpu0", "gpucard1/gpu0")
        assert hops >= 3, f"route too short for the cut-through probe: {hops}"
        rt.net.transfer("gpucard0/gpu0", "gpucard1/gpu0", XFER_NB)
        rt.sim.run()
        return rt.sim.now

    t_off, t_on = timed(False), timed(True)
    return {
        "nbytes": XFER_NB,
        "hops": 4,
        "time_store_and_forward": t_off,
        "time_chunked": t_on,
        "speedup": t_off / t_on,
    }


def fanout_runtime(**overrides) -> ServerlessRuntime:
    overrides.setdefault("resolution", ResolutionMode.PULL)
    return ServerlessRuntime(
        build_serverful(n_servers=N_CONSUMERS + 1), RuntimeConfig(**overrides)
    )


def run_fanout(rt: ServerlessRuntime, spread: bool) -> ServerlessRuntime:
    """N concurrent consumers of one head-node object; ``spread`` pins one
    consumer per node (multicast shape), else all onto one node (dedup)."""
    ref = rt.put(b"x" * 64, nbytes=FANOUT_NB)
    outs = [
        rt.submit(
            lambda x: len(x),
            (ref,),
            compute_cost=1e-5,
            pinned_device=f"server{i + 1 if spread else 1}/cpu",
            name=f"consumer{i}",
        )
        for i in range(N_CONSUMERS)
    ]
    assert rt.get(outs) == [64] * N_CONSUMERS
    return rt


def bench_dedup() -> dict:
    """(b) N concurrent same-object fetches to one node."""
    on = run_fanout(fanout_runtime(fetch_dedup=True), spread=False)
    off = run_fanout(fanout_runtime(fetch_dedup=False), spread=False)
    return {
        "consumers": N_CONSUMERS,
        "nbytes": FANOUT_NB,
        "transfers_dedup": on.net.stats.transfers,
        "transfers_legacy": off.net.stats.transfers,
        "bytes_dedup": on.net.stats.bytes_moved,
        "bytes_legacy": off.net.stats.bytes_moved,
        "fetches_deduped": on.raylet_for_device("server1/cpu").fetches_deduped,
    }


def bench_multicast() -> dict:
    """(c) push wave of one object to N consumer nodes."""
    on = run_fanout(
        fanout_runtime(resolution=ResolutionMode.PUSH, multicast_pushes=True),
        spread=True,
    )
    off = run_fanout(
        fanout_runtime(resolution=ResolutionMode.PUSH, multicast_pushes=False),
        spread=True,
    )
    metered = on.telemetry.registry.counter(
        "skadi_multicast_bytes_saved_total",
        "bytes multicast trees avoided serializing vs. per-consumer unicasts",
    ).value
    return {
        "consumers": N_CONSUMERS,
        "nbytes": FANOUT_NB,
        "link_bytes_multicast": sum(on.net.stats.bytes_by_link.values()),
        "link_bytes_unicast": sum(off.net.stats.bytes_by_link.values()),
        "bytes_saved_metered": metered,
        "uplink_bytes_multicast": on.net.stats.bytes_by_link[
            ("server0/cpu", on.cluster.switch_id)
        ],
        "uplink_bytes_unicast": off.net.stats.bytes_by_link[
            ("server0/cpu", off.cluster.switch_id)
        ],
    }


def bench_contention() -> dict:
    """(d) hot-link placement: the input's nearest GPU sits behind a
    backlogged PCIe link; the contention-aware model routes around it."""

    def makespan(aware: bool) -> float:
        rt = ServerlessRuntime(
            build_serverful(n_servers=3, gpus_per_server=1),
            RuntimeConfig(
                resolution=ResolutionMode.PULL,
                contention_aware_placement=aware,
            ),
        )
        ref = rt.put(b"x" * 64, nbytes=32 * MB)  # on server0's CPU store
        for _ in range(4):  # 1 GB queued ahead on server0's PCIe link
            rt.net.transfer("server0/cpu", "server0/gpu0", 256 * MB)
        outs = [
            rt.submit(
                lambda x: len(x),
                (ref,),
                compute_cost=1e-5,
                supported_kinds=frozenset({DeviceKind.GPU}),
                name=f"gpu-task{i}",
            )
            for i in range(N_CONSUMERS)
        ]
        rt.get(outs)
        return max(t.finished for t in rt.timelines)

    hot = makespan(False)
    steered = makespan(True)
    return {
        "makespan_idle_model": hot,
        "makespan_contention_aware": steered,
        "speedup": hot / steered,
    }


def test_e21_fast_data_plane():
    chunking = bench_chunking()
    dedup = bench_dedup()
    multicast = bench_multicast()
    contention = bench_contention()

    table = ResultTable(
        "E21: fast data plane (each mechanism vs. its legacy toggle)",
        ["mechanism", "legacy", "fast plane", "win"],
    )
    table.add_row(
        "chunked cut-through (64 MB, 4 hops)",
        fmt_seconds(chunking["time_store_and_forward"]),
        fmt_seconds(chunking["time_chunked"]),
        f"{chunking['speedup']:.2f}x",
    )
    table.add_row(
        f"fetch dedup ({N_CONSUMERS} consumers, 1 node)",
        f"{dedup['transfers_legacy']} transfers",
        f"{dedup['transfers_dedup']} transfer",
        fmt_bytes(dedup["bytes_legacy"] - dedup["bytes_dedup"]) + " saved",
    )
    table.add_row(
        f"multicast push ({N_CONSUMERS} consumer nodes)",
        fmt_bytes(multicast["link_bytes_unicast"]),
        fmt_bytes(multicast["link_bytes_multicast"]),
        fmt_bytes(multicast["bytes_saved_metered"]) + " metered",
    )
    table.add_row(
        "contention-aware placement (hot PCIe)",
        fmt_seconds(contention["makespan_idle_model"]),
        fmt_seconds(contention["makespan_contention_aware"]),
        f"{contention['speedup']:.2f}x",
    )
    table.show()

    # (a) pipelining over >= 3 hops is at least 2x
    assert chunking["speedup"] >= 2.0
    # (b) N concurrent same-object fetches collapse onto exactly 1 transfer
    assert dedup["transfers_dedup"] == 1
    assert dedup["transfers_legacy"] == N_CONSUMERS
    assert dedup["fetches_deduped"] == N_CONSUMERS - 1
    # (c) the tree beats per-consumer unicasts, and the savings are metered:
    # the head node's uplink serializes the object once instead of N times
    # (the residue on the link is control-message frames, identical in both)
    assert multicast["link_bytes_multicast"] < multicast["link_bytes_unicast"]
    assert (
        multicast["uplink_bytes_unicast"] - multicast["uplink_bytes_multicast"]
        == (N_CONSUMERS - 1) * FANOUT_NB
    )
    assert multicast["bytes_saved_metered"] >= (N_CONSUMERS - 1) * FANOUT_NB
    # (d) pricing the backlog beats assuming an idle fabric
    assert contention["speedup"] > 1.0

    results = {
        "experiment": "E21",
        "chunking": chunking,
        "dedup": dedup,
        "multicast": multicast,
        "contention": contention,
    }
    artifacts = os.environ.get("BENCH_ARTIFACTS")
    out_dir = artifacts or os.path.join(os.path.dirname(__file__), "baselines")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "BENCH_E21.json"), "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
