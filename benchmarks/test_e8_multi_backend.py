"""E8 — one hardware-agnostic op, many backends (§2.2).

"A key benefit of using hardware-agnostic IR is that we can lower a single
piece of code to multiple hardware backends, based on a set of predefined
policies."

We sweep op kind and size across the CPU/GPU/FPGA cost models: the best
backend must flip with scale (launch overhead vs. throughput), and the
CHEAPEST policy must always pick the per-op argmin — beating any single
fixed backend on the mixed function.
"""

from __future__ import annotations

from repro.bench import ResultTable
from repro.ir import (
    ALL_BACKENDS,
    Builder,
    SelectionPolicy,
    TensorType,
    estimated_cost,
    select_backends,
)

SIZES = [64, 1024, 16_384, 262_144]


def elementwise_func(n: int):
    b = Builder(f"ew{n}")
    x = b.add_param("x", TensorType((n,)))
    out = b.emit("linalg", "relu", [x])
    return b.ret(out.result())


def matmul_func(n: int):
    b = Builder(f"mm{n}")
    x = b.add_param("x", TensorType((n, n)))
    y = b.add_param("y", TensorType((n, n)))
    out = b.emit("linalg", "matmul", [x, y])
    return b.ret(out.result())


def mixed_pipeline():
    """big matmul + bulk elementwise + a tiny tail op: no one backend wins
    — the tail's launch overhead on an accelerator exceeds its CPU cost."""
    b = Builder("mixed")
    x = b.add_param("x", TensorType((512, 512)))
    w = b.add_param("w", TensorType((512, 512)))
    mm = b.emit("linalg", "matmul", [x, w])
    act = b.emit("linalg", "relu", [mm.result()])
    red = b.emit("linalg", "reduce_sum", [act.result()], {"axis": 0})
    tail = b.emit("linalg", "sigmoid", [red.result()])  # 512 elements
    return b.ret(tail.result())


def test_e8_backend_costs_cross_over(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            func = elementwise_func(n)
            op = func.ops[0]
            costs = {
                backend.name: backend.cost(op)
                for backend in ALL_BACKENDS
                if backend.supports(op)
            }
            best = min(costs, key=lambda k: (costs[k], k))
            rows.append((n, costs, best))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ResultTable(
        "E8: relu cost by backend (seconds, modeled)",
        ["elements", "cpu", "gpu", "fpga", "argmin"],
    )
    for n, costs, best in rows:
        table.add_row(
            n,
            f"{costs['cpu']:.2e}",
            f"{costs['gpu']:.2e}",
            f"{costs['fpga']:.2e}",
            best,
        )
    table.show()

    # launch overhead keeps tiny ops on the CPU; throughput moves big ops
    # onto an accelerator — the crossover the selection policy exists for
    assert rows[0][2] == "cpu"
    assert rows[-1][2] in ("gpu", "fpga")
    assert rows[-1][2] != rows[0][2]


def test_e8_policy_beats_fixed_backends(benchmark):
    def evaluate():
        results = {}
        func = mixed_pipeline()
        select_backends(func, policy=SelectionPolicy.CPU_ONLY)
        results["cpu-only"] = estimated_cost(func)
        select_backends(func, policy=SelectionPolicy.PREFER_ACCELERATOR)
        results["always-accelerator"] = estimated_cost(func)
        select_backends(func, policy=SelectionPolicy.CHEAPEST)
        results["predefined policy (argmin)"] = estimated_cost(func)
        picks = [op.attrs["backend"] for op in func.ops]
        return results, picks

    results, picks = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = ResultTable("E8: mixed pipeline cost by policy", ["policy", "modeled cost"])
    for name, cost in results.items():
        table.add_row(name, f"{cost * 1e3:.4f} ms")
    table.show()
    print(f"argmin per-op picks: {picks}")

    best = results["predefined policy (argmin)"]
    assert best <= results["cpu-only"]
    assert best <= results["always-accelerator"]
    # the mixed pipeline really uses more than one backend
    assert len(set(picks)) >= 2
