"""E17 — chaos soak: self-healing under a seeded fault barrage (§2.3, §3).

"Applications often handle failures of their logical components ... the
runtime should provide fault tolerance as a service, e.g., detecting
failures and transparently re-executing computation or reconstructing
state."

Workload: L parallel task lanes of depth D feeding a join, plus a
checkpointed actor homed on a node the chaos schedule is guaranteed to
crash.  A seeded :class:`ChaosSchedule` injects node crashes, a network
partition, and a straggler mid-run.  The control plane gets *no* fault
notifications: heartbeat suspicion must detect the crashes, retries with
backoff must absorb dropped leases, speculation must route around the
straggler, and the actor must be reconstructed from its reliable-cache
checkpoint.  The soak passes only if the answer is exactly right, nothing
is permanently lost, and the same seed reproduces the identical event
trace twice.
"""

from __future__ import annotations

import os

from repro.bench import ResultTable, fmt_seconds
from repro.caching import ReplicationScheme
from repro.chaos import ChaosMonkey, ChaosSchedule, NetworkPartition, NodeCrash, Straggler
from repro.cluster import DeviceKind, build_serverful
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime
from repro.runtime.runtime import make_reliable_cache

SEED = 20230622  # HotOS '23
LANES = 8
DEPTH = 5
TASK_COST = 4e-3
HORIZON = 2e-2  # ~the fault-free makespan; faults land 10-75% through it
N_SERVERS = 4

EXPECTED_TOTAL = sum(lane + (DEPTH - 1) for lane in range(LANES))


class Auditor:
    """Idempotent accumulator: at-least-once re-execution is harmless."""

    def __init__(self):
        self.seen = set()


def mark(state, lane):
    state.seen.add(lane)
    return len(state.seen)


def audit_size(state):
    return len(state.seen)


def make_schedule(seed):
    cluster = build_serverful(n_servers=N_SERVERS)  # throwaway, for ids only
    fallible = [f"server{i}" for i in range(1, N_SERVERS)]  # never the head
    devices = [
        cluster.node(n).first_of_kind(DeviceKind.CPU).device_id for n in fallible
    ]
    return ChaosSchedule.random(
        seed,
        node_ids=fallible,
        device_ids=devices,
        horizon=HORIZON,
        n_crashes=2,
        n_partitions=1,
        n_stragglers=1,
    )


def run_soak(seed, chaos=True, **config_overrides):
    """Run the soak; ``config_overrides`` lets equivalence tests flip the
    overload-control switches on top of the canonical E17 config."""
    cluster = build_serverful(n_servers=N_SERVERS)
    cache = make_reliable_cache(cluster, ReplicationScheme(2))
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(
            resolution=ResolutionMode.PULL,
            heartbeat_interval=1e-3,
            heartbeat_miss_threshold=3,
            max_retries=10,
            retry_backoff_base=2e-3,
            speculation_factor=4.0,
            actor_checkpoint_every=1,
            **config_overrides,
        ),
        reliable_cache=cache,
    )
    schedule = make_schedule(seed) if chaos else ChaosSchedule()
    monkey = ChaosMonkey(rt, schedule).arm()

    # home the auditor on a node the schedule *will* crash
    crashes = [f for f in schedule if isinstance(f, NodeCrash)]
    victim = crashes[0].node_id if crashes else "server1"
    home = cluster.node(victim).first_of_kind(DeviceKind.CPU)
    auditor = rt.create_actor(Auditor, pinned_device=home.device_id)

    lanes = []
    for lane in range(LANES):
        ref = rt.submit(lambda lane=lane: lane, compute_cost=TASK_COST)
        for _ in range(DEPTH - 1):
            ref = rt.submit(lambda x: x + 1, (ref,), compute_cost=TASK_COST)
        lanes.append(ref)
    total = rt.submit(lambda *xs: sum(xs), tuple(lanes), compute_cost=1e-3)
    audits = [auditor.call(mark, lane, compute_cost=1e-3) for lane in range(LANES)]

    answer = rt.get(total)
    rt.get(audits)
    audited = rt.get(auditor.call(audit_size, compute_cost=1e-3))
    return {
        "rt": rt,
        "monkey": monkey,
        "answer": answer,
        "audited": audited,
        "makespan": rt.sim.now,
        "signature": rt.log.signature(),
    }


def test_e17_chaos_soak(benchmark):
    def sweep():
        baseline = run_soak(SEED, chaos=False)
        soak = run_soak(SEED, chaos=True)
        replay = run_soak(SEED, chaos=True)  # determinism witness
        return baseline, soak, replay

    baseline, soak, replay = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ResultTable(
        "E17: chaos soak — seeded faults vs. self-healing control plane",
        [
            "scenario",
            "makespan",
            "answer",
            "retries",
            "suspicions",
            "replays",
            "actor restarts",
            "tasks lost",
        ],
    )
    for label, run in (("fault-free", baseline), ("chaos", soak)):
        rt = run["rt"]
        table.add_row(
            label,
            fmt_seconds(run["makespan"]),
            run["answer"],
            rt.tasks_retried,
            rt.log.count("node_suspected"),
            rt.lineage.replays,
            rt.actor_restarts,
            rt.tasks_failed,
        )
    table.show()

    rt = soak["rt"]
    injected = soak["monkey"].injected
    # the schedule really threw the required barrage mid-run
    assert sum(isinstance(f, NodeCrash) for f in injected) >= 2
    assert sum(isinstance(f, NetworkPartition) for f in injected) >= 1
    assert sum(isinstance(f, Straggler) for f in injected) >= 1

    # correctness: exact answer, every audit mark present, nothing lost
    assert soak["answer"] == EXPECTED_TOTAL == baseline["answer"]
    assert soak["audited"] == LANES
    assert rt.tasks_failed == 0
    assert not rt._dead_actors

    # recovery was *detected*, not announced: every node_dead verdict came
    # from missed heartbeats, and the detector actually suspected someone
    assert rt.log.count("node_suspected") >= 1
    assert all(ev["cause"] == "missed heartbeats" for ev in rt.log.of_kind("node_dead"))
    assert rt.health.beats_received > 0

    # the chaos run paid for its faults but survived them
    assert rt.tasks_retried >= 1
    assert soak["makespan"] >= baseline["makespan"]
    assert baseline["rt"].tasks_failed == 0
    assert baseline["rt"].log.count("node_suspected") == 0

    # determinism: the same seed reproduces the identical event trace
    assert soak["signature"] == replay["signature"]
    assert soak["makespan"] == replay["makespan"]
    assert soak["answer"] == replay["answer"]

    # telemetry artifacts for CI (chrome trace + prometheus export)
    artifacts = os.environ.get("BENCH_ARTIFACTS")
    if artifacts:
        from repro.runtime.trace import write_chrome_trace
        from repro.telemetry import to_prometheus_text

        os.makedirs(artifacts, exist_ok=True)
        write_chrome_trace(
            rt, os.path.join(artifacts, "e17_trace.json"),
            spans=True, counters=True,
        )
        with open(os.path.join(artifacts, "e17_metrics.prom"), "w") as fh:
            fh.write(to_prometheus_text(rt.telemetry.registry))
        # protocol trace for the offline dist-sanitizer pass in CI
        traced = run_soak(SEED, chaos=True, sanitizers=("trace",))
        traced["rt"].probe.trace.dump(
            os.path.join(artifacts, "e17_dist_trace.json")
        )
