"""E20 — failure domains: fault domain x recovery mechanism sweep (§2.3, §3).

Disaggregation shrinks the failure unit from "the server" to "the device":
a GPU, a memory blade, or a DPU dies while everything around it keeps
serving.  This experiment kills one instance of each domain mid-run, with
the honest detectors (heartbeat device reports, GCS blade probes, domain
triage) doing the noticing, and sweeps the recovery mechanism: lineage
replay (recompute the lost bytes) vs. the replicated reliable cache
(re-fetch them).  Per cell we report detection latency, recovery latency,
and the recomputed-vs-refetched byte split straight from the
``skadi_recovered_*`` counters.

Acceptance: all three domains survive end-to-end with zero failed tasks,
every recovered object is attributed to ``lineage`` or ``reliable_cache``,
the blade + replication>=2 cell recovers with zero re-executed tasks, and
the GPU kill is visible as a capacity drop in the scheduler gauges while
the job still completes.
"""

from __future__ import annotations

import json
import os

from repro.bench import ResultTable, fmt_bytes, fmt_seconds
from repro.caching import ReplicationScheme
from repro.chaos import ChaosMonkey, ChaosSchedule
from repro.cluster import DeviceKind, build_physical_disagg, build_serverful
from repro.cluster.hardware import GB
from repro.runtime import Generation, ResolutionMode, RuntimeConfig, ServerlessRuntime
from repro.runtime.runtime import make_reliable_cache

GPU = frozenset({DeviceKind.GPU})
MECHANISMS = ("lineage", "reliable_cache")
LOST_NB = 24 * GB  # the blade cell's spilled object (3 overflow a 64 GB store)
DEV_NB = 256 * 1024 * 1024  # the device cell's lost GPU output


def detect_config(**overrides):
    """Honest detection: heartbeats, blade probes, and triage all armed."""
    base = dict(
        resolution=ResolutionMode.PULL,
        heartbeat_interval=1e-3,
        heartbeat_miss_threshold=3,
        max_retries=10,
        retry_backoff_base=2e-3,
    )
    base.update(overrides)
    return RuntimeConfig(**base)


def make_runtime(cluster, mechanism, **config_overrides):
    cache = (
        make_reliable_cache(cluster, ReplicationScheme(2))
        if mechanism == "reliable_cache"
        else None
    )
    return ServerlessRuntime(
        cluster, detect_config(**config_overrides), reliable_cache=cache
    )


def run_device_cell(mechanism):
    """Kill the GPU that produced a live object; a parked consumer forces
    proactive recovery the moment the heartbeat report lands."""
    rt = make_runtime(build_serverful(n_servers=3, gpus_per_server=1), mechanism)
    reg = rt.telemetry.registry
    a = rt.submit(
        lambda: 7, compute_cost=1e-3, supported_kinds=GPU, output_nbytes=DEV_NB
    )
    assert rt.get(a) == 7
    victim = rt.ownership.entry(a.object_id).device_id
    base_slots = reg.value("skadi_scheduler_capacity_slots")
    ChaosMonkey(rt, ChaosSchedule().fail_device(rt.sim.now + 1e-6, victim)).arm()
    filler = rt.submit(lambda: 0, compute_cost=2e-2)
    b = rt.submit(lambda x, f: x + 1 + f, (a, filler), compute_cost=1e-3)
    ok = rt.get(b) == 8
    gpu_slots = rt.cluster.device(victim).spec.slots
    return dict(
        rt=rt,
        ok=ok,
        fault_kind="chaos_device_failure",
        dead_kind="device_dead",
        capacity_dropped=(
            reg.value("skadi_scheduler_capacity_slots") == base_slots - gpu_slots
        ),
        blacklisted_only_device=(
            rt.scheduler.is_blacklisted(victim)
            and not rt.scheduler.is_blacklisted(victim.rsplit("/", 1)[0] + "/cpu")
        ),
    )


def run_blade_cell(mechanism):
    """Kill the memory blade holding a spilled object; GCS probes detect it
    and the parked consumer pulls the object back into live memory."""
    cluster = build_physical_disagg(
        n_servers=1, n_gpu_cards=0, n_fpga_cards=0, n_mem_blades=1
    )
    rt = make_runtime(cluster, mechanism)
    a = rt.submit(lambda: "A", compute_cost=1e-3, output_nbytes=LOST_NB)
    b = rt.submit(lambda: "B", compute_cost=1e-3, output_nbytes=LOST_NB)
    c = rt.submit(lambda: "C", compute_cost=1e-3, output_nbytes=LOST_NB)
    assert rt.get([a, b, c]) == ["A", "B", "C"]
    assert rt._spill_store is not None and rt._spill_store.contains(a.object_id)
    rt.free([b, c])  # make room: recovery must land in live memory
    ChaosMonkey(rt, ChaosSchedule().fail_blade(rt.sim.now + 1e-6, "memblade0")).arm()
    filler = rt.submit(lambda: 0, compute_cost=2e-2)
    d = rt.submit(lambda x, f: x * 2, (a, filler), compute_cost=1e-3)
    ok = rt.get(d) == "AA"
    return dict(rt=rt, ok=ok, fault_kind="chaos_blade_failure", dead_kind="blade_dead")


def run_dpu_cell(mechanism, generation=Generation.GEN1):
    """Kill a GPU card's DPU mid-run.  Gen-1 homes the card raylet there:
    triage probes split the card into dead DPU + live GPU and the head
    raylet adopts the orphan.  Gen-2's per-device raylets make it a no-op."""
    cluster = build_physical_disagg(
        n_servers=1, n_gpu_cards=2, n_fpga_cards=0, n_mem_blades=1
    )
    rt = make_runtime(cluster, mechanism, generation=generation)
    ChaosMonkey(rt, ChaosSchedule().fail_dpu(2e-3, "gpucard0")).arm()
    refs = [
        rt.submit(lambda i=i: i * 3, compute_cost=4e-3, supported_kinds=GPU)
        for i in range(12)
    ]
    filler = rt.submit(lambda: 0, compute_cost=2.5e-2)
    ok = rt.get(refs) == [i * 3 for i in range(12)] and rt.get(filler) == 0
    return dict(
        rt=rt, ok=ok, fault_kind="chaos_dpu_failure", dead_kind="raylet_takeover"
    )


def summarize(domain, mechanism, cell):
    rt = cell["rt"]
    reg = rt.telemetry.registry
    faults = rt.log.of_kind(cell["fault_kind"])
    detected = rt.log.of_kind(cell["dead_kind"])
    recovered = rt.log.of_kind("object_recovered")
    fault_t = faults[0].time if faults else None
    detect_t = detected[0].time if detected else None
    recover_t = recovered[-1].time if recovered else detect_t
    return dict(
        domain=domain,
        mechanism=mechanism,
        ok=cell["ok"],
        detected_by=detected[0].get("cause", "takeover") if detected else "-",
        detect_latency=(detect_t - fault_t) if detected and faults else None,
        recovery_latency=(recover_t - fault_t) if recover_t is not None else None,
        recovered_objects=len(recovered),
        recovered_sources=sorted({ev["source"] for ev in recovered}),
        recomputed_bytes=reg.value("skadi_recovered_bytes_total", source="lineage"),
        refetched_bytes=reg.value(
            "skadi_recovered_bytes_total", source="reliable_cache"
        ),
        replays=rt.lineage.replays,
        takeovers=rt.log.count("raylet_takeover"),
        tasks_failed=rt.tasks_failed,
        makespan=rt.sim.now,
    )


def test_e20_failure_domains(benchmark):
    runners = {"device": run_device_cell, "blade": run_blade_cell, "dpu": run_dpu_cell}

    def sweep():
        cells = {}
        for domain, runner in runners.items():
            for mechanism in MECHANISMS:
                cells[(domain, mechanism)] = runner(mechanism)
        # the generation contrast: the same DPU death under Gen-2 is a no-op
        cells[("dpu-gen2", "lineage")] = run_dpu_cell(
            "lineage", generation=Generation.GEN2
        )
        return cells

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [summarize(d, m, cell) for (d, m), cell in cells.items()]

    table = ResultTable(
        "E20: failure domains — fault domain x recovery mechanism",
        [
            "domain",
            "mechanism",
            "detected by",
            "detect",
            "recover",
            "objects",
            "recomputed",
            "re-fetched",
            "replays",
            "failed",
        ],
    )
    for row in rows:
        table.add_row(
            row["domain"],
            row["mechanism"],
            row["detected_by"],
            fmt_seconds(row["detect_latency"]) if row["detect_latency"] else "-",
            fmt_seconds(row["recovery_latency"]) if row["recovery_latency"] else "-",
            row["recovered_objects"],
            fmt_bytes(row["recomputed_bytes"]),
            fmt_bytes(row["refetched_bytes"]),
            row["replays"],
            row["tasks_failed"],
        )
    table.show()

    by_cell = {(r["domain"], r["mechanism"]): r for r in rows}

    # every cell survived its fault end-to-end with the exact answer
    assert all(r["ok"] for r in rows)
    assert all(r["tasks_failed"] == 0 for r in rows)

    # attribution: every recovered object credits lineage or the cache
    for r in rows:
        assert set(r["recovered_sources"]) <= {"lineage", "reliable_cache"}

    # lineage cells recompute (replays, recomputed bytes); cache cells
    # re-fetch (zero replays, refetched bytes) — the paper's trade
    for domain, nbytes in (("device", DEV_NB), ("blade", LOST_NB)):
        lin, rel = by_cell[(domain, "lineage")], by_cell[(domain, "reliable_cache")]
        assert lin["recovered_sources"] == ["lineage"] and lin["replays"] >= 1
        assert lin["recomputed_bytes"] >= nbytes and lin["refetched_bytes"] == 0
        assert rel["recovered_sources"] == ["reliable_cache"] and rel["replays"] == 0
        assert rel["refetched_bytes"] == nbytes and rel["recomputed_bytes"] == 0

    # the GPU kill degraded capacity (telemetry-visible) without node death
    for mechanism in MECHANISMS:
        cell = cells[("device", mechanism)]
        assert cell["capacity_dropped"] and cell["blacklisted_only_device"]
        assert cell["rt"].log.count("node_dead") == 0
        assert cell["rt"].log.of_kind("device_dead")[0]["cause"] == "reported by raylet"

    # blade deaths were *detected*, not announced, and lost only the spill
    for mechanism in MECHANISMS:
        rt = cells[("blade", mechanism)]["rt"]
        assert rt.log.of_kind("blade_dead")[0]["cause"] == "missed probes"
        assert rt.log.of_kind("blade_dead")[0]["objects_lost"] == 1
        assert rt.health.probes_sent > 0

    # Gen-1 DPU death: triage + takeover, no whole-node verdict, nothing lost
    for mechanism in MECHANISMS:
        r = by_cell[("dpu", mechanism)]
        assert r["takeovers"] >= 1 and r["recovered_objects"] == 0
        assert cells[("dpu", mechanism)]["rt"].log.count("node_dead") == 0
    # ... and the same fault under Gen-2 per-device raylets is a no-op
    assert by_cell[("dpu-gen2", "lineage")]["takeovers"] == 0

    artifacts = os.environ.get("BENCH_ARTIFACTS")
    if artifacts:
        from repro.telemetry import to_prometheus_text

        os.makedirs(artifacts, exist_ok=True)
        with open(os.path.join(artifacts, "e20_failure_domains.json"), "w") as fh:
            json.dump({"experiment": "E20", "cells": rows}, fh, indent=2)
        with open(os.path.join(artifacts, "e20_metrics.prom"), "w") as fh:
            fh.write(to_prometheus_text(cells[("blade", "lineage")]["rt"].telemetry.registry))
