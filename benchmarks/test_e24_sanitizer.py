"""E24 — Skadi-TSan: sanitizer cost, offline sanitize, seeded detection.

The distributed sanitizer (``repro.analysis.dist``) must earn its keep in
three ways, measured here on the flagship workloads:

1. **Online cost** — running the eight protocol invariant monitors inline
   (``sanitizers=("invariants",)``) on the E17 chaos soak should cost a
   few percent of wall time (target <5%; the measured ratio is recorded
   in BENCH_E24.json either way).  Full tracing + happens-before replay
   material (``("hb", "invariants")``) is allowed to cost more — that
   mode exists for trace capture, not for always-on use.  Either way the
   EventLog signature must stay bit-for-bit identical to the legacy run.
2. **Offline sanitize** — dumped traces from E17 (complete) and E22 (cut
   mid-run at the drain, hence ``partial``) replay through the CLI path
   (:func:`repro.analysis.dist.cli.sanitize_path`) and come back clean:
   the production protocols hold up under the monitors and the race
   detector.
3. **Detection + shrinking** — a seeded use-after-free (driver ``free``
   concurrent with an in-flight cross-node consumer) is flagged as a
   ``dir_read``/``own_free`` race, and the schedule-perturbation hunt
   finds a failing reordering and ddmin-shrinks it to a minimal schedule.

Timing is interleaved min-of-N with a GC sweep before every run: the two
modes alternate so drift (thermal, page cache, allocator growth) hits
both equally, and min-of-N discards scheduler noise.
"""

from __future__ import annotations

import gc
import importlib.util
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.dist import hunt
from repro.analysis.dist.cli import sanitize_path
from repro.bench import ResultTable
from repro.chaos.perturb import TiePerturbation
from repro.cluster import build_serverful
from repro.cluster.hardware import DeviceKind
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime
from repro.runtime.task import TaskState

ROUNDS = 9  # interleaved timing rounds per mode (min-of-N)
OVERHEAD_TARGET = 0.05  # the design target for always-on monitors
# CI sanity ceilings — shared-runner timing is noisy, so the hard assert
# is deliberately loose; the *measured* ratio lands in BENCH_E24.json and
# regressions show up as a diff there, not as a flaky red build.
INV_OVERHEAD_CEILING = 0.35
FULL_OVERHEAD_CEILING = 1.0


def load_bench(name):
    """Import a sibling benchmark module by path (benchmarks/ is not a
    package; E24 reuses the E17/E22 workload builders)."""
    path = Path(__file__).resolve().parent / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"_e24_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


# ----------------------------------------------------------------------
# Phase 1: online overhead on the E17 chaos soak
# ----------------------------------------------------------------------

def measure_online_overhead(e17, rounds=ROUNDS):
    modes = (
        ("off", {}),
        ("invariants", {"sanitizers": ("invariants",)}),
        ("hb+invariants", {"sanitizers": ("hb", "invariants")}),
    )
    # warm every path first (imports, code objects, allocator pools) and
    # use the warmup runs as the zero-interference witness
    warm = {}
    for mode, overrides in modes:
        warm[mode] = e17.run_soak(e17.SEED, chaos=True, **overrides)
    assert (
        warm["off"]["signature"]
        == warm["invariants"]["signature"]
        == warm["hb+invariants"]["signature"]
    ), "sanitizers changed the observable event log"
    assert warm["off"]["answer"] == warm["invariants"]["answer"]

    times = {mode: [] for mode, _ in modes}
    for _ in range(rounds):
        for mode, overrides in modes:
            gc.collect()
            start = time.perf_counter()
            e17.run_soak(e17.SEED, chaos=True, **overrides)
            times[mode].append(time.perf_counter() - start)
    best = {mode: min(ts) for mode, ts in times.items()}
    return {
        "rounds": rounds,
        "off_s": best["off"],
        "invariants_s": best["invariants"],
        "hb_invariants_s": best["hb+invariants"],
        "invariants_overhead": best["invariants"] / best["off"] - 1.0,
        "hb_invariants_overhead": best["hb+invariants"] / best["off"] - 1.0,
        "target": OVERHEAD_TARGET,
        "proto_events": len(warm["hb+invariants"]["rt"].probe.trace),
    }


# ----------------------------------------------------------------------
# Phase 3: the seeded use-after-free and the perturbation hunt
# ----------------------------------------------------------------------

def free_race_scenario(perturbation=None, free_at=20e-3):
    """Producer on server0, consumer pinned cross-node, and a driver
    ``free`` landing while the consumer attempt is mid-compute.  At
    ``free_at=20e-3`` the free always lands under the 50ms consumer (the
    detection case); at ``free_at=52e-3`` the legacy schedule dodges it
    by ~1ms and only delivery jitter exposes the bug (the hunt case).

    Uses ``force=True``: the default ``free`` now quiesces in-flight
    consumers, so the race this benchmark seeds and hunts is only
    reachable through the legacy escape hatch."""
    cluster = build_serverful(n_servers=2)
    if perturbation is not None:
        cluster.sim.set_perturbation(perturbation)
    cpu0 = cluster.node("server0").first_of_kind(DeviceKind.CPU).device_id
    cpu1 = cluster.node("server1").first_of_kind(DeviceKind.CPU).device_id
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(resolution=ResolutionMode.PULL,
                      sanitizers=("hb", "invariants")),
    )
    a = rt.submit(lambda: 5, name="a", compute_cost=1e-4,
                  output_nbytes=1 << 22, pinned_device=cpu0)
    rt.get(a)
    b = rt.submit(lambda x: x + 1, args=(a,), name="b",
                  compute_cost=50e-3, pinned_device=cpu1)

    def _free_mid_flight():
        yield rt.sim.timeout(free_at)
        rt.free(a, force=True)

    rt.sim.process(_free_mid_flight(), name="driver:free")
    rt.sim.run()
    return rt, rt._ctx_of_object[b.object_id]


def run_seeded_detection(tmp_dir):
    rt, _ctx = free_race_scenario(free_at=20e-3)
    report = rt.probe.report(partial=True)
    kinds = {frozenset((r.first.kind, r.second.kind)) for r in report.races}
    assert frozenset(("dir_read", "own_free")) in kinds, (
        "seeded use-after-free not detected online"
    )
    # the same verdict must come out of the offline CLI path
    trace_path = Path(tmp_dir) / "e24_seeded_race_trace.json"
    rt.probe.trace.dump(str(trace_path))
    offline = sanitize_path(trace_path, partial=True)
    offline_kinds = {
        frozenset((r.first.kind, r.second.kind)) for r in offline.races
    }
    assert frozenset(("dir_read", "own_free")) in offline_kinds
    return {
        "detected": True,
        "race_kinds": sorted(sorted(k) for k in kinds),
        "events": report.events,
        "races": len(report.races),
    }


def run_hunt():
    def consumer_broken(outcome):
        _rt, ctx = outcome
        return ctx.state != TaskState.FINISHED

    result = hunt(
        lambda p: free_race_scenario(p, free_at=52e-3),
        seeds=range(1, 13),
        jitter=0.25,
        predicate=consumer_broken,
        shrink_budget=24,
    )
    assert not result.baseline_failed  # legacy timing hides the bug
    assert result.found_failure, "jitter no longer exposes the free bug"
    assert result.minimal is not None and len(result.minimal) >= 1
    # the shrunk minimal schedule replays the failure deterministically
    replay = TiePerturbation(result.failing_seed, active=result.minimal,
                             jitter=0.25)
    _rt, ctx = free_race_scenario(replay, free_at=52e-3)
    assert ctx.state != TaskState.FINISHED
    return result.to_dict()


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------

def test_e24_sanitizer(benchmark, tmp_path):
    e17 = load_bench("test_e17_chaos_soak")
    e22 = load_bench("test_e22_overload")

    def sweep():
        overhead = measure_online_overhead(e17)

        # offline: dump flagship traces and replay them through the CLI path
        soak = e17.run_soak(e17.SEED, chaos=True, sanitizers=("trace",))
        e17_trace = tmp_path / "e17_dist_trace.json"
        soak["rt"].probe.trace.dump(str(e17_trace))
        e17_report = sanitize_path(e17_trace)

        rt22, _monkey = e22.run_scenario(spike=True, sanitizers=("trace",))
        e22_trace = tmp_path / "e22_dist_trace.json"
        rt22.probe.trace.dump(str(e22_trace))
        e22_report = sanitize_path(e22_trace, partial=True)

        seeded = run_seeded_detection(tmp_path)
        hunt_result = run_hunt()
        return overhead, e17_report, e22_report, seeded, hunt_result

    overhead, e17_report, e22_report, seeded, hunt_result = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    table = ResultTable(
        "E24: distributed sanitizer — online cost and detection power",
        ["check", "result"],
    )
    table.add_row(
        "online monitors overhead (E17 soak)",
        f"{overhead['invariants_overhead'] * 100:.1f}% "
        f"(target <{OVERHEAD_TARGET * 100:.0f}%)",
    )
    table.add_row(
        "full trace + hb capture overhead",
        f"{overhead['hb_invariants_overhead'] * 100:.1f}%",
    )
    table.add_row(
        "offline sanitize: E17 trace",
        f"{'clean' if e17_report.clean else 'DIRTY'} "
        f"({e17_report.events} events, {e17_report.sites} sites)",
    )
    table.add_row(
        "offline sanitize: E22 trace (partial)",
        f"{'clean' if e22_report.clean else 'DIRTY'} "
        f"({e22_report.events} events)",
    )
    table.add_row(
        "seeded use-after-free detected",
        f"dir_read/own_free race ({seeded['races']} race class(es))",
    )
    table.add_row(
        "hunt + ddmin minimal schedule",
        f"seed {hunt_result['failing_seed']}, "
        f"{len(hunt_result['minimal_schedule'])}-event reorder window "
        f"in {hunt_result['trials']} trial(s)",
    )
    table.show()

    # online monitors stay cheap; the measured ratio is the real deliverable
    assert overhead["invariants_overhead"] < INV_OVERHEAD_CEILING
    assert overhead["hb_invariants_overhead"] < FULL_OVERHEAD_CEILING
    # production protocols are clean under the full sanitizer
    assert e17_report.clean
    assert not e17_report.partial and e17_report.dangling_recvs == 0
    assert e22_report.clean and e22_report.partial
    # detection power: the seeded bug is caught and shrunk
    assert seeded["detected"]
    assert hunt_result["failing_seed"] is not None
    assert hunt_result["minimal_schedule"]

    payload = {
        "experiment": "E24",
        "title": "Skadi-TSan: sanitizer overhead and detection power",
        "online_overhead": overhead,
        "offline": {
            "e17": e17_report.to_dict(),
            "e22": e22_report.to_dict(),
        },
        "seeded_race": seeded,
        "hunt": hunt_result,
    }
    artifacts = os.environ.get("BENCH_ARTIFACTS")
    out_dir = artifacts or os.path.join(os.path.dirname(__file__), "baselines")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "BENCH_E24.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
