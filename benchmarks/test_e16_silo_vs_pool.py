"""E16 — computing silos vs. a shared disaggregated pool (§1's second
principle and its conflict).

"Such computing silos can be tightly-coupled clusters... This can result
in suboptimal cluster utilization, which conflicts with the disaggregation
and pooling principle.  It also makes sharing DSAs across distinct data
systems more difficult."

Workload: two data systems with complementary phases — an analytics system
(CPU-heavy, occasional GPU bursts) and an ML system (GPU-heavy, occasional
CPU work).  Deployed two ways over the *same total hardware*:

* silos — each system owns half the devices exclusively (its tasks may
  only use its own silo);
* pooled — one disaggregated pool; the shared scheduler places any task on
  any eligible device.

Expected shape: pooling finishes sooner and uses the accelerators harder,
because each system borrows the other's idle devices.
"""

from __future__ import annotations

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import DeviceKind, build_physical_disagg
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    SchedulingPolicy,
    ServerlessRuntime,
)

N_TASKS = 32  # per system
CPU_COST = 1e-3
GPU_COST = 40e-3  # CPU-equivalents; ~1 ms on a 40x GPU


def submit_mixed(rt, gpu_devices, cpu_devices, tag):
    """One data system's job mix over the devices it is allowed to use."""
    refs = []
    for i in range(N_TASKS):
        if (tag == "ml") == (i % 4 != 0):  # ml: 3/4 GPU; analytics: 1/4 GPU
            refs.append(
                rt.submit(
                    lambda i=i: i,
                    compute_cost=GPU_COST,
                    pinned_device=gpu_devices[i % len(gpu_devices)],
                    name=f"{tag}-gpu{i}",
                )
            )
        else:
            refs.append(
                rt.submit(
                    lambda i=i: i,
                    compute_cost=CPU_COST,
                    pinned_device=cpu_devices[i % len(cpu_devices)],
                    name=f"{tag}-cpu{i}",
                )
            )
    return refs


def run_deployment(pooled: bool):
    cluster = build_physical_disagg(n_servers=2, n_gpu_cards=2, n_fpga_cards=0)
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(
            resolution=ResolutionMode.PUSH, scheduling=SchedulingPolicy.LEAST_LOADED
        ),
    )
    gpus = [d.device_id for d in cluster.devices_of_kind(DeviceKind.GPU)]
    cpus = [d.device_id for d in cluster.devices_of_kind(DeviceKind.CPU)]
    if pooled:
        # both systems share every device
        refs = submit_mixed(rt, gpus, cpus, "analytics")
        refs += submit_mixed(rt, gpus, cpus, "ml")
    else:
        # silo split: each system owns one GPU card and one server
        refs = submit_mixed(rt, gpus[:1], cpus[:1], "analytics")
        refs += submit_mixed(rt, gpus[1:], cpus[1:], "ml")
    rt.get(refs)
    makespan = rt.sim.now
    gpu_util = sum(
        cluster.device(d).utilization(makespan) for d in gpus
    ) / len(gpus)
    return makespan, gpu_util


def test_e16_silo_vs_pool(benchmark):
    def both():
        return run_deployment(pooled=False), run_deployment(pooled=True)

    (t_silo, util_silo), (t_pool, util_pool) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    table = ResultTable(
        "E16: two data systems, same hardware, two deployments",
        ["deployment", "makespan", "mean GPU utilization"],
    )
    table.add_row("computing silos", fmt_seconds(t_silo), f"{util_silo:.1%}")
    table.add_row("shared disaggregated pool", fmt_seconds(t_pool), f"{util_pool:.1%}")
    table.show()

    # pooling borrows the other system's idle devices:
    assert t_pool < t_silo
    assert util_pool > util_silo
