"""E7 — cross-domain graph-level op fusion (§2.2's IR benefit).

"A common IR enables graph-level optimizations such as op-fusing across
application domains, in contrast to being confined within one domain."

Ablation: the same SQL query (whose plan mixes several elementwise df
stages) run through Skadi with IR+graph optimization on vs. off, over the
same cluster.  Fusion must reduce task count, materialized intermediates,
and bytes moved — with identical answers.
"""

from __future__ import annotations

import numpy as np

from repro import Skadi
from repro.bench import ResultTable, fmt_bytes, fmt_seconds, orders_table

QUERY = (
    "SELECT oid, amount * qty AS revenue, amount * qty * 0.07 AS tax "
    "FROM orders WHERE amount > 10 AND qty > 2"
)


def run(optimized: bool):
    orders = orders_table(50_000, seed=21)
    skadi = Skadi(shards=4, optimize_ir=optimized, optimize_graph=optimized)
    out = skadi.sql(QUERY, {"orders": orders})
    report = skadi.last_report
    return out, report


def test_e7_fusion_ablation(benchmark):
    def both():
        return run(False), run(True)

    (out_plain, rep_plain), (out_fused, rep_fused) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    table = ResultTable(
        "E7: op fusion ablation (filter + 2 derived projections, 4 shards)",
        ["config", "graph vertices", "physical tasks", "bytes moved", "virtual time"],
    )
    table.add_row(
        "unfused",
        rep_plain.graph_vertices,
        rep_plain.physical_tasks,
        fmt_bytes(rep_plain.bytes_moved),
        fmt_seconds(rep_plain.sim_seconds),
    )
    table.add_row(
        "fused (IR + graph rules)",
        rep_fused.graph_vertices,
        rep_fused.physical_tasks,
        fmt_bytes(rep_fused.bytes_moved),
        fmt_seconds(rep_fused.sim_seconds),
    )
    table.show()

    # identical answers
    assert out_plain.num_rows == out_fused.num_rows
    np.testing.assert_allclose(
        np.sort(out_plain.column("revenue")), np.sort(out_fused.column("revenue"))
    )
    # fusion collapses the elementwise stages
    assert rep_fused.graph_vertices < rep_plain.graph_vertices
    assert rep_fused.physical_tasks < rep_plain.physical_tasks
    # fewer materialized intermediates -> less data over the wire
    assert rep_fused.bytes_moved <= rep_plain.bytes_moved
    assert rep_fused.sim_seconds < rep_plain.sim_seconds
