"""E4 — futures untie systems in an integrated pipeline (§1 benefit (3)).

"It unties data systems within an integrated pipeline using futures, thus
enabling pipeline parallelism across system boundaries.  Also, it can
reduce the number of trips to durable storage."

Workload: a two-system pipeline (a data-processing system producing K
shard outputs, feeding an ML system that consumes each shard), run two
ways on the *same* cluster model:

* staged (Figure 1b): system boundaries synchronize through durable
  storage — the ML system starts only after DP finishes writing all
  shards, and reads them back from durable storage.
* pipelined (Skadi): DP shard outputs are futures in the caching layer;
  each ML task starts as soon as its input shard future resolves.
"""

from __future__ import annotations

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import MB, DurableStore, build_physical_disagg
from repro.runtime import (
    ANY_COMPUTE_KIND,
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
)

K = 8  # shards
DP_COST = 10e-3  # CPU-seconds per DP shard task
ML_COST = 10e-3  # CPU-seconds per ML shard task
SHARD_BYTES = 8 * MB


def run_staged() -> float:
    cluster = build_physical_disagg()
    rt = ServerlessRuntime(cluster, RuntimeConfig(resolution=ResolutionMode.PUSH))
    durable = DurableStore(cluster.sim)

    dp_refs = [
        rt.submit(
            lambda i=i: i,
            compute_cost=DP_COST,
            output_nbytes=SHARD_BYTES,
            name=f"dp{i}",
        )
        for i in range(K)
    ]
    rt.get(dp_refs)  # DP system drains completely

    # cross-system hand-off via durable storage: write all, read all
    sim = cluster.sim

    def handoff():
        for i in range(K):
            yield durable.put(f"shard{i}", i, SHARD_BYTES)
        for i in range(K):
            yield durable.get(f"shard{i}")

    sim.run_until_complete(sim.process(handoff()))

    ml_refs = [
        rt.submit(
            lambda i=i: i * i,
            compute_cost=ML_COST,
            supported_kinds=ANY_COMPUTE_KIND,
            name=f"ml{i}",
        )
        for i in range(K)
    ]
    rt.get(ml_refs)
    return cluster.sim.now, durable.stats.round_trips


def run_pipelined() -> float:
    cluster = build_physical_disagg()
    rt = ServerlessRuntime(cluster, RuntimeConfig(resolution=ResolutionMode.PUSH))
    ml_refs = []
    for i in range(K):
        dp = rt.submit(
            lambda i=i: i,
            compute_cost=DP_COST,
            output_nbytes=SHARD_BYTES,
            name=f"dp{i}",
        )
        # the future crosses the system boundary directly
        ml_refs.append(
            rt.submit(
                lambda x: x * x,
                (dp,),
                compute_cost=ML_COST,
                supported_kinds=ANY_COMPUTE_KIND,
                name=f"ml{i}",
            )
        )
    values = rt.get(ml_refs)
    assert values == [i * i for i in range(K)]
    return cluster.sim.now, 0


def test_e4_pipeline_parallelism(benchmark):
    def both():
        return run_staged(), run_pipelined()

    (t_staged, trips_staged), (t_pipe, trips_pipe) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    table = ResultTable(
        f"E4: DP -> ML integrated pipeline, {K} shards",
        ["hand-off", "makespan", "durable round-trips"],
    )
    table.add_row("staged via durable storage", fmt_seconds(t_staged), trips_staged)
    table.add_row("pipelined via futures", fmt_seconds(t_pipe), trips_pipe)
    table.show()

    # pipelining overlaps the two systems and kills the durable bounce
    assert t_pipe < t_staged / 1.5
    assert trips_pipe == 0
    assert trips_staged == 2 * K
