"""E11 — MPMD pipeline parallelism on a tightly-coupled cluster (§1, §2.3).

The paper's second trend: "giant model training has evolved from using
SPMD to MPMD over multiple highly-specialized clusters", and the runtime
must host "the specialized MPMD pattern in giant model training".

A GPipe-style 4-stage model on 4 tightly-coupled GPUs: sweeping the
microbatch count amortizes the pipeline bubble (idle fraction
(S-1)/(M+S-1)), so epoch time falls toward the ideal while the learned
weights stay bit-identical to serial training.
"""

from __future__ import annotations

import numpy as np

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import build_tightly_coupled
from repro.frontends.mpmd import PipelineParallelTrainer, serial_reference_training
from repro.runtime import ServerlessRuntime

DIMS = (8, 16, 16, 1)  # 3 stages... plus one more below
STAGES = len(DIMS) - 1
STAGE_COST = 0.08
MICROBATCHES = [1, 2, 4, 8, 16]


def epoch_time(X, y, microbatches: int):
    rt = ServerlessRuntime(build_tightly_coupled(n_accel=STAGES))
    trainer = PipelineParallelTrainer(
        rt, DIMS, lr=0.02, seed=7, stage_cost=STAGE_COST
    )
    trainer.train_epoch(X, y, microbatches=microbatches)
    return rt.sim.now, trainer.weights()


def test_e11_pipeline_bubble_amortization(benchmark):
    rng = np.random.default_rng(11)
    X = rng.standard_normal((128, DIMS[0]))
    y = rng.standard_normal(128)

    def sweep():
        return [(m, *epoch_time(X, y, m)) for m in MICROBATCHES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ResultTable(
        f"E11: {STAGES}-stage GPipe epoch on tightly-coupled GPUs",
        ["microbatches", "epoch time", "vs M=1", "bubble bound (S-1)/(M+S-1)"],
    )
    t1 = rows[0][1]
    for m, t, _w in rows:
        table.add_row(
            m,
            fmt_seconds(t),
            f"{t1 / t:.2f}x",
            f"{(STAGES - 1) / (m + STAGES - 1):.2f}",
        )
    table.show()

    times = [t for _, t, _ in rows]
    # epoch time decreases monotonically with microbatch count...
    assert times == sorted(times, reverse=True)
    assert times[-1] < times[0] / 1.5
    # ...while the math never changes (GPipe gradient accumulation)
    ref = serial_reference_training(DIMS, X, y, epochs=1, lr=0.02, seed=7)
    for _, _, weights in rows:
        for W_dist, W_ref in zip(weights, ref, strict=False):
            np.testing.assert_allclose(W_dist, W_ref)
