"""E3 — the shared columnar format vs. marshalling (§1 benefit (2)).

"A shared format such as Arrow enables functions running on heterogeneous
devices to exchange data without costly data marshalling, hence reducing
the cost paid per transfer."

Measured on real wall-clock time (this is an actual CPU cost, not a model):
serialize+deserialize a batch row-pickled vs. as raw column buffers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import ResultTable, fmt_bytes
from repro.caching import (
    RecordBatch,
    deserialize_columnar,
    deserialize_marshalled,
    serialize_columnar,
    serialize_marshalled,
)

ROW_COUNTS = [1_000, 10_000, 100_000, 1_000_000]


def make_batch(rows: int) -> RecordBatch:
    rng = np.random.default_rng(rows)
    return RecordBatch.from_arrays(
        {
            "k": rng.integers(0, 1000, rows),
            "a": rng.random(rows),
            "b": rng.random(rows),
            "c": rng.integers(0, 2, rows).astype(bool),
        }
    )


def round_trip_seconds(serialize, deserialize, batch, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        wire = serialize(batch)
        out = deserialize(wire)
        best = min(best, time.perf_counter() - t0)
    assert out.num_rows == batch.num_rows
    return best


def test_e3_shared_format_vs_marshalling(benchmark):
    def sweep():
        rows = []
        for n in ROW_COUNTS:
            batch = make_batch(n)
            t_col = round_trip_seconds(serialize_columnar, deserialize_columnar, batch)
            t_marsh = round_trip_seconds(
                serialize_marshalled, deserialize_marshalled, batch
            )
            rows.append((n, batch.nbytes, t_col, t_marsh))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ResultTable(
        "E3: exchange cost per transfer (wall clock, round trip)",
        ["rows", "payload", "columnar", "marshalled", "marshalling tax"],
    )
    for n, nbytes, t_col, t_marsh in rows:
        table.add_row(
            n,
            fmt_bytes(nbytes),
            f"{t_col * 1e3:.3f} ms",
            f"{t_marsh * 1e3:.3f} ms",
            f"{t_marsh / t_col:.1f}x",
        )
    table.show()

    taxes = [t_marsh / t_col for _, _, t_col, t_marsh in rows]
    # marshalling costs grow with row count; the shared format's do not
    # (buffer wrap): by 100k rows the tax exceeds 10x
    assert taxes[-2] > 10
    assert taxes[-1] > 10
    # columnar round-trip stays sub-linear-ish: 1M rows under 100ms
    assert rows[-1][2] < 0.1
