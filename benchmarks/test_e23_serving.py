"""E23 — serving: tail latency vs. offered load, multi-tenant frontend (§2.4).

The question: when "millions of users" hit the single-driver runtime
open-loop, what happens to the *tail*?  A naive pass-through frontend
(every request's DAG submitted the instant it arrives) has no defense at
or past saturation: a transient trigger — a 2x arrival spike landing on a
briefly-slowed device, E22's recipe expressed as serving *requests* —
pushes attempts into timeout range, and the retry storm stacked on an
undiminished open-loop stream turns overload into outright request
failures long after the trigger has passed.

The serving frontend holds the tail instead: pacing bounds how much work
is in the runtime at once, the bounded waiting room sheds the excess at
the door in weighted-fair order, SLO deadlines ride into the runtime's
deadline propagation, and admission control + retry budgets underneath
catch whatever still leaks through.

Scenario: one 16-slot CPU server (~800 tasks/s at the 2e-2 task cost; the
stock template mix averages 2 tasks/request, so ~400 req/s of capacity).
A seeded Poisson request stream is offered at 70% / 100% / 130% of that
for 0.5 s.  The >= 100% points add the metastability trigger: a 2x-
capacity request spike for 0.15 s (a chaos ``LoadBurst`` record played
through the workload generator — the serving and chaos layers share one
arrival vocabulary) plus a 4x device slowdown for 0.10 s.  The on-config
is additionally swept across three tenant-population sizes (10k / 100k /
1M — the registry mints tenants lazily, so a million-tenant namespace
costs only what it touches).

* **switches off**: the >= 100% points go metastable — most requests die
  in the retry storm (or the tail runs away past 100x p50) and the drain
  outlives the trigger by seconds;
* **serving + admission on**: p999 stays within 10x p50 at every load
  point and every population size, with (near-)zero failed requests.

Numbers land in ``BENCH_E23.json`` for the perf trajectory.
"""

from __future__ import annotations

import json
import math
import os

from repro.bench import ResultTable
from repro.chaos import ChaosMonkey, ChaosSchedule
from repro.chaos.events import LoadBurst
from repro.cluster import build_serverful
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime
from repro.serving import ServingFrontend, TenantRegistry, WorkloadGenerator

SEED = 23
TASK_COST = 2e-2  # 16 slots / 2e-2 s => ~800 tasks/s of task capacity
CAPACITY_REQ_S = 400.0  # stock template mix averages 2 tasks per request
DURATION = 0.5
LOAD_POINTS = (0.7, 1.0, 1.3)  # fraction of request capacity offered
POPULATIONS = (10_000, 100_000, 1_000_000)
SPIKE_REQS = 120  # 800 req/s for 0.15 s: 2x capacity on top of the steady load

# pacing at 8 requests (~16 tasks, one slot-wave) keeps the runtime's own
# queues shallow, so overload is absorbed by the frontend's waiting room —
# shed in weighted-fair order — rather than amplified into a retry storm.
SERVING_SWITCHES = dict(
    serving_fair_queueing=True,
    serving_tenant_isolation=True,
    serving_slo_deadlines=True,
    serving_max_inflight=8,
    serving_queue_depth=32,
    admission_control=True,
    admission_queue_depth=16,
    retry_budget=True,
    retry_budget_ratio=0.1,
    retry_budget_cap=20.0,
)


def run_serving(
    load: float, trigger: bool, n_tenants: int = POPULATIONS[0], **overrides
):
    """Offer ``load`` x capacity to one server through the frontend,
    optionally with the E22 metastability trigger (spike + straggler)."""
    rt = ServerlessRuntime(
        build_serverful(n_servers=1),
        RuntimeConfig(
            resolution=ResolutionMode.PULL,
            task_timeout=0.08,
            max_retries=8,
            retry_backoff_base=5e-3,
            **overrides,
        ),
    )
    bursts = (
        (LoadBurst(0.30, n_tasks=SPIKE_REQS, duration=0.15, seed=SEED + 1),)
        if trigger
        else ()
    )
    tenants = TenantRegistry(n_tenants)
    workload = WorkloadGenerator(
        tenants, rate=load * CAPACITY_REQ_S, duration=DURATION, seed=SEED,
        bursts=bursts,
    )
    fe = ServingFrontend(rt, tenants).play(workload.requests())
    if trigger:
        schedule = ChaosSchedule().slow_device(0.31, "server0/cpu", 4.0, duration=0.10)
        ChaosMonkey(rt, schedule).arm()
    rt.sim.run()
    return fe


def tail_ratio(pcts: dict) -> float:
    if not pcts["p50"] or math.isnan(pcts["p50"]):
        return float("nan")
    return pcts["p999"] / pcts["p50"]


def test_e23_serving():
    table = ResultTable(
        "E23: tail latency vs. offered load — pass-through vs. serving frontend",
        ["scenario", "offered", "ok/failed/shed", "p50", "p99", "p999", "p999/p50"],
    )
    results = {
        "experiment": "E23",
        "capacity_req_per_s": CAPACITY_REQ_S,
        "duration_s": DURATION,
        "seed": SEED,
        "loads": [],
        "populations": [],
    }

    by_load = {}
    for load in LOAD_POINTS:
        trigger = load >= 1.0
        off = run_serving(load, trigger)
        on = run_serving(load, trigger, **SERVING_SWITCHES)
        by_load[load] = (off, on)
        suffix = "+trigger" if trigger else ""
        for label, fe in (("off", off), ("on", on)):
            pcts = fe.latency_percentiles()
            table.add_row(
                f"{load:.0%}{suffix}, {label}",
                fe.offered,
                f"{fe.completed}/{fe.failed}/{sum(fe.shed.values())}",
                f"{pcts['p50'] * 1e3:.1f}ms",
                f"{pcts['p99'] * 1e3:.1f}ms",
                f"{pcts['p999'] * 1e3:.1f}ms",
                f"{tail_ratio(pcts):.1f}x",
            )
        off_p, on_p = off.latency_percentiles(), on.latency_percentiles()
        results["loads"].append(
            {
                "offered_ratio": load,
                "rate_req_per_s": load * CAPACITY_REQ_S,
                "trigger": trigger,
                "off": {
                    **off_p,
                    "offered": off.offered,
                    "completed": off.completed,
                    "failed": off.failed,
                    "shed": sum(off.shed.values()),
                    "drain_ends": off.rt.sim.now,
                },
                "on": {
                    **on_p,
                    "offered": on.offered,
                    "completed": on.completed,
                    "failed": on.failed,
                    "shed": sum(on.shed.values()),
                    "drain_ends": on.rt.sim.now,
                },
            }
        )

    # population sweep: the overload point, serving on, 10k -> 1M tenants
    for n_tenants in POPULATIONS:
        load = LOAD_POINTS[-1]
        fe = (
            by_load[load][1]
            if n_tenants == POPULATIONS[0]
            else run_serving(load, True, n_tenants=n_tenants, **SERVING_SWITCHES)
        )
        pcts = fe.latency_percentiles()
        table.add_row(
            f"{n_tenants:,} tenants, on",
            fe.offered,
            f"{fe.completed}/{fe.failed}/{sum(fe.shed.values())}",
            f"{pcts['p50'] * 1e3:.1f}ms",
            f"{pcts['p99'] * 1e3:.1f}ms",
            f"{pcts['p999'] * 1e3:.1f}ms",
            f"{tail_ratio(pcts):.1f}x",
        )
        results["populations"].append(
            {
                "n_tenants": n_tenants,
                "tenants_touched": fe.tenants.touched,
                **pcts,
                "offered": fe.offered,
                "shed": sum(fe.shed.values()),
            }
        )
        # the tail holds at every population size
        assert tail_ratio(pcts) <= 10.0, (
            f"{n_tenants} tenants: p999 {pcts['p999']:.3f}s vs p50 "
            f"{pcts['p50']:.3f}s"
        )

    table.show()

    for load in LOAD_POINTS:
        off, on = by_load[load]
        on_p = on.latency_percentiles()
        # the frontend holds the tail at every load point...
        assert tail_ratio(on_p) <= 10.0, (
            f"{load:.0%} load: serving p999/p50 = {tail_ratio(on_p):.1f}x"
        )
        if load >= 1.0:
            # ...where the pass-through goes metastable: the retry storm
            # kills requests outright, or the tail runs away
            off_p = off.latency_percentiles()
            assert off.failed > 0 or tail_ratio(off_p) > 100.0, (
                f"{load:.0%} load: expected metastable pass-through, got "
                f"failed={off.failed}, p999/p50={tail_ratio(off_p):.1f}x"
            )
            # overload defense actually engaged, not just lucky timing...
            assert sum(on.shed.values()) > 0
            # ...and admitted requests survive what killed the pass-through
            assert on.failed <= on.offered * 0.05
            # the off drain outlives the trigger; the on drain does not
            assert off.rt.sim.now > on.rt.sim.now + 1.0

    artifacts = os.environ.get("BENCH_ARTIFACTS")
    out_dir = artifacts or os.path.join(os.path.dirname(__file__), "baselines")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "BENCH_E23.json"), "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
