"""E12 — checkpointing as a third point in the fault-tolerance space.

Extends E5: §2.1 weighs lineage against reliable caching; checkpointing
intermediate outputs to durable storage (lineage-stash style) sits between
them — bounded replay for a bounded durable-write cost.  We sweep the
checkpoint interval on a fixed-depth chain and chart forward overhead vs.
recovery time.
"""

from __future__ import annotations

from typing import Optional

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import MB, DeviceKind, DurableStore, build_physical_disagg
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime

DEPTH = 16
TASK_COST = 5e-3
OUTPUT_BYTES = 1 * MB
INTERVALS = [None, 8, 4, 2]  # None = pure lineage


def run_chain(checkpoint_every: Optional[int]):
    cluster = build_physical_disagg()
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(resolution=ResolutionMode.PULL),
        durable_store=DurableStore(cluster.sim),
    )
    cpu = cluster.node("server0").first_of_kind(DeviceKind.CPU)
    ref = rt.submit(
        lambda: 0,
        compute_cost=TASK_COST,
        output_nbytes=OUTPUT_BYTES,
        pinned_device=cpu.device_id,
    )
    for i in range(1, DEPTH):
        ref = rt.submit(
            lambda x: x + 1,
            (ref,),
            compute_cost=TASK_COST,
            output_nbytes=OUTPUT_BYTES,
            pinned_device=cpu.device_id,
        )
        last = i == DEPTH - 1
        if checkpoint_every is not None and (i + 1) % checkpoint_every == 0 and not last:
            rt.get(ref)
            rt.checkpoint(ref)
    assert rt.get(ref) == DEPTH - 1
    forward_time = rt.sim.now

    rt.fail_node("server0")
    rt.restart_node("server0")
    assert rt.get(ref) == DEPTH - 1
    recovery_time = rt.sim.now - forward_time
    return forward_time, recovery_time, rt.lineage.replays


def test_e12_checkpoint_interval_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: [(iv, *run_chain(iv)) for iv in INTERVALS], rounds=1, iterations=1
    )

    table = ResultTable(
        f"E12: depth-{DEPTH} chain, checkpoint-interval sweep",
        ["checkpoint every", "forward time", "recovery time", "tasks replayed"],
    )
    for interval, fwd, rec, replays in rows:
        table.add_row(
            "never (lineage)" if interval is None else f"{interval} tasks",
            fmt_seconds(fwd),
            fmt_seconds(rec),
            replays,
        )
    table.show()

    forward = [r[1] for r in rows]
    recovery = [r[2] for r in rows]
    replays = [r[3] for r in rows]
    # denser checkpoints: slower forward path (durable writes) ...
    assert forward == sorted(forward)
    # ... but strictly cheaper recovery (bounded replay)
    assert recovery == sorted(recovery, reverse=True)
    assert replays == sorted(replays, reverse=True)
    assert replays[0] == DEPTH  # pure lineage replays everything
    assert replays[-1] < DEPTH // 4
