"""F2 — Figure 2: the full lowering pipeline, end to end.

SQL declaration -> relational IR -> df lowering + passes -> FlowGraph ->
physical sharded graph -> task launch over the disaggregated cluster; plus
the figure's D -> D1(gpu)/D2(fpga) dual lowering of one hardware-agnostic
vertex, executed on real GPU and FPGA device models for a direct
comparison.
"""

from __future__ import annotations

import numpy as np

from repro import Skadi
from repro.bench import ResultTable, fmt_seconds, lineitem_like_table
from repro.caching import RecordBatch
from repro.cluster import build_physical_disagg, DeviceKind
from repro.flowgraph import FlowGraph, collect_sink, launch_physical_graph, to_physical
from repro.ir import Builder, FrameType, col
from repro.runtime import ServerlessRuntime

QUERY = (
    "SELECT l_returnflag, SUM(l_extendedprice) AS revenue, COUNT(*) AS n "
    "FROM lineitem WHERE l_discount < 0.05 GROUP BY l_returnflag "
    "ORDER BY l_returnflag"
)


def run_pipeline():
    lineitem = lineitem_like_table(20_000, seed=11)
    skadi = Skadi(shards=4)
    out = skadi.sql(QUERY, {"lineitem": lineitem})
    return lineitem, skadi, out


def test_fig2_sql_through_all_tiers(benchmark):
    lineitem, skadi, out = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    report = skadi.last_report

    table = ResultTable(
        "Figure 2: lowering pipeline stages",
        ["stage", "artifact"],
    )
    table.add_row("declarative", QUERY.split(" FROM")[0] + " ...")
    table.add_row("logical IR ops", sum(1 for l in report.ir_text.splitlines() if "=" in l))
    table.add_row("lowered df ops", sum(1 for l in report.lowered_text.splitlines() if "=" in l))
    table.add_row("flowgraph vertices", report.graph_vertices)
    table.add_row("physical tasks", report.physical_tasks)
    table.add_row("virtual job time", fmt_seconds(report.sim_seconds))
    table.show()

    # every tier actually ran
    assert "relational.scan" in report.ir_text
    assert "df." in report.lowered_text or "kernel.fused" in report.lowered_text
    assert report.graph_vertices >= 3
    assert report.physical_tasks > report.graph_vertices  # sharding happened

    # and the answer is right
    mask = lineitem.column("l_discount") < 0.05
    flags = lineitem.column("l_returnflag")[mask]
    prices = lineitem.column("l_extendedprice")[mask]
    for flag, revenue, n in zip(
        out.column("l_returnflag").tolist(),
        out.column("revenue").tolist(),
        out.column("n").tolist(),
        strict=False,
    ):
        sel = flags == flag
        assert n == int(sel.sum())
        assert abs(revenue - prices[sel].sum()) < 1e-6 * max(1.0, prices[sel].sum())


def test_fig2_dual_backend_vertex(benchmark):
    """The MLIR-based vertex D lowered onto GPU (D1) and FPGA (D2)."""

    def build_and_run():
        rng = np.random.default_rng(7)
        t = RecordBatch.from_arrays(
            {"k": rng.integers(0, 100, 50_000), "x": rng.random(50_000)}
        )
        cluster = build_physical_disagg()
        gpu = cluster.devices_of_kind(DeviceKind.GPU)[0]
        fpga = cluster.devices_of_kind(DeviceKind.FPGA)[0]

        def make_d():
            b = Builder("D")
            p = b.add_param("in", FrameType((("k", "int64"), ("x", "float64"))))
            out = b.emit(
                "df",
                "select",
                [p],
                {"columns": ("k",), "derived": (("y", col("x") * 3 + 1, "float64"),)},
            )
            return b.ret(out.result())

        graph = FlowGraph("fig2-D")
        src = graph.add_vertex("B", source_table="t", parallelism=2)
        d = graph.add_vertex("D", ir_func=make_d(), parallelism=2, compute_cost=2e-3)
        graph.add_edge(src, d)
        pgraph = to_physical(
            graph, device_pins={d.vertex_id: [gpu.device_id, fpga.device_id]}
        )
        rt = ServerlessRuntime(cluster)
        outs = launch_physical_graph(rt, pgraph, tables={"t": t})
        merged = collect_sink(rt, outs, d)
        timelines = {tl.name: tl for tl in rt.timelines}
        return t, merged, timelines, gpu, fpga

    t, merged, timelines, gpu, fpga = benchmark.pedantic(
        build_and_run, rounds=1, iterations=1
    )

    d1 = timelines["D[0/2]"]
    d2 = timelines["D[1/2]"]
    assert d1.device_id == gpu.device_id  # D1 ran on the GPU
    assert d2.device_id == fpga.device_id  # D2 ran on the FPGA

    table = ResultTable("Figure 2: D lowered to two backends", ["variant", "device", "exec time"])
    table.add_row("D1", d1.device_id, fmt_seconds(d1.finished - d1.started))
    table.add_row("D2", d2.device_id, fmt_seconds(d2.finished - d2.started))
    table.show()

    # same op, directly comparable: the faster device wins on compute time
    assert (d1.finished - d1.started) < (d2.finished - d2.started)
    # and the fused result is still correct
    np.testing.assert_allclose(
        np.sort(merged.column("y")), np.sort(t.column("x") * 3 + 1)
    )
