"""E1 — pull- vs push-based future resolution (§2.3.2).

"Ray's future resolution uses a pull-based model in which the consumer
pulls data from the producer on demand.  This creates long stalls for
short-lived ops."  Same generation (Gen-2 device raylets), only the
resolution protocol differs; producer/consumer pairs live on different
cards so resolution always crosses the fabric.
"""

from __future__ import annotations

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import DeviceKind, build_physical_disagg
from repro.runtime import (
    Generation,
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
)

DURATIONS = [1e-5, 1e-4, 1e-3, 1e-2]
PAIRS = 8
PAYLOAD = 64 * 1024


def producer_consumer_pairs(resolution: ResolutionMode, op_cost: float):
    cluster = build_physical_disagg(n_gpu_cards=2, n_fpga_cards=2)
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(generation=Generation.GEN2, resolution=resolution),
    )
    fpgas = [d.device_id for d in cluster.devices_of_kind(DeviceKind.FPGA)]
    gpus = [d.device_id for d in cluster.devices_of_kind(DeviceKind.GPU)]
    consumers = []
    for i in range(PAIRS):
        producer = rt.submit(
            lambda i=i: i,
            compute_cost=op_cost,
            output_nbytes=PAYLOAD,
            pinned_device=fpgas[i % len(fpgas)],
            name=f"prod{i}",
        )
        consumers.append(
            rt.submit(
                lambda x: x * 2,
                (producer,),
                compute_cost=op_cost,
                pinned_device=gpus[i % len(gpus)],
                name=f"cons{i}",
            )
        )
    values = rt.get(consumers)
    assert values == [2 * i for i in range(PAIRS)]
    by_name = {t.name: t for t in rt.timelines}
    gaps = [
        by_name[f"cons{i}"].finished - by_name[f"prod{i}"].finished
        for i in range(PAIRS)
    ]
    return rt.sim.now, sum(gaps) / len(gaps), rt.control_messages


def test_e1_pull_vs_push(benchmark):
    def sweep():
        rows = []
        for cost in DURATIONS:
            t_pull, gap_pull, m_pull = producer_consumer_pairs(
                ResolutionMode.PULL, cost
            )
            t_push, gap_push, m_push = producer_consumer_pairs(
                ResolutionMode.PUSH, cost
            )
            rows.append((cost, t_pull, t_push, gap_pull, gap_push, m_pull, m_push))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ResultTable(
        f"E1: {PAIRS} producer->consumer pairs across cards (Gen-2)",
        [
            "op cost",
            "pull makespan",
            "push makespan",
            "pull hand-off",
            "push hand-off",
            "msgs pull",
            "msgs push",
        ],
    )
    for cost, t_pull, t_push, gap_pull, gap_push, m_pull, m_push in rows:
        table.add_row(
            fmt_seconds(cost),
            fmt_seconds(t_pull),
            fmt_seconds(t_push),
            fmt_seconds(gap_pull),
            fmt_seconds(gap_push),
            m_pull,
            m_push,
        )
    table.show()

    for _cost, t_pull, t_push, gap_pull, gap_push, m_pull, m_push in rows:
        # push always hands data off faster and with fewer control messages
        assert gap_push < gap_pull
        assert m_push < m_pull
        assert t_push <= t_pull
    # the *relative* advantage decays as op duration grows (crossover story)
    ratios = [r[1] / r[2] for r in rows]
    assert ratios[0] > ratios[-1]
    assert ratios[0] > 1.3  # clear win for short-lived ops
