"""E19 — Skadi-lint: static analysis is cheap, and it catches real hazards.

Two claims:

1. **Overhead** — running the whole analysis layer (collect-all verify +
   lint of the optimized IR, plus the plan sanitizer) adds less than 5% on
   top of building the plan itself (SQL -> relational opt -> lowering ->
   pass fixpoint -> FlowGraph -> physical), so it is cheap enough to leave
   on in every pipeline.
2. **Hazard detection** — after chaos kills a node mid-run (the E2-style
   shard cluster), a plan still pinned to the dead node's device is caught
   *statically* by ``Scheduler.sanitize_plan`` and refused in strict mode,
   instead of hanging at launch.
"""

from __future__ import annotations

import gc
import time

from repro.analysis import (
    DeviceView,
    PlanSanitizerError,
    lint_function,
    sanitize_plan,
    verify_function,
)
from repro.bench import ResultTable, fmt_seconds
from repro.caching.columnar import RecordBatch
from repro.cluster import DeviceKind, build_serverful
from repro.core.planner import ir_to_flowgraph
from repro.flowgraph.launch import launch_physical_graph
from repro.flowgraph.optimizer import optimize
from repro.flowgraph.physical import to_physical
from repro.frontends.sql.planner import sql_to_ir
from repro.ir.lowering import lower_relational_to_df
from repro.ir.passes import PassManager
from repro.ir.relational_passes import relational_optimizer
from repro.ir.types import FrameType
from repro.runtime import RuntimeConfig, ServerlessRuntime

import numpy as np

QUERY = """
SELECT a, SUM(b) AS s1, SUM(b * c) AS s2, SUM(b * (1 - c)) AS s3,
       SUM(b * (1 - c) * (1 + c)) AS s4, AVG(b) AS a1, AVG(c) AS a2,
       MIN(b) AS lo, MAX(c) AS hi, COUNT(*) AS n
FROM t WHERE a > 10 AND b > 0 AND c < 100
GROUP BY a ORDER BY a LIMIT 100
"""
CATALOG = {
    "t": FrameType((("a", "int64"), ("b", "float64"), ("c", "float64")))
}
SHARDS = 2
REPS = 25
ROUNDS = 6


def build_plan():
    """The full plan-build pipeline for the query, mirroring what
    ``Skadi._run_ir`` does before launch (including the IR renderings that
    go into every ``QueryReport``) — everything except execution."""
    func = sql_to_ir(QUERY, CATALOG)
    ir_text = func.to_text()
    PassManager(relational_optimizer()).run(func)
    lowered = lower_relational_to_df(func)
    PassManager().run(lowered)
    lowered_text = lowered.to_text()
    assert ir_text and lowered_text
    graph, _sink = ir_to_flowgraph(
        lowered, shards=SHARDS, table_rows={"t": 10_000}
    )
    optimize(graph)
    return lowered, to_physical(graph)


def analyze_plan(lowered, pgraph, devices):
    verify_function(lowered)
    lint_function(lowered)
    sanitize_plan(pgraph, devices=devices)


def test_e19_analysis_overhead(benchmark):
    # the scheduler holds one DeviceView across launches (rebuilt only when
    # the blacklist changes), so the benchmark reuses one the same way
    devices = DeviceView(build_serverful(n_servers=4).all_devices())

    def measured():
        analyze_plan(*build_plan(), devices)  # warm both code paths

        # timeit-style measurement: GC off inside the timed region, min over
        # rounds — scheduler and allocator noise only ever add time
        build_seconds = analysis_seconds = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(ROUNDS):
                start = time.perf_counter()
                plans = [build_plan() for _ in range(REPS)]
                build_seconds = min(build_seconds, time.perf_counter() - start)

                start = time.perf_counter()
                for lowered, pgraph in plans:
                    analyze_plan(lowered, pgraph, devices)
                analysis_seconds = min(
                    analysis_seconds, time.perf_counter() - start
                )
                del plans
                gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
        return build_seconds, analysis_seconds

    build_seconds, analysis_seconds = benchmark.pedantic(
        measured, rounds=1, iterations=1
    )
    overhead = analysis_seconds / build_seconds

    table = ResultTable(
        f"E19: analysis overhead over {REPS} plan builds ({SHARDS} shards)",
        ["stage", "time", "per plan"],
    )
    table.add_row(
        "plan build", fmt_seconds(build_seconds), fmt_seconds(build_seconds / REPS)
    )
    table.add_row(
        "verify + lint + sanitize",
        fmt_seconds(analysis_seconds),
        fmt_seconds(analysis_seconds / REPS),
    )
    table.add_row("overhead", f"{overhead * 100:.2f}%", "")
    table.show()

    assert overhead < 0.05, (
        f"analysis costs {overhead * 100:.1f}% of plan building (budget: 5%)"
    )


def test_e19_sanitizer_catches_chaos_placement_hazard(benchmark):
    def scenario():
        cluster = build_serverful(n_servers=4)
        runtime = ServerlessRuntime(cluster, RuntimeConfig(strict_plans=True))
        victim_cpu = cluster.node("server3").first_of_kind(DeviceKind.CPU)

        # a plan whose second stage is pinned to server3's CPU (a perfectly
        # good device at planning time)
        lowered, _ = build_plan()
        graph, _sink = ir_to_flowgraph(
            lowered, shards=1, table_rows={"t": 1_000}
        )
        pgraph = to_physical(
            graph,
            device_pins={graph.topological_order()[-1].vertex_id: [victim_cpu.device_id]},
        )
        clean = runtime.scheduler.sanitize_plan(pgraph)

        # chaos: the node dies; the failure path blacklists its devices
        runtime.fail_node("server3")
        after = runtime.scheduler.sanitize_plan(pgraph)

        table = RecordBatch.from_pydict(
            {"a": np.arange(100, dtype="int64"), "b": np.ones(100)}
        )
        refused = False
        try:
            launch_physical_graph(runtime, pgraph, tables={"t": table})
        except PlanSanitizerError:
            refused = True
        return clean, after, refused

    clean, after, refused = benchmark.pedantic(scenario, rounds=1, iterations=1)

    table = ResultTable(
        "E19: plan pinned to a node chaos kills mid-run",
        ["moment", "sanitizer verdict"],
    )
    table.add_row("before the crash", "clean" if clean.ok else "errors")
    table.add_row(
        "after the crash", ", ".join(after.codes()) if after else "clean"
    )
    table.add_row("strict launch", "refused" if refused else "allowed")
    table.show()

    assert clean.ok, clean.render()
    assert "pin-dead-device" in after.codes()
    assert refused
