"""F1 — Figure 1's three deployment models on one analytics job.

A 3-stage pipeline (ingest -> transform -> aggregate) moving S bytes
between stages, run three ways:

* (a) traditional serverful — a reserved server cluster; data moves
  directly between tasks; you pay for the whole fleet the whole time.
* (b) stateless serverless — functions "bounce data via durable cloud
  storage" (§1) and pay a cold start each, but bill only compute time.
* (c) distributed runtime (Skadi) — stateful serverless with the caching
  layer: futures carry data directly, pay-per-use billing.

Expected shape: (c) matches (a) on latency (no durable bounce) while
costing like (b); (b) pays the durable-storage tax in latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import MB, DurableStore, build_physical_disagg, build_serverful
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime

STAGE_COST = 5e-3  # CPU-seconds per stage
COLD_START = 0.05  # seconds per stateless function instantiation
N_SERVERS = 4
PRICE_PER_CPU_SECOND = 1.0  # relative cost units
# a reserved fleet is billed between jobs too; one job arrives per window
RESERVATION_WINDOW = 1.0  # seconds of fleet time billed per job


@dataclass
class ModelResult:
    latency: float
    cost: float


def run_serverful(nbytes: int) -> ModelResult:
    cluster = build_serverful(n_servers=N_SERVERS)
    rt = ServerlessRuntime(cluster, RuntimeConfig(resolution=ResolutionMode.PULL))
    a = rt.submit(lambda: b"", compute_cost=STAGE_COST, output_nbytes=nbytes, name="ingest")
    b = rt.submit(lambda x: x, (a,), compute_cost=STAGE_COST, output_nbytes=nbytes, name="transform")
    c = rt.submit(lambda x: len(x), (b,), compute_cost=STAGE_COST, name="aggregate")
    rt.get(c)
    latency = rt.sim.now
    # reservation: the whole fleet for the whole arrival window
    billed = max(latency, RESERVATION_WINDOW)
    return ModelResult(latency, N_SERVERS * billed * PRICE_PER_CPU_SECOND)


def run_stateless_serverless(nbytes: int) -> ModelResult:
    """Each function cold-starts, reads input from and writes output to
    durable storage (the Figure 1b data path)."""
    cluster = build_serverful(n_servers=N_SERVERS)
    sim = cluster.sim
    durable = DurableStore(sim)
    cpu = cluster.node("server0").first_of_kind_or_none = None  # not used
    device = cluster.node("server0").devices[0]

    def stage(read_key, write_key, write_bytes):
        def _run():
            yield sim.timeout(COLD_START)
            if read_key is not None:
                yield durable.get(read_key)
            yield device.execute(STAGE_COST)
            if write_key is not None:
                yield durable.put(write_key, b"", write_bytes)

        return sim.process(_run())

    def job():
        yield stage(None, "s1", nbytes)
        yield stage("s1", "s2", nbytes)
        yield stage("s2", None, 0)

    sim.run_until_complete(sim.process(job()))
    latency = sim.now
    compute_cost = 3 * (STAGE_COST + COLD_START) * PRICE_PER_CPU_SECOND
    return ModelResult(latency, compute_cost)


def run_distributed_runtime(nbytes: int) -> ModelResult:
    cluster = build_physical_disagg(n_servers=N_SERVERS)
    rt = ServerlessRuntime(cluster, RuntimeConfig(resolution=ResolutionMode.PUSH))
    a = rt.submit(lambda: b"", compute_cost=STAGE_COST, output_nbytes=nbytes, name="ingest")
    b = rt.submit(lambda x: x, (a,), compute_cost=STAGE_COST, output_nbytes=nbytes, name="transform")
    c = rt.submit(lambda x: len(x), (b,), compute_cost=STAGE_COST, name="aggregate")
    rt.get(c)
    latency = rt.sim.now
    return ModelResult(latency, 3 * STAGE_COST * PRICE_PER_CPU_SECOND)


def test_fig1_deployment_models(benchmark):
    sizes = [1 * MB, 4 * MB, 16 * MB, 64 * MB]
    table = ResultTable(
        "Figure 1: deployment models (3-stage pipeline)",
        ["intermediate size", "serverful lat", "stateless lat", "skadi lat",
         "serverful cost", "stateless cost", "skadi cost"],
    )

    def sweep():
        return [
            (
                nbytes,
                run_serverful(nbytes),
                run_stateless_serverless(nbytes),
                run_distributed_runtime(nbytes),
            )
            for nbytes in sizes
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for nbytes, serverful, stateless, skadi in results:
        table.add_row(
            f"{nbytes // MB} MiB",
            fmt_seconds(serverful.latency),
            fmt_seconds(stateless.latency),
            fmt_seconds(skadi.latency),
            f"{serverful.cost:.3f}",
            f"{stateless.cost:.3f}",
            f"{skadi.cost:.3f}",
        )
    table.show()

    for _nbytes, serverful, stateless, skadi in results:
        # the durable bounce dominates stateless latency
        assert skadi.latency < stateless.latency / 3
        # the distributed runtime stays within ~4x of dedicated servers
        # (it crosses the disaggregation fabric instead of a local bus)
        assert skadi.latency < serverful.latency * 4
        # pay-as-you-go: both serverless models far below reservation
        assert skadi.cost < serverful.cost / 10
        assert stateless.cost < serverful.cost
        # and Skadi does not pay the cold-start tax
        assert skadi.cost < stateless.cost
