"""E2 — data-centric scheduling (§1 req (b), §2.3 control plane).

"[the caching layer] decouples compute from states so compute (i.e.,
vertices) can be opportunistically migrated to where data reside to reduce
data transfer" and the control plane "embraces data-centric scheduling".

Workload: large shards resident on specific nodes; a map-like stage
consumes them.  Compute-centric (round-robin) placement ships the data;
data-centric (locality) placement ships the task.
"""

from __future__ import annotations

from repro.bench import ResultTable, fmt_bytes, fmt_seconds
from repro.cluster import MB, DeviceKind, build_serverful
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    SchedulingPolicy,
    ServerlessRuntime,
)

SHARD_BYTES = 64 * MB
N_SHARDS = 8


def run_job(policy: SchedulingPolicy):
    cluster = build_serverful(n_servers=4)
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(resolution=ResolutionMode.PULL, scheduling=policy),
    )
    cpus = [cluster.node(f"server{i}").first_of_kind(DeviceKind.CPU) for i in range(4)]
    # materialize big shards on servers 0 and 1 only, so a placement policy
    # that ignores data location will ship most shards across the network
    shard_refs = [
        rt.submit(
            lambda i=i: i,
            compute_cost=1e-4,
            output_nbytes=SHARD_BYTES,
            pinned_device=cpus[i % 2].device_id,
            name=f"load{i}",
        )
        for i in range(N_SHARDS)
    ]
    rt.get(shard_refs)
    baseline_bytes = rt.bytes_moved

    # map stage: one small task per shard, placement under test
    map_refs = [
        rt.submit(
            lambda x: x + 1,
            (shard_refs[i],),
            compute_cost=1e-3,
            supported_kinds=frozenset({DeviceKind.CPU}),
            name=f"map{i}",
        )
        for i in range(N_SHARDS)
    ]
    start = rt.sim.now
    rt.get(map_refs)
    return rt.bytes_moved - baseline_bytes, rt.sim.now - start


def test_e2_locality_vs_compute_centric(benchmark):
    def both():
        rr_bytes, rr_time = run_job(SchedulingPolicy.ROUND_ROBIN)
        loc_bytes, loc_time = run_job(SchedulingPolicy.LOCALITY)
        return rr_bytes, rr_time, loc_bytes, loc_time

    rr_bytes, rr_time, loc_bytes, loc_time = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    table = ResultTable(
        f"E2: map stage over {N_SHARDS} x {SHARD_BYTES // MB} MiB resident shards",
        ["policy", "bytes moved", "stage time"],
    )
    table.add_row("compute-centric (round-robin)", fmt_bytes(rr_bytes), fmt_seconds(rr_time))
    table.add_row("data-centric (locality)", fmt_bytes(loc_bytes), fmt_seconds(loc_time))
    table.show()

    # locality ships ~zero bytes; round-robin ships a large fraction of the
    # dataset across the network
    assert loc_bytes == 0
    assert rr_bytes >= 4 * SHARD_BYTES  # most shards cross nodes
    assert loc_time < rr_time / 5
