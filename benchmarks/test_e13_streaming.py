"""E13 — streaming as a hosted execution model (§1's model list).

The runtime must host streaming systems.  Two properties matter:

* micro-batch pipelining — batch t+1's early operators overlap batch t's
  later ones, so stream makespan beats the serial sum;
* stateful operators — window state crosses micro-batch (task) boundaries
  through the caching layer, with exactly the right emissions.
"""

from __future__ import annotations

import numpy as np

from repro.bench import ResultTable, fmt_seconds
from repro.caching import RecordBatch
from repro.cluster import build_physical_disagg
from repro.frontends.streaming import (
    FilterOp,
    StreamJob,
    WindowAggregate,
    micro_batches,
)
from repro.ir import col, lit
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime

N_BATCHES = 16
ROWS_PER_BATCH = 200
OP_COST = 1e-3
WINDOW = 4


def make_stream(seed=13):
    rng = np.random.default_rng(seed)
    n = N_BATCHES * ROWS_PER_BATCH
    table = RecordBatch.from_arrays(
        {"k": rng.integers(0, 4, n), "x": rng.random(n)}
    )
    return micro_batches(table, ROWS_PER_BATCH)


def make_job():
    return StreamJob(
        [
            FilterOp(pred=col("x") > lit(0.1)),
            WindowAggregate(keys=("k",), aggs=(("s", "sum", "x"),), window=WINDOW),
        ],
        op_cost=OP_COST,
    )


def run_pipelined():
    rt = ServerlessRuntime(
        build_physical_disagg(), RuntimeConfig(resolution=ResolutionMode.PUSH)
    )
    outputs = make_job().run(rt, make_stream())
    return rt.sim.now, outputs


def test_e13_streaming_pipeline(benchmark):
    (t_pipe, out_pipe) = benchmark.pedantic(run_pipelined, rounds=1, iterations=1)

    table = ResultTable(
        f"E13: {N_BATCHES} micro-batches x 2 operators ({OP_COST * 1e3:.0f} ms each)",
        ["execution", "stream makespan", "per-batch bound"],
    )
    serial_bound = N_BATCHES * 2 * OP_COST
    table.add_row("pipelined micro-batches", fmt_seconds(t_pipe), "")
    table.add_row("serial lower bound (sum of ops)", fmt_seconds(serial_bound), "")
    table.show()

    # 1. stateful correctness: exactly N/WINDOW windows close, matching the
    # single-process oracle
    local = make_job().run_local(make_stream())
    assert len(out_pipe) == len(local)
    for d, l in zip(out_pipe, local, strict=False):
        assert d == l
    closes = [o.num_rows > 0 for o in out_pipe]
    assert sum(closes) == N_BATCHES // WINDOW

    # 2. the dependency structure lets consecutive micro-batches overlap:
    # stream makespan sits below the fully-serial op-sum bound
    assert t_pipe < serial_bound
