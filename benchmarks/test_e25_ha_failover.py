"""E25 — control-plane HA: surviving a head kill, by replica count.

PRs 1-8 treated the head node — and the GCS riding on it — as immortal,
the classic single-point-of-failure a disaggregated control plane cannot
afford.  ``repro.runtime.ha`` replicates every control-plane mutation to
N standby server nodes as a write-ahead log; this experiment kills the
leader mid-workload (``ChaosSchedule.fail_gcs``) and measures what each
replica count buys:

* ``ha_replicas=0`` (the legacy config): the control plane dies with the
  head — every open task fails, the cluster is lost, the driver sees a
  :class:`TaskError`.  This is the baseline replication is measured
  against.
* ``ha_replicas>=1``: the standbys detect the sync silence, run the
  seeded election, replay the WAL, re-register the surviving raylets,
  and finish the workload with the **exact** answer.  The claims pinned
  here: zero READY objects whose bytes survived the head are lost, and
  the unavailability window is bounded by detection + election + replay
  — milliseconds — not by the workload.

The run is deterministic: the same seed and config replay the identical
event signature twice (the determinism witness below).
"""

from __future__ import annotations

import json
import os

from repro.bench import ResultTable, fmt_seconds
from repro.chaos import ChaosMonkey, ChaosSchedule
from repro.cluster import build_serverful
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime, TaskError

LANES = 8
DEPTH = 5
TASK_COST = 4e-3
KILL_AT = 10e-3  # mid-barrage: sources done, chains in flight
N_SERVERS = 5
REPLICA_SWEEP = (0, 1, 2, 3)

EXPECTED_TOTAL = sum(lane + DEPTH for lane in range(LANES))
UNAVAILABILITY_BOUND = 50e-3  # election + replay, with margin; not the workload


def run_failover(replicas: int):
    """One mid-workload head kill at the given replica count."""
    cluster = build_serverful(n_servers=N_SERVERS)
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(
            resolution=ResolutionMode.PULL,
            heartbeat_interval=1e-3,
            heartbeat_miss_threshold=3,
            max_retries=10,
            retry_backoff_base=2e-3,
            ha_replicas=replicas,
        ),
    )
    ChaosMonkey(rt, ChaosSchedule().fail_gcs(at=KILL_AT)).arm()
    lanes = []
    for lane in range(LANES):
        ref = rt.submit(lambda i=lane: i, name=f"src{lane}", compute_cost=TASK_COST)
        for d in range(DEPTH):
            ref = rt.submit(
                lambda x: x + 1, args=(ref,), name=f"l{lane}d{d}",
                compute_cost=TASK_COST,
            )
        lanes.append(ref)
    target = rt.submit(lambda *xs: sum(xs), args=tuple(lanes), name="sum")
    row = {"replicas": replicas}
    try:
        total = rt.get(target)
    except TaskError as exc:
        row.update(
            survived=False,
            answer=None,
            error=str(exc)[:120],
            tasks_failed=rt.tasks_failed,
        )
    else:
        ha = rt.ha
        assert ha is not None
        row.update(
            survived=True,
            answer=total,
            failovers=ha.failovers,
            epoch=ha.epoch,
            leader=ha.leader_node,
            unavailability_s=ha.last_unavailability,
            wal_records=len(ha.wal),
            ready_survivable=ha.last_failover_report["ready_survivable"],
            ready_lost=ha.last_failover_report["ready_lost"],
            stale_leases_fenced=int(
                rt.telemetry.registry.counter(
                    "skadi_ha_stale_leases_rejected_total",
                    "deposed-leader leases fenced at raylets",
                ).value
            ),
        )
    row["makespan_s"] = rt.sim.now
    row["signature"] = rt.log.signature()
    return row


def test_e25_ha_failover(benchmark):
    def sweep():
        rows = [run_failover(r) for r in REPLICA_SWEEP]
        # determinism witness: the flagship replicated run replays bit-for-bit
        witness = run_failover(2)
        return rows, witness

    rows, witness = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_replicas = {row["replicas"]: row for row in rows}

    table = ResultTable(
        "E25: head-node failover — mid-workload GCS kill, by replica count",
        ["replicas", "outcome", "answer", "unavailability", "READY lost"],
    )
    for row in rows:
        if row["survived"]:
            table.add_row(
                str(row["replicas"]),
                f"failover to {row['leader']} (epoch {row['epoch']})",
                str(row["answer"]),
                fmt_seconds(row["unavailability_s"]),
                f"{row['ready_lost']}/{row['ready_survivable']}",
            )
        else:
            table.add_row(
                str(row["replicas"]), "CLUSTER LOST", "-", "-", "-"
            )
    table.show()

    # the unreplicated baseline demonstrably cannot survive the kill
    baseline = by_replicas[0]
    assert not baseline["survived"]
    assert "control plane lost" in baseline["error"]
    # every replicated config survives with the exact answer and loses no
    # READY object whose bytes outlived the head
    for replicas in REPLICA_SWEEP[1:]:
        row = by_replicas[replicas]
        assert row["survived"], f"replicas={replicas} lost the cluster"
        assert row["answer"] == EXPECTED_TOTAL
        assert row["failovers"] == 1 and row["epoch"] == 2
        assert row["ready_lost"] == 0
        assert row["unavailability_s"] is not None
        assert row["unavailability_s"] < UNAVAILABILITY_BOUND
    # same seed, same config: the failover path is deterministic
    assert witness["signature"] == by_replicas[2]["signature"]
    assert witness["answer"] == by_replicas[2]["answer"]

    payload = {
        "experiment": "E25",
        "title": "Control-plane HA: head-node failover by replica count",
        "workload": {
            "lanes": LANES,
            "depth": DEPTH,
            "task_cost_s": TASK_COST,
            "kill_at_s": KILL_AT,
            "expected_total": EXPECTED_TOTAL,
        },
        "sweep": [
            {k: v for k, v in row.items() if k != "signature"} for row in rows
        ],
        "deterministic": witness["signature"] == by_replicas[2]["signature"],
    }
    artifacts = os.environ.get("BENCH_ARTIFACTS")
    out_dir = artifacts or os.path.join(os.path.dirname(__file__), "baselines")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "BENCH_E25.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
