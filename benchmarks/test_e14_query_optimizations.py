"""E14 — predefined query-optimization rules (§2.1 step 2).

Skadi "optimizes the graph using predefined rules".  Two classics, both of
which matter *more* under disaggregation because they shrink what crosses
the fabric:

* filter pushdown below joins — the shuffle moves filtered rows;
* broadcast joins — a small dimension table is replicated to the fact
  table's shards instead of hash-shuffling both sides.

Scheduling is round-robin here so shuffles really cross nodes (locality
would co-locate everything and hide the effect).
"""

from __future__ import annotations

import numpy as np

from repro import Skadi
from repro.bench import ResultTable, fmt_bytes, fmt_seconds
from repro.bench.workloads import customers_table, orders_table
from repro.runtime import RuntimeConfig, SchedulingPolicy

QUERY_PUSHDOWN = (
    "SELECT region, SUM(amount) AS total FROM orders "
    "JOIN customers ON cust = cid "
    "WHERE amount > 90 AND credit > 500 GROUP BY region ORDER BY region"
)
QUERY_JOIN = (
    "SELECT region, SUM(amount) AS total FROM orders "
    "JOIN customers ON cust = cid GROUP BY region ORDER BY region"
)


def run(query, *, optimize_ir=True, broadcast_threshold=0, n_orders=30_000):
    tables = {
        "orders": orders_table(n_orders, seed=14),
        "customers": customers_table(50, seed=15),
    }
    skadi = Skadi(
        config=RuntimeConfig(scheduling=SchedulingPolicy.ROUND_ROBIN),
        shards=4,
        optimize_ir=optimize_ir,
        broadcast_threshold=broadcast_threshold,
    )
    out = skadi.sql(query, tables)
    return out, skadi.last_report


def test_e14_filter_pushdown(benchmark):
    def both():
        return (
            run(QUERY_PUSHDOWN, optimize_ir=False),
            run(QUERY_PUSHDOWN, optimize_ir=True),
        )

    (out_plain, rep_plain), (out_opt, rep_opt) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    table = ResultTable(
        "E14a: filter pushdown below a join (30k fact rows, 4 shards)",
        ["plan", "bytes over fabric", "virtual time"],
    )
    table.add_row("filter above join", fmt_bytes(rep_plain.bytes_moved),
                  fmt_seconds(rep_plain.sim_seconds))
    table.add_row("filter pushed below join", fmt_bytes(rep_opt.bytes_moved),
                  fmt_seconds(rep_opt.sim_seconds))
    table.show()

    np.testing.assert_allclose(
        out_plain.column("total"), out_opt.column("total")
    )
    # the shuffle moves filtered rows: a large byte reduction
    assert rep_opt.bytes_moved < rep_plain.bytes_moved * 0.7


def test_e14_broadcast_vs_shuffle_join(benchmark):
    def both():
        return (
            run(QUERY_JOIN, broadcast_threshold=0),
            run(QUERY_JOIN, broadcast_threshold=5_000),
        )

    (out_shuffle, rep_shuffle), (out_bcast, rep_bcast) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    table = ResultTable(
        "E14b: join strategy (30k fact rows x 50-row dimension, 4 shards)",
        ["strategy", "bytes over fabric", "virtual time", "tasks"],
    )
    table.add_row("hash-shuffle both sides", fmt_bytes(rep_shuffle.bytes_moved),
                  fmt_seconds(rep_shuffle.sim_seconds), rep_shuffle.physical_tasks)
    table.add_row("broadcast small side", fmt_bytes(rep_bcast.bytes_moved),
                  fmt_seconds(rep_bcast.sim_seconds), rep_bcast.physical_tasks)
    table.show()

    np.testing.assert_allclose(
        out_shuffle.column("total"), out_bcast.column("total")
    )
    assert rep_bcast.bytes_moved < rep_shuffle.bytes_moved
    assert rep_bcast.physical_tasks < rep_shuffle.physical_tasks
    assert rep_bcast.sim_seconds < rep_shuffle.sim_seconds
