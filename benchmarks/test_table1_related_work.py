"""T1 — regenerate Table 1 (related-work comparison matrix).

Paper artifact: Table 1, 18 systems x 5 dimensions.  We regenerate the
table from structured data and check the claims the paper's text rests on.
"""

from __future__ import annotations

from repro.bench import RELATED_WORK, render_table1, skadi_unique_claim


def test_table1_regenerates(benchmark):
    table = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    table.show()

    # the table has exactly the paper's 18 systems, Skadi last
    assert len(table.rows) == 18
    assert table.rows[-1][0] == "Skadi"

    # the paper's implicit claim: Skadi is the only D-API + IR + stateful +
    # PhysDisagg + Integration system
    assert skadi_unique_claim()

    # column-level spot checks quoted in the text
    by_name = {r.name: r for r in RELATED_WORK}
    assert by_name["LegoOS"].phys_disagg and by_name["FractOS"].phys_disagg
    assert by_name["DAPHNE"].ir == "MLIR" and not by_name["DAPHNE"].phys_disagg
    posix = [r.name for r in RELATED_WORK if r.api == "POSIX"]
    assert posix == ["Dist. OS", "LegoOS"]
