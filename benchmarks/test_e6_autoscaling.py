"""E6 — serverless pay-as-you-go vs. reservation (§1's third principle).

"use serverless to lower costs"; requirement (a): "an easy programming
model that enjoys the pay-as-you-go model for all the computing power
used" — including DSAs, whose "auto-scaling is almost non-existent" in
commercial serverless.

Workload: a bursty trace (the serverless sweet spot) offered to a reserved
fleet sized for the burst, vs. an autoscaled pool.  Run twice: a "CPU
pool" and a "GPU pool" with a longer cold start (DSA autoscaling).
"""

from __future__ import annotations

from repro.bench import ResultTable, bursty_trace
from repro.cluster import Simulator
from repro.runtime.autoscaler import AutoscalingPool, ReservedPool, run_trace

BURSTS = 10
JOBS_PER_BURST = 20
INTERVAL = 120.0


def offered_trace(seed=0):
    return bursty_trace(
        bursts=BURSTS,
        jobs_per_burst=JOBS_PER_BURST,
        burst_interval=INTERVAL,
        duration_range=(0.5, 2.0),
        seed=seed,
    )


def run_pair(cold_start: float):
    jobs = offered_trace()
    sim_r = Simulator()
    reserved = run_trace(sim_r, ReservedPool(sim_r, size=JOBS_PER_BURST), jobs)
    sim_a = Simulator()
    auto = run_trace(
        sim_a,
        AutoscalingPool(
            sim_a,
            min_workers=1,
            max_workers=2 * JOBS_PER_BURST,
            cold_start=cold_start,
            idle_timeout=5.0,
        ),
        jobs,
    )
    return reserved, auto


def test_e6_autoscaling_vs_reservation(benchmark):
    def both():
        return run_pair(cold_start=0.5), run_pair(cold_start=5.0)

    (cpu_res, cpu_auto), (gpu_res, gpu_auto) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    table = ResultTable(
        f"E6: bursty trace ({BURSTS} bursts x {JOBS_PER_BURST} jobs)",
        [
            "pool",
            "provisioning",
            "worker-seconds",
            "utilization",
            "mean wait",
            "p-max wait",
        ],
    )
    for label, stats in [
        ("CPU", cpu_res),
        ("CPU", cpu_auto),
        ("DSA (5s cold start)", gpu_res),
        ("DSA (5s cold start)", gpu_auto),
    ]:
        kind = "reserved" if stats is cpu_res or stats is gpu_res else "autoscaled"
        table.add_row(
            label,
            kind,
            f"{stats.provisioned_seconds:.0f}",
            f"{stats.utilization:.1%}",
            f"{stats.mean_wait:.2f} s",
            f"{stats.max_wait:.2f} s",
        )
    table.show()

    for reserved, auto in [(cpu_res, cpu_auto), (gpu_res, gpu_auto)]:
        assert reserved.completed == auto.completed == BURSTS * JOBS_PER_BURST
        # pay-as-you-go: >= 5x cheaper at low duty cycle
        assert auto.provisioned_seconds < reserved.provisioned_seconds / 5
        assert auto.utilization > 5 * reserved.utilization
        # the price is bounded queueing, roughly the cold start per burst
        assert auto.mean_wait < 10.0
    # DSA autoscaling pays its longer cold start in wait time, not dollars
    assert gpu_auto.mean_wait > cpu_auto.mean_wait
    assert gpu_auto.provisioned_seconds < gpu_res.provisioned_seconds / 5
