"""E26 — simulator-core throughput: the rebuilt kernel vs. the frozen seed.

Every flagship experiment now bottoms out in ``repro.cluster.simtime``
(ROADMAP item 3: the event loop *is* the hardware), so this experiment
benchmarks the kernel itself.  Each workload kernel runs under every
feature stage so the wins are attributable:

* **seed** — the frozen pre-rebuild kernel (``repro.bench.legacy_simtime``):
  one binary heap, dataclass events, trampolined zero-delay hops;
* **heap** — the new kernel with every switch off (dispatch rewrite only);
* **bucket** — bucketed calendar queue replaces the single heap;
* **batch** — same-instant batching drains one timestamp per heap touch;
* **ring** — the microtask ring for zero-delay events plus inline
  resumption (the shipping default);
* **fastforward** — ring plus opt-in analytic idle fast-forward
  (``RuntimeConfig(sim_fast_forward=True)``), measured on wall clock
  because it removes events rather than dispatching them faster.

``run_kernel`` enforces the bit-for-bit witness internally: every exact
stage (seed included) must produce an identical execution checksum, and
fast-forward must preserve the model-visible trace.  Results land in
``BENCH_SIMCORE.json``; CI replays this at reduced scale and fails its
(non-blocking) step on a >20% events/sec regression vs. the committed
baseline.
"""

from __future__ import annotations

import json
import os

from repro.bench.simcore import render_table, run_benchmarks

# CI runners are slower and noisier than the baseline machine: a reduced
# scale keeps the step fast, and rate comparisons stay meaningful because
# every kernel's per-event cost is scale-invariant past ~0.25.
SCALE = float(os.environ.get("SIMCORE_SCALE", "0.5"))
REPEATS = int(os.environ.get("SIMCORE_REPEATS", "2"))


def test_e26_simcore_throughput():
    results = run_benchmarks(scale=SCALE, repeats=REPEATS)
    print(render_table(results))

    kernels = results["kernels"]
    # the tentpole: the full fast path is a multiple of the frozen seed on
    # the event-heavy loops (the committed scale-1.0 baseline shows >= 3x
    # on e17; the in-test bound is looser to absorb runner noise)
    assert kernels["e17_soak_loop"]["speedup_total"] >= 2.0
    assert kernels["e21_transfer_loop"]["speedup_total"] >= 2.0
    assert kernels["zero_delay_loop"]["speedup_total"] >= 2.0
    # every stage of every kernel actually executed events
    for name, k in kernels.items():
        for stage, r in k["stages"].items():
            assert r["events"] > 0, f"{name}/{stage} ran no events"
    # fast-forward actually jumped the idle-poll kernel and beat exact
    # simulation on wall clock
    idle_ff = kernels["idle_poll"]["stages"]["fastforward"]
    assert idle_ff["ff_jumps"] > 0
    assert idle_ff["wall_speedup_vs_ring"] > 1.0

    artifacts = os.environ.get("BENCH_ARTIFACTS")
    out_dir = artifacts or os.path.join(os.path.dirname(__file__), "baselines")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "BENCH_SIMCORE.json"), "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
