"""E15 — a TPC-H-flavoured query suite through the whole stack.

Regression harness for the SQL path end to end (Figure 2's pipeline under
four realistic query shapes): scan-heavy aggregation (Q1-like), selective
filter (Q6-like), join + group-by (Q3-like), and top-k (order/limit).
Every query's distributed answer is checked against the reference
interpreter; the table reports the physical shape and virtual cost.
"""

from __future__ import annotations

import numpy as np

from repro import Skadi
from repro.bench import ResultTable, fmt_bytes, fmt_seconds, lineitem_like_table
from repro.bench.workloads import customers_table, orders_table
from repro.frontends.sql import sql_to_ir
from repro.ir import FrameType, run_function

QUERIES = {
    "Q1-like (scan+agg)": (
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
        "SUM(l_extendedprice) AS sum_price, AVG(l_discount) AS avg_disc, "
        "COUNT(*) AS n FROM lineitem "
        "GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag"
    ),
    "Q6-like (selective filter)": (
        "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
        "WHERE l_discount BETWEEN 0.02 AND 0.04 AND l_quantity < 24"
    ),
    "Q3-like (join+group)": (
        "SELECT region, SUM(amount) AS revenue, COUNT(*) AS n FROM orders "
        "JOIN customers ON cust = cid WHERE amount > 10 "
        "GROUP BY region ORDER BY region"
    ),
    "top-k (sort+limit)": (
        "SELECT oid, amount FROM orders ORDER BY amount DESC LIMIT 10"
    ),
}


def tables_and_catalog():
    tables = {
        "lineitem": lineitem_like_table(30_000, seed=15),
        "orders": orders_table(20_000, seed=16),
        "customers": customers_table(100, seed=17),
    }
    catalog = {
        name: FrameType(
            tuple((f.name, f.dtype.name) for f in batch.schema.fields)
        )
        for name, batch in tables.items()
    }
    return tables, catalog


def test_e15_query_suite(benchmark):
    tables, catalog = tables_and_catalog()

    def run_suite():
        skadi = Skadi(shards=4)
        results = {}
        for name, sql in QUERIES.items():
            out = skadi.sql(sql, tables)
            results[name] = (out, skadi.last_report)
        return results

    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    table = ResultTable(
        "E15: query suite over the full stack (4 shards)",
        ["query", "rows out", "tasks", "bytes moved", "virtual time"],
    )
    for name, (out, report) in results.items():
        table.add_row(
            name,
            out.num_rows,
            report.physical_tasks,
            fmt_bytes(report.bytes_moved),
            fmt_seconds(report.sim_seconds),
        )
    table.show()

    # every distributed answer matches the reference interpreter
    for name, sql in QUERIES.items():
        (oracle,) = run_function(sql_to_ir(sql, catalog), tables=tables)
        got, _ = results[name]
        assert got.num_rows == oracle.num_rows, name
        assert got.schema == oracle.schema, name
        for column in got.schema.names:
            a, b = got.column(column), oracle.column(column)
            if a.dtype.kind == "f":
                np.testing.assert_allclose(a, b, rtol=1e-9, err_msg=name)
            else:
                np.testing.assert_array_equal(a, b, err_msg=name)
