"""E9 — the caching layer hides data location and movement (§2.1, Fig. 2
note 5).

"The caching layer has a simple KV API for memory on regular servers,
memory on heterogeneous devices, and disaggregated memory.  Crucially, the
caching layer can hide the location and movement of data."

Workload: a working set larger than HBM with a skewed (hot/cold) access
pattern.  Under the KV API nothing ever fails to resolve even though
objects migrate across HBM -> DRAM -> disaggregated memory; hot objects
gravitate to fast tiers, so the skewed access stream pays near-HBM prices.
"""

from __future__ import annotations

import numpy as np

from repro.bench import ResultTable, fmt_bytes, fmt_seconds
from repro.caching import EvictionPolicy, TieredCache, TierSpec
from repro.cluster import GB, MB

HBM = TierSpec("device-hbm", 64 * MB, 1500 * GB, 1500 * GB, 5e-7)
DRAM = TierSpec("host-dram", 256 * MB, 25 * GB, 25 * GB, 1e-6)
DISAGG = TierSpec("disagg-memory", 4 * GB, 12 * GB, 12 * GB, 8e-6)

OBJ_BYTES = 4 * MB
N_OBJECTS = 128  # 512 MiB working set >> 64 MiB HBM
HOT_SET = 12  # fits in HBM
ACCESSES = 2000
HOT_FRACTION = 0.9


def run_pattern(policy: EvictionPolicy, promote: bool):
    cache = TieredCache([HBM, DRAM, DISAGG], policy=policy, promote_on_hit=promote)
    for i in range(N_OBJECTS):
        cache.put(f"obj{i}", i, OBJ_BYTES)
    rng = np.random.default_rng(9)
    total_time = 0.0
    hot_time = 0.0
    hot_accesses = 0
    for _ in range(ACCESSES):
        if rng.random() < HOT_FRACTION:
            key = f"obj{rng.integers(0, HOT_SET)}"
            is_hot = True
        else:
            key = f"obj{rng.integers(HOT_SET, N_OBJECTS)}"
            is_hot = False
        value, t = cache.get(key)  # the KV API never fails: location hidden
        total_time += t
        if is_hot:
            hot_time += t
            hot_accesses += 1
    return cache, total_time, hot_time / hot_accesses


def test_e9_tiering_under_skew(benchmark):
    def both():
        return (
            run_pattern(EvictionPolicy.LRU, promote=True),
            run_pattern(EvictionPolicy.FIFO, promote=False),
        )

    (lru_cache, lru_total, lru_hot), (fifo_cache, fifo_total, fifo_hot) = (
        benchmark.pedantic(both, rounds=1, iterations=1)
    )

    table = ResultTable(
        f"E9: {ACCESSES} skewed accesses over a "
        f"{N_OBJECTS * OBJ_BYTES // MB} MiB working set ({HBM.capacity_bytes // MB} MiB HBM)",
        ["policy", "total access time", "mean hot access", "HBM bytes", "dropped"],
    )
    for name, cache, total, hot in [
        ("LRU + promote (tiering on)", lru_cache, lru_total, lru_hot),
        ("FIFO, no promotion", fifo_cache, fifo_total, fifo_hot),
    ]:
        table.add_row(
            name,
            fmt_seconds(total),
            fmt_seconds(hot),
            fmt_bytes(cache.used_bytes("device-hbm")),
            cache.dropped,
        )
    table.show()

    # location transparency: every object stayed addressable throughout
    assert all(lru_cache.contains(f"obj{i}") for i in range(N_OBJECTS))
    assert lru_cache.dropped == 0
    # the hierarchy is really in use (working set >> HBM)
    tiers_used = {lru_cache.tier_of(f"obj{i}") for i in range(N_OBJECTS)}
    assert len(tiers_used) >= 2
    # tiering keeps the hot set fast: skew-aware beats skew-oblivious
    assert lru_total < fifo_total
    # hot accesses approach HBM latency, far below the disagg tier's cost
    assert lru_hot < DISAGG.read_time(OBJ_BYTES) / 2
