"""F3 — Figure 3: Gen-1 (DPU-centric) vs Gen-2 (device-centric) runtime.

The paper's diagnosis (§2.3.2): in Gen-1, "if two chained ops from the
same physical graph are deployed to two different FPGAs, their
communication (e.g., future resolution) must go through the DPU.  For
short-lived ML ops, frequent trips to the DPU are too costly."

We run a chain of ops alternating between the two FPGAs of one card and
sweep the op duration.  Expected shape: Gen-2 wins big for microsecond ops
and the advantage decays toward 1x as ops grow long enough that compute
dominates control.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import DeviceKind, build_physical_disagg
from repro.runtime import (
    Generation,
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
)

CHAIN = 16
DURATIONS = [1e-5, 1e-4, 1e-3, 1e-2]  # CPU-seconds per op

# Gen-1 is the DPU-centric runtime with Ray's stock pull resolution;
# Gen-2 adds device-local raylets AND the push-based resolution (§2.3.2's
# three key changes — the third, disaggregated-memory spill, is always on).
GEN1 = RuntimeConfig(generation=Generation.GEN1, resolution=ResolutionMode.PULL)
GEN2 = RuntimeConfig(generation=Generation.GEN2, resolution=ResolutionMode.PUSH)


def run_chain(config: RuntimeConfig, op_cost: float) -> Tuple[float, int]:
    cluster = build_physical_disagg()
    rt = ServerlessRuntime(cluster, config)
    card = next(
        n
        for n in cluster.nodes.values()
        if len(n.devices_of_kind(DeviceKind.FPGA)) == 2
    )
    f0, f1 = (d.device_id for d in card.devices_of_kind(DeviceKind.FPGA))
    ref = rt.submit(lambda: 0, compute_cost=op_cost, pinned_device=f0, name="op0")
    for i in range(1, CHAIN):
        ref = rt.submit(
            lambda x: x + 1,
            (ref,),
            compute_cost=op_cost,
            pinned_device=f0 if i % 2 == 0 else f1,
            name=f"op{i}",
        )
    value = rt.get(ref)
    assert value == CHAIN - 1
    return rt.sim.now, rt.control_messages


def test_fig3_gen1_vs_gen2(benchmark):
    def sweep() -> List[Tuple[float, float, float, int, int]]:
        rows = []
        for cost in DURATIONS:
            t1, m1 = run_chain(GEN1, cost)
            t2, m2 = run_chain(GEN2, cost)
            rows.append((cost, t1, t2, m1, m2))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ResultTable(
        f"Figure 3: {CHAIN}-op chain across two FPGAs on one card",
        ["op cost", "Gen-1 time", "Gen-2 time", "Gen-2 speedup", "msgs G1", "msgs G2"],
    )
    speedups = []
    for cost, t1, t2, m1, m2 in rows:
        speedups.append(t1 / t2)
        table.add_row(
            fmt_seconds(cost),
            fmt_seconds(t1),
            fmt_seconds(t2),
            f"{t1 / t2:.2f}x",
            m1,
            m2,
        )
    table.show()

    # Gen-2 is never slower, wins clearly for short ops, and the advantage
    # decays monotonically as op duration grows (compute dominates)
    assert all(s >= 1.0 for s in speedups)
    assert speedups[0] > 1.15
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[-1] < speedups[0]


def test_fig3_dpu_serialization_bottleneck(benchmark):
    """Many independent short ops on one card: Gen-1 serializes all control
    handling on the DPU raylet; Gen-2 spreads it across device raylets."""

    def burst(config: RuntimeConfig) -> float:
        cluster = build_physical_disagg()
        rt = ServerlessRuntime(cluster, config)
        card = next(
            n
            for n in cluster.nodes.values()
            if len(n.devices_of_kind(DeviceKind.FPGA)) == 2
        )
        fpgas = [d.device_id for d in card.devices_of_kind(DeviceKind.FPGA)]
        refs = [
            rt.submit(
                lambda: 1,
                compute_cost=1e-5,
                pinned_device=fpgas[i % 2],
                name=f"burst{i}",
            )
            for i in range(64)
        ]
        assert sum(rt.get(refs)) == 64
        return rt.sim.now

    def both():
        return burst(GEN1), burst(GEN2)

    t1, t2 = benchmark.pedantic(both, rounds=1, iterations=1)
    table = ResultTable(
        "Figure 3: 64 independent short ops on one card",
        ["generation", "makespan"],
    )
    table.add_row("Gen-1 (DPU raylet)", fmt_seconds(t1))
    table.add_row("Gen-2 (device raylets)", fmt_seconds(t2))
    table.show()
    assert t2 < t1
