"""E22 — overload: metastable retry storms vs. graceful degradation (§2.3).

The failure mode under test is *metastability*: a transient 2x arrival
spike lands on a briefly-slowed device, attempts start timing out, and the
retries of the timed-out work — stacked on top of an undiminished
open-loop offered load — keep the device saturated long after both the
spike and the slowdown have ended.  Goodput stays collapsed in a window
where nothing is wrong anymore.

Scenario: one 16-slot CPU server (capacity ~800 tasks/s at the 2e-2 task
cost).  A steady 480 tasks/s open-loop stream runs throughout; at t=0.30 a
0.15 s spike doubles capacity's worth of extra arrivals while a chaos
straggler slows the CPU 4x for 0.10 s.  Goodput is counted in the
post-burst window [0.45, 0.75] — after the spike AND the slowdown are
over — against a burst-free baseline of the same steady stream.

* **switches off** (legacy config): the retry storm keeps post-burst
  goodput under 50% of baseline;
* **admission control + retry budgets on**: the storm is shed at the
  door instead of amplified, goodput recovers to >= 90%.

Numbers land in ``BENCH_E22.json`` for the perf trajectory.
"""

from __future__ import annotations

import json
import os

from repro.bench import ResultTable
from repro.chaos import ChaosMonkey, ChaosSchedule
from repro.cluster import build_serverful
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime

SEED = 22
TASK_COST = 2e-2  # 16 slots / 2e-2 s => ~800 tasks/s of capacity
STEADY_TASKS = 144  # 480 tasks/s for 0.30 s (0.6x capacity)
SPIKE_TASKS = 240  # +1600 tasks/s for 0.15 s (2x capacity on top)
WINDOW = (0.45, 0.75)  # spike and straggler both long gone

# depth 16 = one slot-wave: admitted work queues for at most ~one compute
# quantum, keeping admitted latency far from the timeout cliff.  (A depth
# near 48 admits enough backlog that queueing alone pushes attempts into
# timeout range, and the storm re-ignites *inside* the admission gate.)
OVERLOAD_SWITCHES = dict(
    admission_control=True,
    admission_queue_depth=16,
    retry_budget=True,
    retry_budget_ratio=0.1,
    retry_budget_cap=20.0,
)


def make_schedule(spike: bool) -> ChaosSchedule:
    schedule = ChaosSchedule().burst(0.0, STEADY_TASKS, duration=0.30, seed=SEED)
    if spike:
        schedule.burst(0.30, SPIKE_TASKS, duration=0.15, seed=SEED + 1)
        schedule.slow_device(0.31, "server0/cpu", 4.0, duration=0.10)
    schedule.burst(0.45, STEADY_TASKS, duration=0.30, seed=SEED + 2)
    return schedule


def run_scenario(spike: bool = True, **overrides):
    """Fire the open-loop load at one server and drain the simulator."""
    rt = ServerlessRuntime(
        build_serverful(n_servers=1),
        RuntimeConfig(
            resolution=ResolutionMode.PULL,
            task_timeout=0.08,
            max_retries=8,
            retry_backoff_base=5e-3,
            **overrides,
        ),
    )

    def source(i: int) -> None:
        rt.submit(lambda i=i: i, compute_cost=TASK_COST, name=f"load{i}")

    monkey = ChaosMonkey(rt, make_schedule(spike), task_source=source).arm()
    rt.sim.run()
    return rt, monkey


def completions_in(rt: ServerlessRuntime, lo: float, hi: float) -> int:
    return sum(1 for t in rt.timelines if lo <= t.finished < hi)


def test_e22_overload():
    base_rt, _ = run_scenario(spike=False)  # burst-free capacity witness
    off_rt, off_monkey = run_scenario(spike=True)
    on_rt, on_monkey = run_scenario(spike=True, **OVERLOAD_SWITCHES)

    lo, hi = WINDOW
    base_goodput = completions_in(base_rt, lo, hi)
    assert base_goodput > 0
    off_ratio = completions_in(off_rt, lo, hi) / base_goodput
    on_ratio = completions_in(on_rt, lo, hi) / base_goodput

    shed = on_rt.tasks_shed + on_monkey.load_rejected

    table = ResultTable(
        "E22: 2x burst + straggler — legacy retry storm vs. overload control",
        ["scenario", "post-burst goodput", "retries", "failed", "shed/rejected"],
    )
    table.add_row("no burst (baseline)", "100%", base_rt.tasks_retried, 0, 0)
    table.add_row(
        "burst, switches off",
        f"{off_ratio:.0%}",
        off_rt.tasks_retried,
        off_rt.tasks_failed,
        0,
    )
    table.add_row(
        "burst, admission+budget",
        f"{on_ratio:.0%}",
        on_rt.tasks_retried,
        on_rt.tasks_failed,
        shed,
    )
    table.show()

    # the legacy config goes metastable: the storm outlives its trigger
    assert off_ratio < 0.5, f"expected a goodput collapse, got {off_ratio:.0%}"
    assert off_rt.tasks_retried > on_rt.tasks_retried
    # overload control actually engaged (shed at the door, not amplified)...
    assert on_monkey.load_rejected > 0
    assert on_rt.telemetry.registry.value(
        "skadi_shed_tasks_total", reason="admission_reject"
    ) == float(on_monkey.load_rejected)
    # ...and goodput recovers once the burst passes
    assert on_ratio >= 0.9, f"expected recovery, got {on_ratio:.0%}"

    results = {
        "experiment": "E22",
        "capacity_tasks_per_s": 16 / TASK_COST,
        "steady_tasks_per_s": STEADY_TASKS / 0.30,
        "spike_tasks_per_s": SPIKE_TASKS / 0.15,
        "window": list(WINDOW),
        "baseline_goodput_tasks": base_goodput,
        "off": {
            "goodput_ratio": off_ratio,
            "retries": off_rt.tasks_retried,
            "failed": off_rt.tasks_failed,
        },
        "on": {
            "goodput_ratio": on_ratio,
            "retries": on_rt.tasks_retried,
            "failed": on_rt.tasks_failed,
            "rejected": on_monkey.load_rejected,
            "shed": on_rt.tasks_shed,
        },
    }
    artifacts = os.environ.get("BENCH_ARTIFACTS")
    out_dir = artifacts or os.path.join(os.path.dirname(__file__), "baselines")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "BENCH_E22.json"), "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    # CI sanitizes dumped protocol traces offline (the burst ends mid-run
    # for shed work, so the trace is partial by construction)
    if artifacts:
        traced_rt, _ = run_scenario(spike=True, sanitizers=("trace",))
        traced_rt.probe.trace.dump(
            os.path.join(artifacts, "e22_dist_trace.json")
        )
