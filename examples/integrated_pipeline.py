#!/usr/bin/env python3
"""Integrated data-system pipeline: SQL feature engineering -> ML training.

The paper's motivating trend: "multiple data systems are deployed onto one
pipeline that jointly runs business logic, data management, HPC, and ML"
(e.g. BigQuery running ingestion, analytics and ML in one job).  Here a
SQL system derives features from raw events and an ML system trains a
model on them — in one runtime, with futures crossing the system boundary
through the caching layer instead of durable storage.

Run:  python examples/integrated_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import RecordBatch, Skadi
from repro.bench import fmt_seconds
from repro.frontends.ml import LinearModel
from repro.runtime import ANY_COMPUTE_KIND


def make_events(n: int, seed: int = 1) -> RecordBatch:
    rng = np.random.default_rng(seed)
    spend = np.round(rng.random(n) * 200, 2)
    visits = rng.integers(1, 30, n)
    tenure = rng.integers(1, 120, n)
    # ground truth: lifetime value is a linear blend plus noise
    ltv = 3.0 * spend + 12.0 * visits + 1.5 * tenure + rng.normal(0, 5, n)
    return RecordBatch.from_arrays(
        {
            "uid": np.arange(n, dtype=np.int64),
            "spend": spend,
            "visits": visits,
            "tenure": tenure,
            "ltv": np.round(ltv, 2),
        }
    )


def main() -> None:
    events = make_events(20_000)
    skadi = Skadi(shards=4)

    # --- system 1: SQL feature engineering -------------------------------
    features = skadi.sql(
        """
        SELECT spend, visits, tenure, ltv
        FROM events
        WHERE spend > 1 AND visits > 1
        """,
        {"events": events},
    )
    print(f"SQL system produced {features.num_rows} feature rows")
    print(f"  ({skadi.last_report.physical_tasks} tasks, "
          f"{fmt_seconds(skadi.last_report.sim_seconds)} virtual)")

    # --- system boundary: futures, not durable storage --------------------
    # shard the features and push them into the runtime as objects the ML
    # system consumes directly
    X = np.column_stack(
        [
            features.column("spend"),
            features.column("visits").astype(np.float64),
            features.column("tenure").astype(np.float64),
        ]
    )
    y_raw = features.column("ltv")
    # normalize features and center the target (the intercept) for SGD
    X = (X - X.mean(axis=0)) / X.std(axis=0)
    intercept = y_raw.mean()
    y = y_raw - intercept

    workers = 4
    shard_refs = [
        skadi.put((X[w::workers], y[w::workers])) for w in range(workers)
    ]

    # --- system 2: data-parallel ML training ------------------------------
    weights = np.zeros(3)
    lr = 0.1
    epochs = 60

    def grad_task(shard, w):
        Xs, ys = shard
        residual = Xs @ w - ys
        return 2.0 * Xs.T @ residual / len(ys)

    for epoch in range(epochs):
        w_ref = skadi.put(weights)
        grad_refs = [
            skadi.submit(
                grad_task,
                (shard_refs[w], w_ref),
                compute_cost=X.size * 4e-9 / workers,
                supported_kinds=ANY_COMPUTE_KIND,
                name=f"grad[e{epoch},w{w}]",
            )
            for w in range(workers)
        ]
        grads = skadi.get(grad_refs)
        weights = weights - lr * np.mean(grads, axis=0)

    preds = X @ weights + intercept
    r2 = 1 - np.sum((preds - y_raw) ** 2) / np.sum((y_raw - y_raw.mean()) ** 2)
    print(f"\nML system trained {epochs} epochs on {workers} workers")
    print(f"  learned weights: {np.round(weights, 2)}")
    print(f"  R^2 on training features: {r2:.4f}")
    print(f"  total virtual time: {fmt_seconds(skadi.sim_now)}")

    # sanity: matches a local oracle trained the same way
    oracle = LinearModel(3, lr=lr)
    w = np.zeros(3)
    shards = [(X[i::workers], y[i::workers]) for i in range(workers)]
    for _ in range(epochs):
        grads = [oracle.gradient(Xs, ys, weights=w) for Xs, ys in shards]
        w = w - lr * np.mean(grads, axis=0)
    assert np.allclose(w, weights), "distributed training diverged from oracle"
    print("  (matches single-process oracle exactly)")


if __name__ == "__main__":
    main()
