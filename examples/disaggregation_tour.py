#!/usr/bin/env python3
"""A tour of the disaggregated runtime: Gen-1 vs Gen-2, pull vs push.

Reproduces Figure 3's story interactively: a chain of short ops bouncing
between the two FPGAs of one DPU-fronted card, under all four runtime
configurations, plus a look at the heterogeneity-aware ownership table.

Run:  python examples/disaggregation_tour.py
"""

from __future__ import annotations

from repro.bench import ResultTable, fmt_seconds
from repro.cluster import DeviceKind, build_physical_disagg
from repro.runtime import (
    Generation,
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
)

CHAIN = 12
OP_COST = 5e-5  # a short-lived ML op


def run_chain(generation: Generation, resolution: ResolutionMode):
    cluster = build_physical_disagg()
    rt = ServerlessRuntime(
        cluster, RuntimeConfig(generation=generation, resolution=resolution)
    )
    card = next(
        n
        for n in cluster.nodes.values()
        if len(n.devices_of_kind(DeviceKind.FPGA)) == 2
    )
    f0, f1 = (d.device_id for d in card.devices_of_kind(DeviceKind.FPGA))
    ref = rt.submit(lambda: 0, compute_cost=OP_COST, pinned_device=f0, name="op0")
    for i in range(1, CHAIN):
        ref = rt.submit(
            lambda x: x + 1,
            (ref,),
            compute_cost=OP_COST,
            pinned_device=f0 if i % 2 == 0 else f1,
            name=f"op{i}",
        )
    value = rt.get(ref)
    assert value == CHAIN - 1
    return rt, ref


def main() -> None:
    table = ResultTable(
        f"{CHAIN} chained {OP_COST * 1e6:.0f}us ops across two FPGAs on one card",
        ["runtime", "resolution", "makespan", "control msgs"],
    )
    for gen in (Generation.GEN1, Generation.GEN2):
        for res in (ResolutionMode.PULL, ResolutionMode.PUSH):
            rt, _ = run_chain(gen, res)
            table.add_row(
                f"Gen-{gen.value} ({'DPU' if gen is Generation.GEN1 else 'device'}-centric)",
                res.value,
                fmt_seconds(rt.sim.now),
                rt.control_messages,
            )
    table.show()

    # peek at the extended ownership table (Figure 3's DeviceID/DeviceHandle)
    rt, ref = run_chain(Generation.GEN2, ResolutionMode.PUSH)
    entry = rt.ownership.entry(ref.object_id)
    print("\nheterogeneity-aware ownership entry for the final output:")
    print(f"  object   : {entry.object_id}")
    print(f"  owner    : {entry.owner}")
    print(f"  locations: {sorted(entry.locations)}")
    print(f"  DeviceID : {entry.device_id}")
    print(f"  Handle   : {entry.device_handle}  (opaque device-driver token)")


if __name__ == "__main__":
    main()
