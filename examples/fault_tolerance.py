#!/usr/bin/env python3
"""Failure handling two ways: lineage replay vs. a reliable caching layer.

§2.1: "Skadi handles failures in two ways: (1) re-executes the graph using
lineage, or (2) uses a reliable caching layer with data replication or EC."
This demo builds a task chain, kills the node holding every intermediate,
and recovers both ways, printing the trade-off.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.bench import fmt_seconds
from repro.caching import ErasureCode, ReplicationScheme
from repro.cluster import DeviceKind, build_physical_disagg
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime
from repro.runtime.runtime import make_reliable_cache

DEPTH = 10
TASK_COST = 5e-3


def build_chain(rt, device_id):
    ref = rt.submit(lambda: 0, compute_cost=TASK_COST, pinned_device=device_id,
                    name="step0")
    for i in range(1, DEPTH):
        ref = rt.submit(
            lambda x: x + 1,
            (ref,),
            compute_cost=TASK_COST,
            pinned_device=device_id,
            name=f"step{i}",
        )
    return ref


def run(redundancy, label: str) -> None:
    cluster = build_physical_disagg()
    cache = make_reliable_cache(cluster, redundancy) if redundancy else None
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(resolution=ResolutionMode.PULL),
        reliable_cache=cache,
    )
    cpu = cluster.node("server0").first_of_kind(DeviceKind.CPU)
    ref = build_chain(rt, cpu.device_id)
    value = rt.get(ref)
    assert value == DEPTH - 1
    t_done = rt.sim.now

    lost = rt.fail_node("server0")
    rt.restart_node("server0")
    recovered = rt.get(ref)
    assert recovered == DEPTH - 1
    recovery = rt.sim.now - t_done

    overhead = redundancy.storage_overhead if redundancy else 1.0
    print(
        f"{label:<28} lost {len(lost):>2} objects | "
        f"recovery {fmt_seconds(recovery):>9} | "
        f"replayed {rt.lineage.replays:>2} tasks | "
        f"storage {overhead:.2f}x"
    )


def main() -> None:
    print(f"chain of {DEPTH} tasks ({TASK_COST * 1e3:.0f} ms each), "
          f"then the node holding every output dies:\n")
    run(None, "lineage replay")
    run(ReplicationScheme(2), "reliable cache: 2x replicas")
    run(ReplicationScheme(3), "reliable cache: 3x replicas")
    run(ErasureCode(4, 2), "reliable cache: RS(4,2)")
    print(
        "\nlineage is storage-free but re-runs the whole chain; the reliable"
        "\ncache recovers flat at the price of redundant bytes — the paper's"
        "\n'another design trade-off'."
    )


if __name__ == "__main__":
    main()
