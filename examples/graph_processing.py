#!/usr/bin/env python3
"""Graph processing on the distributed runtime: PageRank as a FlowGraph.

One of the execution models the runtime must host (§1): graph systems.
PageRank supersteps unroll into FlowGraph vertices; the runtime executes
them over the simulated disaggregated cluster and the result matches the
single-process oracle bit-for-bit.

Run:  python examples/graph_processing.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import fmt_bytes, fmt_seconds
from repro.cluster import build_physical_disagg
from repro.flowgraph import collect_sink, launch_physical_graph, to_physical
from repro.frontends.graph import (
    EdgeList,
    connected_components,
    pagerank,
    pagerank_flowgraph,
    sssp,
)
from repro.runtime import ServerlessRuntime


def main() -> None:
    edges = EdgeList.random(num_vertices=2_000, num_edges=12_000, seed=3)
    print(f"graph: {edges.num_vertices} vertices, {edges.num_edges} edges")

    # --- distributed PageRank ---------------------------------------------
    iterations = 8
    graph, sink, tables = pagerank_flowgraph(edges, iterations=iterations)
    cluster = build_physical_disagg()
    rt = ServerlessRuntime(cluster)
    outputs = launch_physical_graph(rt, to_physical(graph), tables=tables)
    result = collect_sink(rt, outputs, sink)

    ranks = np.zeros(edges.num_vertices)
    ranks[result.column("vid")] = result.column("rank")
    oracle = pagerank(edges, iterations=iterations)
    assert np.allclose(ranks, oracle), "distributed PageRank diverged"

    top = np.argsort(ranks)[::-1][:5]
    print(f"\nPageRank ({iterations} supersteps, distributed):")
    for v in top:
        print(f"  vertex {v:>4}: rank {ranks[v]:.6f}")
    print(
        f"  {rt.tasks_finished} tasks, {fmt_seconds(rt.sim.now)} virtual, "
        f"{fmt_bytes(rt.bytes_moved)} moved"
    )

    # --- companions: SSSP and connected components -------------------------
    dist = sssp(edges, source=int(top[0]))
    reachable = np.isfinite(dist).sum()
    print(f"\nSSSP from vertex {top[0]}: {reachable} reachable, "
          f"median distance {np.median(dist[np.isfinite(dist)]):.3f}")

    labels = connected_components(edges)
    sizes = np.bincount(labels)
    sizes = sizes[sizes > 0]
    print(f"connected components: {len(sizes)} "
          f"(largest {sizes.max()} vertices)")


if __name__ == "__main__":
    main()
