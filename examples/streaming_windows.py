#!/usr/bin/env python3
"""Streaming on the distributed runtime: windowed aggregation over
micro-batches, with operator state living in the caching layer.

One of the execution models the runtime must host (§1: "streaming").
A sensor stream is discretized into micro-batches; a filter drops noise
and a tumbling window aggregates per-sensor statistics.  The window's
pending state crosses micro-batch (task) boundaries as ordinary objects —
stateful serverless functions in the paper's sense.

Run:  python examples/streaming_windows.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import fmt_seconds
from repro.caching import RecordBatch
from repro.cluster import build_physical_disagg
from repro.frontends.streaming import FilterOp, StreamJob, WindowAggregate, micro_batches
from repro.ir import col, lit
from repro.runtime import ServerlessRuntime


def make_sensor_stream(readings: int, sensors: int = 4, seed: int = 0):
    rng = np.random.default_rng(seed)
    table = RecordBatch.from_arrays(
        {
            "sensor": rng.integers(0, sensors, readings),
            "value": np.round(20 + 5 * rng.standard_normal(readings), 3),
        }
    )
    return micro_batches(table, batch_rows=100)


def main() -> None:
    stream = make_sensor_stream(1600)
    print(f"stream: {len(stream)} micro-batches of 100 readings")

    job = StreamJob(
        [
            FilterOp(pred=(col("value") > lit(5.0)) & (col("value") < lit(35.0))),
            WindowAggregate(
                keys=("sensor",),
                aggs=(("mean_v", "mean", "value"), ("n", "count", "value")),
                window=4,
            ),
        ],
        op_cost=2e-4,
    )

    rt = ServerlessRuntime(build_physical_disagg())
    outputs = job.run(rt, stream)

    print("\nwindow emissions (every 4th micro-batch closes a window):")
    for t, out in enumerate(outputs):
        if out.num_rows == 0:
            continue
        parts = ", ".join(
            f"s{int(s)}:{m:.2f}({int(n)})"
            for s, m, n in zip(
                out.column("sensor"), out.column("mean_v"), out.column("n")
            , strict=False)
        )
        print(f"  t={t:>2}  {parts}")

    # every emission matches the single-process oracle
    local = job.run_local(stream)
    assert all(d == l for d, l in zip(outputs, local, strict=False))
    print(f"\nall {sum(o.num_rows > 0 for o in outputs)} windows match the "
          f"single-process oracle")
    print(f"{rt.tasks_finished} tasks in {fmt_seconds(rt.sim.now)} virtual time")


if __name__ == "__main__":
    main()
