#!/usr/bin/env python3
"""Quickstart: one runtime for declarative queries and raw tasks.

Builds a simulated physically-disaggregated cluster, runs a SQL query
through every tier of the stack (parser -> relational IR -> df lowering ->
FlowGraph -> physical sharded graph -> stateful serverless runtime), then
uses the distributed task API directly.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import RecordBatch, Skadi
from repro.bench import fmt_bytes, fmt_seconds


def main() -> None:
    rng = np.random.default_rng(0)
    n = 10_000
    orders = RecordBatch.from_arrays(
        {
            "oid": np.arange(n, dtype=np.int64),
            "cust": rng.integers(0, 100, n),
            "amount": np.round(rng.random(n) * 100, 2),
        }
    )

    skadi = Skadi(shards=4)

    print("== SQL over the distributed runtime ==")
    out = skadi.sql(
        """
        SELECT cust, SUM(amount) AS total, COUNT(*) AS n
        FROM orders
        WHERE amount > 25
        GROUP BY cust
        ORDER BY cust
        LIMIT 5
        """,
        {"orders": orders},
    )
    for row in out.to_rows():
        print(f"  cust={row['cust']:<3} total={row['total']:>9.2f} n={row['n']}")

    report = skadi.last_report
    print(
        f"\n  pipeline: {report.graph_vertices} FlowGraph vertices -> "
        f"{report.physical_tasks} physical tasks"
    )
    print(
        f"  virtual time {fmt_seconds(report.sim_seconds)}, "
        f"{fmt_bytes(report.bytes_moved)} over the fabric, "
        f"{report.control_messages} control messages"
    )

    print("\n== the logical IR the query lowered through ==")
    for line in report.ir_text.splitlines():
        print(f"  {line}")

    print("\n== raw distributed task API (the Figure 2 pseudo-code) ==")
    b = [skadi.submit(lambda i=i: list(range(i)), name=f"B{i}") for i in range(1, 4)]
    c = skadi.submit(lambda *parts: sum(len(p) for p in parts), tuple(b), name="C")
    print(f"  E(remote chain) = {skadi.get(c)}  (virtual clock: {fmt_seconds(skadi.sim_now)})")


if __name__ == "__main__":
    main()
