#!/usr/bin/env python3
"""MPMD pipeline-parallel training on a tightly-coupled GPU silo.

The paper's second motivating trend: "giant model training has evolved
from using SPMD to MPMD over multiple highly-specialized clusters".  A
3-stage MLP trains GPipe-style — one stage actor per GPU, microbatches
pipelined through — with results identical to serial training, and the
task timeline exported as a Chrome trace you can load in chrome://tracing
to see the pipeline ramp and bubble.

Run:  python examples/pipeline_training.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.bench import fmt_seconds
from repro.cluster import build_tightly_coupled
from repro.frontends.mpmd import PipelineParallelTrainer, serial_reference_training
from repro.runtime import ServerlessRuntime, write_chrome_trace

DIMS = (16, 32, 32, 1)
EPOCHS = 8
MICROBATCHES = 8


def main() -> None:
    rng = np.random.default_rng(0)
    X = rng.standard_normal((256, DIMS[0]))
    hidden = np.maximum(X @ rng.standard_normal((DIMS[0], 8)), 0)
    y = hidden @ rng.standard_normal(8) + 0.05 * rng.standard_normal(256)

    cluster = build_tightly_coupled(n_accel=len(DIMS) - 1)
    runtime = ServerlessRuntime(cluster)
    trainer = PipelineParallelTrainer(
        runtime, DIMS, lr=0.02, seed=3, stage_cost=0.05
    )
    print(f"{trainer.num_stages} stage actors on: "
          + ", ".join(h.device_id for h in trainer.handles))

    losses = [
        trainer.train_epoch(X, y, microbatches=MICROBATCHES)
        for _ in range(EPOCHS)
    ]
    print(f"\nloss over {EPOCHS} epochs ({MICROBATCHES} microbatches each):")
    print("  " + " -> ".join(f"{l:.3f}" for l in losses))
    print(f"virtual training time: {fmt_seconds(runtime.sim.now)}")

    # bit-identical to serial full-batch training
    reference = serial_reference_training(DIMS, X, y, epochs=EPOCHS, lr=0.02, seed=3)
    for W_dist, W_ref in zip(trainer.weights(), reference, strict=False):
        assert np.allclose(W_dist, W_ref)
    print("weights match the single-process oracle exactly")

    trace_path = os.path.join(tempfile.gettempdir(), "skadi_pipeline_trace.json")
    events = write_chrome_trace(runtime, trace_path)
    print(f"\nwrote {events} task spans to {trace_path}")
    print("open chrome://tracing and load it to see the pipeline schedule")


if __name__ == "__main__":
    main()
