"""Protocol invariant monitors, driven by hand-built event streams.

Each monitor gets a legal story (no violations) and every illegal move it
claims to catch, so the declarative tables in
``repro.analysis.dist.invariants`` are pinned as behavior, not prose.
"""

from __future__ import annotations

from repro.analysis.dist.events import DistTrace
from repro.analysis.dist.invariants import (
    AdmissionBoundsMonitor,
    BreakerMonitor,
    DeadlineMonotonicityMonitor,
    DirectoryStateMonitor,
    FetchRegistryMonitor,
    InvariantEngine,
    LineageAcyclicityMonitor,
    SingleOwnerMonitor,
    TaskLifecycleMonitor,
)


def feed(monitor, rows, partial=False):
    """rows: (kind, detail-dict) pairs; returns the monitor's violations."""
    trace = DistTrace()
    for kind, detail in rows:
        trace.record(
            time=0.0, site="t", kind=kind, detail=tuple(detail.items())
        )
    for event in trace:
        monitor.on_event(event)
    monitor.finish(partial=partial)
    return monitor.violations


class TestSingleOwner:
    def test_single_create_is_clean(self):
        assert feed(SingleOwnerMonitor(), [
            ("own_create", {"object": "o1"}),
            ("own_create", {"object": "o2"}),
        ]) == []

    def test_duplicate_create_is_flagged(self):
        violations = feed(SingleOwnerMonitor(), [
            ("own_create", {"object": "o1"}),
            ("own_create", {"object": "o1"}),
        ])
        assert len(violations) == 1
        assert "duplicate owner" in violations[0].message


class TestDirectoryState:
    def test_legal_lifecycle_is_clean(self):
        assert feed(DirectoryStateMonitor(), [
            ("own_create", {"object": "o", "old": None, "new": "PENDING",
                            "locations": 0}),
            ("own_mark_ready", {"object": "o", "old": "PENDING", "new": "READY",
                                "locations": 1}),
            ("own_add_location", {"object": "o", "old": "READY", "new": "READY",
                                  "locations": 2}),
            ("own_drop_node", {"object": "o", "old": "READY", "new": "READY",
                               "locations": 1}),
            ("own_drop_location", {"object": "o", "old": "READY", "new": "LOST",
                                   "locations": 0}),
            ("own_replay_reset", {"object": "o", "old": "LOST", "new": "PENDING",
                                  "locations": 0}),
        ]) == []

    def test_illegal_source_state_is_flagged(self):
        violations = feed(DirectoryStateMonitor(), [
            ("own_add_location", {"object": "o", "old": "PENDING",
                                  "new": "READY", "locations": 1}),
        ])
        assert any("illegal from state PENDING" in v.message for v in violations)

    def test_tracked_state_mismatch_is_flagged(self):
        violations = feed(DirectoryStateMonitor(), [
            ("own_create", {"object": "o", "old": None, "new": "PENDING",
                            "locations": 0}),
            ("own_mark_ready", {"object": "o", "old": "LOST", "new": "READY",
                                "locations": 1}),
        ])
        assert any("tracked PENDING" in v.message for v in violations)

    def test_ready_with_zero_locations_is_flagged(self):
        violations = feed(DirectoryStateMonitor(), [
            ("own_create", {"object": "o", "old": None, "new": "PENDING",
                            "locations": 0}),
            ("own_mark_ready", {"object": "o", "old": "PENDING", "new": "READY",
                                "locations": 0}),
        ])
        assert any("zero locations" in v.message for v in violations)

    def test_lost_with_locations_is_flagged(self):
        violations = feed(DirectoryStateMonitor(), [
            ("own_create", {"object": "o", "old": None, "new": "PENDING",
                            "locations": 0}),
            ("own_mark_ready", {"object": "o", "old": "PENDING", "new": "READY",
                                "locations": 1}),
            ("own_drop_location", {"object": "o", "old": "READY", "new": "LOST",
                                   "locations": 2}),
        ])
        assert any("still lists 2" in v.message for v in violations)

    def test_unknown_ops_are_ignored(self):
        # free() emits own_free — outside the FSM on purpose (entry removal)
        assert feed(DirectoryStateMonitor(), [
            ("own_free", {"object": "o", "old": "READY", "new": None,
                          "locations": 0}),
        ]) == []


class TestLineageAcyclicity:
    def test_chain_and_diamond_are_clean(self):
        assert feed(LineageAcyclicityMonitor(), [
            ("lineage_record", {"object": "b", "task": "t1", "deps": ("a",)}),
            ("lineage_record", {"object": "c", "task": "t2", "deps": ("a",)}),
            ("lineage_record", {"object": "d", "task": "t3", "deps": ("b", "c")}),
        ]) == []

    def test_cycle_is_flagged(self):
        violations = feed(LineageAcyclicityMonitor(), [
            ("lineage_record", {"object": "b", "task": "t1", "deps": ("a",)}),
            ("lineage_record", {"object": "a", "task": "t2", "deps": ("b",)}),
        ])
        assert len(violations) == 1
        assert "cycle" in violations[0].message


class TestBreaker:
    def test_legal_cycle_is_clean(self):
        assert feed(BreakerMonitor(), [
            ("breaker_flip", {"device": "d", "old": "CLOSED", "new": "OPEN"}),
            ("breaker_flip", {"device": "d", "old": "OPEN", "new": "HALF_OPEN"}),
            ("breaker_flip", {"device": "d", "old": "HALF_OPEN", "new": "OPEN"}),
            ("breaker_flip", {"device": "d", "old": "OPEN", "new": "HALF_OPEN"}),
            ("breaker_flip", {"device": "d", "old": "HALF_OPEN", "new": "CLOSED"}),
        ]) == []

    def test_illegal_edge_is_flagged(self):
        violations = feed(BreakerMonitor(), [
            ("breaker_flip", {"device": "d", "old": "CLOSED", "new": "HALF_OPEN"}),
        ])
        assert any("illegal transition" in v.message for v in violations)

    def test_tracked_mismatch_is_flagged(self):
        violations = feed(BreakerMonitor(), [
            ("breaker_flip", {"device": "d", "old": "CLOSED", "new": "OPEN"}),
            ("breaker_flip", {"device": "d", "old": "CLOSED", "new": "OPEN"}),
        ])
        assert any("tracked state is OPEN" in v.message for v in violations)


class TestAdmissionBounds:
    def test_within_depth_is_clean(self):
        assert feed(AdmissionBoundsMonitor(), [
            ("adm_queue", {"task": "t1", "limit": 2}),
            ("adm_queue", {"task": "t2", "limit": 2}),
            ("adm_release", {"task": "t1"}),
            ("adm_release", {"task": "t2"}),
        ]) == []

    def test_overflow_is_flagged(self):
        violations = feed(AdmissionBoundsMonitor(), [
            ("adm_queue", {"task": "t1", "limit": 1}),
            ("adm_queue", {"task": "t2", "limit": 1}),
            ("adm_release", {"task": "t1"}),
            ("adm_release", {"task": "t2"}),
        ])
        assert any("exceeds limit" in v.message for v in violations)

    def test_release_of_unqueued_task_is_flagged(self):
        violations = feed(AdmissionBoundsMonitor(), [
            ("adm_release", {"task": "ghost"}),
        ])
        assert any("never queued" in v.message for v in violations)

    def test_parked_at_drain_is_flagged_unless_partial(self):
        rows = [("adm_queue", {"task": "t1", "limit": 4})]
        assert any(
            "parked at drain" in v.message
            for v in feed(AdmissionBoundsMonitor(), rows)
        )
        assert feed(AdmissionBoundsMonitor(), rows, partial=True) == []


class TestDeadlineMonotonicity:
    def test_min_of_bounds_is_clean(self):
        assert feed(DeadlineMonotonicityMonitor(), [
            ("deadline_inherit", {"task": "t", "own": 5.0, "inherited": 3.0,
                                  "effective": 3.0}),
            ("deadline_inherit", {"task": "u", "own": None, "inherited": 2.0,
                                  "effective": 2.0}),
            ("deadline_inherit", {"task": "v", "own": None, "inherited": None,
                                  "effective": None}),
        ]) == []

    def test_looser_than_min_is_flagged(self):
        violations = feed(DeadlineMonotonicityMonitor(), [
            ("deadline_inherit", {"task": "t", "own": 5.0, "inherited": 3.0,
                                  "effective": 5.0}),
        ])
        assert any("!= min" in v.message for v in violations)

    def test_dropped_deadline_is_flagged(self):
        violations = feed(DeadlineMonotonicityMonitor(), [
            ("deadline_inherit", {"task": "t", "own": 5.0, "inherited": None,
                                  "effective": None}),
        ])
        assert any("dropped" in v.message for v in violations)

    def test_deadline_from_nowhere_is_flagged(self):
        violations = feed(DeadlineMonotonicityMonitor(), [
            ("deadline_inherit", {"task": "t", "own": None, "inherited": None,
                                  "effective": 1.0}),
        ])
        assert any("from nowhere" in v.message for v in violations)


class TestFetchRegistry:
    def test_paired_fetch_with_followers_is_clean(self):
        assert feed(FetchRegistryMonitor(), [
            ("fetch_begin", {"object": "o", "device": "d"}),
            ("fetch_dedup", {"object": "o", "device": "d"}),
            ("fetch_end", {"object": "o", "device": "d"}),
            ("fetch_join", {"object": "o", "device": "d"}),
        ]) == []

    def test_second_leader_is_flagged(self):
        violations = feed(FetchRegistryMonitor(), [
            ("fetch_begin", {"object": "o", "device": "d"}),
            ("fetch_begin", {"object": "o", "device": "d"}),
            ("fetch_end", {"object": "o", "device": "d"}),
        ])
        assert any("second leader" in v.message for v in violations)

    def test_end_without_begin_is_flagged(self):
        violations = feed(FetchRegistryMonitor(), [
            ("fetch_end", {"object": "o", "device": "d"}),
        ])
        assert any("without an active fetch" in v.message for v in violations)

    def test_join_without_dedup_is_flagged(self):
        violations = feed(FetchRegistryMonitor(), [
            ("fetch_begin", {"object": "o", "device": "d"}),
            ("fetch_end", {"object": "o", "device": "d"}),
            ("fetch_join", {"object": "o", "device": "d"}),
        ])
        assert any("no recorded dedup join" in v.message for v in violations)

    def test_abort_releases_followers(self):
        assert feed(FetchRegistryMonitor(), [
            ("fetch_begin", {"object": "o", "device": "d"}),
            ("fetch_dedup", {"object": "o", "device": "d"}),
            ("fetch_abort", {"object": "o", "device": "d"}),
        ]) == []

    def test_unended_fetch_flagged_at_drain_unless_partial(self):
        rows = [("fetch_begin", {"object": "o", "device": "d"})]
        assert any(
            "never ended" in v.message for v in feed(FetchRegistryMonitor(), rows)
        )
        assert feed(FetchRegistryMonitor(), rows, partial=True) == []

    def test_unreleased_follower_flagged_at_drain(self):
        violations = feed(FetchRegistryMonitor(), [
            ("fetch_begin", {"object": "o", "device": "d"}),
            ("fetch_dedup", {"object": "o", "device": "d"}),
            ("fetch_end", {"object": "o", "device": "d"}),
        ])
        assert any("never released" in v.message for v in violations)


class TestTaskLifecycle:
    def test_submit_run_finish_is_clean(self):
        assert feed(TaskLifecycleMonitor(), [
            ("submit", {"task": "t"}),
            ("task_finish", {"task": "t"}),
        ]) == []

    def test_double_submit_is_flagged(self):
        violations = feed(TaskLifecycleMonitor(), [
            ("submit", {"task": "t"}),
            ("submit", {"task": "t"}),
        ])
        assert any("submitted twice" in v.message for v in violations)

    def test_second_terminal_is_flagged(self):
        violations = feed(TaskLifecycleMonitor(), [
            ("submit", {"task": "t"}),
            ("task_finish", {"task": "t"}),
            ("task_fail", {"task": "t"}),
        ])
        assert any("task_fail after task_finish" in v.message for v in violations)

    def test_replay_rearms_the_terminal_slot(self):
        assert feed(TaskLifecycleMonitor(), [
            ("submit", {"task": "t"}),
            ("task_finish", {"task": "t"}),
            ("replay", {"task": "t"}),
            ("task_finish", {"task": "t"}),
        ]) == []

    def test_repeated_cancel_is_tolerated(self):
        # cancel cascades may touch a task more than once; that is benign
        assert feed(TaskLifecycleMonitor(), [
            ("submit", {"task": "t"}),
            ("task_cancel", {"task": "t"}),
            ("task_cancel", {"task": "t"}),
        ]) == []


class TestInvariantEngine:
    def test_engine_runs_all_monitors_and_sorts_violations(self):
        trace = DistTrace()
        trace.record(0.0, "t", "own_create",
                     detail=(("object", "o"), ("old", None),
                             ("new", "PENDING"), ("locations", 0)))
        trace.record(1e-3, "t", "own_create",
                     detail=(("object", "o"), ("old", None),
                             ("new", "PENDING"), ("locations", 0)))
        trace.record(2e-3, "t", "adm_queue",
                     detail=(("task", "x"), ("limit", 4)))
        engine = InvariantEngine.run(trace)
        violations = engine.violations()
        # duplicate create (seq 1, two monitors may fire) + parked task (end)
        assert violations, "expected violations"
        seqs = [v.seq for v in violations]
        assert seqs == sorted(seqs, key=lambda s: (s is None, s or 0))
        assert violations[-1].seq is None  # end-of-trace check sorts last

    def test_engine_partial_skips_end_checks(self):
        trace = DistTrace()
        trace.record(0.0, "t", "adm_queue", detail=(("task", "x"), ("limit", 4)))
        assert InvariantEngine.run(trace, partial=True).violations() == []

    def test_finish_is_idempotent(self):
        engine = InvariantEngine()
        engine.finish()
        engine.finish()
        assert engine.violations() == []
