"""Direct tests for the raylet daemon (control costs, stores, failure)."""

from __future__ import annotations

import pytest

from repro.cluster.hardware import DPU_SPEC, FPGA_SPEC, Device
from repro.runtime.raylet import Raylet


@pytest.fixture
def card(sim):
    dpu = Device(sim, DPU_SPEC, node_id="card0", device_id="card0/dpu")
    f0 = Device(sim, FPGA_SPEC, node_id="card0", device_id="card0/fpga0")
    f1 = Device(sim, FPGA_SPEC, node_id="card0", device_id="card0/fpga1")
    return dpu, f0, f1


class TestConstruction:
    def test_dpu_raylet_manages_companions_only(self, sim, card):
        dpu, f0, f1 = card
        raylet = Raylet(sim, dpu, [f0, f1])
        assert raylet.endpoint == "card0/dpu"
        assert raylet.manages("card0/fpga0") and raylet.manages("card0/fpga1")
        assert not raylet.manages("card0/dpu")

    def test_device_raylet_manages_itself(self, sim, card):
        _, f0, _ = card
        raylet = Raylet(sim, f0, [f0])
        assert raylet.endpoint == "card0/fpga0"
        assert raylet.manages("card0/fpga0")

    def test_non_dpu_host_always_self_managed(self, sim, card):
        _, f0, f1 = card
        raylet = Raylet(sim, f0, [f1])  # host not in devices: auto-added
        assert raylet.manages("card0/fpga0")
        assert raylet.manages("card0/fpga1")

    def test_store_lookup_errors(self, sim, card):
        dpu, f0, _ = card
        raylet = Raylet(sim, dpu, [f0])
        with pytest.raises(KeyError):
            raylet.store_of("elsewhere/gpu")


class TestControl:
    def test_control_costs_host_dispatch_overhead(self, sim, card):
        dpu, f0, f1 = card
        raylet = Raylet(sim, dpu, [f0, f1])
        raylet.control()
        sim.run()
        assert sim.now == pytest.approx(DPU_SPEC.dispatch_overhead)
        assert raylet.control_actions == 1

    def test_control_actions_serialize(self, sim, card):
        dpu, f0, f1 = card
        raylet = Raylet(sim, dpu, [f0, f1])
        raylet.control()
        raylet.control()
        raylet.control()
        sim.run()
        assert sim.now == pytest.approx(3 * DPU_SPEC.dispatch_overhead)

    def test_device_raylets_parallelize_control(self, sim, card):
        _, f0, f1 = card
        r0, r1 = Raylet(sim, f0, [f0]), Raylet(sim, f1, [f1])
        r0.control()
        r1.control()
        sim.run()
        assert sim.now == pytest.approx(FPGA_SPEC.dispatch_overhead)

    def test_batched_control_actions(self, sim, card):
        dpu, f0, _ = card
        raylet = Raylet(sim, dpu, [f0])
        raylet.control(actions=5)
        sim.run()
        assert raylet.control_actions == 5
        assert sim.now == pytest.approx(5 * DPU_SPEC.dispatch_overhead)


class TestObjectsAndFailure:
    def test_find_object_across_managed_stores(self, sim, card):
        dpu, f0, f1 = card
        raylet = Raylet(sim, dpu, [f0, f1])
        raylet.store_of("card0/fpga1").put("obj-1", "v", 64)
        found = raylet.find_object("obj-1")
        assert found is raylet.store_of("card0/fpga1")
        assert raylet.find_object("ghost") is None

    def test_fail_clears_all_stores(self, sim, card):
        dpu, f0, f1 = card
        raylet = Raylet(sim, dpu, [f0, f1])
        raylet.store_of("card0/fpga0").put("a", 1, 32)
        raylet.store_of("card0/fpga1").put("b", 2, 32)
        raylet.fail()
        assert not raylet.alive
        assert raylet.find_object("a") is None
        assert raylet.find_object("b") is None
        assert f0.memory_used == 0 and f1.memory_used == 0
        raylet.restart()
        assert raylet.alive
