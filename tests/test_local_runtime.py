"""Tests for the threaded LocalRuntime backend."""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import TaskError
from repro.runtime.local import LocalRuntime


@pytest.fixture
def rt():
    runtime = LocalRuntime(max_workers=4)
    yield runtime
    runtime.shutdown()


class TestTasks:
    def test_simple_chain(self, rt):
        a = rt.put(5)
        b = rt.submit(lambda x: x * 2, (a,))
        c = rt.submit(lambda x: x + 1, (b,))
        assert rt.get(c) == 11

    def test_fanout_fanin(self, rt):
        parts = [rt.submit(lambda i=i: i * i) for i in range(8)]
        total = rt.submit(lambda *vs: sum(vs), tuple(parts))
        assert rt.get(total) == sum(i * i for i in range(8))

    def test_get_list(self, rt):
        refs = [rt.submit(lambda i=i: i) for i in range(5)]
        assert rt.get(refs) == [0, 1, 2, 3, 4]

    def test_kwargs_with_refs(self, rt):
        a = rt.put(3)
        ref = rt.submit(lambda base, offset=0: base + offset, (10,), {"offset": a})
        assert rt.get(ref) == 13

    def test_deep_chain_does_not_deadlock(self):
        # deeper than the worker count: dependency-driven launch must cope
        with LocalRuntime(max_workers=2) as rt:
            ref = rt.put(0)
            for _ in range(50):
                ref = rt.submit(lambda x: x + 1, (ref,))
            assert rt.get(ref) == 50

    def test_exception_propagates(self, rt):
        def boom():
            raise ValueError("bad")

        ref = rt.submit(boom)
        with pytest.raises((TaskError, ValueError)):
            rt.get(ref)

    def test_dependency_failure_propagates(self, rt):
        def boom():
            raise ValueError("upstream")

        bad = rt.submit(boom)
        downstream = rt.submit(lambda x: x, (bad,))
        with pytest.raises(TaskError, match="dependency"):
            rt.get(downstream)

    def test_unknown_ref(self, rt):
        from repro.runtime.object_ref import ObjectRef

        with pytest.raises(KeyError):
            rt.get(ObjectRef("obj-999999"))

    def test_simulator_options_accepted_and_ignored(self, rt):
        ref = rt.submit(
            lambda: 1, compute_cost=1e-3, supported_kinds=frozenset(), name="x"
        )
        assert rt.get(ref) == 1

    def test_tasks_actually_overlap(self):
        with LocalRuntime(max_workers=4) as rt:
            start = time.perf_counter()
            refs = [rt.submit(lambda: time.sleep(0.15)) for _ in range(4)]
            rt.get(refs)
            elapsed = time.perf_counter() - start
            assert elapsed < 0.45  # 4 x 0.15s serially would be 0.6s

    def test_wait(self, rt):
        fast = rt.submit(lambda: "fast")
        slow = rt.submit(lambda: time.sleep(0.2) or "slow")
        ready, not_ready = rt.wait([fast, slow], num_returns=1)
        assert fast in ready
        rt.get([fast, slow])

    def test_shutdown_rejects_new_work(self):
        rt = LocalRuntime(max_workers=1)
        rt.shutdown()
        with pytest.raises(RuntimeError):
            rt.submit(lambda: 1)


class TestActors:
    def test_methods_are_mutually_exclusive(self, rt):
        class Counter:
            def __init__(self):
                self.value = 0

        def unsafe_increment(state):
            current = state.value
            time.sleep(0.001)  # widen the race window
            state.value = current + 1
            return state.value

        actor = rt.create_actor(Counter)
        refs = [actor.call(unsafe_increment) for _ in range(30)]
        rt.get(refs)

        def read(state):
            return state.value

        assert rt.get(actor.call(read)) == 30  # no lost updates

    def test_two_actors_run_concurrently(self):
        with LocalRuntime(max_workers=4) as rt:
            class Sleeper:
                pass

            def nap(state):
                time.sleep(0.15)
                return threading.get_ident()

            a, b = rt.create_actor(Sleeper), rt.create_actor(Sleeper)
            start = time.perf_counter()
            rt.get([a.call(nap), b.call(nap)])
            assert time.perf_counter() - start < 0.28

    def test_actor_receives_ref_arguments(self, rt):
        class Acc:
            def __init__(self):
                self.total = 0

        def add(state, v):
            state.total += v
            return state.total

        actor = rt.create_actor(Acc)
        v = rt.submit(lambda: 7)
        assert rt.get(actor.call(add, v)) == 7


class TestInterop:
    def test_same_program_runs_on_both_backends(self):
        """The portability claim: one task program, two runtimes."""

        def program(runtime):
            a = runtime.put([1, 2, 3])
            doubled = runtime.submit(
                lambda xs: [x * 2 for x in xs], (a,), name="double"
            )
            return runtime.get(
                runtime.submit(lambda xs: sum(xs), (doubled,), name="sum")
            )

        from repro.cluster import build_physical_disagg
        from repro.runtime import ServerlessRuntime

        with LocalRuntime(max_workers=2) as local:
            assert program(local) == 12
        assert program(ServerlessRuntime(build_physical_disagg())) == 12
