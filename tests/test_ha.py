"""Control-plane HA: replicated WAL, election, failover, and fencing.

The GCS was immortal through PR 8; ``repro.runtime.ha`` makes it a chaos
target.  These tests pin the full story end to end:

* a replicated run survives a mid-workload head kill with the exact
  answer, zero lost READY objects, and a bounded unavailability window,
  while the unreplicated baseline demonstrably cannot;
* the election is seeded and deterministic, and the whole failover run
  replays bit-for-bit;
* a network partition (split brain) triggers an election, and the
  deposed leader's view never double-declares live workers dead after
  the failover — fencing epochs keep exactly one writer per epoch;
* WAL replay rebuilds the directory the new leader serves from;
* the chaos schedule extensions (``fail_gcs``, ``n_head_failures``)
  validate loudly and do not perturb legacy seed streams;
* the all-off default (``ha_replicas=0``) builds nothing and replays the
  flagship E17 signature bit-for-bit.
"""

from __future__ import annotations

import importlib.util
import random
import sys
from pathlib import Path

import pytest

from repro.chaos import ChaosMonkey, ChaosSchedule, HeadFailure
from repro.chaos.events import ScheduleValidationError
from repro.cluster import build_serverful
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
    TaskError,
    ValueState,
)
from repro.runtime.raylet import Raylet


def load_bench(name):
    """Import a benchmark scenario module by file path (benchmarks/ is not
    a package; these tests reuse its workload builders)."""
    path = Path(__file__).resolve().parents[1] / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"_ha_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


def ha_config(replicas: int, **overrides) -> RuntimeConfig:
    return RuntimeConfig(
        resolution=ResolutionMode.PULL,
        heartbeat_interval=1e-3,
        heartbeat_miss_threshold=3,
        max_retries=10,
        retry_backoff_base=2e-3,
        ha_replicas=replicas,
        **overrides,
    )


def lane_workload(rt: ServerlessRuntime, lanes: int = 6, depth: int = 4):
    """Chains of small tasks: wide enough to spread across nodes, deep
    enough that a mid-run head kill strands work in every lifecycle state."""
    outs = []
    for lane in range(lanes):
        ref = rt.submit(lambda i=lane: i, name=f"src{lane}", compute_cost=4e-3)
        for d in range(depth):
            ref = rt.submit(
                lambda x: x + 1, args=(ref,), name=f"l{lane}d{d}", compute_cost=4e-3
            )
        outs.append(ref)
    return rt.submit(lambda *xs: sum(xs), args=tuple(outs), name="sum")


def expected_total(lanes: int = 6, depth: int = 4) -> int:
    return sum(i + depth for i in range(lanes))


class TestFailover:
    """Kill the leader mid-workload; the standbys take over."""

    def test_replicated_run_survives_a_head_kill(self):
        rt = ServerlessRuntime(build_serverful(n_servers=5), ha_config(2))
        ChaosMonkey(rt, ChaosSchedule().fail_gcs(at=10e-3)).arm()
        total = rt.get(lane_workload(rt))
        assert total == expected_total()
        assert rt.ha is not None
        assert rt.ha.failovers == 1
        assert rt.ha.epoch == 2
        assert rt.ha.leader_node != "server0"
        report = rt.ha.last_failover_report
        # every READY object whose bytes survived the head is back
        assert report["ready_lost"] == 0
        assert report["ready_restored"] == report["ready_survivable"]
        assert report["wal_records"] > 0
        # unavailability is bounded by election + replay, not the workload
        assert rt.ha.last_unavailability is not None
        assert rt.ha.last_unavailability < 50e-3
        kinds = [e.kind for e in rt.events]
        assert "chaos_head_failure" in kinds
        assert "ha_election_started" in kinds
        assert "ha_leader_elected" in kinds
        assert "ha_failover_complete" in kinds

    def test_failover_run_is_deterministic(self):
        def run():
            rt = ServerlessRuntime(build_serverful(n_servers=5), ha_config(2))
            ChaosMonkey(rt, ChaosSchedule().fail_gcs(at=10e-3)).arm()
            total = rt.get(lane_workload(rt))
            return rt.log.signature(), total

        first = run()
        assert run() == first

    def test_unreplicated_head_kill_loses_the_cluster(self):
        rt = ServerlessRuntime(build_serverful(n_servers=5), ha_config(0))
        ChaosMonkey(rt, ChaosSchedule().fail_gcs(at=10e-3)).arm()
        target = lane_workload(rt)
        with pytest.raises(TaskError, match="control plane lost"):
            rt.get(target)
        assert "gcs_lost" in [e.kind for e in rt.events]

    def test_losing_every_standby_is_fatal_even_when_replicated(self):
        rt = ServerlessRuntime(build_serverful(n_servers=3), ha_config(1))
        # kill the only standby first, then the head: nothing can elect
        sched = ChaosSchedule().crash_node(5e-3, "server1").fail_gcs(at=10e-3)
        ChaosMonkey(rt, sched).arm()
        target = lane_workload(rt, lanes=4, depth=3)
        with pytest.raises(TaskError, match="control plane lost"):
            rt.get(target)
        assert rt.ha is not None and rt.ha.cluster_lost
        assert "ha_cluster_lost" in [e.kind for e in rt.events]

    def test_election_winner_is_the_seeded_draw(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=5), ha_config(3, ha_election_seed=11)
        )
        ChaosMonkey(rt, ChaosSchedule().fail_gcs(at=10e-3)).arm()
        rt.get(lane_workload(rt))
        candidates = sorted(["server1", "server2", "server3"])
        expected = random.Random((11 << 16) ^ 2).choice(candidates)
        assert rt.ha is not None and rt.ha.leader_node == expected

    def test_replicas_must_fit_the_cluster(self):
        with pytest.raises(ValueError, match="ha_replicas"):
            ServerlessRuntime(build_serverful(n_servers=2), ha_config(4))


class TestSplitBrainFencing:
    """A partitioned (not dead) leader is deposed, never obeyed again."""

    def test_partition_triggers_failover_without_double_declaring(self):
        rt = ServerlessRuntime(build_serverful(n_servers=3), ha_config(2))

        def _partition():
            yield rt.sim.timeout(10e-3)
            rt.net.partition({"server0"})
            yield rt.sim.timeout(15e-3)
            rt.net.heal_partition()

        rt.sim.process(_partition(), name="chaos:partition")
        total = rt.get(lane_workload(rt))
        assert total == expected_total()
        assert rt.ha is not None
        assert rt.ha.failovers == 1
        assert rt.ha.epoch == 2
        assert rt.ha.leader_node in ("server1", "server2")
        complete = next(e for e in rt.events if e.kind == "ha_failover_complete")
        # the deposed leader's partition-era suspicions must not outlive it:
        # after the failover no live worker is ever declared dead (the old
        # head itself may be — that is the new monitor's honest verdict)
        for e in rt.events:
            if e.kind == "node_dead" and e.time > complete.time:
                assert e["node"] == "server0"
        # both workers finished work under the new epoch
        assert rt.tasks_finished > 0

    def test_stale_epoch_leases_are_fenced_at_the_raylet(self):
        cluster = build_serverful(n_servers=1)
        dev = cluster.node("server0").devices[0]
        raylet = Raylet(cluster.sim, dev, [dev])
        assert raylet.gcs_epoch == 0
        assert raylet.accepts_epoch(1)
        raylet.observe_epoch(2)
        assert not raylet.accepts_epoch(1)  # a deposed leader's lease
        assert raylet.accepts_epoch(2)
        assert raylet.accepts_epoch(3)
        raylet.observe_epoch(1)  # epochs never move backwards
        assert raylet.gcs_epoch == 2


class TestWalReplay:
    """The WAL is the directory: replaying it rebuilds the control plane."""

    def test_replay_reconstructs_the_ownership_table(self):
        rt = ServerlessRuntime(build_serverful(n_servers=3), ha_config(1))
        rt.get(lane_workload(rt, lanes=3, depth=2))
        assert rt.ha is not None and rt.ha.wal
        before = {
            e.object_id: (e.state, e.nbytes, frozenset(e.locations))
            for e in rt.ownership.objects()
            if e.state is ValueState.READY
        }
        log = list(rt.ha.wal)
        rt.ownership._entries.clear()
        rt._rebuild_control_state(log)
        after = {
            e.object_id: (e.state, e.nbytes, frozenset(e.locations))
            for e in rt.ownership.objects()
            if e.state is ValueState.READY
        }
        assert before == after

    def test_append_noops_while_no_leader_serves(self):
        rt = ServerlessRuntime(build_serverful(n_servers=3), ha_config(1))
        assert rt.ha is not None
        n = len(rt.ha.wal)
        rt.ha.gcs_up = False
        rt.ha.append("node_dead", node="server1")
        assert len(rt.ha.wal) == n  # a dead head cannot make writes durable
        rt.ha.gcs_up = True
        rt.ha.append("node_dead", node="server1")
        assert len(rt.ha.wal) == n + 1
        rec = rt.ha.wal[-1]
        assert rec.epoch == 1 and rec.kind == "node_dead"
        assert rec.get() == {"node": "server1"}


class TestChaosScheduleExtensions:
    """Satellite: ``fail_gcs`` validates loudly, legacy seeds stay stable."""

    def test_negative_injection_time_rejected(self):
        with pytest.raises(ScheduleValidationError, match="negative injection time"):
            ChaosSchedule().fail_gcs(at=-1e-3).validate()

    def test_non_positive_restart_window_rejected(self):
        with pytest.raises(ScheduleValidationError, match="restart_after"):
            ChaosSchedule().fail_gcs(at=0.1, restart_after=0.0).validate()

    def test_random_draws_head_failures(self):
        kwargs = dict(node_ids=["server0", "server1"], horizon=1.0, n_crashes=0,
                      n_partitions=0, n_stragglers=0, n_head_failures=2)
        a = ChaosSchedule.random(3, **kwargs)
        assert a.ordered() == ChaosSchedule.random(3, **kwargs).ordered()
        assert sum(isinstance(f, HeadFailure) for f in a) == 2

    def test_head_failure_draws_do_not_perturb_old_seeds(self):
        """Head-kill draws are appended last, so a legacy seed with the new
        count at zero yields the bit-identical legacy schedule."""
        kwargs = dict(
            node_ids=["server1", "server2"],
            device_ids=["server1/cpu"],
            horizon=1.0,
            n_crashes=2,
            n_stragglers=1,
            n_device_failures=1,
        )
        legacy = ChaosSchedule.random(7, **kwargs)
        extended = ChaosSchedule.random(7, n_head_failures=0, **kwargs)
        assert legacy.ordered() == extended.ordered()


class TestAllOffEquivalence:
    """``ha_replicas=0`` builds nothing and changes nothing."""

    def test_default_config_builds_no_controller(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(resolution=ResolutionMode.PULL),
        )
        assert rt.ha is None

    def test_e17_signature_is_bit_identical_with_ha_off(self):
        e17 = load_bench("test_e17_chaos_soak")
        legacy = e17.run_soak(e17.SEED, chaos=True)
        gated = e17.run_soak(e17.SEED, chaos=True, ha_replicas=0)
        assert legacy["signature"] == gated["signature"]
        assert legacy["answer"] == gated["answer"]
        assert legacy["makespan"] == gated["makespan"]
