"""Tests for the distributed caching layer (location-transparent KV)."""

from __future__ import annotations

import pytest

from repro.caching.replication import ErasureCode, ReplicationScheme
from repro.caching.store import CacheNode, CachingLayer, ObjectLostError
from repro.caching.tiers import TieredCache, TierSpec


def make_layer(n=4, redundancy=None) -> CachingLayer:
    nodes = [
        CacheNode(f"n{i}", TieredCache([TierSpec("dram", 1 << 30, 1e10, 1e10, 1e-6)]))
        for i in range(n)
    ]
    return CachingLayer(nodes, redundancy=redundancy)


class TestSingleCopy:
    def test_put_get_round_trip(self):
        layer = make_layer()
        layer.put("k", {"v": 1})
        value, elapsed = layer.get("k")
        assert value == {"v": 1}
        assert elapsed >= 0

    def test_preferred_node_placement(self):
        layer = make_layer()
        layer.put("k", "v", preferred_node="n2")
        assert layer.locations("k") == ["n2"]

    def test_cross_node_read_costs_more(self):
        layer = make_layer()
        layer.put("k", b"x" * (1 << 20), nbytes=1 << 20, preferred_node="n0")
        _, local = layer.get("k", at_node="n0")
        _, remote = layer.get("k", at_node="n3")
        assert remote > local

    def test_lost_without_redundancy(self):
        layer = make_layer()
        layer.put("k", "v", preferred_node="n1")
        layer.fail_node("n1")
        with pytest.raises(ObjectLostError):
            layer.get("k")

    def test_migrate_moves_single_copy(self):
        layer = make_layer()
        layer.put("k", "v", preferred_node="n0")
        cost = layer.migrate("k", "n3")
        assert cost > 0
        assert layer.locations("k") == ["n3"]
        assert layer.get("k", at_node="n3")[0] == "v"

    def test_migrate_to_same_node_is_free(self):
        layer = make_layer()
        layer.put("k", "v", preferred_node="n0")
        assert layer.migrate("k", "n0") == 0.0

    def test_delete(self):
        layer = make_layer()
        layer.put("k", "v")
        assert layer.delete("k") is True
        assert layer.delete("k") is False
        assert not layer.contains("k")

    def test_overwrite(self):
        layer = make_layer()
        layer.put("k", "old")
        layer.put("k", "new")
        assert layer.get("k")[0] == "new"

    def test_storage_overhead_is_one(self):
        assert make_layer().storage_overhead() == 1.0


class TestReplicated:
    def test_survives_factor_minus_one_failures(self):
        layer = make_layer(4, redundancy=ReplicationScheme(3))
        layer.put("k", [1, 2, 3])
        locs = layer.locations("k")
        assert len(locs) == 3
        layer.fail_node(locs[0])
        layer.fail_node(locs[1])
        assert layer.get("k")[0] == [1, 2, 3]

    def test_all_replicas_lost_raises(self):
        layer = make_layer(3, redundancy=ReplicationScheme(2))
        layer.put("k", "v")
        for node in layer.locations("k"):
            layer.fail_node(node)
        with pytest.raises(ObjectLostError):
            layer.get("k")

    def test_storage_overhead(self):
        layer = make_layer(4, redundancy=ReplicationScheme(2))
        assert layer.storage_overhead() == 2.0


class TestErasureCoded:
    def test_survives_m_failures(self):
        layer = make_layer(6, redundancy=ErasureCode(4, 2))
        layer.put("k", {"big": list(range(100))})
        layer.fail_node("n0")
        layer.fail_node("n3")
        assert layer.get("k")[0] == {"big": list(range(100))}

    def test_overhead_below_replication(self):
        layer = make_layer(6, redundancy=ErasureCode(4, 2))
        assert layer.storage_overhead() == pytest.approx(1.5)
        assert layer.storage_overhead() < 2.0

    def test_fewer_nodes_than_shards_wraps(self):
        layer = make_layer(3, redundancy=ErasureCode(4, 2))
        layer.put("k", "v")
        assert layer.get("k")[0] == "v"

    def test_recover_node_comes_back_empty(self):
        layer = make_layer(4, redundancy=ReplicationScheme(2))
        layer.put("k", "v")
        victim = layer.locations("k")[0]
        layer.fail_node(victim)
        layer.recover_node(victim)
        assert victim not in layer.locations("k")
        assert layer.get("k")[0] == "v"  # other replica still serves


class TestValidation:
    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            CachingLayer([])

    def test_duplicate_node_ids(self):
        with pytest.raises(ValueError):
            CachingLayer([CacheNode("a"), CacheNode("a")])

    def test_unknown_node(self):
        layer = make_layer()
        with pytest.raises(KeyError):
            layer.node("ghost")

    def test_unknown_key(self):
        layer = make_layer()
        with pytest.raises(KeyError):
            layer.get("ghost")
        with pytest.raises(KeyError):
            layer.locations("ghost")

    def test_migrate_redundant_object_rejected(self):
        layer = make_layer(4, redundancy=ReplicationScheme(2))
        layer.put("k", "v")
        with pytest.raises(ValueError, match="single-copy"):
            layer.migrate("k", "n0")

    def test_size_of(self):
        layer = make_layer()
        layer.put("k", b"12345", nbytes=5)
        assert layer.size_of("k") == 5
