"""Pass-level miscompile bisection and per-pass statistics.

Three deliberately miscompiling passes — each breaking a different
invariant — must each be attributed by name, even when interleaved with
the healthy pipeline."""

import pytest

from repro.analysis import MiscompileReport, bisect_miscompile, clone_function
from repro.ir import (
    Builder,
    CommonSubexpressionElimination,
    ConstantFold,
    DeadCodeElimination,
    FuseElementwise,
    MiscompileError,
    PassManager,
)
from repro.ir.passes import Pass, PassStats
from repro.ir.types import TensorType


def _tensor(n=4):
    return TensorType((n,), "float64")


def _chain():
    b = Builder("victim")
    x = b.add_param("x", _tensor())
    add = b.emit("linalg", "add", [x, x])
    relu = b.emit("linalg", "relu", [add.result()])
    exp = b.emit("linalg", "exp", [relu.result()])
    return b.ret(exp.result())


class DropsNeededOp(Pass):
    """Miscompile #1: deletes an op whose result is still used."""

    name = "drops-needed-op"

    def run(self, func, stats):
        for index, op in enumerate(func.ops):
            if op.name == "add":
                del func.ops[index]
                return True
        return False


class CorruptsResultType(Pass):
    """Miscompile #2: rewrites a result type behind inference's back."""

    name = "corrupts-result-type"

    def run(self, func, stats):
        for op in func.ops:
            if op.name == "relu" and op.result().type.dtype != "int32":
                op.result().type = TensorType((4,), "int32")
                return True
        return False


class DuplicatesResult(Pass):
    """Miscompile #3: makes two ops claim the same SSA value."""

    name = "duplicates-result"

    def run(self, func, stats):
        for op in func.ops:
            if op.name == "exp" and op.results[0] is not func.ops[0].results[0]:
                op.results = [func.ops[0].results[0]]
                return True
        return False


@pytest.mark.parametrize(
    "bad_pass, cause_fragment",
    [
        (DropsNeededOp(), "defined by a different function"),
        (CorruptsResultType(), "inference says"),
        (DuplicatesResult(), "duplicate result value"),
    ],
    ids=["drops-op", "corrupts-type", "duplicates-result"],
)
def test_each_seeded_miscompile_is_attributed(bad_pass, cause_fragment):
    func = _chain()
    passes = [ConstantFold(), CommonSubexpressionElimination(), bad_pass]
    report = bisect_miscompile(func, passes=passes)
    assert report is not None
    assert report.pass_name == bad_pass.name
    assert cause_fragment in report.cause
    # the non-destructive default leaves the input verifiable
    func.verify()


def test_report_diff_shows_the_guilty_rewrite():
    report = bisect_miscompile(_chain(), passes=[DropsNeededOp()])
    diff = report.diff()
    assert "-  %v0 = linalg.add(%x, %x)" in diff
    assert "before drops-needed-op" in diff
    assert "linalg.add" in report.render()


def test_clean_pipeline_reports_nothing():
    assert bisect_miscompile(_chain()) is None


def test_passmanager_verify_each_raises_named_error():
    func = _chain()
    manager = PassManager(
        [DeadCodeElimination(), CorruptsResultType()], verify_each=True
    )
    with pytest.raises(MiscompileError) as info:
        manager.run(func)
    assert info.value.pass_name == "corrupts-result-type"
    assert info.value.function_name == "victim"
    assert "relu" in info.value.after_text


def test_without_verify_each_the_break_surfaces_late():
    """The contrast bisection exists for: the plain manager only notices at
    the final whole-function verify, with no pass attribution."""
    func = _chain()
    manager = PassManager([CorruptsResultType()])
    with pytest.raises(MiscompileError) as info_each:
        PassManager([CorruptsResultType()], verify_each=True).run(_chain())
    assert info_each.value.pass_name == "corrupts-result-type"
    try:
        manager.run(func)
    except MiscompileError:  # pragma: no cover - would defeat the contrast
        pytest.fail("plain run must not produce a pass-attributed error")
    except Exception as exc:
        assert not isinstance(exc, MiscompileError)


def test_in_place_keeps_broken_ir_for_inspection():
    func = _chain()
    report = bisect_miscompile(func, passes=[DropsNeededOp()], in_place=True)
    assert report is not None
    assert all(op.name != "add" for op in func.ops)  # the bad rewrite stuck


def test_clone_function_is_deep_and_equivalent():
    func = _chain()
    copy = clone_function(func)
    assert copy.to_text() == func.to_text()
    assert copy.ops[0] is not func.ops[0]
    assert copy.ops[0].results[0] is not func.ops[0].results[0]
    copy.verify()
    # mutating the clone leaves the original alone
    del copy.ops[0]
    func.verify()


def test_miscompile_report_from_error_roundtrip():
    func = _chain()
    try:
        PassManager([DropsNeededOp()], verify_each=True).run(func)
    except MiscompileError as exc:
        report = MiscompileReport.from_error(exc)
        assert report.pass_name == exc.pass_name
        assert report.before_text != report.after_text
    else:
        pytest.fail("expected a miscompile")


# -- per-pass statistics (the PassManager satellite) -----------------------------


def test_per_pass_stats_are_separated():
    b = Builder("stats")
    x = b.add_param("x", _tensor())
    b.emit("linalg", "add", [x, x])  # CSE removes this duplicate...
    a2 = b.emit("linalg", "add", [x, x])
    b.emit("linalg", "exp", [x])  # DCE victim
    r = b.emit("linalg", "relu", [a2.result()])  # ...then add+relu fuse
    func = b.ret(r.result())

    stats = PassManager().run(func)
    assert stats.per_pass["cse"].ops_removed >= 1
    assert stats.per_pass["dce"].ops_removed >= 1
    assert stats.per_pass["fuse-elementwise"].ops_fused >= 1
    assert stats.per_pass["constant-fold"].ops_removed == 0
    # the aggregate equals the sum of the per-pass counters
    assert stats.ops_removed == sum(
        s.ops_removed for s in stats.per_pass.values()
    )
    assert stats.ops_fused == sum(s.ops_fused for s in stats.per_pass.values())


def test_for_pass_creates_and_reuses_substats():
    stats = PassStats()
    first = stats.for_pass("dce")
    first.ops_removed = 3
    assert stats.for_pass("dce") is first
    stats.aggregate()
    assert stats.ops_removed == 3
