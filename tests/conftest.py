"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import customers_table, orders_table
from repro.caching.columnar import RecordBatch
from repro.cluster.cluster import build_physical_disagg, build_serverful
from repro.cluster.simtime import Simulator
from repro.ir.types import FrameType


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_batch() -> RecordBatch:
    return RecordBatch.from_pydict(
        {
            "k": [0, 1, 0, 1, 2],
            "x": [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    )


@pytest.fixture
def orders() -> RecordBatch:
    return orders_table(1000, num_customers=50, seed=7)


@pytest.fixture
def customers() -> RecordBatch:
    return customers_table(50, num_regions=4, seed=8)


@pytest.fixture
def catalog() -> dict:
    return {
        "orders": FrameType(
            (
                ("oid", "int64"),
                ("cust", "int64"),
                ("amount", "float64"),
                ("qty", "int64"),
            )
        ),
        "customers": FrameType(
            (("cid", "int64"), ("region", "int64"), ("credit", "float64"))
        ),
    }


@pytest.fixture
def phys_cluster():
    return build_physical_disagg()


@pytest.fixture
def server_cluster():
    return build_serverful(n_servers=3)


def assert_batches_close(a: RecordBatch, b: RecordBatch, rtol: float = 1e-9) -> None:
    """Schema-equal and numerically close (float sums are order-sensitive)."""
    assert a.schema == b.schema, f"{a.schema!r} != {b.schema!r}"
    assert a.num_rows == b.num_rows
    for name in a.schema.names:
        ca, cb = a.column(name), b.column(name)
        if ca.dtype.kind == "f":
            np.testing.assert_allclose(ca, cb, rtol=rtol)
        else:
            np.testing.assert_array_equal(ca, cb)
