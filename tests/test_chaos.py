"""Tests for repro.chaos: schedules, injection, detection, self-healing."""

from __future__ import annotations

import pytest

from repro.caching.replication import ReplicationScheme
from repro.chaos import (
    BladeFailure,
    ChaosMonkey,
    ChaosSchedule,
    DeviceFailure,
    DpuFailure,
    MessageLoss,
    NetworkPartition,
    NodeCrash,
    ScheduleValidationError,
    Straggler,
)
from repro.cluster.cluster import build_serverful
from repro.cluster.hardware import DeviceKind
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime
from repro.runtime.runtime import make_reliable_cache


def chaos_config(**overrides):
    """A runtime config tuned so retry budgets span the detection window."""
    base = dict(
        resolution=ResolutionMode.PULL,
        heartbeat_interval=1e-3,
        heartbeat_miss_threshold=3,
        max_retries=10,
        retry_backoff_base=2e-3,
    )
    base.update(overrides)
    return RuntimeConfig(**base)


def cpu_of(cluster, node_id):
    return cluster.node(node_id).first_of_kind(DeviceKind.CPU)


class TestChaosSchedule:
    def test_fluent_builders_validate(self):
        sched = ChaosSchedule()
        sched.crash_node(0.5, "server1", restart_after=0.2)
        sched.partition(0.3, [["server1", "server2"]], heal_after=0.1)
        sched.slow_device(0.1, "server0/cpu0", 8.0, duration=0.2)
        with pytest.raises(ValueError):
            sched.slow_device(0.1, "server0/cpu0", 0.5)
        with pytest.raises(ValueError):
            sched.degrade_link(0.1, "a", "b", 0.9)
        with pytest.raises(ValueError):
            sched.lose_messages(0.1, 1.5)
        assert len(sched) == 3

    def test_ordered_sorts_by_time(self):
        sched = (
            ChaosSchedule()
            .crash_node(0.9, "n1")
            .slow_device(0.1, "d0", 2.0)
            .partition(0.5, [["n1"]])
        )
        kinds = [type(f).__name__ for f in sched.ordered()]
        assert kinds == ["Straggler", "NetworkPartition", "NodeCrash"]

    def test_random_is_seed_deterministic(self):
        kwargs = dict(
            node_ids=["server1", "server2", "server3"],
            device_ids=["server1/cpu0", "server2/cpu0"],
            horizon=1.0,
            n_crashes=2,
            n_partitions=1,
            n_stragglers=1,
            message_loss_rate=0.1,
        )
        a = ChaosSchedule.random(7, **kwargs)
        b = ChaosSchedule.random(7, **kwargs)
        c = ChaosSchedule.random(8, **kwargs)
        assert a.ordered() == b.ordered()
        assert a.ordered() != c.ordered()
        assert sum(isinstance(f, NodeCrash) for f in a) == 2
        assert sum(isinstance(f, NetworkPartition) for f in a) == 1
        assert sum(isinstance(f, Straggler) for f in a) == 1
        assert sum(isinstance(f, MessageLoss) for f in a) == 1

    def test_random_needs_nodes(self):
        with pytest.raises(ValueError):
            ChaosSchedule.random(1, node_ids=[], horizon=1.0)

    def test_random_draws_device_granular_faults(self):
        kwargs = dict(
            node_ids=["server1"],
            device_ids=["gpucard0/gpu0"],
            horizon=1.0,
            n_crashes=0,
            n_partitions=0,
            n_stragglers=0,
            n_device_failures=2,
            blade_ids=["memblade0"],
            n_blade_failures=1,
            dpu_ids=["gpucard0"],
            n_dpu_failures=1,
        )
        a = ChaosSchedule.random(5, **kwargs)
        assert a.ordered() == ChaosSchedule.random(5, **kwargs).ordered()
        assert sum(isinstance(f, DeviceFailure) for f in a) == 2
        assert sum(isinstance(f, BladeFailure) for f in a) == 1
        assert sum(isinstance(f, DpuFailure) for f in a) == 1

    def test_new_fault_draws_do_not_perturb_old_seeds(self):
        """Device-granular draws are appended last, so a legacy seed with
        the new counts at zero yields the bit-identical legacy schedule."""
        kwargs = dict(
            node_ids=["server1", "server2"],
            device_ids=["server1/cpu"],
            horizon=1.0,
            n_crashes=2,
            n_stragglers=1,
        )
        legacy = ChaosSchedule.random(7, **kwargs)
        extended = ChaosSchedule.random(
            7, n_device_failures=0, n_blade_failures=0, n_dpu_failures=0, **kwargs
        )
        assert legacy.ordered() == extended.ordered()


class TestScheduleValidation:
    """Satellite: malformed schedules fail loudly at ``arm()`` time."""

    def test_negative_injection_time_rejected(self):
        sched = ChaosSchedule().crash_node(-0.1, "server1")
        with pytest.raises(ScheduleValidationError, match="negative injection time"):
            sched.validate()

    def test_non_positive_recovery_window_rejected(self):
        for sched in (
            ChaosSchedule().fail_device(0.1, "d0", recover_after=0.0),
            ChaosSchedule().fail_blade(0.1, "b0", recover_after=-1e-3),
            ChaosSchedule().fail_dpu(0.1, "c0", recover_after=0.0),
            ChaosSchedule().crash_node(0.1, "n0", restart_after=-0.5),
        ):
            with pytest.raises(ScheduleValidationError, match="must be > 0"):
                sched.validate()

    def test_unknown_node_rejected_at_arm(self):
        rt = ServerlessRuntime(build_serverful(n_servers=2), chaos_config())
        sched = ChaosSchedule().crash_node(1e-3, "server9")
        with pytest.raises(ScheduleValidationError, match="unknown node 'server9'"):
            ChaosMonkey(rt, sched).arm()

    def test_unknown_device_rejected_at_arm(self):
        rt = ServerlessRuntime(build_serverful(n_servers=2), chaos_config())
        sched = ChaosSchedule().fail_device(1e-3, "server0/tpu0")
        with pytest.raises(ScheduleValidationError, match="unknown device"):
            ChaosMonkey(rt, sched).arm()

    def test_unknown_blade_and_partition_member_rejected(self):
        rt = ServerlessRuntime(build_serverful(n_servers=2), chaos_config())
        with pytest.raises(ScheduleValidationError, match="unknown node"):
            ChaosMonkey(rt, ChaosSchedule().fail_blade(1e-3, "memblade7")).arm()
        with pytest.raises(ScheduleValidationError, match="unknown node"):
            ChaosMonkey(rt, ChaosSchedule().partition(1e-3, [["ghost"]])).arm()

    def test_valid_schedule_arms_and_nothing_fires_early(self):
        rt = ServerlessRuntime(build_serverful(n_servers=2), chaos_config())
        sched = (
            ChaosSchedule()
            .crash_node(1.0, "server1", restart_after=0.1)
            .fail_device(1.0, "server1/cpu", recover_after=0.1)
        )
        monkey = ChaosMonkey(rt, sched).arm()
        assert rt.get(rt.submit(lambda: 1, compute_cost=1e-3)) == 1
        # the faults fired at their pinned times, long after the workload
        assert all(fault.at == 1.0 for fault in monkey.injected)

    def test_id_checks_skipped_without_directory(self):
        # a schedule validated standalone (no cluster directory) still gets
        # the structural checks, but unknown-id checks need the monkey
        sched = ChaosSchedule().fail_device(0.1, "anything/goes")
        sched.validate()  # no error: ids unchecked
        with pytest.raises(ScheduleValidationError):
            sched.validate(device_ids=["real/device"])


class TestHeartbeatDetection:
    def test_crash_is_detected_not_announced(self):
        """A chaos crash tells the control plane nothing; heartbeats do."""
        rt = ServerlessRuntime(build_serverful(n_servers=3), chaos_config())
        monkey = ChaosMonkey(rt, ChaosSchedule().crash_node(2e-3, "server1")).arm()
        refs = [
            rt.submit(lambda i=i: i * i, compute_cost=5e-3, name=f"sq{i}")
            for i in range(12)
        ]
        assert rt.get(refs) == [i * i for i in range(12)]
        assert rt.tasks_failed == 0
        assert rt.log.count("node_suspected") >= 1
        assert rt.log.of_kind("node_suspected")[0]["node"] == "server1"
        # the only node_dead verdicts came from the detector, not the driver
        assert all(
            ev["cause"] == "missed heartbeats" for ev in rt.log.of_kind("node_dead")
        )
        assert rt.scheduler.is_blacklisted(cpu_of(rt.cluster, "server1").device_id)
        assert rt.health is not None and rt.health.beats_received > 0
        assert monkey.injected  # the crash actually fired

    def test_restarted_node_is_unsuspected_by_a_beat(self):
        rt = ServerlessRuntime(build_serverful(n_servers=3), chaos_config())
        schedule = ChaosSchedule().crash_node(2e-3, "server1", restart_after=6e-3)
        ChaosMonkey(rt, schedule).arm()
        refs = [
            rt.submit(lambda i=i: i + 100, compute_cost=2e-2, name=f"t{i}")
            for i in range(9)
        ]
        assert rt.get(refs) == [i + 100 for i in range(9)]
        assert rt.log.count("node_suspected") >= 1
        assert rt.log.count("node_unsuspected") >= 1
        assert not rt.scheduler.is_blacklisted(cpu_of(rt.cluster, "server1").device_id)

    def test_heartbeats_pay_for_messages(self):
        rt = ServerlessRuntime(build_serverful(n_servers=2), chaos_config())
        ref = rt.submit(lambda: 1, compute_cost=1e-2)
        assert rt.get(ref) == 1
        assert rt.health.beats_sent > 0
        # heartbeats ride the same accounted control plane as everything else
        assert rt.net.stats.messages > rt.health.beats_sent

    def test_heartbeats_off_by_default(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(resolution=ResolutionMode.PULL),
        )
        assert rt.health is None
        assert rt.get(rt.submit(lambda: 5)) == 5


class TestRetriesUnderChaos:
    def test_partition_drops_leases_until_heal(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(
                resolution=ResolutionMode.PULL, max_retries=10, retry_backoff_base=2e-3
            ),
        )
        schedule = ChaosSchedule().partition(0.0, [["server1"]], heal_after=5e-3)
        ChaosMonkey(rt, schedule).arm()
        cpu1 = cpu_of(rt.cluster, "server1")
        ref = rt.submit(
            lambda: "made it", compute_cost=1e-3, pinned_device=cpu1.device_id
        )
        assert rt.get(ref) == "made it"
        assert rt.tasks_retried >= 1
        assert rt.net.stats.dropped_messages >= 1
        assert not rt.net.partitioned  # healed

    def test_message_loss_is_absorbed_by_retries(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(
                resolution=ResolutionMode.PULL, max_retries=10, retry_backoff_base=2e-3
            ),
        )
        schedule = ChaosSchedule().lose_messages(0.0, 0.7, duration=1e-2, seed=99)
        ChaosMonkey(rt, schedule).arm()
        refs = [
            rt.submit(lambda i=i: i * 3, compute_cost=2e-3, name=f"m{i}")
            for i in range(6)
        ]
        assert rt.get(refs) == [i * 3 for i in range(6)]
        assert rt.net.stats.dropped_messages >= 1
        assert rt.tasks_failed == 0

    def test_retries_exhaust_into_permanent_failure(self):
        from repro.runtime import TaskError

        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(
                resolution=ResolutionMode.PULL, max_retries=2, retry_backoff_base=1e-4
            ),
        )
        # a partition that never heals: the pinned task can never be leased
        ChaosMonkey(rt, ChaosSchedule().partition(0.0, [["server1"]])).arm()
        cpu1 = cpu_of(rt.cluster, "server1")
        ref = rt.submit(lambda: 1, compute_cost=1e-3, pinned_device=cpu1.device_id)
        with pytest.raises(TaskError, match="gave up after 2 retries"):
            rt.get(ref)
        assert rt.tasks_failed == 1
        assert rt.log.count("task_failed") == 1


class TestStragglersAndSpeculation:
    def test_speculative_copy_beats_straggler(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(resolution=ResolutionMode.PULL, speculation_factor=4.0),
        )
        slow = cpu_of(rt.cluster, "server0")
        ChaosMonkey(rt, ChaosSchedule().slow_device(0.0, slow.device_id, 50.0)).arm()
        ref = rt.submit(lambda: "answer", compute_cost=5e-3, name="victim")
        assert rt.get(ref) == "answer"
        assert rt.log.count("speculate") == 1
        tl = rt.timeline_of(ref)
        # the backup finished in ~1x task time, nowhere near the 50x straggle
        assert tl.finished < 5e-3 * 10
        assert tl.device_id != slow.device_id
        assert rt.tasks_finished == 1  # the loser did not double-count

    def test_no_speculation_without_straggle(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(resolution=ResolutionMode.PULL, speculation_factor=4.0),
        )
        refs = [rt.submit(lambda i=i: i, compute_cost=1e-3) for i in range(4)]
        assert rt.get(refs) == [0, 1, 2, 3]
        assert rt.log.count("speculate") == 0

    def test_task_timeout_interrupts_and_retries(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(
                resolution=ResolutionMode.PULL,
                task_timeout=2e-2,
                max_retries=3,
                retry_backoff_base=1e-4,
            ),
        )
        slow = cpu_of(rt.cluster, "server0")
        # straggle ends after 30ms: attempt 1 times out at 20ms, the retry
        # lands after the device recovered and completes at full speed
        sched = ChaosSchedule().slow_device(0.0, slow.device_id, 100.0, duration=3e-2)
        ChaosMonkey(rt, sched).arm()
        ref = rt.submit(
            lambda: "eventually", compute_cost=5e-3, pinned_device=slow.device_id
        )
        assert rt.get(ref) == "eventually"
        assert rt.log.count("task_timeout") >= 1
        assert rt.tasks_retried >= 1


class TestActorReconstruction:
    class _Auditor:
        def __init__(self):
            self.seen = set()

    @staticmethod
    def _mark(state, i):
        state.seen.add(i)  # idempotent: at-least-once re-execution is safe
        return len(state.seen)

    @staticmethod
    def _size(state):
        return len(state.seen)

    def _runtime(self):
        cluster = build_serverful(n_servers=3)
        cache = make_reliable_cache(cluster, ReplicationScheme(2))
        return ServerlessRuntime(cluster, chaos_config(), reliable_cache=cache)

    def test_actor_restarts_from_checkpoint_on_surviving_node(self):
        rt = self._runtime()
        home = cpu_of(rt.cluster, "server1")
        actor = rt.create_actor(self._Auditor, pinned_device=home.device_id)
        ChaosMonkey(rt, ChaosSchedule().crash_node(5e-3, "server1")).arm()
        refs = [actor.call(self._mark, i, compute_cost=2e-3) for i in range(10)]
        rt.get(refs)
        assert rt.get(actor.call(self._size)) == 10  # no marks lost
        assert rt.actor_restarts == 1
        assert rt.log.count("actor_restart") == 1
        new_home = actor.device_id
        assert rt.cluster.node_of_device(new_home).node_id != "server1"
        assert not rt._dead_actors

    def test_actor_dies_without_checkpoint(self):
        from repro.runtime import TaskError

        rt = ServerlessRuntime(build_serverful(n_servers=3), chaos_config())
        home = cpu_of(rt.cluster, "server1")
        actor = rt.create_actor(self._Auditor, pinned_device=home.device_id)
        ChaosMonkey(rt, ChaosSchedule().crash_node(2e-3, "server1")).arm()
        ref = actor.call(self._mark, 1, compute_cost=2e-2)
        with pytest.raises(TaskError, match="actor .* is dead"):
            rt.get(ref)
        assert actor.actor_id in rt._dead_actors
        assert rt.log.count("actor_dead") == 1


class TestDeterminism:
    def _soak(self, seed):
        cluster = build_serverful(n_servers=3)
        cache = make_reliable_cache(cluster, ReplicationScheme(2))
        rt = ServerlessRuntime(cluster, chaos_config(), reliable_cache=cache)
        schedule = ChaosSchedule.random(
            seed,
            node_ids=["server1", "server2"],
            device_ids=[cpu_of(cluster, "server2").device_id],
            horizon=2e-2,
            n_crashes=1,
            n_partitions=1,
            n_stragglers=1,
        )
        ChaosMonkey(rt, schedule).arm()
        lanes = []
        for lane in range(4):
            ref = rt.submit(lambda lane=lane: lane, compute_cost=3e-3)
            for _ in range(3):
                ref = rt.submit(lambda x: x + 1, (ref,), compute_cost=3e-3)
            lanes.append(ref)
        total = rt.submit(lambda *xs: sum(xs), tuple(lanes), compute_cost=1e-3)
        assert rt.get(total) == sum(lane + 3 for lane in range(4))
        return rt.log.signature(), rt.sim.now

    def test_same_seed_same_event_trace(self):
        sig_a, now_a = self._soak(42)
        sig_b, now_b = self._soak(42)
        assert sig_a == sig_b
        assert now_a == now_b

    def test_different_seed_different_trace(self):
        sig_a, _ = self._soak(42)
        sig_c, _ = self._soak(43)
        assert sig_a != sig_c


class TestReactiveInjection:
    def test_crash_on_object_ready_fires_once(self):
        rt = ServerlessRuntime(build_serverful(n_servers=3), chaos_config())
        monkey = ChaosMonkey(rt, ChaosSchedule())
        monkey.arm()
        a = rt.submit(lambda: 1, compute_cost=2e-3, name="trigger")
        monkey.crash_on_object_ready(a.object_id, "server2")
        b = rt.submit(lambda x: x + 1, (a,), compute_cost=2e-3)
        assert rt.get(b) == 2
        crashes = [f for f in monkey.injected if isinstance(f, NodeCrash)]
        assert len(crashes) == 1 and crashes[0].node_id == "server2"

    def test_double_arm_rejected(self):
        rt = ServerlessRuntime(build_serverful(n_servers=2), chaos_config())
        monkey = ChaosMonkey(rt, ChaosSchedule())
        monkey.arm()
        with pytest.raises(RuntimeError):
            monkey.arm()
