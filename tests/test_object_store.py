"""Tests for the plasma-like per-device object store."""

from __future__ import annotations

import pytest

from repro.cluster.hardware import FPGA_SPEC, MEMORY_BLADE_SPEC, Device
from repro.runtime.object_store import (
    LocalObjectStore,
    ObjectStoreFullError,
    SpillFailedError,
    StoreUnavailableError,
)


def small_device(sim, capacity=1000):
    return Device(
        sim, FPGA_SPEC.with_overrides(memory_bytes=capacity), node_id="card0"
    )


class TestBasics:
    def test_put_get(self, sim):
        store = LocalObjectStore(small_device(sim))
        record, spilled = store.put("o1", {"v": 1}, 100)
        assert spilled == 0
        assert store.get("o1").value == {"v": 1}
        assert store.contains("o1")
        assert store.used_bytes == 100
        assert len(store) == 1

    def test_duplicate_put_rejected(self, sim):
        store = LocalObjectStore(small_device(sim))
        store.put("o1", 1, 10)
        with pytest.raises(KeyError, match="already"):
            store.put("o1", 2, 10)

    def test_missing_get_raises(self, sim):
        store = LocalObjectStore(small_device(sim))
        with pytest.raises(KeyError):
            store.get("ghost")

    def test_delete_frees_device_memory(self, sim):
        device = small_device(sim)
        store = LocalObjectStore(device)
        store.put("o1", 1, 400)
        assert device.memory_used == 400
        assert store.delete("o1") is True
        assert device.memory_used == 0
        assert store.delete("o1") is False

    def test_clear_on_failure(self, sim):
        device = small_device(sim)
        store = LocalObjectStore(device)
        store.put("a", 1, 100)
        store.put("b", 2, 100)
        store.clear()
        assert len(store) == 0
        assert device.memory_used == 0


class TestSpill:
    def test_spills_lru_to_target(self, sim):
        blade = LocalObjectStore(Device(sim, MEMORY_BLADE_SPEC, node_id="blade"))
        store = LocalObjectStore(small_device(sim, capacity=250), spill_target=blade)
        store.put("a", "A", 100)
        store.put("b", "B", 100)
        store.get("a")  # touch: b becomes LRU victim
        store.put("c", "C", 100)
        assert not store.contains("b")
        assert blade.get("b").value == "B"
        assert store.spilled_out == 1
        assert store.spilled_bytes == 100

    def test_full_without_spill_target_raises(self, sim):
        store = LocalObjectStore(small_device(sim, capacity=150))
        store.put("a", 1, 100)
        with pytest.raises(ObjectStoreFullError, match="no spill target"):
            store.put("b", 2, 100)

    def test_object_bigger_than_device_raises(self, sim):
        blade = LocalObjectStore(Device(sim, MEMORY_BLADE_SPEC, node_id="blade"))
        store = LocalObjectStore(small_device(sim, capacity=100), spill_target=blade)
        with pytest.raises(ObjectStoreFullError, match="empty store"):
            store.put("huge", 1, 1000)

    def test_multi_spill_until_fits(self, sim):
        blade = LocalObjectStore(Device(sim, MEMORY_BLADE_SPEC, node_id="blade"))
        store = LocalObjectStore(small_device(sim, capacity=300), spill_target=blade)
        for i in range(3):
            store.put(f"o{i}", i, 100)
        store.put("big", "B", 250)
        assert store.contains("big")
        assert len(blade) >= 2


def tiny_blade(sim, capacity):
    return LocalObjectStore(
        Device(
            sim,
            MEMORY_BLADE_SPEC.with_overrides(memory_bytes=capacity),
            node_id="blade",
        )
    )


class TestSpillCrashConsistency:
    """Satellite: a failed spill must never destroy the victim — the write
    to the spill target happens *before* the local delete."""

    def test_full_spill_target_raises_typed_error_and_retains_victim(self, sim):
        blade = tiny_blade(sim, capacity=50)
        device = small_device(sim, capacity=250)
        store = LocalObjectStore(device, spill_target=blade)
        store.put("a", "A", 100)
        store.put("b", "B", 100)
        with pytest.raises(SpillFailedError, match="victim retained"):
            store.put("c", "C", 100)
        # the victim is intact locally, nothing landed on the blade, and
        # neither store's memory ledger drifted
        assert store.contains("a") and store.contains("b")
        assert not store.contains("c")
        assert not blade.contains("a")
        assert store.used_bytes == 200
        assert device.memory_used == 200
        assert store.spilled_out == 0

    def test_dead_spill_target_raises_typed_error(self, sim):
        blade = tiny_blade(sim, capacity=1000)
        store = LocalObjectStore(small_device(sim, capacity=150), spill_target=blade)
        store.put("a", "A", 100)
        blade.device.fail()
        with pytest.raises(SpillFailedError, match="victim retained"):
            store.put("b", "B", 100)
        assert store.contains("a")
        assert store.used_bytes == 100

    def test_spill_failure_is_a_store_full_error(self):
        # retry plumbing catches ObjectStoreFullError; the subtype must flow
        # through the same handling without a new except-arm everywhere
        assert issubclass(SpillFailedError, ObjectStoreFullError)

    def test_put_into_dead_store_raises(self, sim):
        device = small_device(sim)
        store = LocalObjectStore(device)
        device.fail()
        with pytest.raises(StoreUnavailableError, match="dead device"):
            store.put("a", "A", 10)

    def test_on_spill_callback_fires_only_after_success(self, sim):
        calls = []
        blade = tiny_blade(sim, capacity=100)
        store = LocalObjectStore(small_device(sim, capacity=150), spill_target=blade)
        store.on_spill = lambda oid, target: calls.append((oid, target))
        store.put("a", "A", 100)
        store.put("b", "B", 100)  # spills a successfully
        assert calls == [("a", blade)]
        with pytest.raises(SpillFailedError):
            store.put("c", "C", 100)  # blade full: b must NOT be reported
        assert calls == [("a", blade)]
