"""Integration tests: several data systems sharing one runtime.

The paper's whole point is that one runtime hosts many systems at once
("data systems integration").  These tests interleave SQL, MapReduce,
streaming, and ML work on a single Skadi/ServerlessRuntime instance and
check that results stay correct and isolated.
"""

from __future__ import annotations

import numpy as np

from repro import RecordBatch, Skadi
from repro.cluster import build_physical_disagg
from repro.frontends import (
    MapReduceJob,
    ParameterServer,
    StreamJob,
    WindowAggregate,
    make_regression,
    micro_batches,
)
from repro.frontends.sql import sql_to_ir
from repro.ir import run_function
from repro.runtime import ServerlessRuntime


class TestSharedRuntime:
    def test_two_sql_queries_back_to_back(self, orders, customers, catalog):
        skadi = Skadi(shards=3)
        q1 = "SELECT COUNT(*) AS n FROM orders WHERE amount > 50"
        q2 = (
            "SELECT region, SUM(amount) AS total FROM orders "
            "JOIN customers ON cust = cid GROUP BY region ORDER BY region"
        )
        tables = {"orders": orders, "customers": customers}
        out1 = skadi.sql(q1, tables)
        out2 = skadi.sql(q2, tables)
        (want1,) = run_function(sql_to_ir(q1, catalog), tables=tables)
        (want2,) = run_function(sql_to_ir(q2, catalog), tables=tables)
        assert out1.column("n").tolist() == want1.column("n").tolist()
        np.testing.assert_allclose(out2.column("total"), want2.column("total"))

    def test_sql_and_tasks_interleaved(self, orders):
        skadi = Skadi(shards=2)
        refs = [skadi.submit(lambda i=i: i * i, name=f"side{i}") for i in range(5)]
        out = skadi.sql("SELECT COUNT(*) AS n FROM orders", {"orders": orders})
        assert out.column("n").tolist() == [orders.num_rows]
        assert skadi.get(refs) == [0, 1, 4, 9, 16]

    def test_mapreduce_and_ml_share_a_runtime(self, rng):
        rt = ServerlessRuntime(build_physical_disagg())
        table = RecordBatch.from_arrays(
            {"k": rng.integers(0, 4, 200), "x": rng.random(200)}
        )
        job = MapReduceJob(
            mapper=lambda b: b,
            reducer=lambda k, g: {"k": k, "total": float(g.column("x").sum())},
            key="k",
        )
        mr_out = job.run(rt, table)

        X, y, w_true = make_regression(200, 4, seed=9)
        ps = ParameterServer(rt, 4, lr=0.05)
        weights = ps.train(X, y, rounds=20, workers=3)

        # both systems got correct answers off the same runtime
        local = job.run_local(table)
        got = dict(zip(mr_out.column("k").tolist(), mr_out.column("total").tolist(), strict=False))
        want = dict(zip(local.column("k").tolist(), local.column("total").tolist(), strict=False))
        assert set(got) == set(want)
        assert np.abs(weights - w_true).max() < 0.2

    def test_stream_and_batch_coexist(self, rng):
        rt = ServerlessRuntime(build_physical_disagg())
        table = RecordBatch.from_arrays(
            {"k": rng.integers(0, 3, 160), "x": rng.random(160)}
        )
        stream_job = StreamJob(
            [WindowAggregate(keys=("k",), aggs=(("s", "sum", "x"),), window=4)]
        )
        stream_out = stream_job.run(rt, micro_batches(table, 20))
        batch_ref = rt.submit(lambda: 123, name="batch_side_job")
        assert rt.get(batch_ref) == 123
        local = stream_job.run_local(micro_batches(table, 20))
        for d, l in zip(stream_out, local, strict=False):
            assert d == l

    def test_runtime_stats_accumulate_across_jobs(self, orders):
        skadi = Skadi(shards=2)
        skadi.sql("SELECT COUNT(*) AS n FROM orders", {"orders": orders})
        first_tasks = skadi.runtime.tasks_finished
        skadi.sql("SELECT COUNT(*) AS n FROM orders", {"orders": orders})
        assert skadi.runtime.tasks_finished > first_tasks
        assert skadi.sim_now > 0
