"""Tests for failure handling: lineage replay, reliable cache, interrupts."""

from __future__ import annotations

import pytest

from repro.caching.replication import ErasureCode, ReplicationScheme
from repro.cluster.cluster import build_physical_disagg, build_serverful
from repro.cluster.hardware import DeviceKind
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
    UnrecoverableObjectError,
)
from repro.runtime.runtime import make_reliable_cache


def pull_runtime(cluster=None, **kwargs):
    return ServerlessRuntime(
        cluster or build_physical_disagg(),
        RuntimeConfig(resolution=ResolutionMode.PULL),
        **kwargs,
    )


def build_chain(rt, length=4, device=None):
    """A chain whose every output lands on one device (loss nukes it all)."""
    kwargs = {"pinned_device": device} if device else {}
    ref = rt.submit(lambda: 1, name="head", **kwargs)
    for i in range(length - 1):
        ref = rt.submit(lambda x: x + 1, (ref,), name=f"step{i}", **kwargs)
    return ref


class TestLineageRecovery:
    def test_lost_object_recovered_by_replay(self):
        rt = pull_runtime()
        cluster = rt.cluster
        cpu = cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = build_chain(rt, 4, device=cpu.device_id)
        assert rt.get(ref) == 4
        lost = rt.fail_node("server0")
        assert ref.object_id in lost
        rt.restart_node("server0")
        assert rt.get(ref) == 4
        assert rt.lineage.replays == 4  # whole chain re-ran

    def test_replay_skips_surviving_prefixes(self):
        rt = pull_runtime()
        cluster = rt.cluster
        cpu0 = cluster.node("server0").first_of_kind(DeviceKind.CPU)
        cpu1 = cluster.node("server1").first_of_kind(DeviceKind.CPU)
        a = rt.submit(lambda: 10, pinned_device=cpu0.device_id, name="a")
        b = rt.submit(lambda x: x + 1, (a,), pinned_device=cpu1.device_id, name="b")
        assert rt.get(b) == 11
        rt.fail_node("server1")
        rt.restart_node("server1")
        # a survives on server0 (plus the pulled copy died with server1, but
        # the origin copy is alive); only b replays
        assert rt.get(b) == 11
        assert rt.lineage.replays == 1

    def test_driver_put_objects_are_unrecoverable(self):
        rt = pull_runtime()
        ref = rt.put("precious")
        rt.fail_node("server0")  # puts land on the head node
        with pytest.raises(UnrecoverableObjectError):
            rt.get(ref)

    def test_midflight_interrupt_resubmits_elsewhere(self):
        rt = pull_runtime(cluster=build_serverful(n_servers=2))
        # long task pinned nowhere: scheduler picks some cpu; find its node
        ref = rt.submit(lambda: "done", compute_cost=10.0, name="long")
        rt.run(until=1.0)  # task is mid-execution
        victim_ctx = rt._ctx_of_object[ref.object_id]
        victim_node = victim_ctx.device.node_id
        rt.fail_node(victim_node)
        assert rt.get(ref) == "done"
        final = rt._ctx_of_object[ref.object_id]
        assert final.device.node_id != victim_node


class TestReliableCache:
    def _runtime_with_cache(self, redundancy):
        cluster = build_physical_disagg()
        cache = make_reliable_cache(cluster, redundancy)
        rt = ServerlessRuntime(
            cluster, RuntimeConfig(resolution=ResolutionMode.PULL), reliable_cache=cache
        )
        return rt, cache

    def test_replicated_cache_recovers_without_replay(self):
        rt, cache = self._runtime_with_cache(ReplicationScheme(2))
        cpu = rt.cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = build_chain(rt, 3, device=cpu.device_id)
        assert rt.get(ref) == 3
        rt.fail_node("server0")
        rt.restart_node("server0")
        assert rt.get(ref) == 3
        assert rt.lineage.replays == 0  # cache served it; no re-execution

    def test_ec_cache_recovers(self):
        rt, cache = self._runtime_with_cache(ErasureCode(4, 2))
        cpu = rt.cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = build_chain(rt, 2, device=cpu.device_id)
        assert rt.get(ref) == 2
        rt.fail_node("server0")
        rt.restart_node("server0")
        assert rt.get(ref) == 2
        assert rt.lineage.replays == 0

    def test_cache_write_costs_time(self):
        rt_plain = pull_runtime()
        ref = rt_plain.submit(lambda: 1, output_nbytes=1 << 20)
        rt_plain.get(ref)
        t_plain = rt_plain.sim.now

        rt_cache, _ = self._runtime_with_cache(ReplicationScheme(3))
        ref = rt_cache.submit(lambda: 1, output_nbytes=1 << 20)
        rt_cache.get(ref)
        assert rt_cache.sim.now > t_plain  # replication is not free


class TestActorFailure:
    def test_actor_dies_with_its_node(self):
        rt = pull_runtime(cluster=build_serverful(n_servers=3))

        class Counter:
            def __init__(self):
                self.n = 0

        def inc(state):
            state.n += 1
            return state.n

        from repro.runtime import TaskError

        actor = rt.create_actor(Counter)
        assert rt.get(actor.call(inc)) == 1
        home = rt.cluster.node_of_device(actor.device_id).node_id
        rt.fail_node(home)
        rt.restart_node(home)
        with pytest.raises(TaskError, match="actor .* is dead"):
            rt.get(actor.call(inc))

    def test_actors_on_other_nodes_survive(self):
        rt = pull_runtime(cluster=build_serverful(n_servers=3))

        class Cell:
            def __init__(self):
                self.v = 0

        def bump(state):
            state.v += 1
            return state.v

        cpus = [
            rt.cluster.node(f"server{i}").first_of_kind(DeviceKind.CPU)
            for i in range(3)
        ]
        actors = [
            rt.create_actor(Cell, pinned_device=cpu.device_id) for cpu in cpus
        ]
        rt.get([a.call(bump) for a in actors])
        victim_node = rt.cluster.node_of_device(actors[0].device_id).node_id
        rt.fail_node(victim_node)
        rt.restart_node(victim_node)
        for actor in actors[1:]:  # homed on other nodes: state intact
            assert rt.get(actor.call(bump)) == 2

    def test_replacement_actor_works(self):
        rt = pull_runtime(cluster=build_serverful(n_servers=3))

        class Cell:
            def __init__(self):
                self.v = 100

        def read(state):
            return state.v

        old = rt.create_actor(Cell)
        home = rt.cluster.node_of_device(old.device_id).node_id
        rt.fail_node(home)
        rt.restart_node(home)
        fresh = rt.create_actor(Cell)
        assert rt.get(fresh.call(read)) == 100


class TestSchedulerAfterFailure:
    def test_new_tasks_avoid_dead_nodes(self):
        rt = pull_runtime(cluster=build_serverful(n_servers=3))
        rt.fail_node("server1")
        refs = [rt.submit(lambda i=i: i, name=f"t{i}") for i in range(6)]
        rt.get(refs)
        nodes = {rt.timeline_of(r).device_id.split("/")[0] for r in refs}
        assert "server1" not in nodes


class TestGetTimeout:
    def test_timeout_raises_and_leaves_ref_usable(self):
        from repro.runtime import GetTimeoutError

        rt = pull_runtime()
        ref = rt.submit(lambda: 42, compute_cost=1.0, name="slow")
        with pytest.raises(GetTimeoutError, match="unresolved after timeout"):
            rt.get(ref, timeout=0.05)
        assert rt.sim.now == pytest.approx(0.05)
        assert rt.get(ref) == 42  # a later, patient get still resolves

    def test_timeout_not_raised_when_task_beats_it(self):
        rt = pull_runtime()
        ref = rt.submit(lambda: 7, compute_cost=1e-3)
        assert rt.get(ref, timeout=10.0) == 7
        assert rt.sim.now < 1.0  # get returned at completion, not the deadline

    def test_timeout_is_relative_to_current_sim_time(self):
        rt = pull_runtime()
        a = rt.submit(lambda: 1, compute_cost=0.02)
        assert rt.get(a) == 1  # clock now sits past 0.02s
        b = rt.submit(lambda: 2, compute_cost=0.05)
        # an absolute-deadline bug would see timeout=0.2 "already expired"
        # relative semantics give b a fresh 0.2s window
        assert rt.get(b, timeout=0.2) == 2

    def test_partial_resolution_reported(self):
        from repro.runtime import GetTimeoutError

        rt = pull_runtime()
        fast = rt.submit(lambda: "f", compute_cost=1e-3)
        slow = rt.submit(lambda: "s", compute_cost=1.0)
        with pytest.raises(GetTimeoutError, match="1/2 refs unresolved"):
            rt.get([fast, slow], timeout=0.05)


class TestGetTimeoutDuringRecovery:
    """``get(timeout=)`` expiring mid-retry/mid-replay is an observer event:
    it must not mark the task failed or poison the in-flight recovery."""

    def test_timeout_during_retry_does_not_poison_it(self):
        from repro.chaos import ChaosMonkey, ChaosSchedule
        from repro.runtime import GetTimeoutError

        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(
                resolution=ResolutionMode.PULL,
                max_retries=10,
                retry_backoff_base=5e-3,
            ),
        )
        # server1 is unreachable at submit time; the lease drops, the task
        # enters retry backoff, and the partition heals at 20ms
        schedule = ChaosSchedule().partition(0.0, [["server1"]], heal_after=2e-2)
        ChaosMonkey(rt, schedule).arm()
        cpu1 = rt.cluster.node("server1").first_of_kind(DeviceKind.CPU)
        ref = rt.submit(
            lambda: "survived", compute_cost=1e-3, pinned_device=cpu1.device_id
        )
        # expire while the first retry is still backing off
        with pytest.raises(GetTimeoutError, match="unresolved after timeout"):
            rt.get(ref, timeout=2e-3)
        assert rt.tasks_failed == 0  # observer timeout, not a task failure
        # the retry machinery keeps running: a patient get resolves
        assert rt.get(ref) == "survived"
        assert rt.tasks_retried >= 1
        assert rt.tasks_failed == 0

    def test_timeout_during_lineage_replay_does_not_poison_it(self):
        from repro.runtime import GetTimeoutError

        rt = pull_runtime()
        cpu = rt.cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = rt.submit(
            lambda: "rebuilt", compute_cost=5e-2, pinned_device=cpu.device_id
        )
        assert rt.get(ref) == "rebuilt"
        rt.fail_node("server0")
        rt.restart_node("server0")
        # this get kicks off the lineage replay, then expires mid-rebuild
        with pytest.raises(GetTimeoutError, match="unresolved after timeout"):
            rt.get(ref, timeout=1e-3)
        assert rt.tasks_failed == 0
        assert rt.get(ref) == "rebuilt"  # replay finished despite the timeout
        assert rt.lineage.replays >= 1
        assert rt.tasks_failed == 0


class TestDeadActorPath:
    class _Cell:
        def __init__(self):
            self.v = 0

    @staticmethod
    def _bump(state):
        state.v += 1
        return state.v

    def test_every_call_after_death_fails(self):
        from repro.runtime import TaskError

        rt = pull_runtime(cluster=build_serverful(n_servers=3))
        cpu1 = rt.cluster.node("server1").first_of_kind(DeviceKind.CPU)
        actor = rt.create_actor(self._Cell, pinned_device=cpu1.device_id)
        assert rt.get(actor.call(self._bump)) == 1
        rt.fail_node("server1")
        rt.restart_node("server1")
        for _ in range(2):  # dead is dead: no zombie revival on later calls
            with pytest.raises(TaskError, match="actor .* is dead"):
                rt.get(actor.call(self._bump))
        assert actor.actor_id in rt._dead_actors
        assert rt.log.count("actor_dead") == 1

    def test_checkpointed_actor_survives_fail_node(self):
        cluster = build_serverful(n_servers=3)
        cache = make_reliable_cache(cluster, ReplicationScheme(2))
        rt = pull_runtime(cluster=cluster, reliable_cache=cache)
        cpu1 = cluster.node("server1").first_of_kind(DeviceKind.CPU)
        actor = rt.create_actor(self._Cell, pinned_device=cpu1.device_id)
        for expect in (1, 2, 3):
            assert rt.get(actor.call(self._bump)) == expect
        rt.fail_node("server1")
        # reconstructed from the post-call-3 checkpoint on a surviving node
        assert rt.get(actor.call(self._bump)) == 4
        assert rt.actor_restarts == 1
        assert rt.cluster.node_of_device(actor.device_id).node_id != "server1"


class TestReplayExhaustion:
    def test_unrecoverable_after_max_replays(self):
        cluster = build_serverful(n_servers=1)
        rt = ServerlessRuntime(
            cluster,
            RuntimeConfig(resolution=ResolutionMode.PULL, max_lineage_replays=2),
        )
        cpu = cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = build_chain(rt, 3, device=cpu.device_id)
        assert rt.get(ref) == 3

        def saboteur(ready_oid):
            # every time the replay re-materializes the target, nuke it again
            if ready_oid == ref.object_id:
                rt.fail_node("server0")
                rt.restart_node("server0")

        rt.fail_node("server0")
        rt.restart_node("server0")
        rt.object_ready_hooks.append(saboteur)
        with pytest.raises(UnrecoverableObjectError, match="after 2 replays"):
            rt.get(ref)
        rt.object_ready_hooks.remove(saboteur)

    def test_replay_budget_not_consumed_by_success(self):
        rt = pull_runtime()
        cpu = rt.cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = build_chain(rt, 3, device=cpu.device_id)
        assert rt.get(ref) == 3
        # lose and recover max_lineage_replays times in *separate* gets:
        # the budget is per-get, not per-object lifetime
        for _ in range(rt.config.max_lineage_replays):
            rt.fail_node("server0")
            rt.restart_node("server0")
            assert rt.get(ref) == 3
