"""Integration tests: the telemetry plane wired through the live runtime."""

from __future__ import annotations

import pytest

from repro.caching.replication import ReplicationScheme
from repro.cluster.cluster import build_physical_disagg, build_serverful
from repro.cluster.hardware import DeviceKind
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
    to_chrome_trace,
)
from repro.runtime.runtime import make_reliable_cache
from repro.telemetry import parse_prometheus_text, to_prometheus_text


def pull_runtime(cluster=None, **cfg):
    return ServerlessRuntime(
        cluster or build_serverful(n_servers=3),
        RuntimeConfig(resolution=ResolutionMode.PULL, **cfg),
    )


def run_diamond(rt, spread=False):
    """a -> (b, c) -> d; returns (refs, answer).

    ``spread=True`` pins the four tasks across three servers so argument
    resolution has to cross the fabric (pull RPCs + bulk transfers).
    """
    if spread:
        cpus = [
            rt.cluster.node(f"server{i}").first_of_kind(DeviceKind.CPU).device_id
            for i in range(3)
        ]
        pins = [cpus[0], cpus[1], cpus[2], cpus[0]]
    else:
        pins = [None] * 4
    a = rt.submit(lambda: 2, name="a", compute_cost=1e-3, output_nbytes=1 << 16,
                  pinned_device=pins[0])
    b = rt.submit(lambda x: x + 1, (a,), name="b", compute_cost=1e-3,
                  pinned_device=pins[1])
    c = rt.submit(lambda x: x * 10, (a,), name="c", compute_cost=1e-3,
                  pinned_device=pins[2])
    d = rt.submit(lambda x, y: x + y, (b, c), name="d", compute_cost=1e-3,
                  pinned_device=pins[3])
    return (a, b, c, d), rt.get(d)


class TestRuntimeMetrics:
    def test_task_counters_track_lifecycle(self):
        rt = pull_runtime()
        _, answer = run_diamond(rt)
        assert answer == 23
        reg = rt.telemetry.registry
        assert reg.value("skadi_tasks_submitted_total") == 4
        assert reg.value("skadi_tasks_finished_total") == 4
        assert reg.value("skadi_tasks_failed_total") == 0
        assert reg.get("skadi_task_latency_seconds").count == 4

    def test_latency_histogram_matches_timelines(self):
        rt = pull_runtime()
        refs, _ = run_diamond(rt)
        hist = rt.telemetry.registry.get("skadi_task_latency_seconds")
        latencies = sorted(tl.latency for tl in rt.timelines)
        assert hist.count == len(latencies)
        assert hist.sum == pytest.approx(sum(latencies))

    def test_placement_and_link_metrics_populated(self):
        rt = pull_runtime()
        run_diamond(rt, spread=True)
        reg = rt.telemetry.registry
        placed = sum(
            inst.value for inst in reg.family("skadi_placements_total").instruments()
        )
        assert placed >= 4
        link_bytes = sum(
            inst.value for inst in reg.family("skadi_link_bytes_total").instruments()
        )
        # every transfer/message hop is metered, so the per-link sum must
        # cover at least the payload bytes NetworkStats saw move
        assert link_bytes >= rt.net.stats.bytes_moved > 0
        msgs = sum(
            inst.value
            for inst in reg.family("skadi_link_messages_total").instruments()
        )
        assert msgs > 0

    def test_store_metrics_track_puts_and_residency(self):
        rt = pull_runtime()
        refs, _ = run_diamond(rt)
        reg = rt.telemetry.registry
        puts = sum(
            inst.value for inst in reg.family("skadi_store_puts_total").instruments()
        )
        assert puts >= 4  # four outputs, plus pulled copies
        resident = reg.family("skadi_store_bytes_resident")
        assert resident is not None
        assert sum(inst.value for inst in resident.instruments()) > 0
        # pull mode resolved b/c/d's remote args over the fabric at least once
        hits_or_misses = sum(
            inst.value
            for fam_name in ("skadi_store_hits_total", "skadi_store_misses_total")
            if reg.family(fam_name) is not None
            for inst in reg.family(fam_name).instruments()
        )
        assert hits_or_misses >= 4  # b, c each 1 dep; d has 2

    def test_metrics_summary_is_flat_and_sorted(self):
        rt = pull_runtime()
        run_diamond(rt, spread=True)
        summary = rt.metrics_summary()
        assert summary["skadi_tasks_finished_total"] == 4.0
        assert list(summary) == sorted(summary)
        assert any(k.startswith("skadi_link_bytes_total{link=") for k in summary)

    def test_export_deterministic_across_identical_runs(self):
        texts = []
        for _ in range(2):
            rt = pull_runtime()
            run_diamond(rt)
            texts.append(to_prometheus_text(rt.telemetry.registry))
        assert texts[0] == texts[1]
        parsed = parse_prometheus_text(texts[0])
        assert parsed.value("skadi_tasks_finished_total") == 4


class TestRuntimeSpans:
    def test_task_spans_share_one_trace_and_link_producers(self):
        rt = pull_runtime()
        (a, b, c, d), _ = run_diamond(rt)
        spans = {r.object_id: rt.span_of(r) for r in (a, b, c, d)}
        assert all(s is not None and not s.is_open for s in spans.values())
        trace_ids = {s.trace_id for r, s in spans.items() if r != a.object_id}
        # b and c link a; d links b and c — all downstream spans share a's trace
        assert trace_ids == {spans[a.object_id].trace_id}
        assert spans[b.object_id].links == (spans[a.object_id].span_id,)
        assert set(spans[d.object_id].links) == {
            spans[b.object_id].span_id,
            spans[c.object_id].span_id,
        }

    def test_phase_children_tile_the_task_span(self):
        rt = pull_runtime()
        (_, _, _, d), _ = run_diamond(rt)
        span = rt.span_of(d)
        children = rt.telemetry.tracer.children_of(span.span_id)
        phase_children = [c for c in children if c.category != "transfer"]
        covered = sum(c.duration for c in children if c.category in ("queue", "compute"))
        transfer = sum(c.duration for c in children if c.category == "transfer"
                       and c.name.endswith("resolve-inputs"))
        assert covered + transfer == pytest.approx(span.duration)
        assert phase_children  # at least queue/compute present

    def test_pull_transfers_traced_under_task(self):
        rt = pull_runtime()
        (_, b, _, _), _ = run_diamond(rt, spread=True)
        span = rt.span_of(b)
        pulls = [
            s
            for s in rt.telemetry.tracer.spans
            if s.parent_id == span.span_id and s.name.startswith("pull:")
        ]
        assert pulls and all(not s.is_open for s in pulls)

    def test_critical_path_on_live_runtime(self):
        rt = pull_runtime()
        (a, b, c, d), _ = run_diamond(rt)
        result = rt.critical_path(d)
        tl = rt.timeline_of(d)
        assert result.total == pytest.approx(tl.finished)
        assert result.task_ids()[-1] == rt._ctx_of_object[d.object_id].spec.task_id
        assert result.breakdown["compute"] > 0
        assert result.breakdown["recovery"] == 0.0
        assert sum(result.breakdown.values()) == pytest.approx(result.total)

    def test_replay_spans_marked_replayed(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=2),
            RuntimeConfig(resolution=ResolutionMode.PULL),
        )
        cpu = rt.cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = rt.submit(lambda: 5, name="head", pinned_device=cpu.device_id)
        assert rt.get(ref) == 5
        rt.fail_node("server0")
        rt.restart_node("server0")
        assert rt.get(ref) == 5
        replayed = [
            s for s in rt.telemetry.tracer.spans if s.attrs.get("replayed")
        ]
        assert replayed and not replayed[0].is_open
        assert rt.telemetry.registry.value("skadi_lineage_replays_total") == 1


class TestIncidentRoundTrip:
    """Satellite: metrics_summary() and EventLog.counts() agree (one source
    of truth, two views) — asserted on a failure-heavy run."""

    def _soak(self):
        cluster = build_serverful(n_servers=3)
        cache = make_reliable_cache(cluster, ReplicationScheme(2))
        rt = ServerlessRuntime(
            cluster,
            RuntimeConfig(
                resolution=ResolutionMode.PULL,
                max_retries=8,
                retry_backoff_base=1e-3,
            ),
            reliable_cache=cache,
        )
        cpu1 = cluster.node("server1").first_of_kind(DeviceKind.CPU)
        ref = rt.submit(lambda: 1, pinned_device=cpu1.device_id, name="head")
        for i in range(3):
            ref = rt.submit(lambda x: x + 1, (ref,), name=f"s{i}")
        assert rt.get(ref) == 4
        rt.fail_node("server1")
        rt.restart_node("server1")
        assert rt.get(ref) == 4
        return rt

    def test_incident_counters_equal_event_log_counts(self):
        rt = self._soak()
        counts = rt.log.counts()
        assert counts  # the run actually produced incidents
        summary = rt.metrics_summary()
        for kind, n in counts.items():
            assert summary[f"skadi_incidents_total{{kind={kind}}}"] == float(n)
        # and nothing extra: every incident counter maps back to a log kind
        incident_keys = [
            k for k in summary if k.startswith("skadi_incidents_total{")
        ]
        assert len(incident_keys) == len(counts)

    def test_runtime_counters_match_legacy_attributes(self):
        rt = self._soak()
        reg = rt.telemetry.registry
        assert reg.value("skadi_tasks_finished_total") == rt.tasks_finished
        assert reg.value("skadi_tasks_failed_total") == rt.tasks_failed
        assert reg.value("skadi_tasks_retried_total") == rt.tasks_retried
        assert reg.value("skadi_lineage_replays_total") == rt.lineage.replays
        assert reg.value("skadi_actor_restarts_total") == rt.actor_restarts


class TestChromeTraceIntegration:
    def test_default_output_unchanged_shape(self):
        rt = pull_runtime()
        run_diamond(rt)
        events = to_chrome_trace(rt)
        assert all(e["ph"] in ("X", "i") for e in events)
        assert sum(1 for e in events if e["ph"] == "X") == 4

    def test_node_scoped_instants_use_process_scope(self):
        rt = pull_runtime()
        run_diamond(rt)
        rt.fail_node("server1")  # records node_dead (node-scoped)
        events = to_chrome_trace(rt)
        instants = [e for e in events if e["ph"] == "i"]
        node_dead = next(e for e in instants if e["name"] == "node_dead")
        assert node_dead["s"] == "p"  # pinned to its node's process row
        assert node_dead["pid"] == "server1"

    def test_cluster_wide_instants_stay_global(self):
        rt = pull_runtime(task_timeout=None)
        rt.log.record(rt.sim.now, "detector_stalled", ticks=200)
        events = to_chrome_trace(rt)
        stalled = next(e for e in events if e["name"] == "detector_stalled")
        assert stalled["s"] == "g"
        assert stalled["pid"] == "control-plane"

    def test_spans_mode_replaces_timeline_slices(self):
        rt = pull_runtime()
        run_diamond(rt)
        events = to_chrome_trace(rt, spans=True, counters=True)
        x_events = [e for e in events if e["ph"] == "X"]
        task_x = [e for e in x_events if e["cat"] == "task"]
        assert len(task_x) == 4
        assert all("span_id" in e["args"] for e in task_x)
        assert any(e["ph"] == "s" for e in events)  # flow arrows
        assert any(e["ph"] == "f" for e in events)
        assert any(e["ph"] == "C" for e in events)  # gauge counters
        # flows bind to enclosing slices so Perfetto draws arrows onto spans
        assert all(e.get("bp") == "e" for e in events if e["ph"] == "f")

    def test_trace_is_json_serializable(self, tmp_path):
        import json

        from repro.runtime import write_chrome_trace

        rt = pull_runtime()
        run_diamond(rt)
        out = tmp_path / "trace.json"
        n = write_chrome_trace(rt, str(out), spans=True, counters=True)
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == n


class TestTelemetryReport:
    def test_report_renders_all_tables(self):
        rt = pull_runtime()
        (_, _, _, d), _ = run_diamond(rt)
        report = rt.telemetry_report(rt.critical_path(d))
        text = report.to_text()
        assert "telemetry: tasks" in text
        assert "telemetry: task latency" in text
        assert "telemetry: fabric links" in text
        assert "telemetry: critical-path attribution" in text
        assert "100.0%" in text

    def test_report_works_on_physical_disagg(self):
        rt = ServerlessRuntime(
            build_physical_disagg(), RuntimeConfig(resolution=ResolutionMode.PULL)
        )
        run_diamond(rt)
        assert "telemetry: tasks" in rt.telemetry_report().to_text()
