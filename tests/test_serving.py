"""Multi-tenant serving: arrivals, tenants, workload, frontend, balancer.

The serving layer sits *on top of* the runtime, so two properties get
pinned hard here: (1) the shared arrival helper reproduces the legacy
``ChaosMonkey._burst`` float sequence bit-for-bit (chaos seeds must not
drift through the unification), and (2) the new RuntimeConfig serving
switches are pure frontend policy — with or without them, the
single-driver E17/E21/E22 scenarios replay with identical event-log
signatures.
"""

from __future__ import annotations

import importlib.util
import random
import sys
from pathlib import Path

import pytest

from repro.chaos import ChaosSchedule, LoadBurst
from repro.cluster import build_serverful
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
    TaskState,
)
from repro.serving import (
    DEFAULT_PROFILES,
    HeadNodeBalancer,
    MessageRateTracker,
    Request,
    RequestTemplate,
    ServingFrontend,
    Tenant,
    TenantProfile,
    TenantRegistry,
    WorkloadGenerator,
    poisson_offsets,
    uniform_offsets,
)
from repro.telemetry import parse_prometheus_text, to_prometheus_text

SERVING_SWITCHES = dict(
    serving_fair_queueing=True,
    serving_tenant_isolation=True,
    serving_slo_deadlines=True,
    serving_max_inflight=64,
)


def make_rt(n_servers=2, **overrides):
    overrides.setdefault("resolution", ResolutionMode.PULL)
    return ServerlessRuntime(
        build_serverful(n_servers=n_servers), RuntimeConfig(**overrides)
    )


def load_bench(name):
    path = Path(__file__).resolve().parents[1] / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"_serv_equiv_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


UNIT = RequestTemplate("unit", (("work", 1e-2, ()),))
CHAIN = RequestTemplate("chain", (("a", 1e-3, ()), ("b", 1e-3, (0,))))


def plain_tenant(name, **overrides):
    fields = dict(weight=1.0, priority=0, slo=None, max_open=10_000, share=1.0)
    fields.update(overrides)
    return Tenant(name, TenantProfile(name, **fields))


# -- satellite: one seeded arrival helper ------------------------------------


class TestArrivals:
    def test_uniform_reproduces_legacy_burst_math_exactly(self):
        """The exact float sequence of the pre-unification ChaosMonkey loop:
        gap spacing, RNG construction gated on jitter, same draw order."""
        for n, duration, seed, jitter in [
            (144, 0.30, 22, 0.0),
            (240, 0.15, 23, 0.5),
            (7, 1.0, 0, 1.0),
            (0, 1.0, 4, 0.5),
        ]:
            gap = duration / n if n else 0.0
            rng = random.Random(seed) if jitter > 0.0 else None
            legacy = []
            for i in range(n):
                delay = i * gap
                if rng is not None:
                    delay += gap * jitter * (2.0 * rng.random() - 1.0)
                    delay = max(0.0, delay)
                legacy.append(delay)
            assert uniform_offsets(n, duration, seed, jitter) == legacy

    def test_chaos_burst_rides_on_the_shared_helper(self):
        """Two seeded burst runs produce identical arrival events; the
        jittered offsets match the helper's output exactly."""

        def run():
            rt = make_rt(n_servers=1)
            arrivals = []
            schedule = ChaosSchedule().burst(0.0, 20, duration=0.1, seed=9, jitter=0.5)
            from repro.chaos import ChaosMonkey

            monkey = ChaosMonkey(
                rt, schedule, task_source=lambda i: arrivals.append(rt.sim.now)
            ).arm()
            rt.sim.run()
            assert monkey.load_submitted == 20
            return arrivals

        first, second = run(), run()
        assert first == second
        expected = sorted(uniform_offsets(20, 0.1, seed=9, jitter=0.5))
        assert sorted(first) == expected

    def test_poisson_is_seeded_and_bounded(self):
        a = poisson_offsets(100.0, duration=1.0, seed=5)
        b = poisson_offsets(100.0, duration=1.0, seed=5)
        c = poisson_offsets(100.0, duration=1.0, seed=6)
        assert a == b
        assert a != c
        assert all(0.0 < t < 1.0 for t in a)
        assert a == sorted(a)
        assert len(poisson_offsets(100.0, n=17, seed=5)) == 17
        both = poisson_offsets(100.0, duration=1.0, n=3, seed=5)
        assert len(both) == 3 and both == a[:3]

    def test_poisson_validates_inputs(self):
        with pytest.raises(ValueError, match="rate"):
            poisson_offsets(0.0, duration=1.0)
        with pytest.raises(ValueError, match="duration or an arrival count"):
            poisson_offsets(10.0)


# -- tenants ------------------------------------------------------------------


class TestTenants:
    def test_profile_assignment_is_a_stable_hash(self):
        reg = TenantRegistry(1000)
        # stable across registries and runs (md5 contract) — and pinned to
        # concrete values so a platform/version drift fails loudly
        again = TenantRegistry(1000)
        for i in (0, 1, 17, 999):
            assert reg.tenant(i).profile.name == again.tenant(i).profile.name
        assert reg.profile_of("tenant0000000") == reg.profile_of("tenant0000000")

    def test_population_is_lazy(self):
        reg = TenantRegistry(1_000_000)
        assert reg.touched == 0
        reg.tenant(0), reg.tenant(999_999), reg.tenant(0)
        assert reg.touched == 2
        with pytest.raises(IndexError):
            reg.tenant(1_000_000)

    def test_profile_mix_tracks_population_shares(self):
        reg = TenantRegistry(4000)
        counts = {p.name: 0 for p in DEFAULT_PROFILES}
        for i in range(4000):
            counts[reg.tenant(i).profile.name] += 1
        assert counts["free"] > 3400  # 90% +- hash noise
        assert counts["standard"] > 100
        assert counts["premium"] >= 1

    def test_share_and_profile_validation(self):
        bad = TenantProfile("x", weight=1.0, priority=0, slo=None, max_open=1, share=0.5)
        with pytest.raises(ValueError, match="sum"):
            TenantRegistry(10, profiles=(bad,))
        with pytest.raises(ValueError, match="weight"):
            TenantProfile("x", weight=0.0, priority=0, slo=None, max_open=1, share=1.0)
        with pytest.raises(ValueError, match="max_open"):
            TenantProfile("x", weight=1.0, priority=0, slo=None, max_open=0, share=1.0)

    def test_qualify_namespaces_object_names(self):
        t = TenantRegistry(10).tenant(3)
        assert t.qualify("req-1/scan") == f"{t.tenant_id}/req-1/scan"


# -- workload synthesis -------------------------------------------------------


class TestWorkload:
    def test_requests_are_fully_seeded(self):
        reg = TenantRegistry(10_000)
        gen = lambda: WorkloadGenerator(reg, rate=300.0, duration=0.2, seed=42)  # noqa: E731
        a, b = gen().requests(), gen().requests()
        assert [(r.request_id, r.arrival, r.tenant.tenant_id, r.template.name) for r in a] == [
            (r.request_id, r.arrival, r.tenant.tenant_id, r.template.name) for r in b
        ]

    def test_bursts_merge_into_the_arrival_stream(self):
        reg = TenantRegistry(100)
        steady = WorkloadGenerator(reg, rate=100.0, duration=0.3, seed=1)
        spiky = WorkloadGenerator(
            reg,
            rate=100.0,
            duration=0.3,
            seed=1,
            bursts=[LoadBurst(at=0.1, n_tasks=50, duration=0.05)],
        )
        n_steady, n_spiky = len(steady.requests()), len(spiky.requests())
        assert n_spiky == n_steady + 50
        arrivals = spiky.arrivals()
        assert arrivals == sorted(arrivals)
        # the tenant/template draw depends on the request index, not the
        # arrival times, so the i-th request keeps its identity under bursts
        assert [r.tenant.tenant_id for r in steady.requests()] == [
            r.tenant.tenant_id for r in spiky.requests()
        ][:n_steady]

    def test_template_validation(self):
        with pytest.raises(ValueError, match="no stages"):
            RequestTemplate("empty", ())
        with pytest.raises(ValueError, match="earlier stages"):
            RequestTemplate("fwd", (("a", 1e-3, (0,)),))
        with pytest.raises(ValueError, match="negative"):
            RequestTemplate("neg", (("a", -1e-3, ()),))
        assert CHAIN.n_tasks == 2
        assert CHAIN.total_cost == pytest.approx(2e-3)


# -- frontend -----------------------------------------------------------------


class TestFrontend:
    def test_all_off_is_a_passthrough(self):
        """Default config: every request dispatches the instant it arrives —
        no queueing, no shedding, no deadlines, nothing held back."""
        rt = make_rt()
        fe = ServingFrontend(rt, TenantRegistry(4))
        t = plain_tenant("t0")
        fe.play([Request(f"r{i}", t, UNIT, 0.01 * i) for i in range(10)])
        rt.sim.run()
        assert fe.offered == fe.admitted == fe.completed == 10
        assert fe.failed == 0 and fe.shed == {} and fe.inflight == 0
        assert fe._queued() == 0
        reg = rt.telemetry.registry
        assert reg.value("skadi_serving_requests_offered_total", tenant_class="t0") == 10.0
        assert reg.value(
            "skadi_serving_requests_completed_total", tenant_class="t0", outcome="ok"
        ) == 10.0

    def test_tenant_quota_sheds_beyond_max_open(self):
        rt = make_rt(serving_tenant_isolation=True)
        fe = ServingFrontend(rt, TenantRegistry(4))
        t = plain_tenant("quota", max_open=2)
        fe.play([Request(f"r{i}", t, UNIT, 0.0) for i in range(5)])
        rt.sim.run()
        assert fe.completed == 2
        assert fe.shed == {"tenant_quota": 3}
        assert t.open_requests == 0
        shed_events = rt.log.of_kind("serving_request_shed")
        assert len(shed_events) == 3
        assert shed_events[0]["tenant"] == "quota"
        assert rt.telemetry.registry.value(
            "skadi_serving_requests_shed_total",
            tenant_class="quota",
            reason="tenant_quota",
        ) == 3.0

    def test_bounded_waiting_room_sheds_at_the_door(self):
        rt = make_rt(serving_max_inflight=1, serving_queue_depth=2)
        fe = ServingFrontend(rt, TenantRegistry(4))
        t = plain_tenant("q")
        fe.play([Request(f"r{i}", t, UNIT, 0.0) for i in range(5)])
        rt.sim.run()
        assert fe.completed == 3  # 1 dispatched + 2 queued
        assert fe.shed == {"queue_full": 2}

    def test_weighted_fair_queueing_vs_fifo(self):
        """Under contention a weight-8 tenant drains ~8x faster than a
        weight-1 tenant; with fair queueing off, FIFO treats them alike."""

        def run(fair):
            rt = make_rt(
                n_servers=1,
                serving_fair_queueing=fair,
                serving_max_inflight=1,
                serving_queue_depth=10_000,
            )
            fe = ServingFrontend(rt, TenantRegistry(4))
            heavy = plain_tenant("heavy", weight=8.0)
            light = plain_tenant("light", weight=1.0)
            requests = []
            for i in range(16):
                requests.append(Request(f"h{i}", heavy, UNIT, 0.0))
                requests.append(Request(f"l{i}", light, UNIT, 0.0))
            fe.play(requests)
            rt.sim.run()
            assert fe.completed == 32
            return (
                fe.latency_percentiles("heavy")["p50"],
                fe.latency_percentiles("light")["p50"],
            )

        heavy_wfq, light_wfq = run(fair=True)
        assert heavy_wfq < light_wfq / 2  # weight actually buys latency
        heavy_fifo, light_fifo = run(fair=False)
        assert heavy_fifo > light_fifo / 2  # FIFO is weight-blind

    def test_slo_deadlines_flow_into_submit(self):
        rt = make_rt(serving_slo_deadlines=True, deadline_propagation=True)
        fe = ServingFrontend(rt, TenantRegistry(4))
        t = plain_tenant("slo", slo=0.25, priority=3)
        pending = fe.offer(Request("r0", t, CHAIN, 0.0))
        for ref in pending.refs:
            spec = rt._ctx_of_object[ref.object_id].spec
            assert spec.deadline == 0.25
            assert spec.priority == 3
            assert spec.tenant == "slo"
            assert spec.name.startswith("slo/r0/")
        rt.sim.run()
        assert fe.completed == 1

    def test_runtime_admission_rejection_shreds_partial_dag(self):
        """When PR 6's admission gate rejects a stage mid-request, the whole
        request sheds and its already-submitted stages are cancelled."""
        rt = make_rt(admission_control=True, admission_queue_depth=1)
        fe = ServingFrontend(rt, TenantRegistry(4))
        t = plain_tenant("rej")
        fe.offer(Request("r0", t, CHAIN, 0.0))
        assert fe.shed == {"admission": 1}
        assert fe.inflight == 0 and t.open_requests == 0
        cancelled = rt.log.of_kind("task_cancelled")
        assert len(cancelled) == 1
        assert cancelled[0]["reason"] == "request_rejected"
        assert cancelled[0]["tenant"] == "rej"
        rt.sim.run()  # nothing leaks; the sim drains clean
        assert fe.completed == 0

    def test_stage_failure_aborts_the_request(self):
        rt = make_rt()
        fe = ServingFrontend(rt, TenantRegistry(4))
        t = plain_tenant("abort")
        pending = fe.offer(Request("r0", t, CHAIN, 0.0))
        assert rt.cancel(pending.refs[0], reason="user")
        rt.sim.run()
        assert fe.failed == 1 and fe.completed == 0
        assert pending.aborted
        assert fe.inflight == 0 and t.open_requests == 0
        states = {rt.task_state(r) for r in pending.refs}
        assert states == {TaskState.CANCELLED}
        assert pending.span is not None and not pending.span.is_open
        assert pending.span.attrs["outcome"] == "failed"

    def test_cancelled_producer_cascades_through_the_serving_path(self):
        """Satellite: the PR 6 cancellation cascade, driven from a serving
        request.  Cancelling the producer stage takes the sibling stage down
        via the frontend's request abort (which fires before the runtime
        cascade can reach it) and cascades upstream_cancelled into a
        driver-side consumer of the request's output."""
        rt = make_rt(deadline_propagation=True)
        fe = ServingFrontend(rt, TenantRegistry(4))
        t = plain_tenant("casc")
        pending = fe.offer(Request("r0", t, CHAIN, 0.0))
        downstream = rt.submit(lambda x: x, (pending.refs[-1],))
        rt.cancel(pending.refs[0], reason="user")
        rt.sim.run()
        by_reason = {
            e["reason"]: e for e in rt.log.of_kind("task_cancelled")
        }
        assert set(by_reason) == {"user", "request_aborted", "upstream_cancelled"}
        assert by_reason["user"]["tenant"] == "casc"
        assert by_reason["request_aborted"]["tenant"] == "casc"
        # the driver-side consumer has no tenant — attribution never leaks
        assert by_reason["upstream_cancelled"].get("tenant") is None
        assert rt.task_state(downstream) is TaskState.CANCELLED
        assert fe.failed == 1

    def test_request_span_joins_the_trace_plane(self):
        rt = make_rt()
        fe = ServingFrontend(rt, TenantRegistry(4))
        t = plain_tenant("tr")
        pending = fe.offer(Request("r0", t, CHAIN, 0.0))
        rt.sim.run()
        span = pending.span
        assert span.category == "control"
        assert span.name == "request:chain"
        first_task_span = rt.span_of(pending.refs[0])
        assert span.trace_id == first_task_span.trace_id
        assert set(span.links) == {
            rt.span_of(r).span_id for r in pending.refs
        }
        assert span.attrs["outcome"] == "ok"
        assert span.start == 0.0 and span.end > 0.0

    def test_latency_percentiles_overall_and_empty(self):
        rt = make_rt()
        fe = ServingFrontend(rt, TenantRegistry(4))
        empty = fe.latency_percentiles()
        assert all(v != v for v in empty.values())  # NaN before any completion
        t = plain_tenant("p")
        fe.play([Request(f"r{i}", t, UNIT, 0.0) for i in range(4)])
        rt.sim.run()
        overall = fe.latency_percentiles()
        by_class = fe.latency_percentiles("p")
        assert overall["p50"] == by_class["p50"]
        assert overall["p50"] <= overall["p99"] <= overall["p999"]


class TestRuntimeHooks:
    def test_when_done_fires_on_finish_fail_and_cancel(self):
        rt = make_rt()
        seen = []
        ok = rt.submit(lambda: 1)
        rt.when_done(ok, lambda r: seen.append(("ok", rt.task_state(r))))
        doomed = rt.submit(lambda: 2, compute_cost=1.0)
        rt.when_done(doomed, lambda r: seen.append(("cancel", rt.task_state(r))))
        rt.cancel(doomed, reason="user")
        rt.sim.run()
        assert ("ok", TaskState.FINISHED) in seen
        assert ("cancel", TaskState.CANCELLED) in seen

    def test_when_done_on_already_terminal_task_still_fires(self):
        rt = make_rt()
        ref = rt.submit(lambda: 5)
        assert rt.get(ref) == 5
        seen = []
        rt.when_done(ref, seen.append)
        rt.sim.run()
        assert seen == [ref]

    def test_unknown_refs_raise(self):
        rt = make_rt()
        from repro.runtime import ObjectRef

        with pytest.raises(KeyError):
            rt.task_state(ObjectRef("nope"))
        with pytest.raises(KeyError):
            rt.when_done(ObjectRef("nope"), lambda r: None)


# -- satellite: tenant attribution survives the metrics pipeline --------------


class TestTenantAttribution:
    def test_cancel_metric_round_trips_tenant_label(self):
        rt = make_rt()
        ref = rt.submit(lambda: 1, compute_cost=1.0, tenant="tenant0000042")
        assert rt.cancel(ref, reason="user")
        text = to_prometheus_text(rt.telemetry.registry)
        parsed = parse_prometheus_text(text)
        assert parsed.value(
            "skadi_tasks_cancelled_total", reason="user", tenant="tenant0000042"
        ) == 1.0
        event = rt.log.of_kind("task_cancelled")[0]
        assert event["tenant"] == "tenant0000042"

    def test_admission_rejection_round_trips_tenant_label(self):
        rt = make_rt(admission_control=True, admission_queue_depth=1)
        rt.submit(lambda: 1, compute_cost=1.0, tenant="tenant0000007")
        from repro.runtime import AdmissionRejectedError

        with pytest.raises(AdmissionRejectedError):
            rt.submit(lambda: 2, tenant="tenant0000007")
        parsed = parse_prometheus_text(to_prometheus_text(rt.telemetry.registry))
        assert parsed.value(
            "skadi_admission_rejected_total", tenant="tenant0000007"
        ) == 1.0
        assert rt.log.of_kind("admission_rejected")[0]["tenant"] == "tenant0000007"

    def test_tenantless_events_stay_label_free(self):
        """The legacy series must not grow a tenant key when nobody set one."""
        rt = make_rt()
        ref = rt.submit(lambda: 1, compute_cost=1.0)
        rt.cancel(ref, reason="user")
        event = rt.log.of_kind("task_cancelled")[0]
        assert event.get("tenant") is None
        assert rt.telemetry.registry.value(
            "skadi_tasks_cancelled_total", reason="user"
        ) == 1.0


# -- head-node balancer -------------------------------------------------------


class TestBalancer:
    def test_rate_tracker_slides_its_window(self):
        tr = MessageRateTracker(window=0.1)
        for t in (0.00, 0.01, 0.02):
            tr.note(t)
        assert tr.rate(0.05) == pytest.approx(30.0)
        assert tr.rate(0.115) == pytest.approx(10.0)  # only t=0.02 survives
        assert tr.rate(1.0) == 0.0

    def test_sessions_spread_across_heads(self):
        rt = make_rt(n_servers=3)
        bal = HeadNodeBalancer(rt)
        assert len(bal.heads) == 3
        first = bal.assign("s0")
        for _ in range(5):
            bal.note_message("s0")
        second = bal.assign("s1")
        assert second != first  # least-loaded, not first-listed
        assert len(rt.log.of_kind("serving_session_assigned")) == 2

    def test_failover_when_chaos_kills_a_head(self):
        rt = make_rt(n_servers=2)
        bal = HeadNodeBalancer(rt)
        head = bal.assign("s0")
        for raylet in rt._raylets_by_node[head]:
            raylet.fail()
        new_head = bal.head_of("s0")
        assert new_head != head and bal.head_alive(new_head)
        assert bal.failovers == 1
        ev = rt.log.of_kind("serving_session_failover")[0]
        assert ev["dead_head"] == head and ev["head"] == new_head
        assert rt.telemetry.registry.value("skadi_serving_failovers_total") == 1.0

    def test_every_head_dead_is_fatal(self):
        rt = make_rt(n_servers=1)
        bal = HeadNodeBalancer(rt)
        bal.assign("s0")
        for raylet in rt._raylets:
            raylet.fail()
        with pytest.raises(RuntimeError, match="every head node is dead"):
            bal.head_of("s0")

    def test_sustained_skew_triggers_one_rebalance(self):
        rt = make_rt(
            n_servers=2,
            serving_rebalance_threshold=2.0,
            serving_rebalance_patience=3,
        )
        bal = HeadNodeBalancer(rt)
        hot = bal.assign("hot-session")
        cold = bal.assign("cold-session")
        assert hot != cold
        bal.note_message("cold-session")  # give the cold head a tiny rate
        for _ in range(10):
            bal.note_message("hot-session")
        assert bal.rebalances >= 1
        first = rt.log.of_kind("serving_rebalanced")[0]
        assert first["hot_head"] == hot and first["cold_head"] == cold
        assert len(rt.log.of_kind("serving_rebalanced")) == bal.rebalances
        assert rt.telemetry.registry.value("skadi_serving_rebalances_total") == float(
            bal.rebalances
        )

    def test_frontend_accounts_messages_against_the_balancer(self):
        rt = make_rt(n_servers=2)
        bal = HeadNodeBalancer(rt)
        fe = ServingFrontend(rt, TenantRegistry(8), balancer=bal)
        t = plain_tenant("bt")
        fe.play([Request(f"r{i}", t, UNIT, 0.001 * i) for i in range(6)])
        rt.sim.run()
        assert "bt" in bal.sessions
        assert fe.completed == 6


# -- all-off equivalence: serving switches never touch the driver path --------


class TestServingEquivalence:
    def test_e17_soak_trace_identical_with_serving_switches_on(self):
        e17 = load_bench("test_e17_chaos_soak")
        legacy = e17.run_soak(e17.SEED, chaos=True)
        gated = e17.run_soak(e17.SEED, chaos=True, **SERVING_SWITCHES)
        assert legacy["signature"] == gated["signature"]
        assert legacy["makespan"] == gated["makespan"]
        assert legacy["answer"] == gated["answer"]

    def test_e21_fanout_trace_identical_with_serving_switches_on(self):
        e21 = load_bench("test_e21_fast_data_plane")
        legacy = e21.run_fanout(e21.fanout_runtime(fetch_dedup=True), spread=False)
        gated = e21.run_fanout(
            e21.fanout_runtime(fetch_dedup=True, **SERVING_SWITCHES), spread=False
        )
        assert legacy.log.signature() == gated.log.signature()
        assert legacy.sim.now == gated.sim.now

    def test_e22_overload_trace_identical_with_serving_switches_on(self):
        """The burst-heavy E22 scenario also pins the ChaosMonkey._burst
        refactor onto the shared arrival helper: offsets must not move."""
        e22 = load_bench("test_e22_overload")
        legacy_rt, legacy_monkey = e22.run_scenario(spike=True)
        gated_rt, gated_monkey = e22.run_scenario(spike=True, **SERVING_SWITCHES)
        assert legacy_rt.log.signature() == gated_rt.log.signature()
        assert legacy_monkey.load_submitted == gated_monkey.load_submitted
        assert legacy_rt.sim.now == gated_rt.sim.now
