"""Tests for MPMD pipeline-parallel training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import build_physical_disagg, build_tightly_coupled
from repro.frontends.mpmd import (
    PipelineParallelTrainer,
    StageState,
    serial_reference_training,
)
from repro.runtime import ServerlessRuntime


@pytest.fixture
def data(rng):
    X = rng.standard_normal((48, 6))
    w1 = rng.standard_normal((6, 4))
    w2 = rng.standard_normal(4)
    y = np.maximum(X @ w1, 0) @ w2
    return X, y


def make_trainer(dims=(6, 12, 1), n_accel=3, lr=0.05, seed=2):
    rt = ServerlessRuntime(build_tightly_coupled(n_accel=n_accel))
    return PipelineParallelTrainer(rt, dims, lr=lr, seed=seed), rt


class TestStageState:
    def test_forward_backward_shapes(self, rng):
        state = StageState(4, 3, is_last=False, seed=0)
        x = rng.standard_normal((8, 4))
        out = StageState.forward(state, 0, x)
        assert out.shape == (8, 3)
        assert np.all(out >= 0)  # relu on hidden stages
        grad_in = StageState.backward(state, 0, rng.standard_normal((8, 3)))
        assert grad_in.shape == (8, 4)
        assert 0 not in state.inputs  # cache consumed

    def test_last_stage_is_linear(self, rng):
        state = StageState(4, 1, is_last=True, seed=0)
        x = rng.standard_normal((8, 4))
        out = StageState.forward(state, 0, x)
        np.testing.assert_allclose(out, x @ state.W)

    def test_apply_update_resets_accumulator(self, rng):
        state = StageState(4, 2, is_last=True, seed=0)
        x = rng.standard_normal((8, 4))
        StageState.forward(state, 0, x)
        StageState.backward(state, 0, rng.standard_normal((8, 2)))
        norm = StageState.apply_update(state, lr=0.1, scale=1.0)
        assert norm > 0
        assert np.all(state.dW_accum == 0)


class TestPipelineTrainer:
    def test_matches_serial_oracle_exactly(self, data):
        X, y = data
        trainer, _ = make_trainer()
        for _ in range(4):
            trainer.train_epoch(X, y, microbatches=4)
        ref = serial_reference_training((6, 12, 1), X, y, epochs=4, lr=0.05, seed=2)
        for W_dist, W_ref in zip(trainer.weights(), ref, strict=False):
            np.testing.assert_allclose(W_dist, W_ref)

    def test_microbatch_count_does_not_change_math(self, data):
        X, y = data
        t1, _ = make_trainer(seed=5)
        t2, _ = make_trainer(seed=5)
        t1.train_epoch(X, y, microbatches=2)
        t2.train_epoch(X, y, microbatches=8)
        for a, b in zip(t1.weights(), t2.weights(), strict=False):
            np.testing.assert_allclose(a, b)

    def test_loss_decreases(self, data):
        X, y = data
        trainer, _ = make_trainer(lr=0.02)
        losses = [trainer.train_epoch(X, y, microbatches=4) for _ in range(8)]
        assert losses[-1] < losses[0]

    def test_stages_on_distinct_accelerators(self, data):
        trainer, _ = make_trainer(dims=(6, 8, 8, 1), n_accel=4)
        devices = {h.device_id for h in trainer.handles}
        assert len(devices) == 3

    def test_pipelining_overlaps_stages(self, data):
        """More microbatches amortize the pipeline bubble in virtual time."""
        X, y = data

        def epoch_time(mb):
            rt = ServerlessRuntime(build_tightly_coupled(n_accel=4))
            trainer = PipelineParallelTrainer(
                rt, (6, 8, 8, 1), lr=0.05, seed=5, stage_cost=0.08
            )
            trainer.train_epoch(X, y, microbatches=mb)
            return rt.sim.now

        times = [epoch_time(mb) for mb in (1, 2, 4, 8)]
        # 1 microbatch = fully serial through 3 stages; more overlap them
        assert times == sorted(times, reverse=True)
        assert times[-1] < times[0] / 1.5

    def test_runs_on_disagg_cluster_too(self, data):
        X, y = data
        rt = ServerlessRuntime(build_physical_disagg())
        trainer = PipelineParallelTrainer(rt, (6, 12, 1), lr=0.05, seed=2)
        loss = trainer.train_epoch(X, y, microbatches=4)
        assert np.isfinite(loss)

    def test_validation(self, data):
        X, y = data
        with pytest.raises(ValueError, match="at least one layer"):
            rt = ServerlessRuntime(build_tightly_coupled(2))
            PipelineParallelTrainer(rt, (6,))
        with pytest.raises(ValueError, match="accelerators"):
            rt = ServerlessRuntime(build_tightly_coupled(2))
            PipelineParallelTrainer(rt, (6, 8, 8, 8, 1))
        trainer, _ = make_trainer()
        with pytest.raises(ValueError, match="microbatch"):
            trainer.train_epoch(X, y, microbatches=0)

    def test_predict_uses_trained_weights(self, data):
        X, y = data
        trainer, _ = make_trainer(lr=0.02)
        for _ in range(10):
            trainer.train_epoch(X, y, microbatches=4)
        preds = trainer.predict(X)
        assert preds.shape == y.shape
        baseline = np.mean((y - y.mean()) ** 2)
        assert np.mean((preds - y) ** 2) < baseline
