"""Tests for the SSA core: builder, verifier, printer, types."""

from __future__ import annotations

import pytest

from repro.ir import (
    Builder,
    FrameType,
    IRVerificationError,
    Module,
    TensorType,
    col,
    lit,
    op_def,
)
from repro.ir.core import Operation, Value


def simple_frame():
    return FrameType((("k", "int64"), ("x", "float64")))


class TestTypes:
    def test_tensor_type_repr_and_elements(self):
        t = TensorType((2, None, 3))
        assert repr(t) == "tensor<2x?x3xfloat64>"
        assert t.num_elements() is None
        assert TensorType((2, 3)).num_elements() == 6
        assert TensorType((), "int64").rank == 0

    def test_tensor_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorType((-1, 2))

    def test_frame_type_columns(self):
        f = simple_frame()
        assert f.names == ("k", "x")
        assert f.dtype_of("x") == "float64"
        assert f.has_column("k") and not f.has_column("z")
        with pytest.raises(KeyError):
            f.dtype_of("z")

    def test_frame_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            FrameType((("a", "int64"), ("a", "int64")))

    def test_type_equality(self):
        assert TensorType((2, 3)) == TensorType((2, 3))
        assert TensorType((2, 3)) != TensorType((3, 2))
        assert simple_frame() == simple_frame()


class TestBuilder:
    def test_emit_infers_result_types(self):
        b = Builder("f")
        scan = b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        assert scan.result().type == simple_frame()
        filt = b.emit("relational", "filter", [scan.result()], {"pred": col("x") > lit(1)})
        assert isinstance(filt.result().type, FrameType)

    def test_verify_accepts_wellformed(self):
        b = Builder("f")
        scan = b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        func = b.ret(scan.result())
        func.verify()  # does not raise

    def test_verify_rejects_use_before_def(self):
        b = Builder("f")
        scan = b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        func = b.ret(scan.result())
        # manufacture an op whose operand was never defined
        ghost = Value("ghost", simple_frame())
        func.ops.append(
            Operation("relational", "filter", [ghost], {"pred": col("x") > lit(0)},)
        )
        func.ops[-1].results = [Value("r", simple_frame())]
        with pytest.raises(IRVerificationError, match="before definition"):
            func.verify()

    def test_verify_rejects_undefined_return(self):
        b = Builder("f")
        b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        func = b.ret(Value("ghost", simple_frame()))
        with pytest.raises(IRVerificationError, match="undefined value"):
            func.verify()

    def test_verify_rejects_wrong_arity(self):
        b = Builder("f")
        scan1 = b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        scan2 = b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        func = b.ret(scan2.result())
        func.ops[1].operands.append(scan1.result())  # scan takes 0 operands
        with pytest.raises(IRVerificationError, match="expects 0 operands"):
            func.verify()

    def test_bad_op_name_raises(self):
        b = Builder("f")
        with pytest.raises(KeyError, match="unknown op"):
            b.emit("relational", "nonsense", (), {})

    def test_infer_failure_propagates(self):
        b = Builder("f")
        with pytest.raises(KeyError, match="'table'"):
            b.emit("relational", "scan", (), {"schema": simple_frame()})


class TestPrinting:
    def test_to_text_round_structure(self):
        b = Builder("q")
        scan = b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        filt = b.emit("relational", "filter", [scan.result()], {"pred": col("x") > lit(1)})
        func = b.ret(filt.result())
        text = func.to_text()
        assert "func @q()" in text
        assert "relational.scan()" in text
        assert "relational.filter(%v0)" in text
        assert text.strip().endswith("}")
        assert "return %v1" in text

    def test_deterministic_output(self):
        def build():
            b = Builder("q")
            scan = b.emit(
                "relational", "scan", (), {"table": "t", "schema": simple_frame()}
            )
            return b.ret(scan.result()).to_text()

        assert build() == build()


class TestModule:
    def test_add_and_lookup(self):
        m = Module("m")
        b = Builder("f")
        scan = b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        func = b.ret(scan.result())
        m.add(func)
        assert m.func("f") is func
        m.verify()
        assert "func @f" in m.to_text()

    def test_duplicate_function_rejected(self):
        m = Module()
        b = Builder("f")
        scan = b.emit("relational", "scan", (), {"table": "t", "schema": simple_frame()})
        m.add(b.ret(scan.result()))
        with pytest.raises(ValueError):
            m.add(b.function)

    def test_missing_function(self):
        with pytest.raises(KeyError):
            Module().func("ghost")


class TestOpRegistry:
    def test_op_def_lookup(self):
        defn = op_def("linalg", "matmul")
        assert defn.qualified == "linalg.matmul"
        assert defn.num_operands == 2
        assert not defn.elementwise

    def test_elementwise_flags(self):
        assert op_def("linalg", "relu").elementwise
        assert op_def("df", "where").elementwise
        assert not op_def("df", "hash_join").elementwise
