"""Tests for the benchmark harness utilities and Table 1 data."""

from __future__ import annotations

import pytest

from repro.bench import (
    RELATED_WORK,
    ResultTable,
    fmt_bytes,
    fmt_seconds,
    lineitem_like_table,
    orders_table,
    render_table1,
    skadi_unique_claim,
    speedup,
)


class TestFormatting:
    def test_fmt_seconds_ranges(self):
        assert fmt_seconds(5e-7) == "0.5 us"
        assert fmt_seconds(2.5e-3) == "2.50 ms"
        assert fmt_seconds(1.5) == "1.50 s"

    def test_fmt_bytes_ranges(self):
        assert fmt_bytes(100) == "100 B"
        assert fmt_bytes(2048) == "2.0 KiB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.0 MiB"
        assert fmt_bytes(5 * 1024**3) == "5.0 GiB"

    def test_speedup(self):
        assert speedup(2.0, 1.0) == "2.00x"
        assert speedup(1.0, 0.0) == "inf"


class TestResultTable:
    def test_render_and_lookup(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(22, "yy")
        text = table.to_text()
        assert "== demo ==" in text
        assert "a  | b" in text
        assert table.column_values("b") == ["x", "yy"]

    def test_row_arity_checked(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)


class TestTable1:
    def test_eighteen_systems(self):
        assert len(RELATED_WORK) == 18
        assert RELATED_WORK[-1].name == "Skadi"

    def test_render_has_all_rows(self):
        table = render_table1()
        text = table.to_text()
        for row in RELATED_WORK:
            assert row.name in text

    def test_skadi_is_unique_full_house(self):
        assert skadi_unique_claim()

    def test_paper_specific_cells(self):
        """Spot-check cells against the paper's Table 1."""
        by_name = {r.name: r for r in RELATED_WORK}
        assert by_name["LegoOS"].api == "POSIX" and by_name["LegoOS"].phys_disagg
        assert by_name["Ray"].serverless == "stateful" and by_name["Ray"].integration
        assert by_name["DAPHNE"].ir == "MLIR" and by_name["DAPHNE"].serverless == "stateless"
        assert by_name["Pathways"].ir == "MLIR"
        assert by_name["Dryad"].serverless == "stateless"
        assert not by_name["Cloudburst"].phys_disagg


class TestWorkloads:
    def test_orders_table_deterministic(self):
        assert orders_table(100, seed=3) == orders_table(100, seed=3)

    def test_lineitem_columns(self):
        t = lineitem_like_table(50)
        assert "l_extendedprice" in t.schema.names
        assert t.num_rows == 50
