"""Tests for the SQL frontend: lexer, parser, planner, execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontends.sql import (
    AggCall,
    SQLPlanError,
    SQLSyntaxError,
    parse_select,
    sql_to_ir,
    tokenize,
)
from repro.ir import run_function
from repro.ir.expr import BinOp



class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt x FrOm t")
        assert [t.kind for t in tokens] == ["kw", "ident", "kw", "ident", "eof"]
        assert tokens[0].text == "select"

    def test_numbers_and_strings(self):
        tokens = tokenize("42 3.14 'hello'")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("number", "42"),
            ("number", "3.14"),
            ("string", "hello"),
        ]

    def test_symbols(self):
        tokens = tokenize("a >= 1 <> 2")
        assert [t.text for t in tokens if t.kind == "sym"] == [">=", "<>"]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated"):
            tokenize("select 'oops")

    def test_unexpected_char(self):
        with pytest.raises(SQLSyntaxError, match="unexpected"):
            tokenize("select @")


class TestParser:
    def test_simple_select(self):
        stmt = parse_select("SELECT a, b FROM t")
        assert stmt.table == "t"
        assert [i.output_name for i in stmt.items] == ["a", "b"]
        assert not stmt.is_aggregate

    def test_select_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.items == []

    def test_where_precedence(self):
        stmt = parse_select("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3")
        # OR binds loosest
        assert isinstance(stmt.where, BinOp) and stmt.where.op == "or"
        assert stmt.where.left.op == "and"

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT a + b * 2 AS z FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized(self):
        stmt = parse_select("SELECT (a + b) * 2 AS z FROM t")
        assert stmt.items[0].expr.op == "*"

    def test_aggregates_and_aliases(self):
        stmt = parse_select("SELECT k, SUM(x) AS s, COUNT(*), AVG(x) FROM t GROUP BY k")
        assert stmt.is_aggregate
        aggs = [i.expr for i in stmt.items if isinstance(i.expr, AggCall)]
        assert [a.fn for a in aggs] == ["sum", "count", "mean"]
        assert stmt.items[2].output_name == "count_all"

    def test_join_clause(self):
        stmt = parse_select("SELECT a FROM t JOIN u ON t.k = u.k2")
        assert stmt.joins[0].table == "u"
        assert stmt.joins[0].left_on == "k"
        assert stmt.joins[0].right_on == "k2"

    def test_order_limit(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC LIMIT 5")
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5

    def test_trailing_semicolon_ok(self):
        parse_select("SELECT a FROM t;")

    def test_garbage_after_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t WHERE")

    def test_sum_star_rejected(self):
        with pytest.raises(SQLSyntaxError, match="not valid"):
            parse_select("SELECT SUM(*) FROM t")

    def test_not_and_unary_minus(self):
        stmt = parse_select("SELECT a FROM t WHERE NOT a > -1")
        assert stmt.where is not None


class TestPlanner:
    def test_unknown_table(self, catalog):
        with pytest.raises(SQLPlanError, match="unknown table"):
            sql_to_ir("SELECT oid FROM ghost", catalog)

    def test_nonaggregated_column_outside_group_by(self, catalog):
        with pytest.raises(SQLPlanError, match="GROUP BY"):
            sql_to_ir("SELECT amount, SUM(qty) FROM orders GROUP BY cust", catalog)

    def test_having_without_group_by(self, catalog):
        with pytest.raises(SQLPlanError, match="HAVING"):
            sql_to_ir("SELECT oid FROM orders HAVING oid > 1", catalog)

    def test_mixed_sort_directions_rejected(self, catalog):
        with pytest.raises(SQLPlanError, match="mixed"):
            sql_to_ir("SELECT oid, cust FROM orders ORDER BY oid ASC, cust DESC", catalog)

    def test_plan_shape(self, catalog):
        func = sql_to_ir(
            "SELECT cust, SUM(amount) AS s FROM orders WHERE amount > 5 "
            "GROUP BY cust ORDER BY cust LIMIT 3",
            catalog,
        )
        assert [op.qualified for op in func.ops] == [
            "relational.scan",
            "relational.filter",
            "relational.aggregate",
            "relational.sort",
            "relational.limit",
        ]


class TestExecution:
    def run_sql(self, sql, catalog, tables):
        (out,) = run_function(sql_to_ir(sql, catalog), tables=tables)
        return out

    def test_projection_with_expression(self, catalog, orders, customers):
        out = self.run_sql(
            "SELECT oid, amount * qty AS revenue FROM orders",
            catalog,
            {"orders": orders},
        )
        np.testing.assert_allclose(
            out.column("revenue"),
            orders.column("amount") * orders.column("qty"),
        )

    def test_select_star_passthrough(self, catalog, orders):
        out = self.run_sql("SELECT * FROM orders", catalog, {"orders": orders})
        assert out == orders

    def test_where_filters(self, catalog, orders):
        out = self.run_sql(
            "SELECT oid FROM orders WHERE amount > 50 AND qty < 5",
            catalog,
            {"orders": orders},
        )
        mask = (orders.column("amount") > 50) & (orders.column("qty") < 5)
        assert out.num_rows == int(mask.sum())

    def test_join_group_by_matches_numpy(self, catalog, orders, customers):
        out = self.run_sql(
            "SELECT region, SUM(amount) AS total FROM orders "
            "JOIN customers ON cust = cid GROUP BY region ORDER BY region",
            catalog,
            {"orders": orders, "customers": customers},
        )
        region_of = dict(
            zip(customers.column("cid").tolist(), customers.column("region").tolist(), strict=False)
        )
        expected = {}
        for c, a in zip(orders.column("cust").tolist(), orders.column("amount").tolist(), strict=False):
            expected[region_of[c]] = expected.get(region_of[c], 0.0) + a
        for region, total in zip(out.column("region").tolist(), out.column("total").tolist(), strict=False):
            assert total == pytest.approx(expected[region])

    def test_having_filters_groups(self, catalog, orders):
        out = self.run_sql(
            "SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust HAVING n > 25",
            catalog,
            {"orders": orders},
        )
        assert all(n > 25 for n in out.column("n").tolist())

    def test_order_by_desc_limit(self, catalog, orders):
        out = self.run_sql(
            "SELECT oid, amount FROM orders ORDER BY amount DESC LIMIT 10",
            catalog,
            {"orders": orders},
        )
        top10 = np.sort(orders.column("amount"))[-10:][::-1]
        np.testing.assert_allclose(out.column("amount"), top10)

    def test_count_star(self, catalog, orders):
        out = self.run_sql(
            "SELECT COUNT(*) AS n FROM orders", catalog, {"orders": orders}
        )
        assert out.column("n").tolist() == [orders.num_rows]
