"""Edge-case tests for the IR interpreter and kernel dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.caching.columnar import RecordBatch
from repro.ir import (
    Builder,
    FrameType,
    FusedStep,
    Interpreter,
    TensorType,
    col,
    lit,
    run_function,
)
from repro.ir.interpreter import execute_op
from repro.ir.core import Operation


def frame():
    return FrameType((("k", "int64"), ("x", "float64")))


class TestInterpreter:
    def test_missing_input_raises(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((2, 2)))
        func = b.ret(b.emit("linalg", "relu", [x]).result())
        with pytest.raises(KeyError, match="missing input"):
            run_function(func, {})

    def test_multiple_returns(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((2, 2)))
        a = b.emit("linalg", "relu", [x])
        c = b.emit("linalg", "neg", [x])
        func = b.function
        func.returns = [a.result(), c.result()]
        xv = np.array([[1.0, -1.0], [2.0, -2.0]])
        out = run_function(func, {"x": xv})
        assert len(out) == 2
        np.testing.assert_allclose(out[0], np.maximum(xv, 0))
        np.testing.assert_allclose(out[1], -xv)

    def test_param_passthrough_return(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((2,)))
        func = b.ret(x)
        (out,) = run_function(func, {"x": np.array([1.0, 2.0])})
        assert out.tolist() == [1.0, 2.0]

    def test_tables_shared_across_scans(self, small_batch):
        b = Builder("f")
        s1 = b.emit("relational", "scan", (), {"table": "t", "schema": frame()})
        s2 = b.emit("relational", "scan", (), {"table": "t", "schema": frame()})
        j = b.emit(
            "relational", "join", [s1.result(), s2.result()],
            {"left_on": "k", "right_on": "k"},
        )
        func = b.ret(j.result())
        interp = Interpreter({"t": small_batch})
        (out,) = interp.run(func)
        # self-join row count: sum over keys of count^2
        import collections

        counts = collections.Counter(small_batch.column("k").tolist())
        assert out.num_rows == sum(c * c for c in counts.values())


class TestExecuteOp:
    def test_unknown_kernel_rejected(self):
        op = Operation("kernel", "call", [], {"kernel": "ghost.op", "result_type": frame()})
        op.results = []
        with pytest.raises(KeyError, match="ghost.op"):
            execute_op(op, [])

    def test_fused_step_refs_resolve(self, rng):
        steps = (
            FusedStep("linalg", "relu", (0,)),
            FusedStep("linalg", "neg", (-1,)),
            FusedStep("linalg", "add", (-2, -1)),  # relu(x) + neg(relu(x))
        )
        op = Operation(
            "kernel", "fused", [], {"steps": steps, "result_type": TensorType((3,))}
        )
        op.results = []
        x = rng.standard_normal(3)
        out = execute_op(op, [x])
        np.testing.assert_allclose(out, np.zeros(3))  # r + (-r) == 0

    def test_unknown_fused_step_kernel(self):
        steps = (FusedStep("nope", "op", (0,)),)
        op = Operation(
            "kernel", "fused", [], {"steps": steps, "result_type": TensorType((1,))}
        )
        op.results = []
        with pytest.raises(KeyError, match="no kernel"):
            execute_op(op, [np.zeros(1)])


class TestFrameKernelEdges:
    def test_filter_empty_result_keeps_schema(self, small_batch):
        b = Builder("f")
        s = b.emit("relational", "scan", (), {"table": "t", "schema": frame()})
        f = b.emit("relational", "filter", [s.result()], {"pred": col("x") > lit(1e9)})
        func = b.ret(f.result())
        (out,) = run_function(func, tables={"t": small_batch})
        assert out.num_rows == 0
        assert out.schema == small_batch.schema

    def test_join_with_no_matches(self, small_batch):
        right = RecordBatch.from_pydict({"k2": [99], "y": [1.0]})
        b = Builder("f")
        s = b.emit("relational", "scan", (), {"table": "t", "schema": frame()})
        r = b.emit(
            "relational", "scan", (),
            {"table": "u", "schema": FrameType((("k2", "int64"), ("y", "float64")))},
        )
        j = b.emit(
            "relational", "join", [s.result(), r.result()],
            {"left_on": "k", "right_on": "k2"},
        )
        func = b.ret(j.result())
        (out,) = run_function(func, tables={"t": small_batch, "u": right})
        assert out.num_rows == 0
        assert out.schema.names == ["k", "x", "y"]

    def test_aggregate_empty_group_by_empty_input(self):
        empty = RecordBatch.from_arrays(
            {"k": np.array([], dtype=np.int64), "x": np.array([], dtype=np.float64)}
        )
        b = Builder("f")
        s = b.emit("relational", "scan", (), {"table": "t", "schema": frame()})
        a = b.emit(
            "relational", "aggregate", [s.result()],
            {"keys": ("k",), "aggs": (("s", "sum", "x"),)},
        )
        func = b.ret(a.result())
        (out,) = run_function(func, tables={"t": empty})
        assert out.num_rows == 0

    def test_global_count_of_empty_is_zero(self):
        empty = RecordBatch.from_arrays(
            {"k": np.array([], dtype=np.int64), "x": np.array([], dtype=np.float64)}
        )
        b = Builder("f")
        s = b.emit("relational", "scan", (), {"table": "t", "schema": frame()})
        a = b.emit(
            "relational", "aggregate", [s.result()],
            {"keys": (), "aggs": (("n", "count", "x"), ("s", "sum", "x"))},
        )
        func = b.ret(a.result())
        (out,) = run_function(func, tables={"t": empty})
        assert out.column("n").tolist() == [0]
        assert out.column("s").tolist() == [0.0]

    def test_limit_beyond_length(self, small_batch):
        b = Builder("f")
        s = b.emit("relational", "scan", (), {"table": "t", "schema": frame()})
        l = b.emit("relational", "limit", [s.result()], {"n": 999})
        func = b.ret(l.result())
        (out,) = run_function(func, tables={"t": small_batch})
        assert out.num_rows == small_batch.num_rows
