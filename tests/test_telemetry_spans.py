"""Unit tests for span tracing, critical-path extraction, and Chrome export."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    ATTRIBUTION_BUCKETS,
    MetricsRegistry,
    Tracer,
    counters_to_chrome_events,
    critical_path,
    spans_to_chrome_events,
)


class TestTracer:
    def test_ids_are_sequential_and_deterministic(self):
        tracer = Tracer()
        a = tracer.start_span("a", "task")
        b = tracer.start_span("b", "task")
        assert (a.trace_id, a.span_id) == ("trace-0001", "span-000001")
        assert (b.trace_id, b.span_id) == ("trace-0002", "span-000002")

    def test_trace_id_propagates_parent_to_child(self):
        tracer = Tracer()
        parent = tracer.start_span("parent", "task")
        child = tracer.start_span("child", "compute", parent=parent)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_finish_guards(self):
        tracer = Tracer()
        span = tracer.start_span("t", "task", start=1.0)
        with pytest.raises(ValueError, match="ends before it starts"):
            span.finish(0.5)
        span.finish(2.0)
        with pytest.raises(RuntimeError, match="already finished"):
            span.finish(3.0)

    def test_emit_records_closed_span(self):
        tracer = Tracer()
        span = tracer.emit("x", "transfer", 1.0, 2.0)
        assert not span.is_open
        assert span.duration == 1.0
        assert tracer.finished_spans() == [span]

    def test_open_spans_excluded_from_finished(self):
        tracer = Tracer()
        tracer.start_span("open", "task")
        done = tracer.emit("done", "task", 0.0, 1.0)
        assert tracer.finished_spans() == [done]


def _task_span(tracer, name, submitted, dispatched, inputs_ready, started,
               finished, links=(), **attrs):
    """A task span shaped exactly like the runtime's (milestones in attrs)."""
    return tracer.emit(
        name,
        "task",
        submitted,
        finished,
        links=links,
        task_id=name,
        dispatched=dispatched,
        inputs_ready=inputs_ready,
        started=started,
        **attrs,
    )


class TestCriticalPath:
    def test_single_task_exact_attribution(self):
        tracer = Tracer()
        # submitted 0, dispatched 1, inputs 3, started 4, finished 10
        span = _task_span(tracer, "t", 0.0, 1.0, 3.0, 4.0, 10.0)
        result = critical_path(tracer.finished_spans(), span)
        assert result.total == pytest.approx(10.0)
        assert result.breakdown["queue"] == pytest.approx(2.0)  # 0-1 and 3-4
        assert result.breakdown["transfer"] == pytest.approx(2.0)  # 1-3
        assert result.breakdown["compute"] == pytest.approx(6.0)  # 4-10
        assert result.breakdown["recovery"] == 0.0
        assert sum(result.fractions.values()) == pytest.approx(1.0)

    def test_chain_follows_gating_producer(self):
        tracer = Tracer()
        fast = _task_span(tracer, "fast", 0.0, 0.0, 0.0, 0.0, 1.0)
        slow = _task_span(tracer, "slow", 0.0, 0.0, 0.0, 0.0, 5.0)
        sink = _task_span(
            tracer, "sink", 0.0, 0.5, 6.0, 6.0, 8.0,
            links=(fast.span_id, slow.span_id),
        )
        result = critical_path(tracer.finished_spans(), sink)
        # the gate is `slow` (finished last); `fast` is off the path
        assert result.task_ids() == ["slow", "sink"]
        # sink contributes only its post-gate window [5, 8]
        assert result.breakdown["compute"] == pytest.approx(5.0 + 2.0)
        assert result.breakdown["transfer"] == pytest.approx(1.0)  # 5-6 clipped
        assert result.total == pytest.approx(8.0)

    def test_clipping_under_push_dispatch(self):
        tracer = Tracer()
        # push mode: consumer dispatched at t=0 but its producer ends at t=4,
        # so [dispatched, inputs_ready] = [0, 4.5] must clip to [4, 4.5]
        producer = _task_span(tracer, "p", 0.0, 0.0, 0.0, 0.0, 4.0)
        consumer = _task_span(
            tracer, "c", 0.0, 0.0, 4.5, 4.5, 6.0, links=(producer.span_id,)
        )
        result = critical_path(tracer.finished_spans(), consumer)
        assert result.breakdown["transfer"] == pytest.approx(0.5)
        assert result.breakdown["compute"] == pytest.approx(4.0 + 1.5)
        assert result.total == pytest.approx(6.0)

    def test_segments_are_contiguous(self):
        tracer = Tracer()
        a = _task_span(tracer, "a", 0.0, 0.2, 0.2, 0.5, 2.0)
        b = _task_span(tracer, "b", 0.1, 0.3, 2.5, 2.5, 4.0, links=(a.span_id,))
        result = critical_path(tracer.finished_spans(), b)
        for prev, nxt in zip(result.segments, result.segments[1:], strict=False):
            assert prev.end == pytest.approx(nxt.start)
        assert result.segments[0].start == 0.0
        assert result.segments[-1].end == 4.0
        assert sum(result.breakdown.values()) == pytest.approx(result.total)

    def test_replayed_task_is_all_recovery(self):
        tracer = Tracer()
        span = _task_span(tracer, "r", 1.0, 1.2, 1.5, 1.6, 3.0, replayed=True)
        result = critical_path(tracer.finished_spans(), span)
        assert result.breakdown["recovery"] == pytest.approx(2.0)
        assert result.breakdown["compute"] == 0.0

    def test_retried_task_queue_becomes_recovery(self):
        tracer = Tracer()
        span = _task_span(tracer, "r", 0.0, 5.0, 5.5, 6.0, 7.0, retries=2)
        result = critical_path(tracer.finished_spans(), span)
        # queue windows [0,5] + [5.5,6] fold into recovery; the winning
        # attempt's transfer and compute remain genuinely that
        assert result.breakdown["recovery"] == pytest.approx(5.5)
        assert result.breakdown["transfer"] == pytest.approx(0.5)
        assert result.breakdown["compute"] == pytest.approx(1.0)

    def test_target_must_be_finished_task_span(self):
        tracer = Tracer()
        phase = tracer.emit("x", "compute", 0.0, 1.0)
        with pytest.raises(ValueError, match="task span"):
            critical_path(tracer.finished_spans(), phase)
        open_task = tracer.start_span("open", "task")
        with pytest.raises(ValueError, match="still open"):
            critical_path(tracer.spans, open_task)

    def test_buckets_cover_constant(self):
        assert ATTRIBUTION_BUCKETS == ("compute", "transfer", "queue", "recovery")


class TestChromeExport:
    def test_spans_become_complete_events(self):
        tracer = Tracer()
        span = tracer.emit("t", "task", 0.0, 1.0, node="server0", device="server0/cpu0")
        (event,) = spans_to_chrome_events([span], flows=False)
        assert event["ph"] == "X"
        assert event["pid"] == "server0"
        assert event["tid"] == "server0/cpu0"
        assert event["ts"] == 0.0
        assert event["dur"] == pytest.approx(1e6)
        assert event["args"]["span_id"] == span.span_id

    def test_causal_links_become_flow_pairs(self):
        tracer = Tracer()
        producer = tracer.emit("p", "task", 0.0, 2.0)
        consumer = tracer.emit(
            "c", "task", 1.0, 4.0, links=(producer.span_id,)
        )
        events = spans_to_chrome_events([producer, consumer])
        flows = [e for e in events if e["cat"] == "flow"]
        assert {e["ph"] for e in flows} == {"s", "f"}
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert start["ts"] == pytest.approx(2.0 * 1e6)  # producer finish
        assert finish["ts"] == pytest.approx(2.0 * 1e6)  # consumer resume
        assert finish["bp"] == "e"

    def test_gauge_samples_become_counter_events(self):
        registry = MetricsRegistry()
        g = registry.gauge("skadi_depth", device="gpu0")
        g.set(1)
        g.set(3)
        events = counters_to_chrome_events(registry)
        assert all(e["ph"] == "C" for e in events)
        assert events[-1]["args"]["value"] == 3.0
        assert events[0]["name"] == "skadi_depth{device=gpu0}"
