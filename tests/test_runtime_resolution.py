"""Tests for future resolution protocols and generation behaviours.

These check the *mechanisms* behind Figure 3 / §2.3.2; the quantitative
shapes live in benchmarks/test_fig3_gen1_gen2.py and test_e1_pull_vs_push.py.
"""

from __future__ import annotations


from repro.cluster.cluster import build_physical_disagg
from repro.cluster.hardware import DeviceKind
from repro.runtime import (
    Generation,
    ResolutionMode,
    RuntimeConfig,
    SchedulingPolicy,
    ServerlessRuntime,
)


def chain_runtime(generation, resolution):
    cluster = build_physical_disagg()
    return ServerlessRuntime(
        cluster,
        RuntimeConfig(
            generation=generation,
            resolution=resolution,
            scheduling=SchedulingPolicy.ROUND_ROBIN,
        ),
    )


def run_chain(rt, length=6, cost=1e-5, kinds=frozenset({DeviceKind.FPGA})):
    ref = rt.submit(lambda: 0, compute_cost=cost, supported_kinds=kinds, name="head")
    for i in range(length - 1):
        ref = rt.submit(
            lambda x: x + 1,
            (ref,),
            compute_cost=cost,
            supported_kinds=kinds,
            name=f"link{i}",
        )
    value = rt.get(ref)
    return value, rt.sim.now


class TestResolutionSemantics:
    def test_pull_and_push_same_answer(self):
        v_pull, _ = run_chain(chain_runtime(Generation.GEN2, ResolutionMode.PULL))
        v_push, _ = run_chain(chain_runtime(Generation.GEN2, ResolutionMode.PUSH))
        assert v_pull == v_push == 5

    def test_push_faster_for_short_ops(self):
        _, t_pull = run_chain(chain_runtime(Generation.GEN2, ResolutionMode.PULL))
        _, t_push = run_chain(chain_runtime(Generation.GEN2, ResolutionMode.PUSH))
        assert t_push < t_pull

    def test_push_fewer_control_messages(self):
        rt_pull = chain_runtime(Generation.GEN2, ResolutionMode.PULL)
        rt_push = chain_runtime(Generation.GEN2, ResolutionMode.PUSH)
        run_chain(rt_pull)
        run_chain(rt_push)
        assert rt_push.control_messages < rt_pull.control_messages

    def test_gen2_beats_gen1_on_chained_fpga_ops(self):
        _, t_gen1 = run_chain(chain_runtime(Generation.GEN1, ResolutionMode.PULL))
        _, t_gen2 = run_chain(chain_runtime(Generation.GEN2, ResolutionMode.PULL))
        assert t_gen2 < t_gen1

    def test_push_shrinks_producer_to_consumer_gap(self):
        """Time from producer finish to consumer finish is what push attacks
        (note: input_stall itself is not comparable across modes, because
        push dispatches consumers eagerly at submit)."""

        def gap(rt):
            run_chain(rt, length=2)
            producer, consumer = rt.timelines[0], rt.timelines[1]
            return consumer.finished - producer.finished

        gap_pull = gap(chain_runtime(Generation.GEN2, ResolutionMode.PULL))
        gap_push = gap(chain_runtime(Generation.GEN2, ResolutionMode.PUSH))
        assert gap_push < gap_pull

    def test_push_to_consumer_on_same_device_needs_no_transfer(self):
        cluster = build_physical_disagg()
        rt = ServerlessRuntime(
            cluster,
            RuntimeConfig(resolution=ResolutionMode.PUSH),
        )
        fpga = cluster.devices_of_kind(DeviceKind.FPGA)[0]
        a = rt.submit(lambda: 1, pinned_device=fpga.device_id, output_nbytes=1 << 20)
        b = rt.submit(lambda x: x, (a,), pinned_device=fpga.device_id)
        before = rt.bytes_moved
        rt.get(b)
        assert rt.bytes_moved == before  # both on one device: zero bytes

    def test_pull_transfers_bytes_cross_device(self):
        cluster = build_physical_disagg()
        rt = ServerlessRuntime(cluster, RuntimeConfig(resolution=ResolutionMode.PULL))
        f0, f1 = cluster.devices_of_kind(DeviceKind.FPGA)[:2]
        a = rt.submit(lambda: 1, pinned_device=f0.device_id, output_nbytes=1 << 20)
        b = rt.submit(lambda x: x, (a,), pinned_device=f1.device_id)
        rt.get(b)
        assert rt.bytes_moved >= 1 << 20


class TestGenerations:
    def test_gen1_single_raylet_per_card(self):
        rt = chain_runtime(Generation.GEN1, ResolutionMode.PULL)
        card_raylets = [
            r for r in rt._raylets if r.host_device.kind == DeviceKind.DPU
        ]
        assert card_raylets  # DPU-hosted raylets exist
        for raylet in card_raylets:
            assert all(d.kind != DeviceKind.DPU for d in raylet.devices)

    def test_gen2_raylet_per_device(self):
        rt = chain_runtime(Generation.GEN2, ResolutionMode.PULL)
        assert not any(r.host_device.kind == DeviceKind.DPU for r in rt._raylets)
        for raylet in rt._raylets:
            if raylet.host_device.kind in (DeviceKind.GPU, DeviceKind.FPGA):
                assert raylet.devices == [raylet.host_device]

    def test_gen1_serializes_control_at_dpu(self):
        """Two FPGA ops on one card contend on the DPU raylet in Gen-1."""
        rt = chain_runtime(Generation.GEN1, ResolutionMode.PULL)
        cluster = rt.cluster
        card = next(
            n
            for n in cluster.nodes.values()
            if len(n.devices_of_kind(DeviceKind.FPGA)) == 2
        )
        f0, f1 = card.devices_of_kind(DeviceKind.FPGA)
        assert rt.raylet_for_device(f0.device_id) is rt.raylet_for_device(f1.device_id)

    def test_ownership_entries_get_device_ids(self):
        rt = chain_runtime(Generation.GEN2, ResolutionMode.PULL)
        ref = rt.submit(lambda: 1, supported_kinds=frozenset({DeviceKind.GPU}))
        rt.get(ref)
        entry = rt.ownership.entry(ref.object_id)
        assert entry.device_id is not None and "gpu" in entry.device_id
        assert entry.device_handle is not None
