"""Tests for the serverless runtime: tasks, futures, actors, gangs."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import build_physical_disagg, build_serverful
from repro.cluster.hardware import DeviceKind
from repro.runtime import (
    Generation,
    ResolutionMode,
    RuntimeConfig,
    SchedulingPolicy,
    ServerlessRuntime,
    TaskError,
)


def make_runtime(**cfg) -> ServerlessRuntime:
    return ServerlessRuntime(build_physical_disagg(), RuntimeConfig(**cfg))


ALL_CONFIGS = [
    dict(generation=Generation.GEN1, resolution=ResolutionMode.PULL),
    dict(generation=Generation.GEN1, resolution=ResolutionMode.PUSH),
    dict(generation=Generation.GEN2, resolution=ResolutionMode.PULL),
    dict(generation=Generation.GEN2, resolution=ResolutionMode.PUSH),
]


class TestTasks:
    @pytest.mark.parametrize("cfg", ALL_CONFIGS)
    def test_chain_produces_correct_value(self, cfg):
        rt = make_runtime(**cfg)
        a = rt.put([1, 2, 3, 4])
        doubled = rt.submit(lambda xs: [x * 2 for x in xs], (a,), name="double")
        total = rt.submit(sum, (doubled,), name="sum")
        assert rt.get(total) == 20

    def test_get_list_of_refs(self):
        rt = make_runtime()
        refs = [rt.submit(lambda i=i: i * i, name=f"sq{i}") for i in range(5)]
        assert rt.get(refs) == [0, 1, 4, 9, 16]

    def test_task_args_passed_by_value(self):
        rt = make_runtime()
        ref = rt.submit(lambda a, b: a + b, (3, 4))
        assert rt.get(ref) == 7

    def test_kwargs_and_nested_refs(self):
        rt = make_runtime()
        a = rt.put(10)
        ref = rt.submit(lambda xs, scale=1: sum(xs) * scale, ([a, a],), {"scale": 2})
        assert rt.get(ref) == 40

    def test_fanout_fanin(self):
        rt = make_runtime()
        parts = [rt.submit(lambda i=i: list(range(i)), name=f"p{i}") for i in range(1, 5)]
        merged = rt.submit(lambda *ls: sum(len(l) for l in ls), tuple(parts))
        assert rt.get(merged) == 1 + 2 + 3 + 4

    def test_virtual_time_advances(self):
        rt = make_runtime()
        ref = rt.submit(lambda: 1, compute_cost=0.5)
        rt.get(ref)
        assert rt.sim.now >= 0.5

    def test_payload_exception_surfaces_at_get(self):
        rt = make_runtime()

        def boom():
            raise ValueError("kaboom")

        ref = rt.submit(boom)
        with pytest.raises(TaskError, match="kaboom"):
            rt.get(ref)
        assert rt.tasks_failed == 1

    def test_unknown_ref_raises(self):
        from repro.runtime.object_ref import ObjectRef

        rt = make_runtime()
        with pytest.raises(KeyError):
            rt.get(ObjectRef("obj-999999"))

    def test_accelerator_task_lands_on_accelerator(self):
        rt = make_runtime(scheduling=SchedulingPolicy.LOCALITY)
        ref = rt.submit(
            lambda: 1, supported_kinds=frozenset({DeviceKind.FPGA}), name="fpga_op"
        )
        rt.get(ref)
        assert "fpga" in rt.timeline_of(ref).device_id

    def test_timeline_milestones_ordered(self):
        rt = make_runtime()
        a = rt.put(1)
        ref = rt.submit(lambda x: x, (a,), compute_cost=1e-3)
        rt.get(ref)
        tl = rt.timeline_of(ref)
        assert tl.submitted <= tl.dispatched <= tl.inputs_ready <= tl.finished
        assert tl.latency > 0
        assert tl.device_id

    def test_wait_returns_ready_subset(self):
        rt = make_runtime()
        fast = rt.submit(lambda: "fast", compute_cost=1e-5)
        slow = rt.submit(lambda: "slow", compute_cost=1.0)
        ready, not_ready = rt.wait([fast, slow], num_returns=1)
        assert ready == [fast]
        assert slow in not_ready
        assert rt.sim.now < 1.0

    def test_wait_num_returns_validation(self):
        rt = make_runtime()
        ref = rt.submit(lambda: 1)
        with pytest.raises(ValueError):
            rt.wait([ref], num_returns=2)


class TestPut:
    def test_put_is_immediately_ready(self):
        rt = make_runtime()
        ref = rt.put({"k": 1})
        assert rt.ownership.is_ready(ref.object_id)
        assert rt.get(ref) == {"k": 1}

    def test_put_unblocks_waiting_task(self):
        rt = make_runtime(resolution=ResolutionMode.PULL)
        a = rt.put(5)
        ref = rt.submit(lambda x: x + 1, (a,))
        assert rt.get(ref) == 6


class TestActors:
    @pytest.mark.parametrize("cfg", ALL_CONFIGS)
    def test_method_calls_serialize_in_order(self, cfg):
        rt = make_runtime(**cfg)

        class Counter:
            def __init__(self):
                self.history = []

        def record(state, value):
            state.history.append(value)
            return list(state.history)

        actor = rt.create_actor(Counter)
        refs = [actor.call(record, i) for i in range(5)]
        results = rt.get(refs)
        assert results[-1] == [0, 1, 2, 3, 4]

    def test_actor_state_persists_across_calls(self):
        rt = make_runtime()

        class Acc:
            def __init__(self):
                self.total = 0

        def add(state, value):
            state.total += value
            return state.total

        actor = rt.create_actor(Acc)
        rt.get(actor.call(add, 10))
        assert rt.get(actor.call(add, 5)) == 15

    def test_two_actors_are_independent(self):
        rt = make_runtime()

        class Cell:
            def __init__(self):
                self.v = 0

        def setv(state, v):
            state.v = v
            return state.v

        a, b = rt.create_actor(Cell), rt.create_actor(Cell)
        rt.get([a.call(setv, 1), b.call(setv, 2)])
        def getv(state):
            return state.v
        assert rt.get(a.call(getv)) == 1
        assert rt.get(b.call(getv)) == 2

    def test_actor_methods_pinned_to_one_device(self):
        rt = make_runtime()

        class S:
            pass

        def noop(state):
            return 1

        actor = rt.create_actor(S)
        refs = [actor.call(noop) for _ in range(4)]
        rt.get(refs)
        devices = {rt.timeline_of(r).device_id for r in refs}
        assert devices == {actor.device_id}


class TestGang:
    def test_gang_runs_on_distinct_devices(self):
        rt = make_runtime()
        refs = [
            rt.submit(
                lambda i=i: i,
                gang_group="spmd",
                supported_kinds=frozenset({DeviceKind.FPGA}),
                name=f"rank{i}",
            )
            for i in range(4)
        ]
        rt.launch_gang("spmd")
        assert rt.get(refs) == [0, 1, 2, 3]
        devices = {rt.timeline_of(r).device_id for r in refs}
        assert len(devices) == 4

    def test_gang_tasks_do_not_run_before_launch(self):
        rt = make_runtime()
        ref = rt.submit(lambda: 1, gang_group="g2")
        rt.run()
        assert not rt.ownership.is_ready(ref.object_id)
        rt.launch_gang("g2")
        assert rt.get(ref) == 1

    def test_unknown_gang_raises(self):
        rt = make_runtime()
        with pytest.raises(KeyError):
            rt.launch_gang("ghost")


class TestServerfulCluster:
    def test_runtime_works_on_plain_servers(self):
        rt = ServerlessRuntime(build_serverful(n_servers=2))
        ref = rt.submit(lambda: "ok")
        assert rt.get(ref) == "ok"

    def test_spill_to_memory_blade(self):
        # store overflow spills to the disaggregated memory blade
        cluster = build_physical_disagg(n_servers=1)
        rt = ServerlessRuntime(cluster)
        cpu = cluster.node("server0").first_of_kind(DeviceKind.CPU)
        big = cpu.spec.memory_bytes // 2 + 1
        r1 = rt.submit(lambda: "a", output_nbytes=big, pinned_device=cpu.device_id)
        r2 = rt.submit(lambda: "b", output_nbytes=big, pinned_device=cpu.device_id)
        assert rt.get([r1, r2]) == ["a", "b"]
        raylet = rt.raylet_for_device(cpu.device_id)
        assert raylet.store_of(cpu.device_id).spilled_out >= 1
