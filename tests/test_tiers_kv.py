"""Tests for the KV API and tiered memory caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.caching.kv import InMemoryKV, estimate_nbytes
from repro.caching.tiers import (
    DEVICE_HBM_TIER,
    DISAGG_MEMORY_TIER,
    HOST_DRAM_TIER,
    EvictionPolicy,
    TieredCache,
    TierSpec,
)


def two_tier(fast_cap=100, slow_cap=1000, **kwargs) -> TieredCache:
    return TieredCache(
        [
            TierSpec("fast", fast_cap, 1e9, 1e9, 1e-6),
            TierSpec("slow", slow_cap, 1e8, 1e8, 1e-5),
        ],
        **kwargs,
    )


class TestInMemoryKV:
    def test_put_get_delete(self):
        kv = InMemoryKV()
        kv.put("a", [1, 2, 3])
        assert kv.get("a") == [1, 2, 3]
        assert kv.contains("a")
        assert kv.delete("a") is True
        assert kv.delete("a") is False
        with pytest.raises(KeyError):
            kv.get("a")

    def test_get_or_default(self):
        kv = InMemoryKV()
        assert kv.get_or_default("missing", 42) == 42

    def test_meta_and_total_bytes(self):
        kv = InMemoryKV()
        kv.put("a", b"12345")
        assert kv.meta("a").nbytes == 5
        kv.put("b", b"123", nbytes=1000)
        assert kv.total_bytes == 1005

    def test_keys_iteration(self):
        kv = InMemoryKV()
        for k in "abc":
            kv.put(k, k)
        assert sorted(kv.keys()) == ["a", "b", "c"]


class TestEstimateNbytes:
    def test_numpy_uses_real_nbytes(self):
        assert estimate_nbytes(np.zeros(100)) == 800

    def test_bytes_and_str(self):
        assert estimate_nbytes(b"12345") == 5
        assert estimate_nbytes("hello") == 5

    def test_containers_recursive(self):
        assert estimate_nbytes([b"12", b"34"]) == 16 + 4
        assert estimate_nbytes({"k": b"1234"}) > 4

    def test_scalar_fallback(self):
        assert estimate_nbytes(3.14) == 32


class TestTieredCachePlacement:
    def test_put_lands_in_fastest_tier(self):
        cache = two_tier()
        cache.put("a", b"x", 50)
        assert cache.tier_of("a") == "fast"

    def test_overflow_demotes_coldest(self):
        cache = two_tier()
        cache.put("a", b"x", 60)
        cache.put("b", b"y", 60)  # 'a' must demote
        assert cache.tier_of("a") == "slow"
        assert cache.tier_of("b") == "fast"
        assert cache.stats["fast"].demotions == 1

    def test_lru_victim_selection(self):
        cache = two_tier(fast_cap=120)
        cache.put("a", b"x", 60)
        cache.put("b", b"y", 60)
        cache.get("a")  # touch a; b becomes coldest
        cache.put("c", b"z", 60)
        assert cache.tier_of("b") == "slow"
        assert cache.tier_of("a") == "fast"

    def test_largest_first_policy(self):
        cache = two_tier(fast_cap=120, policy=EvictionPolicy.LARGEST_FIRST)
        cache.put("small", b"x", 20)
        cache.put("big", b"y", 90)
        cache.put("new", b"z", 60)
        assert cache.tier_of("big") == "slow"
        assert cache.tier_of("small") == "fast"

    def test_object_too_big_for_any_tier(self):
        cache = two_tier()
        with pytest.raises(ValueError, match="exceeds every tier"):
            cache.put("huge", b"", 10_000)

    def test_big_object_skips_small_tier(self):
        cache = two_tier(fast_cap=10, slow_cap=1000)
        cache.put("mid", b"x", 500)
        assert cache.tier_of("mid") == "slow"

    def test_bottom_tier_overflow_drops(self):
        cache = two_tier(fast_cap=100, slow_cap=100)
        cache.put("a", b"a", 80)
        cache.put("b", b"b", 80)  # a -> slow
        cache.put("c", b"c", 80)  # b -> slow, a dropped
        assert cache.dropped == 1
        assert not cache.contains("a")


class TestTieredCacheAccess:
    def test_get_returns_value_and_time(self):
        cache = two_tier()
        cache.put("a", {"v": 1}, 10)
        value, elapsed = cache.get("a")
        assert value == {"v": 1}
        assert elapsed > 0

    def test_lower_tier_access_is_slower(self):
        cache = two_tier(promote_on_hit=False)
        cache.put("cold", b"x", 60)
        cache.put("hot", b"y", 60)  # cold demoted to slow
        _, t_cold = cache.get("cold")
        _, t_hot = cache.get("hot")
        assert t_cold > t_hot

    def test_promotion_on_hit(self):
        cache = two_tier(fast_cap=100)
        cache.put("a", b"x", 60)
        cache.put("b", b"y", 60)  # a -> slow
        cache.delete("b")
        cache.get("a")  # room now: promote
        assert cache.tier_of("a") == "fast"
        assert cache.stats["fast"].promotions == 1

    def test_missing_key_raises(self):
        cache = two_tier()
        with pytest.raises(KeyError):
            cache.get("ghost")
        with pytest.raises(KeyError):
            cache.tier_of("ghost")

    def test_delete_frees_space(self):
        cache = two_tier()
        cache.put("a", b"x", 60)
        assert cache.used_bytes("fast") == 60
        cache.delete("a")
        assert cache.used_bytes() == 0
        assert cache.delete("a") == 0.0  # idempotent

    def test_overwrite_replaces(self):
        cache = two_tier()
        cache.put("a", b"old", 10)
        cache.put("a", b"new", 20)
        assert cache.get("a")[0] == b"new"
        assert cache.used_bytes() == 20

    def test_default_tier_stack(self):
        cache = TieredCache()
        assert cache.tier_names == ["device-hbm", "host-dram", "disagg-memory"]

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(ValueError):
            TieredCache([HOST_DRAM_TIER, HOST_DRAM_TIER])

    def test_tier_spec_times(self):
        assert DEVICE_HBM_TIER.read_time(0) < HOST_DRAM_TIER.read_time(0)
        assert HOST_DRAM_TIER.read_time(1 << 30) < DISAGG_MEMORY_TIER.read_time(1 << 30)
