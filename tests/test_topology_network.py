"""Tests for topology routing and the network transfer model."""

from __future__ import annotations

import pytest

from repro.cluster.hardware import MB
from repro.cluster.network import CONTROL_MSG_BYTES, Network
from repro.cluster.simtime import Simulator
from repro.cluster.topology import (
    FABRIC_LINK,
    NIC_LINK,
    ONCHIP_LINK,
    PCIE_LINK,
    LinkSpec,
    Topology,
)


def line_topology() -> Topology:
    topo = Topology()
    topo.add_link("a", "b", LinkSpec(latency=1e-6, bandwidth=1e9))
    topo.add_link("b", "c", LinkSpec(latency=2e-6, bandwidth=2e9))
    return topo


class TestTopology:
    def test_route_is_hop_list(self):
        topo = line_topology()
        assert topo.route("a", "c") == [("a", "b"), ("b", "c")]
        assert topo.route("c", "a") == [("c", "b"), ("b", "a")]

    def test_route_to_self_is_empty(self):
        topo = line_topology()
        assert topo.route("a", "a") == []

    def test_shortest_path_prefers_low_latency(self):
        topo = line_topology()
        # add a slow shortcut; Dijkstra must avoid it
        topo.add_link("a", "c", LinkSpec(latency=1e-2, bandwidth=1e9))
        assert topo.route("a", "c") == [("a", "b"), ("b", "c")]

    def test_direct_link_wins_when_faster(self):
        topo = line_topology()
        topo.add_link("a", "c", LinkSpec(latency=1e-9, bandwidth=1e9))
        assert topo.route("a", "c") == [("a", "c")]

    def test_unknown_endpoint_raises(self):
        topo = line_topology()
        with pytest.raises(KeyError):
            topo.route("a", "zzz")

    def test_disconnected_raises(self):
        topo = line_topology()
        topo.add_endpoint("island")
        with pytest.raises(KeyError, match="no path"):
            topo.route("a", "island")

    def test_self_link_rejected(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_link("x", "x", NIC_LINK)

    def test_path_metrics(self):
        topo = line_topology()
        assert topo.path_latency("a", "c") == pytest.approx(3e-6)
        assert topo.bottleneck_bandwidth("a", "c") == 1e9
        assert topo.hop_count("a", "c") == 2

    def test_link_catalog_ordering(self):
        # sanity: on-chip is fastest, NIC is slowest of the fast links
        assert ONCHIP_LINK.latency < PCIE_LINK.latency < NIC_LINK.latency
        assert FABRIC_LINK.latency < NIC_LINK.latency

    def test_transfer_time_formula(self):
        link = LinkSpec(latency=1e-3, bandwidth=1e6)
        assert link.transfer_time(1_000_000) == pytest.approx(1.001)
        with pytest.raises(ValueError):
            link.transfer_time(-1)


class TestNetwork:
    def test_transfer_time_matches_estimate_uncontended(self, sim):
        topo = line_topology()
        net = Network(sim, topo)
        p = net.transfer("a", "c", 8 * MB)
        sim.run()
        assert p.triggered
        assert sim.now == pytest.approx(net.transfer_time_estimate("a", "c", 8 * MB))

    def test_zero_hop_transfer_completes(self, sim):
        net = Network(sim, line_topology())
        p = net.transfer("a", "a", 123)
        sim.run()
        assert p.triggered and p.value == 123
        assert sim.now == 0.0

    def test_contention_serializes_on_shared_link(self, sim):
        topo = Topology()
        topo.add_link("a", "b", LinkSpec(latency=0.0, bandwidth=100.0))
        net = Network(sim, topo)
        net.transfer("a", "b", 100)  # 1 second each
        net.transfer("a", "b", 100)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_disjoint_links_run_in_parallel(self, sim):
        topo = Topology()
        topo.add_link("a", "b", LinkSpec(latency=0.0, bandwidth=100.0))
        topo.add_link("c", "d", LinkSpec(latency=0.0, bandwidth=100.0))
        net = Network(sim, topo)
        net.transfer("a", "b", 100)
        net.transfer("c", "d", 100)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_stats_accumulate(self, sim):
        net = Network(sim, line_topology())
        net.transfer("a", "c", 1000)
        net.message("a", "b")
        sim.run()
        assert net.stats.transfers == 1
        assert net.stats.messages == 1
        assert net.stats.bytes_moved == 1000
        # per-link accounting includes the control message frame
        key = tuple(sorted(("a", "b")))
        assert net.stats.bytes_by_link[key] == 1000 + CONTROL_MSG_BYTES

    def test_rpc_is_two_messages(self, sim):
        net = Network(sim, line_topology())
        p = net.rpc("a", "c")
        sim.run()
        assert p.triggered
        assert net.stats.messages == 2
        one_way = sum(
            l.transfer_time(CONTROL_MSG_BYTES)
            for l in (line_topology().link("a", "b"), line_topology().link("b", "c"))
        )
        assert sim.now == pytest.approx(2 * one_way)

    def test_negative_transfer_rejected(self, sim):
        net = Network(sim, line_topology())
        with pytest.raises(ValueError):
            net.transfer("a", "b", -5)


class TestChaosHooks:
    """Fault-injection hooks: partitions, seeded loss, degraded links."""

    def test_partition_drops_cross_group_messages(self, sim):
        net = Network(sim, line_topology())
        net.partition({"a"})
        p = net.message("a", "c")
        sim.run()
        assert p.value is False  # dropped, not delivered
        assert net.stats.dropped_messages == 1

    def test_partition_same_group_unaffected(self, sim):
        net = Network(sim, line_topology())
        net.partition({"a"})  # b and c share the implicit remainder group
        p = net.message("b", "c")
        sim.run()
        assert p.value is True
        assert net.stats.dropped_messages == 0

    def test_heal_restores_delivery(self, sim):
        net = Network(sim, line_topology())
        net.partition({"a"})
        assert net.partitioned
        net.heal_partition()
        assert not net.partitioned
        p = net.message("a", "c")
        sim.run()
        assert p.value is True

    def test_partition_blocks_transfers(self, sim):
        net = Network(sim, line_topology())
        net.partition({"a"})
        p = net.transfer("a", "c", 1000)
        sim.run()
        assert p.value is None  # blocked: caller sees a failed fetch
        assert net.stats.blocked_transfers == 1
        assert sim.now > 0.0  # the doomed attempt still burned wire time

    def test_rpc_fails_if_either_leg_dropped(self, sim):
        net = Network(sim, line_topology())
        net.partition({"c"})
        p = net.rpc("a", "c")
        sim.run()
        assert p.value is False

    def test_message_loss_is_seed_reproducible(self):
        def drop_pattern(seed):
            sim = Simulator()
            net = Network(sim, line_topology())
            net.set_message_loss(0.5, seed=seed)
            procs = [net.message("a", "c", label=f"m{i}") for i in range(40)]
            sim.run()
            return [p.value for p in procs]

        first = drop_pattern(7)
        assert drop_pattern(7) == first  # identical seed, identical drops
        assert drop_pattern(8) != first
        assert False in first and True in first  # 0.5 actually drops some

    def test_loss_rate_validated(self, sim):
        net = Network(sim, line_topology())
        with pytest.raises(ValueError):
            net.set_message_loss(1.5)
        with pytest.raises(ValueError):
            net.set_message_loss(-0.1)

    def test_degraded_link_slows_transfer_by_factor(self):
        def timed(factor):
            sim = Simulator()
            topo = line_topology()
            if factor != 1.0:
                topo.degrade_link("a", "b", factor)
            net = Network(sim, topo)
            net.transfer("a", "b", 8 * MB)
            sim.run()
            return sim.now

        assert timed(4.0) == pytest.approx(4.0 * timed(1.0))

    def test_degradation_does_not_reroute(self):
        topo = line_topology()
        topo.degrade_link("a", "b", 1000.0)
        # routing still uses healthy latencies: tables lag flaky cables
        assert topo.route("a", "c") == [("a", "b"), ("b", "c")]
        assert topo.degradation("a", "b") == 1000.0

    def test_restore_link_clears_degradation(self):
        topo = line_topology()
        topo.degrade_link("a", "b", 5.0)
        topo.restore_link("a", "b")
        assert topo.degradation("a", "b") == 1.0
        # factor exactly 1.0 is also a restore
        topo.degrade_link("a", "b", 3.0)
        topo.degrade_link("a", "b", 1.0)
        assert topo.degradation("a", "b") == 1.0

    def test_degrade_validates(self):
        topo = line_topology()
        with pytest.raises(ValueError):
            topo.degrade_link("a", "b", 0.5)
        with pytest.raises(KeyError):
            topo.degrade_link("a", "zzz", 2.0)
