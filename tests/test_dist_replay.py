"""Replay-divergence checking: determinism verdicts and localization."""

from __future__ import annotations

import pytest

from repro.analysis.dist.replay import check_replay, diff_signatures
from repro.cluster import build_serverful
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime


class TestDiffSignatures:
    def test_identical_sequences_have_no_divergence(self):
        assert diff_signatures([1, 2, 3], [1, 2, 3]) is None

    def test_first_mismatch_is_localized_with_context(self):
        d = diff_signatures(list("abcdef"), list("abcxef"), context=2)
        assert d is not None
        assert d.index == 3
        assert d.first == "d" and d.second == "x"
        assert d.context == ("b", "c")
        assert "run A" in d.describe() and "run B" in d.describe()

    def test_length_mismatch_diverges_at_the_shorter_end(self):
        d = diff_signatures([1, 2], [1, 2, 3])
        assert d is not None
        assert d.index == 2
        assert d.first == "<end of run A>"
        assert d.second == 3

    def test_prefix_mismatch_wins_over_length_mismatch(self):
        d = diff_signatures([1, 9, 3], [1, 2])
        assert d.index == 1


class TestCheckReplay:
    def test_needs_at_least_two_runs(self):
        with pytest.raises(ValueError, match="at least 2"):
            check_replay(lambda: [1], runs=1)

    def test_deterministic_function_passes(self):
        report = check_replay(lambda: [1, 2, 3], runs=3)
        assert report.deterministic
        assert report.runs == 3
        assert report.lengths == [3, 3, 3]
        assert "deterministic across 3 run(s)" in report.describe()

    def test_nondeterministic_function_is_caught_and_localized(self):
        counter = [0]

        def flaky():
            counter[0] += 1
            return [1, 2, 99] if counter[0] == 2 else [1, 2, 3]

        report = check_replay(flaky, runs=3)
        assert not report.deterministic
        assert report.diverged_run == 1
        assert report.divergence.index == 2
        assert "diverged from run 0" in report.describe()

    def test_real_runtime_scenario_is_deterministic(self):
        """The repo's determinism contract, checked the way CI would."""

        def run():
            rt = ServerlessRuntime(
                build_serverful(n_servers=2),
                RuntimeConfig(resolution=ResolutionMode.PULL),
            )
            a = rt.submit(lambda: 2, compute_cost=1e-3)
            fan = [rt.submit(lambda x, i=i: x + i, (a,)) for i in range(4)]
            total = rt.submit(lambda *xs: sum(xs), tuple(fan))
            assert rt.get(total) == 4 * 2 + 6
            return rt.log.signature()

        report = check_replay(run, runs=2)
        assert report.deterministic, report.describe()
