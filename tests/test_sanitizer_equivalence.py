"""The sanitizer's two contracts, pinned end to end.

1. **Zero interference** — enabling ``RuntimeConfig(sanitizers=...)`` must
   not change what the runtime *does*: the EventLog signature (the repo's
   determinism contract) stays bit-for-bit identical on the flagship
   scenarios (E17 chaos soak, E21 data-plane fan-out, E22 overload burst,
   E23 serving).  The probe writes to a parallel stream, never the log.
2. **Detection** — a seeded scenario with a real protocol race (a driver
   ``free`` concurrent with an in-flight consumer read) is caught by the
   happens-before layer, while its sanctioned twin (``get`` before
   ``free``) stays clean.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

from repro.cluster import build_serverful
from repro.cluster.hardware import DeviceKind
from repro.runtime import ResolutionMode, RuntimeConfig, ServerlessRuntime

SANITIZERS = ("hb", "invariants")


def load_bench(name):
    """Import a benchmark scenario module by file path (benchmarks/ is not
    a package; these tests reuse its workload builders)."""
    path = Path(__file__).resolve().parents[1] / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"_sanequiv_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestAllOnEquivalence:
    """Sanitizers fully on must replay the legacy signatures bit-for-bit."""

    def test_e17_chaos_soak(self):
        e17 = load_bench("test_e17_chaos_soak")
        legacy = e17.run_soak(e17.SEED, chaos=True)
        sanitized = e17.run_soak(e17.SEED, chaos=True, sanitizers=SANITIZERS)
        assert legacy["signature"] == sanitized["signature"]
        assert legacy["makespan"] == sanitized["makespan"]
        assert legacy["answer"] == sanitized["answer"]
        # and the soak itself is protocol-clean under the monitors
        report = sanitized["rt"].probe.report()
        assert report.violations == []
        assert report.races == []

    def test_e21_fast_data_plane_fanout(self):
        e21 = load_bench("test_e21_fast_data_plane")
        legacy = e21.run_fanout(e21.fanout_runtime(fetch_dedup=True), spread=False)
        sanitized = e21.run_fanout(
            e21.fanout_runtime(fetch_dedup=True, sanitizers=SANITIZERS),
            spread=False,
        )
        assert legacy.log.signature() == sanitized.log.signature()
        assert legacy.net.stats.transfers == sanitized.net.stats.transfers
        assert legacy.sim.now == sanitized.sim.now
        assert sanitized.probe.report().clean

    def test_e22_overload_burst(self):
        e22 = load_bench("test_e22_overload")
        legacy, _ = e22.run_scenario(spike=True)
        sanitized, _ = e22.run_scenario(spike=True, sanitizers=SANITIZERS)
        assert legacy.log.signature() == sanitized.log.signature()
        assert legacy.sim.now == sanitized.sim.now
        # an open-loop burst ends mid-flight for shed work: partial verdict
        report = sanitized.probe.report(partial=True)
        assert report.violations == []

    def test_e23_serving(self):
        e23 = load_bench("test_e23_serving")
        legacy = e23.run_serving(1.0, trigger=False)
        sanitized = e23.run_serving(1.0, trigger=False, sanitizers=SANITIZERS)
        assert legacy.rt.log.signature() == sanitized.rt.log.signature()
        assert legacy.rt.sim.now == sanitized.rt.sim.now

    def test_trace_only_mode_is_also_inert(self):
        def run(**overrides):
            rt = ServerlessRuntime(
                build_serverful(n_servers=2),
                RuntimeConfig(resolution=ResolutionMode.PULL, **overrides),
            )
            a = rt.submit(lambda: 2, compute_cost=1e-3)
            fan = [rt.submit(lambda x, i=i: x + i, (a,)) for i in range(4)]
            assert rt.get(rt.submit(lambda *xs: sum(xs), tuple(fan))) == 14
            return rt

        legacy = run()
        traced = run(sanitizers=("trace",))
        assert legacy.log.signature() == traced.log.signature()
        assert len(traced.probe.trace) > 0


def run_free_scenario(sanctioned: bool):
    """A producer on server0, a consumer pinned cross-node, and a driver
    ``free`` landing while the consumer attempt is mid-compute.

    ``sanctioned=False`` frees 20ms in — causally concurrent with the
    consumer's directory read (a genuine use-after-free: the argument can
    vanish under the running attempt).  ``sanctioned=True`` waits for
    ``get(b)`` first, which closes the causal edge.

    The unsanctioned branch uses ``force=True``: the default ``free`` now
    quiesces in-flight consumers (see tests/test_dist_perturb.py), so the
    legacy unsafe drop — the race this fixture exists to seed — is only
    reachable through the force escape hatch.
    """
    cluster = build_serverful(n_servers=2)
    cpu0 = cluster.node("server0").first_of_kind(DeviceKind.CPU).device_id
    cpu1 = cluster.node("server1").first_of_kind(DeviceKind.CPU).device_id
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(resolution=ResolutionMode.PULL, sanitizers=SANITIZERS),
    )
    a = rt.submit(lambda: 5, name="a", compute_cost=1e-4,
                  output_nbytes=1 << 22, pinned_device=cpu0)
    rt.get(a)
    b = rt.submit(lambda x: x + 1, args=(a,), name="b",
                  compute_cost=50e-3, pinned_device=cpu1)
    if sanctioned:
        assert rt.get(b) == 6
        rt.free(a)
    else:
        def _free_mid_flight():
            yield rt.sim.timeout(20e-3)
            rt.free(a, force=True)

        rt.sim.process(_free_mid_flight(), name="driver:free")
        rt.sim.run()
    return rt


class TestFreeRaceDetection:
    """The seeded detection scenario: free-vs-in-flight-read."""

    def test_unsanctioned_free_is_a_detected_race(self):
        rt = run_free_scenario(sanctioned=False)
        report = rt.probe.report(partial=True)
        race_kinds = {
            frozenset((r.first.kind, r.second.kind)) for r in report.races
        }
        # the consumer's stability-assuming read races the driver's free
        assert frozenset(("dir_read", "own_free")) in race_kinds
        # ... and so does the arrival it had already recorded
        assert frozenset(("own_add_location", "own_free")) in race_kinds

    def test_sanctioned_free_after_get_is_clean(self):
        rt = run_free_scenario(sanctioned=True)
        report = rt.probe.report(partial=True)
        assert report.races == []
        assert report.violations == []

    def test_detection_does_not_perturb_the_run(self):
        def run():
            rt = run_free_scenario(sanctioned=False)
            return rt.log.signature()

        first = run()
        cluster = build_serverful(n_servers=2)
        cpu0 = cluster.node("server0").first_of_kind(DeviceKind.CPU).device_id
        cpu1 = cluster.node("server1").first_of_kind(DeviceKind.CPU).device_id
        rt = ServerlessRuntime(
            cluster, RuntimeConfig(resolution=ResolutionMode.PULL)
        )
        a = rt.submit(lambda: 5, name="a", compute_cost=1e-4,
                      output_nbytes=1 << 22, pinned_device=cpu0)
        rt.get(a)
        rt.submit(lambda x: x + 1, args=(a,), name="b",
                  compute_cost=50e-3, pinned_device=cpu1)

        def _free_mid_flight():
            yield rt.sim.timeout(20e-3)
            rt.free(a, force=True)

        rt.sim.process(_free_mid_flight(), name="driver:free")
        rt.sim.run()
        assert rt.log.signature() == first
