"""Tests for cluster builders and the durable storage model."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import (
    build_logical_disagg,
    build_serverful,
    build_tightly_coupled,
)
from repro.cluster.durable import DurableStore
from repro.cluster.hardware import MB, DeviceKind
from repro.cluster.node import NodeKind


class TestServerful:
    def test_servers_and_switch(self):
        cluster = build_serverful(n_servers=3)
        assert len(cluster.nodes_of_kind(NodeKind.SERVER)) == 3
        for node in cluster.nodes.values():
            assert node.attachment_device.kind == DeviceKind.CPU
            assert cluster.topology.route(
                node.attachment_endpoint, cluster.switch_id
            ) == [(node.attachment_endpoint, cluster.switch_id)]

    def test_local_gpus_attach_via_pcie(self):
        cluster = build_serverful(n_servers=1, gpus_per_server=2)
        gpus = cluster.devices_of_kind(DeviceKind.GPU)
        assert len(gpus) == 2
        cpu = cluster.node("server0").first_of_kind(DeviceKind.CPU)
        for gpu in gpus:
            assert cluster.topology.hop_count(cpu.device_id, gpu.device_id) == 1

    def test_needs_at_least_one_server(self):
        with pytest.raises(ValueError):
            build_serverful(n_servers=0)


class TestLogicalDisagg:
    def test_pools_exist(self):
        cluster = build_logical_disagg(n_compute=4, n_storage=2)
        names = sorted(cluster.nodes)
        assert sum(n.startswith("compute") for n in names) == 4
        assert sum(n.startswith("storage") for n in names) == 2

    def test_storage_nodes_have_more_memory(self):
        cluster = build_logical_disagg()
        compute = cluster.node("compute0").total_memory
        storage = cluster.node("storage0").total_memory
        assert storage > compute


class TestPhysicalDisagg:
    def test_cards_are_dpu_fronted(self, phys_cluster):
        cards = phys_cluster.nodes_of_kind(NodeKind.DISAGG_DEVICE)
        assert cards
        for card in cards:
            assert card.attachment_device.kind == DeviceKind.DPU
            assert card.dominant_device.kind != DeviceKind.DPU

    def test_companion_traffic_routes_through_dpu(self, phys_cluster):
        fpga = phys_cluster.devices_of_kind(DeviceKind.FPGA)[0]
        card = phys_cluster.node_of_device(fpga.device_id)
        dpu = card.first_of_kind(DeviceKind.DPU)
        route = phys_cluster.topology.route(fpga.device_id, phys_cluster.switch_id)
        assert route[0] == (fpga.device_id, dpu.device_id)

    def test_two_fpgas_on_one_card_connect_via_dpu(self, phys_cluster):
        card = next(
            n
            for n in phys_cluster.nodes_of_kind(NodeKind.DISAGG_DEVICE)
            if len(n.devices_of_kind(DeviceKind.FPGA)) == 2
        )
        f0, f1 = card.devices_of_kind(DeviceKind.FPGA)
        route = phys_cluster.topology.route(f0.device_id, f1.device_id)
        assert len(route) == 2  # fpga -> dpu -> fpga

    def test_memory_blade_present(self, phys_cluster):
        blades = phys_cluster.nodes_of_kind(NodeKind.MEMORY_BLADE)
        assert len(blades) == 1
        assert blades[0].attachment_device.kind == DeviceKind.MEMORY_BLADE

    def test_device_lookup(self, phys_cluster):
        dev = phys_cluster.devices_of_kind(DeviceKind.GPU)[0]
        assert phys_cluster.device(dev.device_id) is dev
        with pytest.raises(KeyError):
            phys_cluster.device("nope")
        with pytest.raises(KeyError):
            phys_cluster.node("nope")


class TestTightlyCoupled:
    def test_all_to_all_single_hop(self):
        cluster = build_tightly_coupled(n_accel=4)
        gpus = cluster.devices_of_kind(DeviceKind.GPU)
        assert len(gpus) == 4
        for i, a in enumerate(gpus):
            for b in gpus[i + 1 :]:
                assert cluster.topology.hop_count(a.device_id, b.device_id) == 1

    def test_silo_reaches_switch(self):
        cluster = build_tightly_coupled(n_accel=2)
        gpu = cluster.devices_of_kind(DeviceKind.GPU)[1]
        # reachable, through the single uplink
        assert cluster.topology.route(gpu.device_id, cluster.switch_id)


class TestDurableStore:
    def test_put_get_round_trip(self, sim):
        store = DurableStore(sim)
        p = store.put("k", {"v": 1}, nbytes=4 * MB)
        sim.run()
        assert p.triggered
        g = store.get("k")
        sim.run()
        assert g.value == {"v": 1}
        assert store.stats.puts == 1 and store.stats.gets == 1
        assert store.stats.round_trips == 2

    def test_latency_and_bandwidth_charged(self, sim):
        store = DurableStore(sim, request_latency=0.01, bandwidth=1e6)
        store.put("k", b"", nbytes=1_000_000)
        sim.run()
        assert sim.now == pytest.approx(0.01 + 1.0)

    def test_missing_key_raises(self, sim):
        store = DurableStore(sim)
        store.get("missing")
        with pytest.raises(KeyError):
            sim.run()

    def test_request_cost_accounting(self, sim):
        store = DurableStore(sim)
        for i in range(500):
            store.put(f"k{i}", i, nbytes=10)
        sim.run()
        assert store.stats.request_cost_dollars(per_1k_requests=0.005) == pytest.approx(
            0.0025
        )

    def test_size_of(self, sim):
        store = DurableStore(sim)
        store.put("k", "v", nbytes=77)
        sim.run()
        assert store.size_of("k") == 77
        with pytest.raises(KeyError):
            store.size_of("absent")
