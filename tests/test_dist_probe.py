"""The DistProbe event vocabulary and the trace container it fills.

The probe owns message-key formats and site names; these tests pin that
vocabulary (via the HB relation it induces) plus the trace's JSON
round-trip, which CI relies on to sanitize dumped artifacts offline.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.dist.events import DistTrace, ProtoEvent
from repro.analysis.dist.hb import build_hb
from repro.analysis.dist.probe import DistProbe


def make_probe(sanitizers=("hb",)):
    t = [0.0]

    def clock():
        t[0] += 1e-3
        return t[0]

    return DistProbe(sanitizers, clock=clock)


class TestProbeModes:
    def test_unknown_sanitizer_is_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitizers"):
            make_probe(("tsan",))

    def test_hb_implies_trace_collection(self):
        probe = make_probe(("hb",))
        assert probe.wants_trace and probe.wants_hb
        assert probe.engine is None

    def test_invariants_only_keeps_no_trace(self):
        probe = make_probe(("invariants",))
        probe.submit("t1")
        assert probe.engine is not None
        assert len(probe.trace) == 0  # monitors fed online, nothing stored

    def test_report_needs_a_trace_for_forced_hb(self):
        probe = make_probe(("invariants",))
        with pytest.raises(ValueError, match="needs a collected trace"):
            probe.report(hb=True)

    def test_seq_and_clock_are_recorded(self):
        probe = make_probe(("trace",))
        probe.submit("t1")
        probe.submit("t2")
        assert [e.seq for e in probe.trace] == [0, 1]
        assert [e.time for e in probe.trace] == [1e-3, 2e-3]


class TestSiteNaming:
    def test_attempt_sites_distinguish_attempts_and_clones(self):
        probe = make_probe()
        assert probe.attempt_site("t", 1) == "attempt:t#1"
        assert probe.attempt_site("t", 2) == "attempt:t#2"
        assert probe.attempt_site("t", 2, clone=True) == "attempt:t#2~"

    def test_replay_incarnations_get_fresh_sites(self):
        probe = make_probe()
        before = probe.attempt_site("t", 1)
        assert probe.replay("t") == 1
        after = probe.attempt_site("t", 1)
        assert before != after and "r1" in after

    def test_raylet_site(self):
        assert DistProbe.raylet_site("server0/cpu") == "raylet@server0/cpu"


class TestCausalVocabulary:
    """Each protocol hook must induce the edge its name promises."""

    def test_submit_dispatch_attempt_chain_is_ordered(self):
        probe = make_probe()
        probe.submit("t")                      # 0 driver
        probe.dispatch("t", 1, "dev", ())      # 1 gcs (recv submit)
        probe.attempt_start("t", 1)            # 2 attempt (recv lease)
        probe.attempt_commit("t", 1, "o")      # 3 attempt
        probe.task_finish("t")                 # 4 gcs (recv done)
        hb = build_hb(probe.trace)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]:
            assert hb.ordered(a, b), (a, b)
        assert hb.dangling_recvs == []

    def test_dependency_ready_edge_orders_producer_before_consumer(self):
        probe = make_probe()
        probe.submit("p")                      # 0
        probe.dispatch("p", 1, "dev", ())      # 1
        probe.attempt_start("p", 1)            # 2
        probe.attempt_commit("p", 1, "o")      # 3
        probe.object_ready("attempt:p#1", "o")  # 4 sends ready:o
        probe.submit("c")                      # 5
        probe.dispatch("c", 1, "dev", ("o",))  # 6 recvs ready:o
        probe.attempt_start("c", 1)            # 7
        hb = build_hb(probe.trace)
        assert hb.ordered(4, 7)  # consumer attempt after producer commit

    def test_failure_report_orders_attempt_before_retry(self):
        probe = make_probe()
        probe.submit("t")
        probe.dispatch("t", 1, "dev", ())
        probe.attempt_start("t", 1)
        probe.attempt_fail("t", 1, "boom")     # 3 sends rep
        probe.retry("t", 1)                    # 4 recvs rep
        probe.dispatch("t", 2, "dev", ())      # 5 fresh lease
        probe.attempt_start("t", 2)            # 6
        hb = build_hb(probe.trace)
        assert hb.ordered(3, 4) and hb.ordered(4, 6)

    def test_speculative_clone_gets_its_own_lease(self):
        probe = make_probe()
        probe.submit("t")
        probe.dispatch("t", 1, "dev", ())
        probe.attempt_start("t", 1)
        probe.speculate("t")                       # 3 sends clone lease
        probe.attempt_start("t", 2, clone=True)    # 4 recvs clone lease
        hb = build_hb(probe.trace)
        assert hb.ordered(3, 4)
        assert hb.concurrent(2, 4)  # original and clone genuinely overlap
        assert hb.dangling_recvs == []

    def test_heartbeat_round_links_raylet_to_gcs(self):
        probe = make_probe()
        probe.hb_send("server0/cpu", 1)
        probe.hb_recv("server0/cpu", 1)
        hb = build_hb(probe.trace)
        assert hb.ordered(0, 1)

    def test_fetch_dedup_follower_joins_leader_completion(self):
        probe = make_probe()
        probe.fetch_begin("ep", "o", "d")
        probe.fetch_dedup("ep", "o", "d")
        probe.fetch_end("ep", "o", "d")        # 2 sends fend
        probe.fetch_join("attempt:c#1", "o", "d")  # 3 recvs fend
        hb = build_hb(probe.trace)
        assert hb.ordered(2, 3)

    def test_get_resolve_orders_producer_before_driver_followups(self):
        probe = make_probe()
        probe.site = "attempt:p#1"
        probe.ownership_op("mark_ready", "o", "PENDING", "READY", 1)  # 0
        probe.object_ready("attempt:p#1", "o")                        # 1
        probe.get_resolve(["o"])                                      # 2 driver
        probe.site = "driver"
        probe.ownership_op("free", "o", "READY", None, 0)             # 3
        hb = build_hb(probe.trace)
        assert hb.ordered(0, 3)  # sanctioned free: no race
        assert build_hb(probe.trace).races == []

    def test_chaos_events_have_no_ancestry(self):
        probe = make_probe()
        probe.submit("t")
        probe.chaos("node_crash", node="server1")
        hb = build_hb(probe.trace)
        assert hb.concurrent(0, 1)

    def test_ownership_access_classes(self):
        probe = make_probe()
        probe.ownership_op("add_location", "o", "READY", "READY", 2)
        probe.ownership_op("drop_node", "o", "READY", "LOST", 0)
        probe.dir_read("attempt:c#1", "o", "READY")
        accesses = [e.accesses[0] for e in probe.trace]
        assert accesses == [
            ("dir:o", "acc"), ("dir:o", "w"), ("dir:o", "r"),
        ]


class TestTraceRoundTrip:
    def test_json_round_trip_preserves_signature(self, tmp_path):
        probe = make_probe()
        probe.submit("t")
        probe.dispatch("t", 1, "dev", ())
        probe.attempt_start("t", 1)
        probe.ownership_op("create", "o", None, "PENDING", 0)
        path = tmp_path / "trace.json"
        probe.trace.dump(str(path))
        loaded = DistTrace.load(str(path))
        assert loaded.signature() == probe.trace.signature()
        assert [e.sends for e in loaded] == [e.sends for e in probe.trace]
        assert [e.recvs for e in loaded] == [e.recvs for e in probe.trace]
        assert [e.accesses for e in loaded] == [e.accesses for e in probe.trace]

    def test_format_sniffing(self, tmp_path):
        trace_file = tmp_path / "dist.json"
        DistTrace().dump(str(trace_file))
        other = tmp_path / "bench.json"
        other.write_text(json.dumps({"metric": 1}))
        assert DistTrace.is_trace_file(str(trace_file))
        assert not DistTrace.is_trace_file(str(other))
        assert not DistTrace.is_trace_file(str(tmp_path / "missing.json"))

    def test_bad_format_is_rejected(self):
        with pytest.raises(ValueError, match="not a dist-trace"):
            DistTrace.from_dict({"format": "something-else"})

    def test_non_json_safe_detail_is_reprd(self):
        trace = DistTrace()
        trace.record(0.0, "s", "k", detail=(("obj", object()),))
        payload = trace.to_dict()
        assert isinstance(payload["events"][0]["detail"][0][1], str)

    def test_event_helpers(self):
        event = ProtoEvent(seq=3, time=0.5, site="gcs", kind="x",
                           detail=(("task", "t"),))
        assert event.get("task") == "t"
        assert event.get("missing", "dflt") == "dflt"
        assert "#3" in event.describe() and "[gcs]" in event.describe()
