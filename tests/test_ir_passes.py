"""Tests for optimization passes: DCE, CSE, cross-domain fusion."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.columnar import RecordBatch
from repro.ir import (
    Builder,
    CommonSubexpressionElimination,
    DeadCodeElimination,
    FrameType,
    PassManager,
    PassStats,
    TensorType,
    col,
    lit,
    run_function,
)
from repro.ir.passes import ConstantFold


def tensor_chain(num_elementwise=3):
    b = Builder("chain")
    x = b.add_param("x", TensorType((4, 4)))
    cur = x
    for i in range(num_elementwise):
        op = b.emit("linalg", "relu" if i % 2 == 0 else "sigmoid", [cur])
        cur = op.result()
    return b.ret(cur), x


class TestDCE:
    def test_removes_unused_ops(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((2, 2)))
        used = b.emit("linalg", "relu", [x])
        b.emit("linalg", "sigmoid", [x])  # dead
        func = b.ret(used.result())
        stats = PassStats()
        assert DeadCodeElimination().run(func, stats)
        assert stats.ops_removed == 1
        assert [op.qualified for op in func.ops] == ["linalg.relu"]

    def test_keeps_transitive_dependencies(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((2, 2)))
        a = b.emit("linalg", "relu", [x])
        c = b.emit("linalg", "sigmoid", [a.result()])
        func = b.ret(c.result())
        assert not DeadCodeElimination().run(func, PassStats())
        assert len(func.ops) == 2


class TestCSE:
    def test_merges_identical_ops(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((2, 2)))
        a = b.emit("linalg", "relu", [x])
        bb = b.emit("linalg", "relu", [x])  # identical
        c = b.emit("linalg", "add", [a.result(), bb.result()])
        func = b.ret(c.result())
        stats = PassStats()
        assert CommonSubexpressionElimination().run(func, stats)
        assert stats.ops_removed == 1
        add = func.ops[-1]
        assert add.operands[0] is add.operands[1]

    def test_different_attrs_not_merged(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((4, 4)))
        a = b.emit("linalg", "reduce_sum", [x], {"axis": 0})
        bb = b.emit("linalg", "reduce_sum", [x], {"axis": 1})
        # keep both alive through separate reconsumption
        a2 = b.emit("linalg", "relu", [a.result()])
        b2 = b.emit("linalg", "relu", [bb.result()])
        func = b.function
        func.returns = [a2.result(), b2.result()]
        assert not CommonSubexpressionElimination().run(func, PassStats())


class TestConstantFold:
    def test_folds_constant_arithmetic(self):
        b = Builder("f")
        c1 = b.emit("linalg", "constant", (), {"value": np.full((2, 2), 3.0)})
        c2 = b.emit("linalg", "constant", (), {"value": np.full((2, 2), 4.0)})
        added = b.emit("linalg", "add", [c1.result(), c2.result()])
        x = b.add_param("x", TensorType((2, 2)))
        out = b.emit("linalg", "mul", [added.result(), x])
        func = b.ret(out.result())
        stats = PassStats()
        assert ConstantFold().run(func, stats)
        # the add collapsed into a constant
        kinds = [op.qualified for op in func.ops]
        assert kinds.count("linalg.add") == 0
        (value,) = run_function(func, {"x": np.ones((2, 2))})
        np.testing.assert_allclose(value, np.full((2, 2), 7.0))

    def test_folding_cascades_through_pass_manager(self):
        b = Builder("f")
        c = b.emit("linalg", "constant", (), {"value": np.full((2, 2), 2.0)})
        squared = b.emit("linalg", "mul", [c.result(), c.result()])
        again = b.emit("linalg", "exp", [squared.result()])
        func = b.ret(again.result())
        PassManager().run(func)
        assert [op.qualified for op in func.ops] == ["linalg.constant"]
        (value,) = run_function(func, {})
        np.testing.assert_allclose(value, np.exp(4.0))

    def test_param_dependent_ops_untouched(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((2, 2)))
        out = b.emit("linalg", "relu", [x])
        func = b.ret(out.result())
        assert not ConstantFold().run(func, PassStats())


class TestFusion:
    def test_chain_fuses_to_single_kernel(self):
        func, _ = tensor_chain(4)
        func.verify()
        stats = PassManager().run(func)
        assert stats.ops_fused == 3
        assert [op.qualified for op in func.ops] == ["kernel.fused"]
        assert len(func.ops[0].attrs["steps"]) == 4

    def test_fusion_preserves_semantics(self, rng):
        func, _ = tensor_chain(5)
        x = rng.standard_normal((4, 4))
        (before,) = run_function(func, {"x": x})
        PassManager().run(func)
        (after,) = run_function(func, {"x": x})
        np.testing.assert_allclose(before, after)

    def test_diamond_fuses_with_shared_step(self, rng):
        """A diamond (relu feeding sigmoid+exp feeding add) fuses completely:
        operand dedup turns the shared producer into one step referenced by
        two later steps — computed once, not duplicated."""
        b = Builder("f")
        x = b.add_param("x", TensorType((2, 2)))
        shared = b.emit("linalg", "relu", [x])
        u1 = b.emit("linalg", "sigmoid", [shared.result()])
        u2 = b.emit("linalg", "exp", [shared.result()])
        add = b.emit("linalg", "add", [u1.result(), u2.result()])
        func = b.ret(add.result())
        xv = rng.standard_normal((2, 2))
        (before,) = run_function(func, {"x": xv})
        PassManager().run(func)
        assert [op.qualified for op in func.ops] == ["kernel.fused"]
        steps = func.ops[0].attrs["steps"]
        assert sum(s.name == "relu" for s in steps) == 1  # computed once
        (after,) = run_function(func, {"x": xv})
        np.testing.assert_allclose(before, after)

    def test_returned_intermediate_blocks_fusion(self):
        """A producer whose value is also returned must stay materialized."""
        b = Builder("f")
        x = b.add_param("x", TensorType((2, 2)))
        mid = b.emit("linalg", "relu", [x])
        out = b.emit("linalg", "sigmoid", [mid.result()])
        func = b.function
        func.returns = [mid.result(), out.result()]
        PassManager().run(func)
        assert any(op.qualified == "linalg.relu" for op in func.ops)
        assert len(func.ops) == 2

    def test_non_elementwise_blocks_fusion(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((4, 4)))
        r = b.emit("linalg", "relu", [x])
        mm = b.emit("linalg", "matmul", [r.result(), r.result()])
        func = b.ret(mm.result())
        PassManager().run(func)
        assert any(op.qualified == "linalg.matmul" for op in func.ops)

    def test_cross_domain_fusion_df_ops(self):
        """§2.2's claim: fusion works across domains because ops share one IR
        — here two df (SQL-derived) elementwise ops fuse into one kernel."""
        schema = FrameType((("k", "int64"), ("x", "float64")))
        b = Builder("q")
        src = b.emit("df", "source", (), {"table": "t", "schema": schema})
        where = b.emit("df", "where", [src.result()], {"pred": col("x") > lit(0.5)})
        select = b.emit(
            "df",
            "select",
            [where.result()],
            {"columns": ("k",), "derived": (("y", col("x") * 2, "float64"),)},
        )
        func = b.ret(select.result())
        t = RecordBatch.from_pydict({"k": [1, 2, 3], "x": [0.1, 0.7, 0.9]})
        (before,) = run_function(func, tables={"t": t})
        stats = PassManager().run(func)
        assert stats.ops_fused >= 1
        assert any(op.qualified == "kernel.fused" for op in func.ops)
        (after,) = run_function(func, tables={"t": t})
        assert before == after

    def test_binary_elementwise_fusion_with_extra_operand(self, rng):
        b = Builder("f")
        x = b.add_param("x", TensorType((4, 4)))
        y = b.add_param("y", TensorType((4, 4)))
        r = b.emit("linalg", "relu", [x])
        add = b.emit("linalg", "add", [r.result(), y])
        func = b.ret(add.result())
        xv, yv = rng.standard_normal((4, 4)), rng.standard_normal((4, 4))
        (before,) = run_function(func, {"x": xv, "y": yv})
        PassManager().run(func)
        assert [op.qualified for op in func.ops] == ["kernel.fused"]
        (after,) = run_function(func, {"x": xv, "y": yv})
        np.testing.assert_allclose(before, after)

    @given(n=st.integers(1, 8), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_fusion_equivalence_property(self, n, seed):
        func, _ = tensor_chain(n)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((4, 4))
        (before,) = run_function(func, {"x": x})
        PassManager().run(func)
        (after,) = run_function(func, {"x": x})
        np.testing.assert_allclose(before, after)
        assert len(func.ops) == 1  # any pure elementwise chain fuses fully
