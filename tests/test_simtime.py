"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.cluster.simtime import Channel, Interrupt, Resource, Signal, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_callbacks_run_in_time_order(self, sim):
        seen = []
        sim.schedule(2.0, lambda: seen.append("b"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(3.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_by_insertion_order(self, sim):
        seen = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run()
        assert seen == [1, 5]

    def test_peek_returns_next_event_time(self, sim):
        assert sim.peek() is None
        sim.schedule(4.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.peek() == 2.0


class TestProcesses:
    def test_process_advances_virtual_time(self, sim):
        def proc():
            yield sim.timeout(1.5)
            yield sim.timeout(2.5)
            return "done"

        p = sim.process(proc())
        result = sim.run_until_complete(p)
        assert result == "done"
        assert sim.now == 4.0

    def test_nested_process_await(self, sim):
        def inner():
            yield sim.timeout(1.0)
            return 21

        def outer():
            value = yield sim.process(inner())
            return value * 2

        assert sim.run_until_complete(sim.process(outer())) == 42

    def test_yielding_non_awaitable_raises(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="expected an Awaitable"):
            sim.run()

    def test_process_waiting_on_already_triggered(self, sim):
        sig = Signal(sim)
        sig.succeed(7)

        def proc():
            value = yield sig
            return value

        assert sim.run_until_complete(sim.process(proc())) == 7

    def test_run_until_complete_detects_deadlock(self, sim):
        sig = Signal(sim)

        def proc():
            yield sig

        p = sim.process(proc())
        with pytest.raises(SimulationError, match="did not complete"):
            sim.run_until_complete(p)

    def test_interrupt_resumes_with_exception(self, sim):
        caught = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                caught.append((exc.cause, sim.now))
            return "survived"

        p = sim.process(victim())

        def killer():
            yield sim.timeout(1.0)
            p.interrupt("die")

        sim.process(killer())
        sim.run()
        # delivered at t=1, long before the stale timeout would have fired
        assert caught == [("die", 1.0)]
        assert p.value == "survived"

    def test_interrupt_after_completion_is_noop(self, sim):
        def quick():
            yield sim.timeout(0.1)
            return 1

        p = sim.process(quick())
        sim.run()
        p.interrupt("late")
        sim.run()
        assert p.value == 1


class TestSignalsAndCombinators:
    def test_signal_resumes_all_waiters(self, sim):
        sig = Signal(sim)
        values = []

        def waiter(tag):
            value = yield sig
            values.append((tag, value))

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(1.0, sig.succeed, 99)
        sim.run()
        assert sorted(values) == [("a", 99), ("b", 99)]

    def test_double_trigger_rejected(self, sim):
        sig = Signal(sim)
        sig.succeed(1)
        with pytest.raises(SimulationError):
            sig.succeed(2)

    def test_all_of_collects_in_order(self, sim):
        t1 = sim.timeout(3.0, "slow")
        t2 = sim.timeout(1.0, "fast")

        def proc():
            values = yield sim.all_of([t1, t2])
            return values

        assert sim.run_until_complete(sim.process(proc())) == ["slow", "fast"]
        assert sim.now == 3.0

    def test_all_of_empty_completes_immediately(self, sim):
        def proc():
            yield sim.all_of([])
            return "ok"

        assert sim.run_until_complete(sim.process(proc())) == "ok"

    def test_any_of_returns_first(self, sim):
        t1 = sim.timeout(3.0, "slow")
        t2 = sim.timeout(1.0, "fast")

        def proc():
            index, value = yield sim.any_of([t1, t2])
            return index, value

        assert sim.run_until_complete(sim.process(proc())) == (1, "fast")
        # sim.now is 1.0 at the moment AnyOf fires
        assert sim.now >= 1.0

    def test_any_of_requires_children(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])


class TestResource:
    def test_fifo_granting_serializes(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(tag, hold):
            yield res.request()
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            res.release()

        sim.process(user("a", 2.0))
        sim.process(user("b", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0)]

    def test_capacity_allows_parallelism(self, sim):
        res = Resource(sim, capacity=2)
        starts = []

        def user(tag):
            yield res.request()
            starts.append((tag, sim.now))
            yield sim.timeout(1.0)
            res.release()

        for tag in "abc":
            sim.process(user(tag))
        sim.run()
        assert starts == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_release_of_idle_resource_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_use_helper(self, sim):
        res = Resource(sim, capacity=1)
        p1 = res.use(2.0)
        p2 = res.use(3.0)
        sim.run()
        assert p1.triggered and p2.triggered
        assert sim.now == 5.0


class TestChannel:
    def test_put_then_get(self, sim):
        ch = Channel(sim)
        ch.put("x")

        def getter():
            item = yield ch.get()
            return item

        assert sim.run_until_complete(sim.process(getter())) == "x"

    def test_get_blocks_until_put(self, sim):
        ch = Channel(sim)
        got = []

        def getter():
            item = yield ch.get()
            got.append((item, sim.now))

        sim.process(getter())
        sim.schedule(5.0, ch.put, "late")
        sim.run()
        assert got == [("late", 5.0)]

    def test_fifo_ordering(self, sim):
        ch = Channel(sim)
        for i in range(3):
            ch.put(i)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield ch.get()))

        sim.process(getter())
        sim.run()
        assert got == [0, 1, 2]
