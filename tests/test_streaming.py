"""Tests for the streaming frontend (micro-batches, windows, state)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.caching import RecordBatch
from repro.cluster import build_physical_disagg
from repro.frontends.streaming import (
    FilterOp,
    MapOp,
    StreamJob,
    WindowAggregate,
    micro_batches,
)
from repro.ir import col, lit
from repro.runtime import ServerlessRuntime


@pytest.fixture
def stream(rng):
    table = RecordBatch.from_arrays(
        {"k": rng.integers(0, 3, 240), "x": rng.random(240)}
    )
    return micro_batches(table, 30)


class TestMicroBatches:
    def test_covers_whole_table(self, rng):
        table = RecordBatch.from_arrays({"x": rng.random(105)})
        batches = micro_batches(table, 25)
        assert [b.num_rows for b in batches] == [25, 25, 25, 25, 5]

    def test_batches_are_views(self, rng):
        table = RecordBatch.from_arrays({"x": rng.random(50)})
        batches = micro_batches(table, 10)
        assert np.shares_memory(batches[0].column("x"), table.column("x"))

    def test_invalid_batch_rows(self, rng):
        table = RecordBatch.from_arrays({"x": rng.random(10)})
        with pytest.raises(ValueError):
            micro_batches(table, 0)


class TestOperators:
    def test_map_op(self, stream):
        op = MapOp(columns=("k",), derived=(("x2", col("x") * 2, "float64"),))
        out, state = op.apply(stream[0], None)
        assert out.schema.names == ["k", "x2"]
        np.testing.assert_allclose(out.column("x2"), stream[0].column("x") * 2)

    def test_filter_op(self, stream):
        op = FilterOp(pred=col("x") > lit(0.5))
        out, _ = op.apply(stream[0], None)
        assert np.all(out.column("x") > 0.5)

    def test_window_aggregate_emits_on_boundary(self, stream):
        op = WindowAggregate(keys=("k",), aggs=(("s", "sum", "x"),), window=4)
        state = op.initial_state()
        emitted = []
        for batch in stream:
            out, state = op.apply(batch, state)
            emitted.append(out.num_rows)
        # 8 micro-batches, window 4 -> output at t=3 and t=7 only
        assert [n > 0 for n in emitted] == [False, False, False, True] * 2

    def test_window_sums_are_exact(self, stream):
        op = WindowAggregate(keys=("k",), aggs=(("s", "sum", "x"),), window=4)
        state = op.initial_state()
        outputs = []
        for batch in stream:
            out, state = op.apply(batch, state)
            if out.num_rows:
                outputs.append(out)
        from repro.caching import concat_batches

        first_window = concat_batches(stream[:4])
        expect = {}
        for k, x in zip(
            first_window.column("k").tolist(), first_window.column("x").tolist()
        , strict=False):
            expect[k] = expect.get(k, 0.0) + x
        got = dict(
            zip(outputs[0].column("k").tolist(), outputs[0].column("s").tolist(), strict=False)
        )
        assert set(got) == set(expect)
        for k in expect:
            assert got[k] == pytest.approx(expect[k])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowAggregate(keys=(), aggs=(("s", "sum", "x"),), window=0)
        with pytest.raises(ValueError):
            WindowAggregate(keys=(), aggs=(), window=2)
        with pytest.raises(ValueError, match="slide"):
            WindowAggregate(keys=(), aggs=(("s", "sum", "x"),), window=2, slide=3)

    def test_sliding_window_overlaps(self, stream):
        op = WindowAggregate(
            keys=(), aggs=(("s", "sum", "x"),), window=4, slide=2
        )
        state = op.initial_state()
        emissions = []
        for batch in stream:
            out, state = op.apply(batch, state)
            emissions.append(out)
        # 8 batches, window 4, slide 2 -> closes at t=3, 5, 7
        closes = [i for i, e in enumerate(emissions) if e.num_rows]
        assert closes == [3, 5, 7]
        # each closing covers the last 4 batches exactly
        from repro.caching import concat_batches

        for t in closes:
            covered = concat_batches(stream[t - 3 : t + 1])
            assert emissions[t].column("s")[0] == pytest.approx(
                covered.column("x").sum()
            )

    def test_sliding_window_distributed_matches_local(self, stream):
        job = StreamJob(
            [WindowAggregate(keys=("k",), aggs=(("s", "sum", "x"),), window=3, slide=1)]
        )
        rt = ServerlessRuntime(build_physical_disagg())
        dist = job.run(rt, stream)
        local = job.run_local(stream)
        for d, l in zip(dist, local, strict=False):
            assert d == l


class TestStreamJob:
    def job(self):
        return StreamJob(
            [
                FilterOp(pred=col("x") > lit(0.2)),
                WindowAggregate(keys=("k",), aggs=(("s", "sum", "x"),), window=4),
            ]
        )

    def test_distributed_matches_local(self, stream):
        rt = ServerlessRuntime(build_physical_disagg())
        dist = self.job().run(rt, stream)
        local = self.job().run_local(stream)
        assert len(dist) == len(local)
        for d, l in zip(dist, local, strict=False):
            assert d == l

    def test_state_carries_between_micro_batches(self, stream):
        rt = ServerlessRuntime(build_physical_disagg())
        outputs = self.job().run(rt, stream)
        # windows close only every 4th batch: state crossed task boundaries
        assert [o.num_rows > 0 for o in outputs].count(True) == 2

    def test_empty_stream_rejected(self):
        rt = ServerlessRuntime(build_physical_disagg())
        with pytest.raises(ValueError, match="empty stream"):
            self.job().run(rt, [])

    def test_stateless_pipeline(self, stream):
        job = StreamJob([FilterOp(pred=col("x") > lit(0.9))])
        rt = ServerlessRuntime(build_physical_disagg())
        dist = job.run(rt, stream)
        local = job.run_local(stream)
        for d, l in zip(dist, local, strict=False):
            assert d == l
