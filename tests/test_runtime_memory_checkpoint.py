"""Tests for explicit free(), checkpointing, and the trace exporter."""

from __future__ import annotations

import io
import json

import pytest

from repro.cluster import DeviceKind, DurableStore, build_physical_disagg
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
    to_chrome_trace,
    write_chrome_trace,
)


def runtime_with_durable():
    cluster = build_physical_disagg()
    return ServerlessRuntime(
        cluster,
        RuntimeConfig(resolution=ResolutionMode.PULL),
        durable_store=DurableStore(cluster.sim),
    )


class TestFree:
    def test_free_releases_bytes(self):
        rt = ServerlessRuntime(build_physical_disagg())
        ref = rt.submit(lambda: "x", output_nbytes=1 << 20)
        rt.get(ref)
        assert rt.free(ref) == 1 << 20

    def test_freed_object_is_gone(self):
        rt = ServerlessRuntime(build_physical_disagg())
        ref = rt.submit(lambda: 1)
        rt.get(ref)
        rt.free(ref)
        with pytest.raises(KeyError):
            rt.get(ref)

    def test_free_is_idempotent_and_accepts_lists(self):
        rt = ServerlessRuntime(build_physical_disagg())
        refs = [rt.submit(lambda i=i: i, output_nbytes=100) for i in range(3)]
        rt.get(refs)
        assert rt.free(refs) == 300
        assert rt.free(refs) == 0

    def test_free_releases_device_memory(self):
        cluster = build_physical_disagg()
        rt = ServerlessRuntime(cluster)
        cpu = cluster.node("server0").first_of_kind(DeviceKind.CPU)
        used_before = cpu.memory_used
        ref = rt.submit(
            lambda: "big", output_nbytes=1 << 20, pinned_device=cpu.device_id
        )
        rt.get(ref)
        assert cpu.memory_used > used_before
        rt.free(ref)
        assert cpu.memory_used == used_before


class TestCheckpoint:
    def chain(self, rt, device_id, length=8, checkpoint_at=None):
        ref = rt.submit(lambda: 0, compute_cost=1e-3, pinned_device=device_id)
        for i in range(1, length):
            ref = rt.submit(
                lambda x: x + 1, (ref,), compute_cost=1e-3, pinned_device=device_id
            )
            if checkpoint_at is not None and i == checkpoint_at:
                rt.get(ref)
                rt.checkpoint(ref)
        return ref

    def test_checkpoint_truncates_replay(self):
        rt = runtime_with_durable()
        cpu = rt.cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = self.chain(rt, cpu.device_id, length=8, checkpoint_at=4)
        assert rt.get(ref) == 7
        rt.fail_node("server0")
        rt.restart_node("server0")
        assert rt.get(ref) == 7
        assert rt.lineage.replays == 3  # steps 5..7 only

    def test_checkpointed_object_itself_restores_without_replay(self):
        rt = runtime_with_durable()
        cpu = rt.cluster.node("server0").first_of_kind(DeviceKind.CPU)
        ref = rt.submit(lambda: 42, pinned_device=cpu.device_id)
        rt.get(ref)
        rt.checkpoint(ref)
        rt.fail_node("server0")
        rt.restart_node("server0")
        assert rt.get(ref) == 42
        assert rt.lineage.replays == 0

    def test_checkpoint_without_durable_store_rejected(self):
        rt = ServerlessRuntime(build_physical_disagg())
        ref = rt.submit(lambda: 1)
        rt.get(ref)
        with pytest.raises(RuntimeError, match="durable store"):
            rt.checkpoint(ref)

    def test_checkpoint_costs_virtual_time(self):
        rt = runtime_with_durable()
        ref = rt.submit(lambda: "x", output_nbytes=8 << 20)
        rt.get(ref)
        before = rt.sim.now
        rt.checkpoint(ref)
        assert rt.sim.now > before  # durable write is not free


class TestChromeTrace:
    def test_events_match_timelines(self):
        rt = ServerlessRuntime(build_physical_disagg())
        refs = [rt.submit(lambda i=i: i, name=f"t{i}") for i in range(4)]
        rt.get(refs)
        events = to_chrome_trace(rt)
        assert len(events) == 4
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert event["tid"]  # device row

    def test_write_to_file_object(self):
        rt = ServerlessRuntime(build_physical_disagg())
        rt.get(rt.submit(lambda: 1, name="solo"))
        buf = io.StringIO()
        count = write_chrome_trace(rt, buf)
        assert count == 1
        payload = json.loads(buf.getvalue())
        assert payload["traceEvents"][0]["name"] == "solo"

    def test_write_to_path(self, tmp_path):
        rt = ServerlessRuntime(build_physical_disagg())
        rt.get(rt.submit(lambda: 1))
        path = tmp_path / "trace.json"
        write_chrome_trace(rt, str(path))
        assert json.loads(path.read_text())["traceEvents"]
