"""Tests for backend selection and dialect lowering."""

from __future__ import annotations

import pytest

from repro.caching.columnar import RecordBatch
from repro.ir import (
    ALL_BACKENDS,
    CPU_BACKEND,
    FPGA_BACKEND,
    GPU_BACKEND,
    Builder,
    FrameType,
    SelectionPolicy,
    TensorType,
    col,
    estimated_cost,
    lit,
    lower_relational_to_df,
    lower_to_physical,
    op_work_elements,
    run_function,
    select_backends,
)


def relational_query():
    b = Builder("q")
    schema = FrameType((("k", "int64"), ("x", "float64")))
    scan = b.emit("relational", "scan", (), {"table": "t", "schema": schema})
    filt = b.emit("relational", "filter", [scan.result()], {"pred": col("x") > lit(0.3)})
    agg = b.emit(
        "relational",
        "aggregate",
        [filt.result()],
        {"keys": ("k",), "aggs": (("s", "sum", "x"),)},
    )
    return b.ret(agg.result())


def matmul_func(m=512, k=512, n=512):
    b = Builder("mm")
    x = b.add_param("x", TensorType((m, k)))
    y = b.add_param("y", TensorType((k, n)))
    mm = b.emit("linalg", "matmul", [x, y])
    return b.ret(mm.result())


class TestLowering:
    def test_relational_ops_become_df_ops(self):
        func = relational_query()
        lowered = lower_relational_to_df(func)
        assert [op.qualified for op in lowered.ops] == [
            "df.source",
            "df.where",
            "df.hash_aggregate",
        ]
        lowered.verify()

    def test_lowering_preserves_semantics(self, rng):
        func = relational_query()
        t = RecordBatch.from_arrays(
            {"k": rng.integers(0, 5, 300), "x": rng.random(300)}
        )
        (before,) = run_function(func, tables={"t": t})
        (after,) = run_function(lower_relational_to_df(func), tables={"t": t})
        assert before == after

    def test_mixed_dialect_passthrough(self):
        b = Builder("m")
        schema = FrameType((("x", "float64"),))
        scan = b.emit("relational", "scan", (), {"table": "t", "schema": schema})
        tensor = b.emit("linalg", "frame_to_tensor", [scan.result()], {"columns": ("x",)})
        func = b.ret(tensor.result())
        lowered = lower_relational_to_df(func)
        assert [op.qualified for op in lowered.ops] == [
            "df.source",
            "linalg.frame_to_tensor",
        ]

    def test_lower_to_physical_annotates_backends(self):
        func = relational_query()
        physical = lower_to_physical(func)
        assert all("backend" in op.attrs for op in physical.ops)


class TestWorkModel:
    def test_matmul_work_is_cubic(self):
        small = matmul_func(10, 10, 10)
        big = matmul_func(100, 100, 100)
        w_small = op_work_elements(small.ops[0])
        w_big = op_work_elements(big.ops[0])
        assert w_big == pytest.approx(w_small * 1000)

    def test_dynamic_dims_use_default(self):
        # a dynamic tensor counts as default_rows elements per value touched
        b = Builder("f")
        x = b.add_param("x", TensorType((None, 4)))
        r = b.emit("linalg", "relu", [x])
        assert op_work_elements(r, default_rows=1000) == 2000.0


class TestSelection:
    def test_cpu_only_policy(self):
        func = matmul_func()
        select_backends(func, policy=SelectionPolicy.CPU_ONLY)
        assert all(op.attrs["backend"] == "cpu" for op in func.ops)

    def test_cheapest_puts_big_matmul_on_gpu(self):
        func = matmul_func(1024, 1024, 1024)
        chosen = select_backends(func, policy=SelectionPolicy.CHEAPEST)
        assert list(chosen.values()) == ["gpu"]

    def test_cheapest_keeps_tiny_op_on_cpu(self):
        # GPU launch overhead dominates a tiny op; predefined rule picks CPU
        func = matmul_func(4, 4, 4)
        chosen = select_backends(func, policy=SelectionPolicy.CHEAPEST)
        assert list(chosen.values()) == ["cpu"]

    def test_prefer_accelerator_overrides_overhead(self):
        func = matmul_func(4, 4, 4)
        chosen = select_backends(func, policy=SelectionPolicy.PREFER_ACCELERATOR)
        assert list(chosen.values()) == ["gpu"]

    def test_unsupported_op_falls_back_to_cpu(self):
        b = Builder("f")
        schema = FrameType((("x", "float64"),))
        scan = b.emit("df", "source", (), {"table": "t", "schema": schema})
        srt = b.emit("df", "sort", [scan.result()], {"by": ("x",)})
        func = b.ret(srt.result())
        chosen = select_backends(func, policy=SelectionPolicy.PREFER_ACCELERATOR)
        # sort is not in the GPU/FPGA supported sets
        assert chosen["1:df.sort"] == "cpu"

    def test_requires_cpu_fallback(self):
        func = matmul_func()
        with pytest.raises(ValueError, match="CPU backend"):
            select_backends(func, backends=[GPU_BACKEND])

    def test_estimated_cost_accumulates(self):
        func = matmul_func(256, 256, 256)
        select_backends(func, policy=SelectionPolicy.CPU_ONLY)
        cpu_cost = estimated_cost(func)
        select_backends(func, policy=SelectionPolicy.CHEAPEST)
        best_cost = estimated_cost(func)
        assert best_cost <= cpu_cost

    def test_backend_supports_matching(self):
        func = matmul_func()
        mm = func.ops[0]
        assert GPU_BACKEND.supports(mm)
        assert not FPGA_BACKEND.supports(mm)  # matmul not in FPGA subset
        assert CPU_BACKEND.supports(mm)  # empty set = everything

    def test_figure2_dual_lowering(self):
        """Figure 2: the same MLIR-based op D lowered to GPU (D1) and FPGA
        (D2) for a direct comparison."""
        b = Builder("d")
        x = b.add_param("x", TensorType((100_000,)))
        d = b.emit("linalg", "relu", [x])
        func = b.ret(d.result())
        op = func.ops[0]
        costs = {
            backend.name: backend.cost(op)
            for backend in ALL_BACKENDS
            if backend.supports(op)
        }
        assert set(costs) == {"cpu", "gpu", "fpga"}
        # all three backends can host the hardware-agnostic op; the cost
        # model makes them comparable without porting anything by hand
        assert min(costs.values()) > 0
