"""Happens-before inference and race detection over synthetic traces.

These tests drive :func:`repro.analysis.dist.hb.build_hb` with hand-built
:class:`DistTrace` objects so every causal shape — program order, message
edges, concurrency, conflicting access classes, FastTrack pruning — is
pinned independently of the runtime's probe wiring.
"""

from __future__ import annotations

from repro.analysis.dist.events import CONFLICTS, DistTrace
from repro.analysis.dist.hb import build_hb, site_class, vc_leq


def make_trace(rows):
    """rows: (site, kind, sends, recvs, accesses) tuples at increasing time."""
    trace = DistTrace()
    for i, (site, kind, sends, recvs, accesses) in enumerate(rows):
        trace.record(
            time=i * 1e-3,
            site=site,
            kind=kind,
            sends=tuple(sends),
            recvs=tuple(recvs),
            accesses=tuple(accesses),
        )
    return trace


class TestVectorClocks:
    def test_vc_leq_basics(self):
        assert vc_leq({}, {})
        assert vc_leq({"a": 1}, {"a": 1})
        assert vc_leq({"a": 1}, {"a": 2, "b": 5})
        assert not vc_leq({"a": 2}, {"a": 1})
        assert not vc_leq({"a": 1, "b": 1}, {"a": 1})

    def test_program_order_on_one_site(self):
        trace = make_trace([
            ("driver", "x", (), (), ()),
            ("driver", "y", (), (), ()),
            ("driver", "z", (), (), ()),
        ])
        hb = build_hb(trace)
        assert hb.ordered(0, 1) and hb.ordered(1, 2) and hb.ordered(0, 2)
        assert not hb.ordered(2, 0)

    def test_message_edge_orders_across_sites(self):
        trace = make_trace([
            ("driver", "send", ("m1",), (), ()),
            ("gcs", "recv", (), ("m1",), ()),
            ("gcs", "after", (), (), ()),
        ])
        hb = build_hb(trace)
        assert hb.ordered(0, 1)
        assert hb.ordered(0, 2)

    def test_unrelated_sites_are_concurrent(self):
        trace = make_trace([
            ("driver", "x", (), (), ()),
            ("gcs", "y", (), (), ()),
        ])
        hb = build_hb(trace)
        assert hb.concurrent(0, 1)

    def test_recv_joins_latest_send_of_key(self):
        trace = make_trace([
            ("a", "send1", ("k",), (), ()),
            ("b", "send2", ("k",), (), ()),
            ("c", "recv", (), ("k",), ()),
        ])
        hb = build_hb(trace)
        # the recv joined b's (latest) clock, not a's
        assert hb.ordered(1, 2)
        assert hb.concurrent(0, 2)

    def test_dangling_recv_contributes_no_edge(self):
        trace = make_trace([
            ("a", "x", (), (), ()),
            ("b", "recv", (), ("never-sent",), ()),
        ])
        hb = build_hb(trace)
        assert hb.dangling_recvs == [(1, "never-sent")]
        assert hb.concurrent(0, 1)


class TestRaceDetection:
    def test_concurrent_writes_race(self):
        trace = make_trace([
            ("a", "w1", (), (), (("dir:o", "w"),)),
            ("b", "w2", (), (), (("dir:o", "w"),)),
        ])
        hb = build_hb(trace)
        assert len(hb.races) == 1
        race = hb.races[0]
        assert race.var == "dir:o"
        assert {race.first.kind, race.second.kind} == {"w1", "w2"}

    def test_ordered_writes_do_not_race(self):
        trace = make_trace([
            ("a", "w1", ("m",), (), (("dir:o", "w"),)),
            ("b", "w2", (), ("m",), (("dir:o", "w"),)),
        ])
        assert build_hb(trace).races == []

    def test_commuting_classes_do_not_race(self):
        # acc-acc, r-r and r-acc all commute (see CONFLICTS)
        trace = make_trace([
            ("a", "add1", (), (), (("dir:o", "acc"),)),
            ("b", "add2", (), (), (("dir:o", "acc"),)),
            ("c", "rd1", (), (), (("dir:o", "r"),)),
            ("d", "rd2", (), (), (("dir:o", "r"),)),
        ])
        assert build_hb(trace).races == []
        assert ("acc", "acc") not in CONFLICTS

    def test_write_vs_read_and_accumulate_race(self):
        trace = make_trace([
            ("a", "rd", (), (), (("dir:o", "r"),)),
            ("b", "add", (), (), (("dir:o", "acc"),)),
            ("c", "wr", (), (), (("dir:o", "w"),)),
        ])
        hb = build_hb(trace)
        kinds = {frozenset((r.first.kind, r.second.kind)) for r in hb.races}
        # the write races both the read and the accumulate; r||acc commutes
        assert kinds == {frozenset(("rd", "wr")), frozenset(("add", "wr"))}

    def test_different_variables_never_race(self):
        trace = make_trace([
            ("a", "w1", (), (), (("dir:x", "w"),)),
            ("b", "w2", (), (), (("dir:y", "w"),)),
        ])
        assert build_hb(trace).races == []

    def test_fasttrack_pruning_drops_subsumed_accesses(self):
        # w1 -> (ordered) w2; a later concurrent w3 races only against w2
        trace = make_trace([
            ("a", "w1", ("m",), (), (("dir:o", "w"),)),
            ("b", "w2", (), ("m",), (("dir:o", "w"),)),
            ("c", "w3", (), (), (("dir:o", "w"),)),
        ])
        hb = build_hb(trace)
        # w1 was subsumed by the ordered w2: w3 races exactly once, against w2
        assert len(hb.races) == 1
        assert {hb.races[0].first.kind, hb.races[0].second.kind} == {"w2", "w3"}

    def test_max_races_caps_reporting(self):
        rows = [("s%d" % i, "w", (), (), (("dir:o", "w"),)) for i in range(10)]
        hb = build_hb(make_trace(rows), max_races=3)
        assert len(hb.races) == 3

    def test_dedup_collapses_same_shape_races(self):
        trace = make_trace([
            ("attempt:t1#1", "rd", (), (), (("dir:o1", "r"),)),
            ("driver", "wr", (), (), (("dir:o1", "w"),)),
            ("attempt:t2#1", "rd", (), (), (("dir:o2", "r"),)),
            ("driver", "wr", (), (), (("dir:o2", "w"),)),
        ])
        hb = build_hb(trace)
        assert len(hb.races) == 2
        assert len(hb.deduped_races()) == 1

    def test_site_class_collapses_roles(self):
        assert site_class("attempt:task-1#2") == "attempt"
        assert site_class("raylet@server0/cpu") == "raylet"
        assert site_class("driver") == "driver"
        assert site_class("push:o->d") == "push"
