"""Overload control: admission, retry budgets, deadlines, breakers.

Four mechanism families, each behind a :class:`RuntimeConfig` switch whose
all-off default reproduces legacy traces bit-for-bit (the equivalence
tests at the bottom pin that on the E17 and E21 scenarios).  The
deterministic retry-backoff jitter contract is pinned here too, so seeded
chaos traces cannot drift through an innocent-looking refactor.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.chaos import ChaosMonkey, ChaosSchedule, LoadBurst
from repro.cluster import build_serverful
from repro.cluster.hardware import MB
from repro.runtime import (
    AdmissionPolicy,
    AdmissionRejectedError,
    BreakerState,
    CircuitBreaker,
    GetTimeoutError,
    ResolutionMode,
    RetryBudget,
    RuntimeConfig,
    ServerlessRuntime,
    TaskCancelledError,
    TaskState,
    backoff_jitter_fraction,
    retry_backoff_delay,
)

OFF_SWITCHES = dict(
    admission_control=False,
    retry_budget=False,
    deadline_propagation=False,
    device_circuit_breakers=False,
)


def make_rt(n_servers=2, **overrides):
    overrides.setdefault("resolution", ResolutionMode.PULL)
    return ServerlessRuntime(
        build_serverful(n_servers=n_servers), RuntimeConfig(**overrides)
    )


def load_bench(name):
    """Import a benchmark scenario module by file path (benchmarks/ is not
    a package; the equivalence tests reuse its workload builders)."""
    path = Path(__file__).resolve().parents[1] / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"_equiv_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod  # classes defined there must stay picklable
    spec.loader.exec_module(mod)
    return mod


# -- the pinned backoff-jitter contract (regression for seeded traces) --------


class TestBackoffJitterPin:
    def test_jitter_fraction_exact_values(self):
        # md5(f"{task_id}:{retries}")[:8] as a fraction of 0xFFFFFFFF —
        # these constants ARE the contract; see runtime/config.py
        assert backoff_jitter_fraction("task1", 1) == pytest.approx(
            0.6272752903465357, abs=0
        )
        assert backoff_jitter_fraction("task1", 2) == pytest.approx(
            0.17971498104271363, abs=0
        )
        assert backoff_jitter_fraction("task1", 3) == pytest.approx(
            0.8276541300182357, abs=0
        )
        assert backoff_jitter_fraction("task7", 1) == pytest.approx(
            0.03867743118635319, abs=0
        )
        assert backoff_jitter_fraction("task7", 2) == pytest.approx(
            0.00860333233340721, abs=0
        )

    def test_fraction_bounds_and_determinism(self):
        for tid in ("task1", "task99", "actorcall3"):
            for retries in range(1, 6):
                frac = backoff_jitter_fraction(tid, retries)
                assert 0.0 <= frac <= 1.0
                assert frac == backoff_jitter_fraction(tid, retries)

    def test_delay_sequence_exact_values(self):
        cfg = RuntimeConfig(
            retry_backoff_base=1e-3, retry_backoff_factor=2.0, retry_jitter=0.5
        )
        delays = [retry_backoff_delay(cfg, "task1", r) for r in (1, 2, 3, 4)]
        assert delays == [
            0.001313637645173268,
            0.0021797149810427133,
            0.005655308260036471,
            0.009675217714550722,
        ]

    def test_runtime_uses_the_pinned_delay(self):
        rt = make_rt(n_servers=1)
        ref = rt.submit(lambda: 1, name="probe")
        ctx = rt._ctx_of_object[ref.object_id]
        ctx.retries = 2
        assert rt._backoff_delay(ctx) == retry_backoff_delay(
            rt.config, ctx.spec.task_id, 2
        )
        assert rt.get(ref) == 1


# -- mechanism units ----------------------------------------------------------


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(-0.1, 10.0)
        with pytest.raises(ValueError):
            RetryBudget(0.2, 0.0)

    def test_drain_refill_and_cap(self):
        b = RetryBudget(ratio=0.5, cap=2.0)
        assert b.tokens("n") == 2.0
        assert b.try_consume("n") and b.try_consume("n")
        assert not b.try_consume("n")  # dry
        assert b.exhausted == 1 and b.consumed == 2
        b.refill("n")
        assert b.tokens("n") == 0.5
        assert not b.try_consume("n")  # half a token is not a retry
        b.refill("n")
        assert b.try_consume("n")
        for _ in range(10):
            b.refill("n")
        assert b.tokens("n") == 2.0  # clamped at cap

    def test_per_node_isolation(self):
        b = RetryBudget(ratio=0.1, cap=1.0)
        assert b.try_consume("a")
        assert not b.try_consume("a")
        assert b.try_consume("b")  # node b has its own bucket


class TestCircuitBreaker:
    def make(self, **kw):
        kw.setdefault("threshold", 3)
        kw.setdefault("reset_after", 1.0)
        kw.setdefault("probe_successes", 2)
        transitions = []
        br = CircuitBreaker(
            "dev0", on_transition=lambda d, a, b: transitions.append((a, b)), **kw
        )
        return br, transitions

    def test_trip_after_threshold(self):
        br, transitions = self.make()
        br.record_failure(0.0)
        br.record_failure(0.0)
        assert br.state is BreakerState.CLOSED
        br.record_failure(0.0)
        assert br.state is BreakerState.OPEN
        assert transitions == [(BreakerState.CLOSED, BreakerState.OPEN)]
        assert not br.allow(0.5, inflight=0)

    def test_success_resets_the_failure_streak(self):
        br, _ = self.make()
        br.record_failure(0.0)
        br.record_failure(0.0)
        br.record_success(0.0)
        br.record_failure(0.0)
        br.record_failure(0.0)
        assert br.state is BreakerState.CLOSED  # streak broken, never 3 in a row

    def test_half_open_probe_and_close(self):
        br, transitions = self.make()
        for _ in range(3):
            br.record_failure(0.0)
        # the reset timer elapses: the next allow() flips to HALF_OPEN
        assert br.allow(1.5, inflight=0)
        assert br.state is BreakerState.HALF_OPEN
        # single probe at a time: in-flight work blocks a second one
        assert not br.allow(1.5, inflight=1)
        br.record_success(1.6)
        assert br.state is BreakerState.HALF_OPEN  # needs 2 consecutive
        br.record_success(1.7)
        assert br.state is BreakerState.CLOSED
        assert transitions[-1] == (BreakerState.HALF_OPEN, BreakerState.CLOSED)

    def test_probe_failure_reopens(self):
        br, _ = self.make()
        for _ in range(3):
            br.record_failure(0.0)
        assert br.allow(1.5, inflight=0)
        br.record_failure(1.6)
        assert br.state is BreakerState.OPEN
        assert not br.allow(1.7, inflight=0)  # timer restarted at 1.6
        assert br.allow(2.7, inflight=0)

    def test_force_open_and_recovered(self):
        br, _ = self.make()
        br.force_open(0.0)
        assert br.state is BreakerState.OPEN and br.trips == 1
        br.on_recovered()
        assert br.state is BreakerState.HALF_OPEN


# -- admission control --------------------------------------------------------


class TestAdmission:
    def test_reject_policy(self):
        rt = make_rt(admission_control=True, admission_queue_depth=2)
        refs = [rt.submit(lambda: 1, compute_cost=0.2) for _ in range(2)]
        with pytest.raises(AdmissionRejectedError) as exc:
            rt.submit(lambda: 2, compute_cost=0.2)
        assert exc.value.reason == "admission_reject"
        assert rt.tasks_shed == 1
        assert rt.log.count("admission_rejected") == 1
        assert rt.get(refs) == [1, 1]
        # slots freed: the same submission is cleanly retryable now
        assert rt.get(rt.submit(lambda: 3)) == 3

    def test_shed_lowest_priority(self):
        rt = make_rt(
            admission_control=True,
            admission_queue_depth=2,
            admission_policy=AdmissionPolicy.SHED_LOWEST_PRIORITY,
        )
        producer = rt.submit(lambda: 10, compute_cost=0.1)
        low = rt.submit(lambda x: x + 1, (producer,), priority=0, name="low")
        high = rt.submit(lambda: 99, priority=5, name="high")  # displaces low
        assert rt.get(high) == 99
        assert rt.get(producer) == 10
        with pytest.raises(TaskCancelledError, match="displaced_by_priority"):
            rt.get(low)
        events = rt.log.of_kind("task_cancelled")
        assert [e["reason"] for e in events] == ["displaced_by_priority"]

    def test_shed_needs_a_lower_priority_victim(self):
        rt = make_rt(
            admission_control=True,
            admission_queue_depth=1,
            admission_policy=AdmissionPolicy.SHED_LOWEST_PRIORITY,
        )
        rt.submit(lambda: 1, compute_cost=0.1, priority=5)
        # the only candidate victim outranks the newcomer: reject instead
        with pytest.raises(AdmissionRejectedError):
            rt.submit(lambda: 2, priority=0)

    def test_queue_with_deadline_parks_and_drains(self):
        rt = make_rt(
            admission_control=True,
            admission_queue_depth=1,
            admission_policy=AdmissionPolicy.QUEUE_WITH_DEADLINE,
            admission_overflow_depth=2,
        )
        first = rt.submit(lambda: 0, compute_cost=0.05)
        parked = [rt.submit(lambda i=i: i, name=f"parked{i}") for i in (1, 2)]
        assert rt.log.count("admission_queued") == 2
        with pytest.raises(AdmissionRejectedError):  # overflow is bounded too
            rt.submit(lambda: 3)
        assert rt.get([first, *parked]) == [0, 1, 2]

    def test_queue_sheds_past_deadline_entries(self):
        rt = make_rt(
            admission_control=True,
            admission_queue_depth=1,
            admission_policy=AdmissionPolicy.QUEUE_WITH_DEADLINE,
        )
        first = rt.submit(lambda: 0, compute_cost=0.5)
        stale = rt.submit(lambda: 1, deadline=0.1)  # slot opens at ~0.5
        assert rt.get(first) == 0
        with pytest.raises(TaskCancelledError, match="queue_deadline"):
            rt.get(stale)
        assert rt.tasks_shed == 1

    def test_raylet_admission_window(self):
        rt = make_rt(n_servers=1, raylet_admission_depth=2)
        refs = [rt.submit(lambda i=i: i * i, compute_cost=1e-3) for i in range(8)]
        assert rt.get(refs) == [i * i for i in range(8)]
        raylet = rt.raylet_for_device("server0/cpu")
        assert raylet.admission_inflight == 0  # every attempt concluded
        assert not rt._admission_deferred
        depth = rt.telemetry.registry.gauge(
            "skadi_admission_queue_depth",
            "task attempts admitted and not yet concluded, per scope",
            scope=raylet.raylet_id,
        )
        assert depth.value == 0.0
        assert max(v for _, v in depth.samples) <= 2.0  # the window held


# -- deadline propagation and cooperative cancellation ------------------------


class TestDeadlines:
    def test_expired_at_submit_is_cancelled(self):
        rt = make_rt(deadline_propagation=True)
        ref = rt.submit(lambda: 1, deadline=0.0)  # now == 0.0 already
        with pytest.raises(TaskCancelledError, match="deadline_exceeded"):
            rt.get(ref)
        assert rt.log.of_kind("task_cancelled")[0]["reason"] == "deadline_exceeded"

    def test_deadline_inherited_from_producers(self):
        rt = make_rt(deadline_propagation=True)
        a = rt.submit(lambda: 1, deadline=0.5)
        b = rt.submit(lambda: 2, deadline=0.3)
        c = rt.submit(lambda x, y: x + y, (a, b))  # no deadline of its own
        assert rt._ctx_of_object[c.object_id].spec.deadline == 0.3  # the min
        assert rt.get(c) == 3

    def test_fanin_consumer_inherits_min_across_two_producer_deadlines(self):
        """Two producers with *different* deadlines feed one consumer: the
        effective deadline is the min over all of them, even when the
        consumer brings its own (looser) deadline to the join."""
        rt = make_rt(deadline_propagation=True)
        tight = rt.submit(lambda: 1, deadline=0.2)
        loose = rt.submit(lambda: 2, deadline=0.7)
        joined = rt.submit(lambda x, y: x + y, (tight, loose), deadline=0.5)
        assert rt._ctx_of_object[joined.object_id].spec.deadline == 0.2
        assert rt.get(joined) == 3

    def test_fanin_consumer_keeps_own_deadline_when_tightest(self):
        rt = make_rt(deadline_propagation=True)
        a = rt.submit(lambda: 1, deadline=0.4)
        b = rt.submit(lambda: 2)  # deadline-free producer must not loosen it
        c = rt.submit(lambda x, y: x + y, (a, b), deadline=0.1)
        assert rt._ctx_of_object[c.object_id].spec.deadline == 0.1
        assert rt.get(c) == 3

    def test_consumer_skipped_when_inputs_arrive_too_late(self):
        rt = make_rt(deadline_propagation=True)
        slow = rt.submit(lambda: 1, compute_cost=0.2)
        doomed = rt.submit(lambda x: x, (slow,), deadline=0.05)
        grandchild = rt.submit(lambda x: x, (doomed,))
        assert rt.get(slow) == 1  # the producer itself had no deadline
        with pytest.raises(TaskCancelledError):
            rt.get(doomed)
        with pytest.raises(TaskCancelledError, match="upstream"):
            rt.get(grandchild)
        reasons = {e["reason"] for e in rt.log.of_kind("task_cancelled")}
        assert reasons == {"deadline_exceeded", "upstream_cancelled"}

    def test_deadlines_inert_without_the_switch(self):
        rt = make_rt(deadline_propagation=False)
        slow = rt.submit(lambda: 1, compute_cost=0.2)
        late = rt.submit(lambda x: x + 1, (slow,), deadline=0.05)
        assert rt.get(late) == 2  # legacy behavior: deadline is ignored
        assert rt.tasks_cancelled == 0


class TestCancellation:
    def test_timed_out_get_leaves_task_cancellable(self):
        rt = make_rt()
        ref = rt.submit(lambda: 42, compute_cost=1.0)
        with pytest.raises(GetTimeoutError):
            rt.get(ref, timeout=0.1)
        # not orphaned: still in flight, owner intact, cancellable
        ctx = rt._ctx_of_object[ref.object_id]
        assert ctx.state not in (TaskState.FAILED, TaskState.CANCELLED)
        assert rt.cancel(ref) is True
        with pytest.raises(TaskCancelledError):
            rt.get(ref)
        assert rt.tasks_cancelled == 1
        assert rt._open_tasks == 0
        events = rt.log.of_kind("task_cancelled")
        assert len(events) == 1 and events[0]["reason"] == "user"

    def test_cancel_after_finish_is_a_noop(self):
        rt = make_rt()
        ref = rt.submit(lambda: 7)
        assert rt.get(ref) == 7
        assert rt.cancel(ref) is False
        assert rt.tasks_cancelled == 0

    def test_cancel_cascades_to_downstream(self):
        rt = make_rt()
        a = rt.submit(lambda: 1, compute_cost=0.5)
        b = rt.submit(lambda x: x + 1, (a,))
        c = rt.submit(lambda x: x + 1, (b,))
        assert rt.cancel(a, reason="user") is True
        for ref in (a, b, c):
            assert rt._ctx_of_object[ref.object_id].state is TaskState.CANCELLED
        with pytest.raises(TaskCancelledError):
            rt.get(c)
        reasons = [e["reason"] for e in rt.log.of_kind("task_cancelled")]
        assert reasons == ["user", "upstream_cancelled", "upstream_cancelled"]

    def test_every_cancellation_event_carries_a_reason(self):
        rt = make_rt(deadline_propagation=True)
        rt.submit(lambda: 1, deadline=0.0)
        victim = rt.submit(lambda: 2, compute_cost=1.0)
        rt.sim.run(until=0.01)
        rt.cancel(victim, reason="user")
        rt.sim.run()
        for ev in rt.log.of_kind("task_cancelled"):
            assert ev["reason"]

    def test_cancelled_consumer_releases_fetch_registry(self):
        """Acceptance: a cancelled consumer neither blocks nor leaks its
        raylet's in-flight fetch-registry entry."""
        rt = make_rt(fetch_dedup=True)
        payload = rt.put(b"x" * 64, nbytes=64 * MB)
        out = rt.submit(
            lambda x: len(x), (payload,), pinned_device="server1/cpu", name="victim"
        )
        raylet = rt.raylet_for_device("server1/cpu")
        while not raylet._inflight_fetches:  # run up to mid-transfer
            nxt = rt.sim.peek()
            assert nxt is not None, "fetch never started"
            rt.sim.run(until=nxt)
        assert rt.cancel(out) is True
        rt.sim.run()
        assert raylet._inflight_fetches == {}  # leader's finally ran
        # the object is still fetchable by a fresh consumer afterwards
        again = rt.submit(lambda x: len(x), (payload,), pinned_device="server1/cpu")
        assert rt.get(again) == 64

    def test_cancelled_leader_unblocks_dedup_follower(self):
        rt = make_rt(fetch_dedup=True)
        payload = rt.put(b"x" * 64, nbytes=64 * MB)
        leader = rt.submit(
            lambda x: len(x), (payload,), pinned_device="server1/cpu", name="leader"
        )
        follower = rt.submit(
            lambda x: len(x), (payload,), pinned_device="server1/cpu", name="follower"
        )
        raylet = rt.raylet_for_device("server1/cpu")
        while raylet.fetches_deduped == 0:  # follower rides the leader's fetch
            nxt = rt.sim.peek()
            assert nxt is not None, "dedup never engaged"
            rt.sim.run(until=nxt)
        rt.cancel(leader)
        assert rt.get(follower) == 64  # released, refetched, finished
        assert raylet._inflight_fetches == {}


# -- retry budgets ------------------------------------------------------------


class TestRetryBudgetIntegration:
    def flaky_runtime(self, **overrides):
        """Tasks that always time out: without a budget they retry to the
        max; with one they are shed as soon as the node's bucket runs dry."""
        overrides.setdefault("task_timeout", 0.01)
        overrides.setdefault("max_retries", 10)
        overrides.setdefault("retry_backoff_base", 1e-3)
        return make_rt(n_servers=1, **overrides)

    def test_budget_caps_retry_volume(self):
        rt = self.flaky_runtime(
            retry_budget=True, retry_budget_ratio=0.0, retry_budget_cap=3.0
        )
        ref = rt.submit(lambda: 1, compute_cost=1.0, name="stuck")  # >> timeout
        with pytest.raises(TaskCancelledError, match="retry_budget_exhausted"):
            rt.get(ref)
        assert rt.tasks_retried == 3  # exactly the bucket, not max_retries
        assert rt.tasks_shed == 1
        ev = rt.log.of_kind("retry_budget_exhausted")
        assert len(ev) == 1 and ev[0]["node"] == "server0"

    def test_without_budget_retries_run_to_max(self):
        rt = self.flaky_runtime(retry_budget=False)
        ref = rt.submit(lambda: 1, compute_cost=1.0, name="stuck")
        with pytest.raises(Exception):
            rt.get(ref)
        assert rt.tasks_retried == 10

    def test_successes_refill_the_bucket(self):
        rt = self.flaky_runtime(
            retry_budget=True, retry_budget_ratio=1.0, retry_budget_cap=2.0
        )
        quick = [rt.submit(lambda i=i: i, compute_cost=1e-4) for i in range(4)]
        assert rt.get(quick) == [0, 1, 2, 3]
        # 4 first-attempt successes refilled ratio=1 each (clamped at cap)
        assert rt._retry_budget.tokens("server0") == 2.0


# -- circuit breakers ---------------------------------------------------------


class TestBreakerIntegration:
    def test_open_breaker_steers_placement(self):
        rt = make_rt(device_circuit_breakers=True)
        rt._breakers.breaker("server0/cpu").force_open(rt.sim.now)
        assert rt.log.count("breaker_open") == 1
        refs = [rt.submit(lambda i=i: i) for i in range(3)]
        assert rt.get(refs) == [0, 1, 2]
        devices = {rt._ctx_of_object[r.object_id].device.device_id for r in refs}
        assert devices == {"server1/cpu"}  # routed around the tripped device

    def test_all_open_falls_back_to_placing_anyway(self):
        rt = make_rt(device_circuit_breakers=True, breaker_reset_after=100.0)
        for dev in ("server0/cpu", "server1/cpu"):
            rt._breakers.breaker(dev).force_open(rt.sim.now)
        # a fully-tripped pool must not brick the scheduler
        assert rt.get(rt.submit(lambda: 5)) == 5

    def test_recovery_goes_through_half_open_probing(self):
        rt = make_rt(
            device_circuit_breakers=True,
            breaker_reset_after=1e-3,
            breaker_probe_successes=1,
        )
        br = rt._breakers.breaker("server0/cpu")
        br.force_open(rt.sim.now)
        tripped = [rt.submit(lambda i=i: i, compute_cost=5e-3) for i in range(2)]
        assert rt.get(tripped) == [0, 1]  # placed elsewhere while OPEN
        assert rt.sim.now > 1e-3  # the reset window has elapsed...
        probe = rt.submit(lambda: 42)  # ...so this placement probes server0
        assert rt.get(probe) == 42
        assert br.state is BreakerState.CLOSED  # probe succeeded, re-closed
        kinds = [
            e.kind for e in rt.log.events if e.kind.startswith("breaker_")
        ]
        assert kinds[:1] == ["breaker_open"]
        assert "breaker_half_open" in kinds and "breaker_closed" in kinds

    def test_dead_device_forces_the_breaker_open(self):
        rt = make_rt(device_circuit_breakers=True)
        rt._mark_device_dead("server1/cpu", cause="test")
        assert rt._breakers.breaker("server1/cpu").state is BreakerState.OPEN
        rt._mark_device_alive("server1/cpu")
        assert rt._breakers.breaker("server1/cpu").state is BreakerState.HALF_OPEN


# -- the chaos-layer burst injector ------------------------------------------


class TestLoadBurst:
    def test_builder_validation(self):
        with pytest.raises(ValueError):
            ChaosSchedule().burst(0.0, n_tasks=0)
        with pytest.raises(ValueError):
            ChaosSchedule().burst(0.0, n_tasks=4, duration=-1.0)
        with pytest.raises(ValueError):
            ChaosSchedule().burst(0.0, n_tasks=4, jitter=1.0)

    def test_arm_requires_a_task_source(self):
        rt = make_rt()
        schedule = ChaosSchedule().burst(0.0, n_tasks=4, duration=1e-3)
        with pytest.raises(RuntimeError, match="task_source"):
            ChaosMonkey(rt, schedule).arm()

    def run_burst(self, n_tasks=12, **overrides):
        rt = make_rt(**overrides)
        refs = []

        def source(i):
            refs.append(rt.submit(lambda i=i: i, compute_cost=1e-3, name=f"b{i}"))

        schedule = ChaosSchedule().burst(
            1e-4, n_tasks=n_tasks, duration=5e-3, seed=7, jitter=0.25
        )
        monkey = ChaosMonkey(rt, schedule, task_source=source).arm()
        rt.sim.run()
        return rt, monkey, refs

    def test_burst_submits_open_loop(self):
        rt, monkey, refs = self.run_burst()
        assert monkey.load_submitted == 12 and monkey.load_rejected == 0
        assert isinstance(monkey.injected[0], LoadBurst)
        assert rt.log.count("chaos_load_burst") == 1
        assert rt.get(refs) == list(range(12))

    def test_burst_is_seed_deterministic(self):
        a = self.run_burst()[0]
        b = self.run_burst()[0]
        assert a.log.signature() == b.log.signature()
        assert a.sim.now == b.sim.now

    def test_burst_against_bounded_admission(self):
        rt, monkey, refs = self.run_burst(
            n_tasks=24,
            admission_control=True,
            admission_queue_depth=4,
        )
        assert monkey.load_rejected > 0  # the gate actually pushed back
        assert monkey.load_submitted + monkey.load_rejected == 24
        assert rt.get(refs) == sorted(rt.get(refs))  # admitted work all landed
        assert rt.tasks_shed == monkey.load_rejected


# -- all-off equivalence (the bit-for-bit contract) ---------------------------


class TestAllOffEquivalence:
    def test_e17_soak_trace_identical_with_switches_off(self):
        e17 = load_bench("test_e17_chaos_soak")
        legacy = e17.run_soak(e17.SEED, chaos=True)
        gated = e17.run_soak(e17.SEED, chaos=True, **OFF_SWITCHES)
        assert legacy["signature"] == gated["signature"]
        assert legacy["makespan"] == gated["makespan"]
        assert legacy["answer"] == gated["answer"]

    def test_e21_fanout_trace_identical_with_switches_off(self):
        e21 = load_bench("test_e21_fast_data_plane")
        legacy = e21.run_fanout(e21.fanout_runtime(fetch_dedup=True), spread=False)
        gated = e21.run_fanout(
            e21.fanout_runtime(fetch_dedup=True, **OFF_SWITCHES), spread=False
        )
        assert legacy.log.signature() == gated.log.signature()
        assert legacy.net.stats.transfers == gated.net.stats.transfers
        assert legacy.sim.now == gated.sim.now

    def test_switches_on_are_inert_on_a_healthy_run(self):
        """With every mechanism enabled but never triggered (huge depths, no
        deadlines, no failures), the trace still matches legacy exactly."""

        def run(**overrides):
            rt = make_rt(**overrides)
            a = rt.submit(lambda: 2, compute_cost=1e-3)
            b = rt.submit(lambda x: x * 3, (a,), compute_cost=1e-3)
            fan = [rt.submit(lambda x, i=i: x + i, (b,)) for i in range(4)]
            total = rt.submit(lambda *xs: sum(xs), tuple(fan))
            assert rt.get(total) == 4 * 6 + 6
            return rt

        legacy = run()
        armed = run(
            admission_control=True,
            admission_queue_depth=10_000,
            retry_budget=True,
            deadline_propagation=True,
            device_circuit_breakers=True,
        )
        assert legacy.log.signature() == armed.log.signature()
        assert legacy.sim.now == armed.sim.now
