"""Lint rules: each fires on the pattern it names, and the optimized
pipeline output is always clean (no false positives after the passes ran)."""

import numpy as np

from repro.analysis import lint_function, lint_module
from repro.ir import Builder, Module, PassManager
from repro.ir.types import TensorType


def _tensor(n=4):
    return TensorType((n,), "float64")


def test_dead_value_rule():
    b = Builder("f")
    x = b.add_param("x", _tensor())
    b.emit("linalg", "exp", [x])  # dead
    relu = b.emit("linalg", "relu", [x])
    func = b.ret(relu.result())
    diags = lint_function(func)
    assert "dead-value" in diags.codes()
    assert all(d.severity.name == "WARNING" for d in diags)


def test_dead_opaque_call_is_not_reported():
    b = Builder("f")
    x = b.add_param("x", _tensor())
    b.emit("kernel", "call", [x], {"kernel": "blackbox", "result_type": _tensor()})
    relu = b.emit("linalg", "relu", [x])
    func = b.ret(relu.result())
    assert "dead-value" not in lint_function(func).codes()


def test_redundant_materialization_rule():
    b = Builder("f")
    x = b.add_param("x", _tensor())
    a1 = b.emit("linalg", "add", [x, x])
    a2 = b.emit("linalg", "add", [x, x])  # identical recompute
    s = b.emit("linalg", "mul", [a1.result(), a2.result()])
    func = b.ret(s.result())
    diags = lint_function(func)
    assert "redundant-materialization" in diags.codes()
    [finding] = diags.by_code("redundant-materialization")
    assert "op#0" in finding.message


def test_refusable_fusion_rule():
    b = Builder("f")
    x = b.add_param("x", _tensor())
    add = b.emit("linalg", "add", [x, x])
    relu = b.emit("linalg", "relu", [add.result()])
    func = b.ret(relu.result())
    diags = lint_function(func)
    assert "refusable-fusion" in diags.codes()


def test_fusion_not_reported_when_value_has_many_uses():
    b = Builder("f")
    x = b.add_param("x", _tensor())
    add = b.emit("linalg", "add", [x, x])
    r1 = b.emit("linalg", "relu", [add.result()])
    r2 = b.emit("linalg", "exp", [add.result()])
    s = b.emit("linalg", "mul", [r1.result(), r2.result()])
    func = b.ret(s.result())
    # add's result feeds two consumers: fusing would duplicate work
    findings = lint_function(func).by_code("refusable-fusion")
    assert all("add" not in d.message for d in findings)


def test_constant_foldable_rule():
    b = Builder("f")
    c1 = b.emit("linalg", "constant", attrs={"value": np.ones(3)})
    c2 = b.emit("linalg", "constant", attrs={"value": np.ones(3)})
    add = b.emit("linalg", "add", [c1.result(), c2.result()])
    func = b.ret(add.result())
    assert "constant-foldable" in lint_function(func).codes()


def test_optimized_pipeline_output_is_lint_clean():
    """After the default passes run to fixpoint, every rule must be quiet —
    each lint rule is 'a pass would have fixed this'."""
    b = Builder("f")
    x = b.add_param("x", _tensor())
    c1 = b.emit("linalg", "constant", attrs={"value": np.ones(4)})
    c2 = b.emit("linalg", "constant", attrs={"value": np.full(4, 2.0)})
    folded = b.emit("linalg", "add", [c1.result(), c2.result()])
    b.emit("linalg", "exp", [x])  # dead
    a1 = b.emit("linalg", "add", [x, folded.result()])
    a2 = b.emit("linalg", "add", [x, folded.result()])  # CSE fodder
    m = b.emit("linalg", "mul", [a1.result(), a2.result()])
    relu = b.emit("linalg", "relu", [m.result()])
    func = b.ret(relu.result())

    assert lint_function(func)  # plenty to complain about before
    PassManager().run(func)
    after = lint_function(func)
    assert not after, after.render()


def test_lint_module_collects_across_functions():
    module = Module()
    for name in ("f", "g"):
        b = Builder(name)
        x = b.add_param("x", _tensor())
        b.emit("linalg", "exp", [x])
        relu = b.emit("linalg", "relu", [x])
        module.add(b.ret(relu.result()))
    diags = lint_module(module)
    assert sorted({d.func for d in diags}) == ["f", "g"]
