"""Tests for the fast data plane: chunked cut-through transfers, fetch
deduplication, multicast trees, and the contention-aware cost model."""

from __future__ import annotations

import pytest

from repro.cluster.hardware import DeviceKind, MB
from repro.cluster.network import Network
from repro.cluster.simtime import Simulator
from repro.cluster.topology import LinkSpec, Topology
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    SchedulingPolicy,
    ServerlessRuntime,
)


def line_topology(n_hops: int = 3) -> Topology:
    """a0 - a1 - ... - a<n_hops>, uniform links."""
    topo = Topology()
    for i in range(n_hops):
        topo.add_link(f"a{i}", f"a{i + 1}", LinkSpec(latency=1e-6, bandwidth=1e9))
    return topo


def star_topology(n_leaves: int = 3) -> Topology:
    """src - hub - c0..c<n-1>."""
    topo = Topology()
    topo.add_link("src", "hub", LinkSpec(latency=1e-6, bandwidth=1e9))
    for i in range(n_leaves):
        topo.add_link("hub", f"c{i}", LinkSpec(latency=1e-6, bandwidth=1e9))
    return topo


class TestChunkedTransfers:
    def test_multihop_pipelining_speedup(self):
        """Cut-through over 3 hops ≈ 1 serialization + 2 chunk-times, vs. 3
        full serializations store-and-forward: comfortably >= 2x faster."""

        def timed(chunk_bytes):
            sim = Simulator()
            net = Network(sim, line_topology(3), chunk_bytes=chunk_bytes)
            net.transfer("a0", "a3", 64 * MB)
            sim.run()
            return sim.now

        assert timed(None) / timed(256 * 1024) >= 2.0

    def test_single_hop_unchanged_by_chunking(self):
        """Pipelining has nothing to overlap on one hop: same time either way
        (chunk serializations sum to the whole object's serialization)."""

        def timed(chunk_bytes):
            sim = Simulator()
            net = Network(sim, line_topology(1), chunk_bytes=chunk_bytes)
            net.transfer("a0", "a1", 16 * MB)
            sim.run()
            return sim.now

        assert timed(256 * 1024) == pytest.approx(timed(None))

    def test_estimate_matches_sim_chunked(self, sim):
        net = Network(sim, line_topology(4), chunk_bytes=256 * 1024)
        p = net.transfer("a0", "a4", 32 * MB)
        sim.run()
        assert p.triggered
        assert sim.now == pytest.approx(net.transfer_time_estimate("a0", "a4", 32 * MB))

    def test_legacy_estimate_is_store_and_forward(self, sim):
        """chunk_bytes=None recovers the pre-pipelining closed form:
        sum of per-hop (latency + nbytes/bandwidth)."""
        topo = line_topology(3)
        net = Network(sim, topo, chunk_bytes=None)
        nbytes = 8 * MB
        expected = sum(
            topo.link(a, b).transfer_time(nbytes) for a, b in topo.route("a0", "a3")
        )
        assert net.transfer_time_estimate("a0", "a3", nbytes) == pytest.approx(expected)

    def test_exact_byte_accounting(self, sim):
        """Chunk splitting must conserve bytes exactly, even when the payload
        doesn't divide evenly: delivered, per-link, and process-value bytes
        all equal the payload."""
        nbytes = 7 * MB + 13  # prime-ish: uneven split across 28+ chunks
        net = Network(sim, line_topology(2), chunk_bytes=256 * 1024)
        p = net.transfer("a0", "a2", nbytes)
        sim.run()
        assert p.value == nbytes
        assert net.stats.bytes_moved == nbytes
        assert net.stats.bytes_by_link[("a0", "a1")] == nbytes
        assert net.stats.bytes_by_link[("a1", "a2")] == nbytes

    def test_chunk_count_is_capped(self, sim):
        net = Network(sim, line_topology(1), chunk_bytes=1024, max_chunks=32)
        sizes = net._chunk_sizes(24 * 1024**3)  # a 24 GB blade spill
        assert len(sizes) == 32
        assert sum(sizes) == 24 * 1024**3

    def test_zero_hop_transfer(self, sim):
        net = Network(sim, line_topology(1), chunk_bytes=256 * 1024)
        p = net.transfer("a0", "a0", 10 * MB)
        sim.run()
        assert p.value == 10 * MB
        assert sim.now == 0.0
        assert net.stats.transfers == 1
        assert net.stats.bytes_moved == 10 * MB
        assert not net.stats.bytes_by_link  # no link was crossed


class TestLinkContention:
    def test_concurrent_transfers_serialize_back_to_back(self, sim):
        """One FIFO link: two 1-second transfers take 2 seconds total."""
        topo = Topology()
        topo.add_link("a", "b", LinkSpec(latency=0.0, bandwidth=100.0))
        net = Network(sim, topo)
        net.transfer("a", "b", 100)
        net.transfer("a", "b", 100)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_chunked_contention_preserves_fifo_and_bytes(self, sim):
        """Chunks of concurrent transfers interleave on a shared link, but
        FIFO per-link order holds: the first-submitted transfer finishes
        first, total time is unchanged, and bytes are conserved."""
        topo = Topology()
        topo.add_link("a", "b", LinkSpec(latency=0.0, bandwidth=1000.0))
        net = Network(sim, topo, chunk_bytes=100)
        done = []
        p1 = net.transfer("a", "b", 1000, label="first")
        p2 = net.transfer("a", "b", 1000, label="second")
        p1.add_callback(lambda _: done.append("first"))
        p2.add_callback(lambda _: done.append("second"))
        sim.run()
        assert done == ["first", "second"]
        assert sim.now == pytest.approx(2.0)
        assert net.stats.bytes_moved == 2000
        assert net.stats.bytes_by_link[("a", "b")] == 2000

    def test_queued_bytes_ledger_rises_and_drains(self, sim):
        net = Network(sim, line_topology(1))
        assert net.queued_bytes("a0", "a1") == 0
        net.transfer("a0", "a1", 4 * MB)
        # admitted synchronously at submit: placement done at this instant
        # already sees the backlog
        assert net.queued_bytes("a0", "a1") == 4 * MB
        sim.run()
        assert net.queued_bytes("a0", "a1") == 0

    def test_contended_estimate_prices_backlog(self, sim):
        net = Network(sim, line_topology(1))
        idle = net.transfer_time_estimate("a0", "a1", 1 * MB, contended=True)
        net.transfer("a0", "a1", 16 * MB)
        hot = net.transfer_time_estimate("a0", "a1", 1 * MB, contended=True)
        uncontended = net.transfer_time_estimate("a0", "a1", 1 * MB)
        assert hot > uncontended == pytest.approx(idle)
        sim.run()  # backlog drains; the link goes back to looking idle
        assert net.transfer_time_estimate(
            "a0", "a1", 1 * MB, contended=True
        ) == pytest.approx(uncontended)

    def test_degradation_in_estimate(self, sim):
        """The estimate prices chaos-degraded links (satellite fix: the old
        estimate assumed healthy links, so locality placement kept routing
        over flaky cables)."""
        topo = line_topology(2)
        net = Network(sim, topo)
        healthy = net.transfer_time_estimate("a0", "a2", 8 * MB)
        topo.degrade_link("a0", "a1", 4.0)
        degraded = net.transfer_time_estimate("a0", "a2", 8 * MB)
        assert degraded > healthy
        # and it matches what the simulation actually charges
        p = net.transfer("a0", "a2", 8 * MB)
        sim.run()
        assert p.triggered
        assert sim.now == pytest.approx(degraded)


class TestStatsAccounting:
    def test_blocked_transfer_not_counted_as_delivered(self, sim):
        """Satellite fix: a partition-blocked transfer used to inflate
        bytes_moved/bytes_by_link as if it had been delivered."""
        net = Network(sim, line_topology(2))
        net.partition({"a0"})
        p = net.transfer("a0", "a2", 1000)
        sim.run()
        assert p.value is None
        assert net.stats.blocked_transfers == 1
        assert net.stats.attempted_transfers == 1
        assert net.stats.attempted_bytes == 1000
        assert net.stats.transfers == 0
        assert net.stats.bytes_moved == 0
        assert not net.stats.bytes_by_link

    def test_dropped_message_carries_no_link_bytes(self, sim):
        net = Network(sim, line_topology(2))
        net.partition({"a0"})
        p = net.message("a0", "a2")
        sim.run()
        assert p.value is False
        assert net.stats.messages == 1  # attempted
        assert net.stats.messages_delivered == 0
        assert net.stats.dropped_messages == 1
        assert not net.stats.bytes_by_link


class TestMulticast:
    def test_tree_saves_bytes_vs_unicasts(self):
        """src->hub serializes once for 3 consumers instead of 3 times."""
        nbytes = 4 * MB

        def run_unicasts():
            sim = Simulator()
            net = Network(sim, star_topology(3))
            for i in range(3):
                net.transfer("src", f"c{i}", nbytes)
            sim.run()
            return net

        sim = Simulator()
        net = Network(sim, star_topology(3))
        p = net.multicast("src", ["c0", "c1", "c2"], nbytes)
        sim.run()
        uni = run_unicasts()
        assert p.value == ["c0", "c1", "c2"]
        assert sum(net.stats.bytes_by_link.values()) < sum(
            uni.stats.bytes_by_link.values()
        )
        # shared first hop: 1x instead of 3x
        assert net.stats.bytes_by_link[("hub", "src")] == nbytes
        assert uni.stats.bytes_by_link[("hub", "src")] == 3 * nbytes
        assert net.stats.multicasts == 1
        # unicasts would cross 6 links; the tree crosses 4
        assert net.stats.multicast_bytes_saved == 2 * nbytes

    def test_multicast_estimate_agrees_with_single_dst_transfer(self, sim):
        """A one-consumer multicast degenerates to the unicast route."""
        net = Network(sim, star_topology(2))
        p = net.multicast("src", ["c0"], 8 * MB)
        sim.run()
        assert p.value == ["c0"]
        assert sim.now == pytest.approx(net.transfer_time_estimate("src", "c0", 8 * MB))

    def test_multicast_skips_partitioned_consumers(self, sim):
        net = Network(sim, star_topology(3))
        net.partition({"c1"})
        p = net.multicast("src", ["c0", "c1", "c2"], 1 * MB)
        sim.run()
        assert p.value == ["c0", "c2"]
        assert net.stats.blocked_transfers == 1

    def test_multicast_exact_byte_accounting_chunked(self, sim):
        nbytes = 3 * MB + 7
        net = Network(sim, star_topology(2), chunk_bytes=256 * 1024)
        net.multicast("src", ["c0", "c1"], nbytes)
        sim.run()
        assert net.stats.bytes_by_link[("hub", "src")] == nbytes
        assert net.stats.bytes_by_link[("c0", "hub")] == nbytes
        assert net.stats.bytes_by_link[("c1", "hub")] == nbytes


def _fanout_runtime(**overrides) -> ServerlessRuntime:
    from repro.cluster.cluster import build_serverful

    defaults = dict(
        resolution=ResolutionMode.PULL,
        scheduling=SchedulingPolicy.ROUND_ROBIN,
    )
    defaults.update(overrides)
    return ServerlessRuntime(build_serverful(n_servers=3), RuntimeConfig(**defaults))


class TestFetchDedup:
    N = 4

    def _run_fanout(self, rt) -> int:
        """N concurrent consumers of one object, all pinned to server1."""
        ref = rt.put(b"payload", nbytes=8 * MB)
        outs = [
            rt.submit(
                lambda x: len(x),
                (ref,),
                compute_cost=1e-5,
                pinned_device="server1/cpu",
                name=f"consumer{i}",
            )
            for i in range(self.N)
        ]
        assert rt.get(outs) == [7] * self.N
        return rt.net.stats.transfers

    def test_concurrent_fetches_share_one_transfer(self):
        rt = _fanout_runtime(fetch_dedup=True)
        assert self._run_fanout(rt) == 1
        raylet = rt.raylet_for_device("server1/cpu")
        assert raylet.fetches_deduped == self.N - 1

    def test_dedup_off_pays_per_consumer(self):
        rt = _fanout_runtime(fetch_dedup=False)
        assert self._run_fanout(rt) == self.N

    def test_push_mode_dedups_same_device_wave(self):
        rt = _fanout_runtime(
            resolution=ResolutionMode.PUSH, fetch_dedup=True, multicast_pushes=False
        )
        assert self._run_fanout(rt) == 1


class TestMulticastPushes:
    def _run_wave(self, rt) -> ServerlessRuntime:
        ref = rt.put(b"payload", nbytes=8 * MB)
        outs = [
            rt.submit(
                lambda x: len(x),
                (ref,),
                compute_cost=1e-5,
                pinned_device=f"server{i}/cpu",
                name=f"consumer{i}",
            )
            for i in (1, 2)
        ]
        assert rt.get(outs) == [7, 7]
        return rt

    def test_wave_coalesces_into_multicast(self):
        rt = self._run_wave(
            _fanout_runtime(resolution=ResolutionMode.PUSH, multicast_pushes=True)
        )
        assert rt.net.stats.multicasts == 1
        assert rt.net.stats.multicast_bytes_saved > 0
        saved = rt.telemetry.registry.counter(
            "skadi_multicast_bytes_saved_total",
            "bytes multicast trees avoided serializing vs. per-consumer unicasts",
        )
        assert saved.value > 0

    def test_multicast_off_uses_unicasts(self):
        rt = self._run_wave(
            _fanout_runtime(resolution=ResolutionMode.PUSH, multicast_pushes=False)
        )
        assert rt.net.stats.multicasts == 0

    def test_multicast_moves_fewer_link_bytes(self):
        on = self._run_wave(
            _fanout_runtime(resolution=ResolutionMode.PUSH, multicast_pushes=True)
        )
        off = self._run_wave(
            _fanout_runtime(resolution=ResolutionMode.PUSH, multicast_pushes=False)
        )
        assert sum(on.net.stats.bytes_by_link.values()) < sum(
            off.net.stats.bytes_by_link.values()
        )


class TestContentionAwarePlacement:
    def _placed_device(self, contention_aware: bool) -> str:
        from repro.cluster.cluster import build_serverful

        rt = ServerlessRuntime(
            build_serverful(n_servers=2, gpus_per_server=1),
            RuntimeConfig(
                resolution=ResolutionMode.PULL,
                scheduling=SchedulingPolicy.LOCALITY,
                contention_aware_placement=contention_aware,
            ),
        )
        ref = rt.put(b"x" * 64, nbytes=32 * MB)  # lands on server0's CPU store
        # pile backlog onto server0's PCIe link: the local GPU stays the
        # shortest route, but everything queued ahead makes it slow *now*
        for _ in range(4):
            rt.net.transfer("server0/cpu", "server0/gpu0", 256 * MB)
        out = rt.submit(
            lambda x: len(x),
            (ref,),
            compute_cost=1e-5,
            supported_kinds=frozenset({DeviceKind.GPU}),
            name="gpu-task",
        )
        rt.get(out)
        return rt.timelines[-1].device_id

    def test_flag_reaches_scheduler(self):
        assert _fanout_runtime(contention_aware_placement=True).scheduler.contention_aware
        assert not _fanout_runtime(
            contention_aware_placement=False
        ).scheduler.contention_aware

    def test_steers_off_hot_link(self):
        # idle-fabric model: the local GPU is nearest, backlog is invisible
        assert self._placed_device(contention_aware=False) == "server0/gpu0"
        # contention-aware: the queued PCIe bytes make the remote GPU cheaper
        assert self._placed_device(contention_aware=True) == "server1/gpu0"
