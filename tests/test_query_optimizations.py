"""Tests for relational rewrite rules and broadcast-join planning."""

from __future__ import annotations

import numpy as np

from repro import Skadi
from repro.core.planner import ir_to_flowgraph
from repro.frontends.sql import sql_to_ir
from repro.ir import FrameType, PassManager, run_function
from repro.ir.expr import BinOp, Col, FuncCall, Lit, UnaryOp
from repro.ir.lowering import lower_relational_to_df
from repro.ir.relational_passes import (
    SplitConjunctiveFilter,
    relational_optimizer,
    rename_cols,
)

CATALOG = {
    "orders": FrameType(
        (("oid", "int64"), ("cust", "int64"), ("amount", "float64"), ("qty", "int64"))
    ),
    "customers": FrameType(
        (("cid", "int64"), ("region", "int64"), ("credit", "float64"))
    ),
}

JOIN_QUERY = (
    "SELECT region, SUM(amount) AS total FROM orders "
    "JOIN customers ON cust = cid WHERE amount > 50 AND credit > 500 "
    "GROUP BY region ORDER BY region"
)


class TestRenameCols:
    def test_rewrites_every_node_kind(self):
        expr = UnaryOp(
            "not",
            BinOp("and", Col("a") > Lit(1), FuncCall("sqrt", (Col("b"),)) < Lit(2)),
        )
        renamed = rename_cols(expr, {"a": "x", "b": "y"})
        assert set(renamed.referenced_columns()) == {"x", "y"}

    def test_unmapped_columns_untouched(self):
        expr = Col("a") + Col("b")
        renamed = rename_cols(expr, {"a": "x"})
        assert set(renamed.referenced_columns()) == {"x", "b"}


class TestSplitConjunctions:
    def test_splits_and_preserves_semantics(self, orders):
        func = sql_to_ir(
            "SELECT oid FROM orders WHERE amount > 50 AND qty > 3",
            CATALOG,
        )
        (before,) = run_function(func, tables={"orders": orders})
        PassManager([SplitConjunctiveFilter()]).run(func)
        filters = [op for op in func.ops if op.name == "filter"]
        assert len(filters) == 2
        (after,) = run_function(func, tables={"orders": orders})
        assert before == after

    def test_non_conjunctive_untouched(self):
        func = sql_to_ir("SELECT oid FROM orders WHERE amount > 50", CATALOG)
        assert not SplitConjunctiveFilter().run(func, PassManager().run(func))


class TestPushdown:
    def plan_ops(self, query):
        func = sql_to_ir(query, CATALOG)
        PassManager(relational_optimizer()).run(func)
        return func, [op.qualified for op in func.ops]

    def test_both_sides_pushed(self):
        func, ops = self.plan_ops(JOIN_QUERY)
        join_pos = ops.index("relational.join")
        # both filters sit before the join now
        assert ops[:join_pos].count("relational.filter") == 2
        assert "relational.filter" not in ops[join_pos:]

    def test_semantics_preserved(self, orders, customers):
        tables = {"orders": orders, "customers": customers}
        plain = sql_to_ir(JOIN_QUERY, CATALOG)
        (want,) = run_function(plain, tables=tables)
        optimized, _ = self.plan_ops(JOIN_QUERY)
        (got,) = run_function(optimized, tables=tables)
        assert got == want

    def test_right_side_rename_handling(self):
        # credit is a right-side column: its predicate must reference the
        # original name after the push
        func, _ = self.plan_ops(JOIN_QUERY)
        filters = [op for op in func.ops if op.name == "filter"]
        preds = [repr(op.attrs["pred"]) for op in filters]
        assert any("credit" in p for p in preds)
        assert all("r_credit" not in p for p in preds)

    def test_cross_side_predicate_stays_put(self):
        func, ops = self.plan_ops(
            "SELECT oid FROM orders JOIN customers ON cust = cid "
            "WHERE amount > credit"
        )
        join_pos = ops.index("relational.join")
        assert "relational.filter" in ops[join_pos:]  # cannot push


class TestBroadcastJoinPlanning:
    def lowered(self, query=JOIN_QUERY):
        return lower_relational_to_df(sql_to_ir(query, CATALOG))

    def test_threshold_zero_keeps_shuffle(self):
        graph, _ = ir_to_flowgraph(
            self.lowered(), shards=4, table_rows={"orders": 50_000, "customers": 50}
        )
        assert any(e.key is not None for e in graph.edges)

    def test_small_side_broadcasts(self):
        graph, _ = ir_to_flowgraph(
            self.lowered(),
            shards=4,
            table_rows={"orders": 50_000, "customers": 50},
            broadcast_threshold=1_000,
        )
        join_vertex = next(
            v for v in graph.vertices.values() if v.name.endswith(":broadcast")
        )
        assert "hash_join" in join_vertex.name
        # no keyed (shuffle) edge feeds the join; the GROUP BY shuffle later
        # in the plan is untouched and legitimate
        join_in = [e for e in graph.edges if e.dst == join_vertex.vertex_id]
        assert all(e.key is None for e in join_in)
        assert any("coalesce" in v.name for v in graph.vertices.values())

    def test_two_big_sides_still_shuffle(self):
        graph, _ = ir_to_flowgraph(
            self.lowered(),
            shards=4,
            table_rows={"orders": 50_000, "customers": 50_000},
            broadcast_threshold=1_000,
        )
        assert any(e.key is not None for e in graph.edges)

    def test_broadcast_answers_match_shuffle(self, orders, customers):
        tables = {"orders": orders, "customers": customers}
        shuffle = Skadi(shards=3, broadcast_threshold=0)
        bcast = Skadi(shards=3, broadcast_threshold=10_000)
        out_s = shuffle.sql(JOIN_QUERY, tables)
        out_b = bcast.sql(JOIN_QUERY, tables)
        np.testing.assert_allclose(out_s.column("total"), out_b.column("total"))
        np.testing.assert_array_equal(out_s.column("region"), out_b.column("region"))
