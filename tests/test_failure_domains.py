"""Device-granular failure domains: blade/DPU/accelerator faults.

Disaggregation changes the failure *unit* (§2.3): a GPU, a DPU, or a
memory blade can die while everything around it keeps running.  These
tests exercise each domain end to end — injection, detection (omniscient
and heartbeat-honest), degraded-mode scheduling, and recovery via lineage
or the reliable cache.
"""

from __future__ import annotations

import pytest

from repro.caching.replication import ReplicationScheme
from repro.chaos import ChaosMonkey, ChaosSchedule
from repro.cluster.cluster import build_physical_disagg, build_serverful
from repro.cluster.hardware import GB, DeviceKind
from repro.runtime import (
    Generation,
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
)
from repro.runtime.ownership import ValueState
from repro.runtime.runtime import make_reliable_cache

GPU = frozenset({DeviceKind.GPU})


def omniscient_config(**overrides):
    """No failure detector: the chaos monkey tells the runtime directly."""
    base = dict(
        resolution=ResolutionMode.PULL,
        max_retries=10,
        retry_backoff_base=2e-3,
    )
    base.update(overrides)
    return RuntimeConfig(**base)


def detect_config(**overrides):
    """Heartbeat detection on, retry budget spanning the detection window."""
    base = dict(
        resolution=ResolutionMode.PULL,
        heartbeat_interval=1e-3,
        heartbeat_miss_threshold=3,
        max_retries=10,
        retry_backoff_base=2e-3,
    )
    base.update(overrides)
    return RuntimeConfig(**base)


def inject_now(rt, schedule, settle=1e-3):
    """Arm ``schedule`` (shifted to fire immediately) and let it land while
    nothing else is in flight — a race-free mid-experiment injection."""
    monkey = ChaosMonkey(rt, schedule).arm()
    rt.sim.run(until=rt.sim.now + settle)
    return monkey


class TestDeviceFailureOmniscient:
    """A GPU dies under a living host; the driver announces it."""

    def test_gpu_kill_degrades_capacity_without_failing_the_job(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=3, gpus_per_server=1), omniscient_config()
        )
        reg = rt.telemetry.registry
        base_slots = reg.value("skadi_scheduler_capacity_slots")
        base_devices = reg.value("skadi_scheduler_schedulable_devices")
        assert base_devices == 6  # 3 CPUs + 3 GPUs
        victim = "server1/gpu0"
        ChaosMonkey(rt, ChaosSchedule().fail_device(1e-3, victim)).arm()
        refs = [
            rt.submit(
                lambda i=i: i * i,
                compute_cost=2e-3,
                supported_kinds=GPU,
                name=f"sq{i}",
            )
            for i in range(12)
        ]
        assert rt.get(refs) == [i * i for i in range(12)]
        assert rt.tasks_failed == 0
        # only the dead device is blacklisted — its host node keeps working
        assert rt.scheduler.is_blacklisted(victim)
        assert not rt.scheduler.is_blacklisted("server1/cpu")
        dead = rt.log.of_kind("device_dead")
        assert dead and dead[0]["device"] == victim
        assert dead[0]["cause"] == "chaos device failure"
        assert rt.log.count("node_dead") == 0
        # degraded mode is telemetry-visible: one GPU's slots are gone
        gpu_slots = rt.cluster.device(victim).spec.slots
        assert reg.value("skadi_scheduler_capacity_slots") == base_slots - gpu_slots
        assert reg.value("skadi_scheduler_schedulable_devices") == base_devices - 1
        assert reg.value("skadi_device_failures_total", kind="gpu") == 1

    def test_device_recovery_restores_capacity(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=3, gpus_per_server=1), omniscient_config()
        )
        reg = rt.telemetry.registry
        base_slots = reg.value("skadi_scheduler_capacity_slots")
        victim = "server1/gpu0"
        sched = ChaosSchedule().fail_device(1e-3, victim, recover_after=6e-3)
        ChaosMonkey(rt, sched).arm()
        refs = [
            rt.submit(lambda i=i: i, compute_cost=4e-3, supported_kinds=GPU)
            for i in range(12)
        ]
        filler = rt.submit(lambda: 0, compute_cost=2e-2)  # outlives the window
        assert rt.get(refs) == list(range(12))
        assert rt.get(filler) == 0
        assert rt.log.count("device_alive") >= 1
        assert not rt.scheduler.is_blacklisted(victim)
        assert reg.value("skadi_scheduler_capacity_slots") == base_slots

    def test_lost_output_recovered_by_lineage_on_another_device(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=3, gpus_per_server=1), omniscient_config()
        )
        a = rt.submit(
            lambda: 7, compute_cost=1e-3, supported_kinds=GPU, output_nbytes=1024
        )
        assert rt.get(a) == 7
        victim = rt.ownership.entry(a.object_id).device_id
        assert victim.endswith("/gpu0")
        inject_now(rt, ChaosSchedule().fail_device(rt.sim.now + 1e-6, victim))
        assert rt.ownership.entry(a.object_id).state == ValueState.LOST
        b = rt.submit(lambda x: x + 1, (a,), compute_cost=1e-3)
        assert rt.get(b) == 8
        assert rt.lineage.replays >= 1
        recovered = [
            ev for ev in rt.log.of_kind("object_recovered") if ev["object"] == a.object_id
        ]
        assert recovered and recovered[0]["source"] == "lineage"
        reg = rt.telemetry.registry
        assert reg.value("skadi_recovered_objects_total", source="lineage") >= 1
        # the replay could not use the blacklisted device
        assert rt.ownership.entry(a.object_id).device_id != victim


class TestDeviceFailureDetected:
    """Heartbeat payloads carry device status: the GCS learns a GPU died
    under a healthy host without any extra probes."""

    def test_device_death_reported_by_next_heartbeat(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=3, gpus_per_server=1), detect_config()
        )
        reg = rt.telemetry.registry
        base_slots = reg.value("skadi_scheduler_capacity_slots")
        victim = "server1/gpu0"
        ChaosMonkey(rt, ChaosSchedule().fail_device(2e-3, victim)).arm()
        refs = [
            rt.submit(lambda i=i: i + 10, compute_cost=3e-2, supported_kinds=GPU)
            for i in range(12)
        ]
        assert rt.get(refs) == [i + 10 for i in range(12)]
        assert rt.tasks_failed == 0
        dead = rt.log.of_kind("device_dead")
        assert dead and dead[0]["device"] == victim
        assert dead[0]["cause"] == "reported by raylet"
        # the host raylet kept beating: no whole-node suspicion, no node death
        assert rt.log.count("node_suspected") == 0
        assert rt.log.count("node_dead") == 0
        assert rt.scheduler.is_blacklisted(victim)
        gpu_slots = rt.cluster.device(victim).spec.slots
        assert reg.value("skadi_scheduler_capacity_slots") == base_slots - gpu_slots

    def test_device_revival_reported_by_heartbeat(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=3, gpus_per_server=1), detect_config()
        )
        victim = "server1/gpu0"
        sched = ChaosSchedule().fail_device(2e-3, victim, recover_after=8e-3)
        ChaosMonkey(rt, sched).arm()
        refs = [
            rt.submit(lambda i=i: i, compute_cost=3e-2, supported_kinds=GPU)
            for i in range(12)
        ]
        filler = rt.submit(lambda: 0, compute_cost=4e-2)
        assert rt.get(refs) == list(range(12))
        assert rt.get(filler) == 0
        assert rt.log.count("device_dead") >= 1
        assert rt.log.count("device_alive") >= 1
        assert not rt.scheduler.is_blacklisted(victim)


class TestBladeFailure:
    """A memory blade dies: exactly the spilled objects are lost."""

    NB = 24 * GB  # 3 such outputs overflow the 64 GB head CPU store

    def _spilled_workload(self, rt):
        a = rt.submit(lambda: "A", compute_cost=1e-3, output_nbytes=self.NB)
        b = rt.submit(lambda: "B", compute_cost=1e-3, output_nbytes=self.NB)
        c = rt.submit(lambda: "C", compute_cost=1e-3, output_nbytes=self.NB)
        assert rt.get([a, b, c]) == ["A", "B", "C"]
        # the oldest object was LRU-spilled to the blade, and the directory
        # tracked the move
        assert rt._spill_store is not None and rt._spill_store.contains(a.object_id)
        assert rt.ownership.locations(a.object_id) == ["memblade0"]
        return a, b, c

    def _cluster(self):
        return build_physical_disagg(
            n_servers=1, n_gpu_cards=0, n_fpga_cards=0, n_mem_blades=1
        )

    def test_blade_death_loses_only_spilled_objects(self):
        rt = ServerlessRuntime(self._cluster(), omniscient_config())
        a, b, c = self._spilled_workload(rt)
        inject_now(rt, ChaosSchedule().fail_blade(rt.sim.now + 1e-6, "memblade0"))
        assert rt.ownership.entry(a.object_id).state == ValueState.LOST
        assert rt.ownership.is_ready(b.object_id)
        assert rt.ownership.is_ready(c.object_id)
        dead = rt.log.of_kind("blade_dead")
        assert dead and dead[0]["objects_lost"] == 1
        assert rt.telemetry.registry.value("skadi_blade_failures_total") == 1

    def test_lost_spill_recovered_by_lineage(self):
        rt = ServerlessRuntime(self._cluster(), omniscient_config())
        a, b, c = self._spilled_workload(rt)
        inject_now(rt, ChaosSchedule().fail_blade(rt.sim.now + 1e-6, "memblade0"))
        rt.free([b, c])  # make room: the replay must land in live memory
        d = rt.submit(lambda x: x * 2, (a,), compute_cost=1e-3)
        assert rt.get(d) == "AA"
        assert rt.lineage.replays >= 1
        recovered = [
            ev for ev in rt.log.of_kind("object_recovered") if ev["object"] == a.object_id
        ]
        assert recovered and recovered[0]["source"] == "lineage"
        assert (
            rt.telemetry.registry.value("skadi_recovered_objects_total", source="lineage")
            >= 1
        )

    def test_replicated_cache_recovers_without_any_replay(self):
        cluster = self._cluster()
        cache = make_reliable_cache(cluster, ReplicationScheme(2))
        rt = ServerlessRuntime(cluster, omniscient_config(), reliable_cache=cache)
        a, b, c = self._spilled_workload(rt)
        inject_now(rt, ChaosSchedule().fail_blade(rt.sim.now + 1e-6, "memblade0"))
        rt.free([b, c])
        d = rt.submit(lambda x: x * 2, (a,), compute_cost=1e-3)
        assert rt.get(d) == "AA"
        # the paper's reliable-cache pitch: zero re-executed tasks
        assert rt.lineage.replays == 0
        recovered = [
            ev for ev in rt.log.of_kind("object_recovered") if ev["object"] == a.object_id
        ]
        assert recovered and recovered[0]["source"] == "reliable_cache"
        reg = rt.telemetry.registry
        assert reg.value("skadi_recovered_objects_total", source="reliable_cache") >= 1
        assert reg.value("skadi_recovered_bytes_total", source="reliable_cache") == self.NB

    def test_blade_death_detected_by_probes(self):
        rt = ServerlessRuntime(self._cluster(), detect_config())
        a, _b, _c = self._spilled_workload(rt)
        # blades never beat: only the GCS probe loop can notice the death
        sched = ChaosSchedule().fail_blade(
            rt.sim.now + 1e-6, "memblade0", recover_after=8e-3
        )
        ChaosMonkey(rt, sched).arm()
        filler = rt.submit(lambda: 0, compute_cost=2.5e-2)
        assert rt.get(filler) == 0
        assert rt.log.count("blade_suspected") >= 1
        dead = rt.log.of_kind("blade_dead")
        assert dead and dead[0]["cause"] == "missed probes"
        assert rt.ownership.entry(a.object_id).state == ValueState.LOST
        # after the recovery window a probe succeeded and cleared the blade
        assert rt.log.count("blade_unsuspected") >= 1
        assert rt.log.count("blade_alive") >= 1
        assert rt.health.probes_sent > 0


class TestDpuFailure:
    """Gen-1 homes the card raylet on the DPU; Gen-2 does not (§3)."""

    def _cluster(self):
        return build_physical_disagg(
            n_servers=1, n_gpu_cards=2, n_fpga_cards=0, n_mem_blades=1
        )

    def _gpu_work(self, rt, n=8, cost=3e-3):
        return [
            rt.submit(lambda i=i: i * 3, compute_cost=cost, supported_kinds=GPU)
            for i in range(n)
        ]

    def test_gen1_dpu_death_triggers_head_takeover(self):
        rt = ServerlessRuntime(
            self._cluster(), omniscient_config(generation=Generation.GEN1)
        )
        ChaosMonkey(rt, ChaosSchedule().fail_dpu(2e-3, "gpucard0")).arm()
        refs = self._gpu_work(rt)
        assert rt.get(refs) == [i * 3 for i in range(8)]
        assert rt.tasks_failed == 0
        takeovers = rt.log.of_kind("raylet_takeover")
        assert takeovers and takeovers[0]["devices"] == ["gpucard0/gpu0"]
        assert rt.telemetry.registry.value("skadi_raylet_takeovers_total") == 1
        # the orphaned GPU is adopted, not blacklisted: degraded, not dead
        head_raylet = rt._raylets_by_node["server0"][0]
        assert rt._raylet_of_device["gpucard0/gpu0"] is head_raylet
        assert not rt.scheduler.is_blacklisted("gpucard0/gpu0")
        assert "gpucard0/dpu" in rt._dead_devices

    def test_gen1_dpu_recovery_hands_devices_back(self):
        rt = ServerlessRuntime(
            self._cluster(), omniscient_config(generation=Generation.GEN1)
        )
        sched = ChaosSchedule().fail_dpu(2e-3, "gpucard0", recover_after=6e-3)
        ChaosMonkey(rt, sched).arm()
        refs = self._gpu_work(rt, n=12, cost=4e-3)
        filler = rt.submit(lambda: 0, compute_cost=2.5e-2)
        assert rt.get(refs) == [i * 3 for i in range(12)]
        assert rt.get(filler) == 0
        assert rt.log.count("raylet_takeover") >= 1
        assert rt.log.count("raylet_takeover_end") >= 1
        assert not rt._takeovers
        card_raylet = rt._raylets_by_node["gpucard0"][0]
        assert rt._raylet_of_device["gpucard0/gpu0"] is card_raylet

    def test_gen2_dpu_death_is_a_noop(self):
        rt = ServerlessRuntime(
            self._cluster(), omniscient_config(generation=Generation.GEN2)
        )
        ChaosMonkey(rt, ChaosSchedule().fail_dpu(2e-3, "gpucard0")).arm()
        refs = self._gpu_work(rt)
        assert rt.get(refs) == [i * 3 for i in range(8)]
        assert rt.tasks_failed == 0
        # per-device raylets never lived on the DPU: nothing to adopt — the
        # paper's single-point-of-control contrast between generations
        assert rt.log.count("raylet_takeover") == 0
        assert not rt._takeovers

    def test_gen1_dpu_death_detected_by_triage_probes(self):
        rt = ServerlessRuntime(
            self._cluster(), detect_config(generation=Generation.GEN1)
        )
        ChaosMonkey(rt, ChaosSchedule().fail_dpu(2e-3, "gpucard0")).arm()
        refs = self._gpu_work(rt, n=12, cost=4e-3)
        filler = rt.submit(lambda: 0, compute_cost=2.5e-2)
        assert rt.get(refs) == [i * 3 for i in range(12)]
        assert rt.get(filler) == 0
        assert rt.tasks_failed == 0
        # silence -> probes split the card into dead DPU + live companion
        triages = [
            ev for ev in rt.log.of_kind("domain_triage") if ev["node"] == "gpucard0"
        ]
        assert triages and "gpucard0/dpu" in triages[0]["dead"]
        assert "gpucard0/gpu0" in triages[0]["live"]
        assert rt.log.count("raylet_takeover") >= 1
        # a live companion vetoed the whole-node verdict
        assert rt.log.count("node_dead") == 0


class TestStaleDirectoryReconciliation:
    """A fault can wipe a store and heal before any detector notices
    (device power-cycled while the cluster sat idle).  The directory then
    claims READY copies that do not exist; ``get`` must reconcile the
    phantom locations and recover instead of raising."""

    def test_undetected_wipe_is_reconciled_and_recovered(self):
        rt = ServerlessRuntime(
            build_serverful(n_servers=3, gpus_per_server=1), omniscient_config()
        )
        a = rt.submit(
            lambda: 7, compute_cost=1e-3, supported_kinds=GPU, output_nbytes=1024
        )
        assert rt.get(a) == 7
        victim = rt.ownership.entry(a.object_id).device_id
        # silent wipe: memory gone, device alive, nobody told the GCS
        rt._store_of_device[victim].clear()
        assert rt.ownership.is_ready(a.object_id)  # the directory is stale
        b = rt.submit(lambda x: x + 1, (a,), compute_cost=1e-3)
        assert rt.get(b) == 8
        reconciled = rt.log.of_kind("object_reconciled")
        assert reconciled and reconciled[0]["object"] == a.object_id
        assert reconciled[0]["stale_locations"] == [victim.rsplit("/", 1)[0]]
        recovered = [
            ev for ev in rt.log.of_kind("object_recovered") if ev["object"] == a.object_id
        ]
        assert recovered and recovered[0]["source"] == "lineage"


class TestSeededDeterminism:
    """Same seed + same workload -> identical event log and span trace,
    with all three device-granular fault domains in the schedule."""

    def _soak(self, seed):
        cluster = build_physical_disagg(
            n_servers=2, n_gpu_cards=2, n_fpga_cards=0, n_mem_blades=1
        )
        cache = make_reliable_cache(cluster, ReplicationScheme(2))
        rt = ServerlessRuntime(
            cluster,
            detect_config(generation=Generation.GEN1),
            reliable_cache=cache,
        )
        schedule = ChaosSchedule.random(
            seed,
            node_ids=["server1"],
            device_ids=["gpucard0/gpu0", "gpucard1/gpu0"],
            horizon=2e-2,
            n_crashes=0,
            n_partitions=0,
            n_stragglers=0,
            n_device_failures=1,
            blade_ids=["memblade0"],
            n_blade_failures=1,
            dpu_ids=["gpucard0", "gpucard1"],
            n_dpu_failures=1,
        )
        ChaosMonkey(rt, schedule).arm()
        lanes = []
        for lane in range(4):
            ref = rt.submit(
                lambda lane=lane: lane, compute_cost=3e-3, supported_kinds=GPU
            )
            for _ in range(3):
                ref = rt.submit(lambda x: x + 1, (ref,), compute_cost=3e-3)
            lanes.append(ref)
        total = rt.submit(lambda *xs: sum(xs), tuple(lanes), compute_cost=1e-3)
        assert rt.get(total) == sum(lane + 3 for lane in range(4))
        spans = tuple(
            (s.name, round(s.start, 12), round(s.end, 12))
            for s in rt.telemetry.tracer.finished_spans()
        )
        return rt.log.signature(), rt.sim.now, spans

    def test_same_seed_identical_log_and_spans(self):
        sig_a, now_a, spans_a = self._soak(11)
        sig_b, now_b, spans_b = self._soak(11)
        assert sig_a == sig_b
        assert now_a == now_b
        assert spans_a == spans_b

    def test_different_seed_diverges(self):
        sig_a, _, _ = self._soak(11)
        sig_c, _, _ = self._soak(12)
        assert sig_a != sig_c
