"""Tests for SQL extensions: DISTINCT, BETWEEN, IN / NOT IN."""

from __future__ import annotations

import numpy as np
import pytest

from repro import RecordBatch, Skadi
from repro.frontends.sql import SQLSyntaxError, parse_select, sql_to_ir
from repro.ir import FrameType, run_function
from repro.ir.kernels import k_distinct


@pytest.fixture
def table(rng):
    return RecordBatch.from_arrays(
        {
            "oid": np.arange(300, dtype=np.int64),
            "k": rng.integers(0, 5, 300),
            "r": rng.integers(0, 3, 300),
            "x": np.round(rng.random(300) * 100, 0),
        }
    )


CATALOG = {
    "t": FrameType(
        (("oid", "int64"), ("k", "int64"), ("r", "int64"), ("x", "float64"))
    )
}


def run_sql(sql, table):
    (out,) = run_function(sql_to_ir(sql, CATALOG), tables={"t": table})
    return out


class TestDistinctKernel:
    def test_dedups_rows_keeping_first(self):
        batch = RecordBatch.from_pydict({"a": [1, 2, 1, 2, 3], "b": [9, 8, 9, 7, 6]})
        out = k_distinct({}, batch)
        assert out.to_pydict() == {"a": [1, 2, 2, 3], "b": [9, 8, 7, 6]}

    def test_empty_passthrough(self):
        batch = RecordBatch.from_arrays({"a": np.array([], dtype=np.int64)})
        assert k_distinct({}, batch).num_rows == 0

    def test_all_unique_unchanged(self, rng):
        batch = RecordBatch.from_arrays({"a": np.arange(50)})
        assert k_distinct({}, batch) == batch


class TestParsing:
    def test_distinct_flag(self):
        assert parse_select("SELECT DISTINCT k FROM t").distinct
        assert not parse_select("SELECT k FROM t").distinct

    def test_between_desugars(self):
        stmt = parse_select("SELECT k FROM t WHERE x BETWEEN 10 AND 20")
        assert repr(stmt.where) == "((col(x) >= 10) and (col(x) <= 20))"

    def test_in_desugars_to_or_chain(self):
        stmt = parse_select("SELECT k FROM t WHERE k IN (1, 2, 3)")
        text = repr(stmt.where)
        assert text.count("==") == 3 and text.count("or") == 2

    def test_not_in(self):
        stmt = parse_select("SELECT k FROM t WHERE k NOT IN (1)")
        assert repr(stmt.where) == "not((col(k) == 1))"

    def test_not_without_in_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT k FROM t WHERE k NOT 5")


class TestSemantics:
    def test_distinct_single_column(self, table):
        out = run_sql("SELECT DISTINCT k FROM t", table)
        assert sorted(out.column("k").tolist()) == sorted(
            set(table.column("k").tolist())
        )

    def test_distinct_multi_column(self, table):
        out = run_sql("SELECT DISTINCT k, r FROM t", table)
        expected = set(zip(table.column("k").tolist(), table.column("r").tolist(), strict=False))
        got = set(zip(out.column("k").tolist(), out.column("r").tolist(), strict=False))
        assert got == expected
        assert out.num_rows == len(expected)

    def test_between_inclusive(self, table):
        out = run_sql("SELECT oid FROM t WHERE x BETWEEN 10 AND 20", table)
        mask = (table.column("x") >= 10) & (table.column("x") <= 20)
        assert out.num_rows == int(mask.sum())

    def test_in_list(self, table):
        out = run_sql("SELECT oid FROM t WHERE k IN (0, 4)", table)
        mask = np.isin(table.column("k"), [0, 4])
        assert sorted(out.column("oid").tolist()) == sorted(
            table.column("oid")[mask].tolist()
        )

    def test_not_in_list(self, table):
        out = run_sql("SELECT oid FROM t WHERE k NOT IN (0, 1, 2)", table)
        mask = ~np.isin(table.column("k"), [0, 1, 2])
        assert out.num_rows == int(mask.sum())


class TestAggregateOverExpression:
    def test_sum_of_product(self, table):
        out = run_sql("SELECT SUM(x * k) AS s FROM t", table)
        expected = float((table.column("x") * table.column("k")).sum())
        assert out.column("s")[0] == pytest.approx(expected)

    def test_grouped_expression_aggregate(self, table):
        out = run_sql(
            "SELECT r, SUM(x * 2 + 1) AS s FROM t GROUP BY r ORDER BY r", table
        )
        for r, s in zip(out.column("r").tolist(), out.column("s").tolist(), strict=False):
            mask = table.column("r") == r
            assert s == pytest.approx(float((table.column("x")[mask] * 2 + 1).sum()))

    def test_mixed_plain_and_expression_aggs(self, table):
        out = run_sql(
            "SELECT COUNT(*) AS n, SUM(x) AS sx, AVG(x * x) AS axx FROM t", table
        )
        assert out.column("n")[0] == table.num_rows
        assert out.column("axx")[0] == pytest.approx(
            float((table.column("x") ** 2).mean())
        )

    def test_distributed_matches(self, table):
        sql = "SELECT k, SUM(x * x) AS s FROM t GROUP BY k ORDER BY k"
        skadi = Skadi(shards=3)
        out = skadi.sql(sql, {"t": table})
        oracle = run_sql(sql, table)
        np.testing.assert_allclose(out.column("s"), oracle.column("s"))


class TestExplain:
    def test_explain_shows_all_tiers(self, table):
        skadi = Skadi(shards=2)
        text = skadi.explain(
            "SELECT k, SUM(x) AS s FROM t WHERE x > 10 GROUP BY k", {"t": table}
        )
        assert "logical (relational) IR" in text
        assert "lowered (df/kernel) IR" in text
        assert "flowgraph" in text
        assert "shuffle on 'k'" in text
        assert "physical tasks:" in text

    def test_explain_does_not_execute(self, table):
        skadi = Skadi(shards=2)
        skadi.explain("SELECT k FROM t", {"t": table})
        assert skadi.runtime.tasks_finished == 0


class TestDistributedDistinct:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_sharded_distinct_matches_oracle(self, table, shards):
        skadi = Skadi(shards=shards)
        out = skadi.sql("SELECT DISTINCT k, r FROM t ORDER BY k", {"t": table})
        oracle = run_sql("SELECT DISTINCT k, r FROM t ORDER BY k", table)
        got = sorted(zip(out.column("k").tolist(), out.column("r").tolist(), strict=False))
        want = sorted(zip(oracle.column("k").tolist(), oracle.column("r").tolist(), strict=False))
        assert got == want

    def test_sharded_distinct_shuffles(self, table):
        skadi = Skadi(shards=3)
        skadi.sql("SELECT DISTINCT k, r FROM t", {"t": table})
        # the distinct stage ran sharded (more tasks than a 1-gather plan)
        assert skadi.last_report.physical_tasks > 6
