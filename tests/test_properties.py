"""Cross-cutting property-based tests (hypothesis).

These check the invariants the whole reproduction rests on:

* the runtime computes exactly what direct evaluation computes, for random
  task DAGs, under every generation/resolution configuration;
* the simulator is deterministic: same program, same virtual trace;
* the tiered cache never loses or corrupts objects under random workloads;
* random SQL filters agree between the distributed path and the
  reference interpreter.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RecordBatch, Skadi
from repro.caching import EvictionPolicy, TieredCache, TierSpec
from repro.cluster import build_physical_disagg
from repro.frontends.sql import sql_to_ir
from repro.ir import FrameType, run_function
from repro.runtime import (
    ANY_COMPUTE_KIND,
    Generation,
    ResolutionMode,
    RuntimeConfig,
    SchedulingPolicy,
    ServerlessRuntime,
)

# -- random task DAGs ----------------------------------------------------------


@st.composite
def dag_spec(draw):
    """A random DAG: each node adds/multiplies values of earlier nodes."""
    n = draw(st.integers(2, 10))
    nodes = []
    for i in range(n):
        op = draw(st.sampled_from(["const", "add", "mul"]))
        if i == 0 or op == "const":
            nodes.append(("const", draw(st.integers(-5, 5))))
        else:
            a = draw(st.integers(0, i - 1))
            b = draw(st.integers(0, i - 1))
            nodes.append((op, a, b))
    return nodes


def eval_dag_direct(nodes):
    values = []
    for node in nodes:
        if node[0] == "const":
            values.append(node[1])
        elif node[0] == "add":
            values.append(values[node[1]] + values[node[2]])
        else:
            values.append(values[node[1]] * values[node[2]])
    return values[-1]


def eval_dag_runtime(nodes, config):
    rt = ServerlessRuntime(build_physical_disagg(), config)
    refs = []
    for node in nodes:
        if node[0] == "const":
            refs.append(
                rt.submit(lambda v=node[1]: v, supported_kinds=ANY_COMPUTE_KIND)
            )
        elif node[0] == "add":
            refs.append(
                rt.submit(
                    lambda x, y: x + y,
                    (refs[node[1]], refs[node[2]]),
                    supported_kinds=ANY_COMPUTE_KIND,
                )
            )
        else:
            refs.append(
                rt.submit(
                    lambda x, y: x * y,
                    (refs[node[1]], refs[node[2]]),
                    supported_kinds=ANY_COMPUTE_KIND,
                )
            )
    return rt.get(refs[-1]), rt.sim.now


class TestRandomDAGs:
    @given(nodes=dag_spec())
    @settings(max_examples=30, deadline=None)
    def test_runtime_matches_direct_evaluation(self, nodes):
        expected = eval_dag_direct(nodes)
        for generation in (Generation.GEN1, Generation.GEN2):
            for resolution in (ResolutionMode.PULL, ResolutionMode.PUSH):
                config = RuntimeConfig(generation=generation, resolution=resolution)
                value, _ = eval_dag_runtime(nodes, config)
                assert value == expected, (generation, resolution)

    @given(nodes=dag_spec())
    @settings(max_examples=15, deadline=None)
    def test_virtual_time_is_deterministic(self, nodes):
        config = RuntimeConfig(
            resolution=ResolutionMode.PUSH, scheduling=SchedulingPolicy.LOCALITY
        )
        v1, t1 = eval_dag_runtime(nodes, config)
        v2, t2 = eval_dag_runtime(nodes, config)
        assert v1 == v2
        assert t1 == t2  # bit-identical virtual clocks


# -- tiered cache invariants --------------------------------------------------------


@st.composite
def cache_workload(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.integers(0, 9),  # key space
                st.integers(1, 120),  # object size
            ),
            min_size=1,
            max_size=60,
        )
    )
    return ops


class TestTieredCacheInvariants:
    @given(ops=cache_workload())
    @settings(max_examples=50, deadline=None)
    def test_never_corrupts_or_leaks(self, ops):
        cache = TieredCache(
            [
                TierSpec("fast", 200, 1e9, 1e9, 1e-6),
                TierSpec("slow", 100_000, 1e8, 1e8, 1e-5),
            ],
            policy=EvictionPolicy.LRU,
        )
        shadow = {}
        for op, key, size in ops:
            name = f"k{key}"
            if op == "put":
                cache.put(name, (name, size), size)
                shadow[name] = (name, size)
            elif op == "get":
                if name in shadow:
                    value, _ = cache.get(name)
                    assert value == shadow[name]
                else:
                    with pytest.raises(KeyError):
                        cache.get(name)
            else:
                cache.delete(name)
                shadow.pop(name, None)
        # nothing dropped (slow tier is big enough for the whole key space)
        assert cache.dropped == 0
        for name, expected in shadow.items():
            value, _ = cache.get(name)
            assert value == expected
        # capacity accounting is exact
        assert cache.used_bytes() == sum(s for (_, s) in shadow.values())


# -- random SQL filters --------------------------------------------------------------


@st.composite
def filter_clause(draw):
    column = draw(st.sampled_from(["k", "x"]))
    op = draw(st.sampled_from([">", "<", ">=", "<=", "=", "<>"]))
    value = draw(st.integers(0, 50))
    return f"{column} {op} {value}"


class TestRandomSQL:
    @given(clauses=st.lists(filter_clause(), min_size=1, max_size=3),
           conj=st.sampled_from(["AND", "OR"]))
    @settings(max_examples=25, deadline=None)
    def test_distributed_matches_interpreter(self, clauses, conj):
        rng = np.random.default_rng(123)
        table = RecordBatch.from_arrays(
            {
                "oid": np.arange(200, dtype=np.int64),
                "k": rng.integers(0, 50, 200),
                "x": rng.integers(0, 50, 200).astype(np.float64),
            }
        )
        where = f" {conj} ".join(clauses)
        sql = f"SELECT oid FROM t WHERE {where}"
        catalog = {
            "t": FrameType((("oid", "int64"), ("k", "int64"), ("x", "float64")))
        }
        (oracle,) = run_function(sql_to_ir(sql, catalog), tables={"t": table})
        skadi = Skadi(shards=2)
        out = skadi.sql(sql, {"t": table})
        assert sorted(out.column("oid").tolist()) == sorted(
            oracle.column("oid").tolist()
        )
