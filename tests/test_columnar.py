"""Tests for the shared columnar format (Arrow substitute)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.columnar import (
    Field,
    RecordBatch,
    Schema,
    concat_batches,
    deserialize_columnar,
    deserialize_marshalled,
    serialize_columnar,
    serialize_marshalled,
)


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([Field("a", np.int64), Field("a", np.float64)])

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            Field("s", np.dtype("U10"))

    def test_field_lookup(self):
        schema = Schema([Field("a", np.int64), Field("b", np.float64)])
        assert schema.field("b").dtype == np.float64
        assert "a" in schema and "z" not in schema
        with pytest.raises(KeyError):
            schema.field("z")

    def test_equality_and_hash(self):
        s1 = Schema([Field("a", np.int64)])
        s2 = Schema([Field("a", np.int64)])
        assert s1 == s2 and hash(s1) == hash(s2)
        assert s1 != Schema([Field("a", np.float64)])


class TestRecordBatch:
    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            RecordBatch.from_pydict({"a": [1, 2], "b": [1]})

    def test_dtype_mismatch_rejected(self):
        schema = Schema([Field("a", np.int64)])
        with pytest.raises(TypeError):
            RecordBatch(schema, [np.zeros(3, dtype=np.float64)])

    def test_2d_column_rejected(self):
        schema = Schema([Field("a", np.float64)])
        with pytest.raises(ValueError, match="1-D"):
            RecordBatch(schema, [np.zeros((2, 2))])

    def test_slice_is_zero_copy(self, small_batch):
        view = small_batch.slice(1, 2)
        assert view.num_rows == 2
        assert np.shares_memory(view.column("x"), small_batch.column("x"))

    def test_slice_clamps_to_length(self, small_batch):
        assert small_batch.slice(3, 100).num_rows == 2
        with pytest.raises(ValueError):
            small_batch.slice(-1, 2)

    def test_select_projects_columns(self, small_batch):
        out = small_batch.select(["x"])
        assert out.schema.names == ["x"]
        assert np.shares_memory(out.column("x"), small_batch.column("x"))

    def test_filter_by_mask(self, small_batch):
        mask = small_batch.column("k") == 0
        out = small_batch.filter(mask)
        assert out.num_rows == 2
        assert out.column("x").tolist() == [1.0, 3.0]

    def test_filter_requires_bool_mask(self, small_batch):
        with pytest.raises(ValueError):
            small_batch.filter(np.zeros(5, dtype=np.int64))

    def test_take_reorders(self, small_batch):
        out = small_batch.take(np.array([4, 0]))
        assert out.column("x").tolist() == [5.0, 1.0]

    def test_append_column(self, small_batch):
        out = small_batch.append_column("y", small_batch.column("x") * 2)
        assert out.column("y").tolist() == [2.0, 4.0, 6.0, 8.0, 10.0]
        with pytest.raises(ValueError):
            small_batch.append_column("x", small_batch.column("x"))
        with pytest.raises(ValueError):
            small_batch.append_column("z", np.zeros(3))

    def test_to_rows_round_trip(self, small_batch):
        rows = small_batch.to_rows()
        assert rows[0] == {"k": 0, "x": 1.0}
        assert len(rows) == small_batch.num_rows

    def test_nbytes_sums_columns(self, small_batch):
        assert small_batch.nbytes == 5 * 8 * 2

    def test_batches_are_unhashable_values(self, small_batch):
        with pytest.raises(TypeError):
            hash(small_batch)
        assert small_batch == small_batch.slice(0)

    def test_empty_batch(self):
        schema = Schema([Field("a", np.int64)])
        empty = RecordBatch.empty(schema)
        assert empty.num_rows == 0 and empty.nbytes == 0


class TestConcat:
    def test_concat_matching_schemas(self, small_batch):
        out = concat_batches([small_batch, small_batch])
        assert out.num_rows == 10

    def test_concat_mismatched_schema_rejected(self, small_batch):
        other = RecordBatch.from_pydict({"z": [1]})
        with pytest.raises(ValueError, match="schema mismatch"):
            concat_batches([small_batch, other])

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat_batches([])


class TestWireFormats:
    def test_columnar_round_trip(self, small_batch):
        assert deserialize_columnar(serialize_columnar(small_batch)) == small_batch

    def test_marshalled_round_trip(self, small_batch):
        assert deserialize_marshalled(serialize_marshalled(small_batch)) == small_batch

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_columnar(b"XXXXgarbage")

    def test_columnar_deserialize_is_zero_copy(self, small_batch):
        wire = serialize_columnar(small_batch)
        out = deserialize_columnar(wire)
        # the deserialized columns alias the wire buffer
        assert out.column("x").base is not None

    def test_columnar_cheaper_than_marshalled(self, rng):
        import time

        batch = RecordBatch.from_arrays(
            {"a": rng.integers(0, 100, 50_000), "b": rng.random(50_000)}
        )
        columnar = serialize_columnar(batch)
        marshalled = serialize_marshalled(batch)
        # row-pickled bytes are larger than the raw buffers...
        assert len(marshalled) > len(columnar)
        # ...and the real claim is decode cost: buffer-wrap vs per-row rebuild
        t0 = time.perf_counter()
        deserialize_columnar(columnar)
        t_col = time.perf_counter() - t0
        t0 = time.perf_counter()
        deserialize_marshalled(marshalled)
        t_marsh = time.perf_counter() - t0
        assert t_marsh > 3 * t_col

    @given(
        n=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_columnar_round_trip_property(self, n, seed):
        rng = np.random.default_rng(seed)
        batch = RecordBatch.from_arrays(
            {
                "i": rng.integers(-(2**62), 2**62, n),
                "f": rng.standard_normal(n),
                "b": rng.integers(0, 2, n).astype(bool),
            }
        )
        assert deserialize_columnar(serialize_columnar(batch)) == batch
