"""CLI coverage: ``python -m repro.analysis.dist`` over trace files and
directories, and the dist-trace routing inside ``python -m repro.analysis``."""

from __future__ import annotations

import json

from repro.analysis.cli import main as analysis_main
from repro.analysis.dist.cli import expand_trace_targets, main as dist_main
from repro.analysis.dist.events import DistTrace


def clean_trace():
    trace = DistTrace()
    trace.record(0.0, "driver", "submit", detail=(("task", "t"),),
                 sends=("submit:t",))
    trace.record(1e-3, "gcs", "dispatch", detail=(("task", "t"),),
                 recvs=("submit:t",), sends=("lease:t:0:1",))
    trace.record(2e-3, "attempt:t#1", "attempt_start",
                 detail=(("task", "t"),), recvs=("lease:t:0:1",))
    trace.record(3e-3, "attempt:t#1", "attempt_commit",
                 detail=(("task", "t"),), sends=("done:t",))
    trace.record(4e-3, "gcs", "task_finish", detail=(("task", "t"),),
                 recvs=("done:t",))
    return trace


def dirty_trace():
    trace = DistTrace()
    # concurrent conflicting writes -> one race; duplicate create -> violation
    trace.record(0.0, "a", "own_create",
                 detail=(("object", "o"), ("old", None),
                         ("new", "PENDING"), ("locations", 0)),
                 accesses=(("dir:o", "w"),))
    trace.record(1e-3, "b", "own_create",
                 detail=(("object", "o"), ("old", None),
                         ("new", "PENDING"), ("locations", 0)),
                 accesses=(("dir:o", "w"),))
    return trace


class TestExpandTargets:
    def test_directory_scan_keeps_only_dist_traces(self, tmp_path):
        clean_trace().dump(str(tmp_path / "a.json"))
        (tmp_path / "bench.json").write_text(json.dumps({"metric": 1}))
        (tmp_path / "notes.txt").write_text("hi")
        sub = tmp_path / "sub"
        sub.mkdir()
        dirty_trace().dump(str(sub / "b.json"))
        targets = expand_trace_targets([str(tmp_path)])
        assert [t.name for t in targets] == ["a.json", "b.json"]

    def test_explicit_files_are_kept_even_without_sniffing(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert expand_trace_targets([str(bogus)]) == [bogus]


class TestDistCli:
    def test_clean_trace_exits_zero(self, tmp_path, capsys):
        clean_trace().dump(str(tmp_path / "t.json"))
        assert dist_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "clean: no invariant violations, no races" in out

    def test_dirty_trace_exits_nonzero_and_reports(self, tmp_path, capsys):
        dirty_trace().dump(str(tmp_path / "t.json"))
        assert dist_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "race" in out and "duplicate owner" in out

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        dirty_trace().dump(str(tmp_path / "t.json"))
        assert dist_main(["--json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["clean"] is False
        assert payload["races"] and payload["violations"]
        assert payload["races"][0]["var"] == "dir:o"

    def test_no_hb_skips_race_detection(self, tmp_path, capsys):
        trace = DistTrace()
        trace.record(0.0, "a", "w1", accesses=(("dir:o", "w"),))
        trace.record(1e-3, "b", "w2", accesses=(("dir:o", "w"),))
        trace.dump(str(tmp_path / "t.json"))
        assert dist_main(["--no-hb", str(tmp_path)]) == 0

    def test_partial_skips_end_of_trace_checks(self, tmp_path):
        trace = DistTrace()
        trace.record(0.0, "gcs", "adm_queue",
                     detail=(("task", "t"), ("limit", 4)))
        trace.dump(str(tmp_path / "t.json"))
        assert dist_main([str(tmp_path)]) == 1  # parked at drain
        assert dist_main(["--partial", str(tmp_path)]) == 0

    def test_all_races_reports_every_instance(self, tmp_path, capsys):
        trace = DistTrace()
        for oid in ("o1", "o2"):
            trace.record(0.0, "a", "rd", detail=(("object", oid),),
                         accesses=((f"dir:{oid}", "r"),))
            trace.record(1e-3, "b", "wr", detail=(("object", oid),),
                         accesses=((f"dir:{oid}", "w"),))
        trace.dump(str(tmp_path / "t.json"))
        dist_main(["--json", str(tmp_path)])
        deduped = json.loads(capsys.readouterr().out.strip())
        dist_main(["--json", "--all-races", str(tmp_path)])
        full = json.loads(capsys.readouterr().out.strip())
        assert len(deduped["races"]) == 1
        assert len(full["races"]) == 2

    def test_bad_trace_file_is_a_loud_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert dist_main([str(bogus)]) == 1
        assert "error[bad-trace]" in capsys.readouterr().out

    def test_empty_scan_is_not_a_failure(self, tmp_path, capsys):
        assert dist_main([str(tmp_path)]) == 0
        assert "no trace files found" in capsys.readouterr().out


class TestAnalysisCliTraceMode:
    """``python -m repro.analysis`` routes dist traces to the sanitizer."""

    def test_trace_file_target(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        clean_trace().dump(str(path))
        assert analysis_main([str(path)]) == 0
        assert "dist-sanitizer" in capsys.readouterr().out

    def test_dirty_trace_file_fails(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        dirty_trace().dump(str(path))
        assert analysis_main([str(path)]) == 1
        assert "race" in capsys.readouterr().out

    def test_mixed_directory_lints_programs_and_sanitizes_traces(
        self, tmp_path, capsys
    ):
        clean_trace().dump(str(tmp_path / "trace.json"))
        (tmp_path / "bench.json").write_text(json.dumps({"metric": 1}))
        (tmp_path / "prog.py").write_text("x = 1 + 1\n")
        assert analysis_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dist-sanitizer" in out  # the trace was sanitized
        assert "bench.json" not in out  # the non-trace json was skipped

    def test_bad_trace_through_analysis_cli(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert analysis_main([str(bogus)]) == 1
        assert "error[bad-trace]" in capsys.readouterr().out
