"""The physical-plan sanitizer and the runtime's strict-plans mode."""

import numpy as np
import pytest

from repro.analysis import PlanSanitizerError, sanitize_plan, strict_sanitize
from repro.caching.columnar import RecordBatch
from repro.cluster.cluster import build_physical_disagg
from repro.cluster.hardware import DeviceKind
from repro.flowgraph.launch import launch_physical_graph
from repro.flowgraph.logical import FlowGraph
from repro.flowgraph.physical import GatherMode, PhysicalTask, to_physical
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import ServerlessRuntime


def _plan(shards=2, keyed=False):
    graph = FlowGraph("plan")
    src = graph.add_vertex("src", source_table="t", parallelism=shards)
    comp = graph.add_vertex("f", py_func=lambda v: v, parallelism=shards)
    graph.add_edge(src, comp, key="k" if keyed else None)
    return graph, to_physical(graph)


def _cluster():
    return build_physical_disagg()


def _table(rows=64):
    return RecordBatch.from_pydict(
        {"k": np.arange(rows, dtype="int64"), "v": np.arange(rows, dtype="float64")}
    )


# -- structure -------------------------------------------------------------------


def test_clean_plan_is_clean():
    _, pgraph = _plan(keyed=True)
    diags = sanitize_plan(pgraph, devices=_cluster().all_devices())
    assert not diags, diags.render()


def test_unknown_input():
    _, pgraph = _plan()
    task = pgraph.tasks["v1.0"]
    task.inputs[0][1].append("phantom.7")
    diags = sanitize_plan(pgraph)
    assert "unknown-input" in diags.codes()


def test_no_input_compute():
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].inputs = []
    diags = sanitize_plan(pgraph)
    assert "no-input-compute" in diags.codes()


def test_plan_cycle():
    _, pgraph = _plan()
    # v0.0 -> v1.0 exists; make v0.0 read v1.0 back
    pgraph.tasks["v0.0"].inputs = [(GatherMode.DIRECT, ["v1.0"])]
    diags = sanitize_plan(pgraph)
    assert "plan-cycle" in diags.codes()


def test_orphan_task():
    graph, pgraph = _plan()
    orphan = PhysicalTask(
        ptask_id="orphan.0",
        kind="compute",
        vertex_id="v1",
        name="orphan",
        shard=0,
        parallelism=1,
        inputs=[(GatherMode.DIRECT, ["v0.0"])],
    )
    pgraph.add(orphan)
    diags = sanitize_plan(pgraph)
    assert "orphan-task" in diags.codes()
    assert diags.ok  # orphan is a warning, not an error


# -- placement -------------------------------------------------------------------


def test_pin_unknown_device():
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].pinned_device = "ghost"
    diags = sanitize_plan(pgraph, devices=_cluster().all_devices())
    assert "pin-unknown-device" in diags.codes()


def test_pin_dead_device():
    cluster = _cluster()
    target = cluster.all_devices()[0].device_id
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].pinned_device = target
    diags = sanitize_plan(
        pgraph, devices=cluster.all_devices(), blacklisted={target}
    )
    assert "pin-dead-device" in diags.codes()


def test_pin_kind_mismatch():
    cluster = _cluster()
    gpu = cluster.devices_of_kind(DeviceKind.GPU)[0]
    _, pgraph = _plan()
    task = pgraph.tasks["v1.0"]  # py_func vertex: CPU only
    task.pinned_device = gpu.device_id
    diags = sanitize_plan(pgraph, devices=cluster.all_devices())
    assert "pin-kind-mismatch" in diags.codes()


def test_unplaceable_kind():
    cluster = _cluster()
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].supported_kinds = frozenset({DeviceKind.FPGA})
    fpga_ids = {d.device_id for d in cluster.devices_of_kind(DeviceKind.FPGA)}
    diags = sanitize_plan(
        pgraph, devices=cluster.all_devices(), blacklisted=fpga_ids
    )
    assert "unplaceable-kind" in diags.codes()


def test_input_unresolvable_propagates_from_producer():
    cluster = _cluster()
    _, pgraph = _plan()
    pgraph.tasks["v0.0"].pinned_device = "ghost"  # producer unplaceable
    diags = sanitize_plan(pgraph, devices=cluster.all_devices())
    assert "pin-unknown-device" in diags.codes()
    assert "input-unresolvable" in diags.codes()
    [finding] = diags.by_code("input-unresolvable")
    assert "v0.0" in finding.message


def test_placement_checks_skipped_without_devices():
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].pinned_device = "ghost"
    assert sanitize_plan(pgraph).ok  # structural checks only


# -- capacity --------------------------------------------------------------------


def test_device_memory_oversubscription():
    cluster = _cluster()
    device = cluster.all_devices()[0]
    _, pgraph = _plan()
    task = pgraph.tasks["v1.0"]
    task.pinned_device = device.device_id
    task.output_nbytes = device.spec.memory_bytes + 1
    diags = sanitize_plan(pgraph, devices=cluster.all_devices())
    assert "device-memory-oversubscribed" in diags.codes()
    assert not diags.ok


def test_kind_memory_oversubscription_is_warning():
    cluster = _cluster()
    budget = sum(
        d.spec.memory_bytes for d in cluster.devices_of_kind(DeviceKind.CPU)
    )
    _, pgraph = _plan()
    task = pgraph.tasks["v1.0"]
    task.supported_kinds = frozenset({DeviceKind.CPU})
    task.output_nbytes = budget + 1
    diags = sanitize_plan(pgraph, devices=cluster.all_devices())
    assert "kind-memory-oversubscribed" in diags.codes()
    assert diags.ok  # aggregate over-subscription is advisory


# -- strict mode / scheduler integration ----------------------------------------


def test_strict_sanitize_raises_on_errors():
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].pinned_device = "ghost"
    with pytest.raises(PlanSanitizerError) as info:
        strict_sanitize(pgraph, devices=_cluster().all_devices())
    assert "pin-unknown-device" in str(info.value)
    assert not info.value.diagnostics.ok


def test_scheduler_sanitize_plan_sees_blacklist():
    runtime = ServerlessRuntime(_cluster())
    victim = runtime.scheduler._devices[0].device_id
    runtime.scheduler.blacklist(victim)
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].pinned_device = victim
    diags = runtime.scheduler.sanitize_plan(pgraph)
    assert "pin-dead-device" in diags.codes()


def test_strict_launch_refuses_hazardous_plan():
    runtime = ServerlessRuntime(_cluster(), RuntimeConfig(strict_plans=True))
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].pinned_device = "ghost"
    with pytest.raises(PlanSanitizerError):
        launch_physical_graph(runtime, pgraph, tables={"t": _table()})


def test_strict_launch_allows_clean_plan():
    runtime = ServerlessRuntime(_cluster(), RuntimeConfig(strict_plans=True))
    graph, pgraph = _plan()
    outputs = launch_physical_graph(runtime, pgraph, tables={"t": _table()})
    values = runtime.get(outputs["v1"])
    assert sum(v.num_rows for v in values) == 64


def test_explicit_strict_overrides_config():
    runtime = ServerlessRuntime(_cluster())  # strict_plans defaults off
    _, pgraph = _plan()
    pgraph.tasks["v1.0"].pinned_device = "ghost"
    with pytest.raises(PlanSanitizerError):
        launch_physical_graph(runtime, pgraph, tables={"t": _table()}, strict=True)


def test_consumers_helper():
    _, pgraph = _plan(shards=1)
    table = pgraph.consumers()
    assert table["v0.0"] == ["v1.0"]
    assert table["v1.0"] == []
