"""Tests for the Daphne-like lazy matrix API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontends.matrix import Matrix, constant, param
from repro.ir import PassManager, run_function


class TestConstruction:
    def test_param_and_constant(self):
        x = param("x", (4, 3))
        assert x.shape == (4, 3)
        c = constant(np.eye(3))
        assert c.shape == (3, 3)

    def test_matmul_shape_check(self):
        x = param("x", (4, 3))
        y = param("y", (5, 2))
        with pytest.raises(TypeError, match="inner dims"):
            x @ y

    def test_rank_checks(self):
        v = param("v", (4,))
        with pytest.raises(TypeError):
            v @ v
        with pytest.raises(TypeError):
            v.t()

    def test_broadcast_mismatch(self):
        with pytest.raises(TypeError, match="broadcast"):
            param("a", (4, 3)) + param("b", (4, 2))

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            param("x", (4, 3)).sum(axis=5)


class TestEvaluation:
    def test_affine_relu(self, rng):
        x = param("x", (5, 3))
        w = constant(rng.standard_normal((3, 2)))
        b = constant(rng.standard_normal((1, 2)))
        out = ((x @ w) + b).relu()
        xv = rng.standard_normal((5, 3))
        got = out.evaluate({"x": xv})
        want = np.maximum(xv @ w._payload + b._payload, 0.0)
        np.testing.assert_allclose(got, want)

    def test_scalar_auto_promotion(self, rng):
        x = param("x", (3, 3))
        xv = rng.standard_normal((3, 3))
        got = (x * 2.0 + 1.0).evaluate({"x": xv})
        np.testing.assert_allclose(got, xv * 2 + 1)

    def test_reductions(self, rng):
        x = param("x", (4, 3))
        xv = rng.standard_normal((4, 3))
        np.testing.assert_allclose(x.sum().evaluate({"x": xv}), xv.sum())
        np.testing.assert_allclose(x.sum(axis=0).evaluate({"x": xv}), xv.sum(axis=0))
        np.testing.assert_allclose(x.mean(axis=1).evaluate({"x": xv}), xv.mean(axis=1))

    def test_transpose_and_sigmoid(self, rng):
        x = param("x", (2, 5))
        xv = rng.standard_normal((2, 5))
        got = x.t().sigmoid().evaluate({"x": xv})
        np.testing.assert_allclose(got, 1 / (1 + np.exp(-xv.T)))

    def test_shared_subexpression_emitted_once(self, rng):
        x = param("x", (3, 3))
        h = x.relu()
        out = h + h  # the diamond: h must be emitted once
        func = out.to_ir()
        relu_count = sum(1 for op in func.ops if op.qualified == "linalg.relu")
        assert relu_count == 1
        xv = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            out.evaluate({"x": xv}), 2 * np.maximum(xv, 0)
        )

    def test_same_param_name_shares_value(self, rng):
        x1 = param("x", (3, 3))
        expr = x1 + x1.relu()
        func = expr.to_ir()
        assert len(func.params) == 1


class TestIntegrationWithPasses:
    def test_matrix_program_fuses(self, rng):
        """Matrix expressions ride the same fusion pass as everything else."""
        x = param("x", (8, 8))
        out = x.relu().sigmoid().exp()
        func = out.to_ir()
        xv = rng.standard_normal((8, 8))
        (before,) = run_function(func, {"x": xv})
        stats = PassManager().run(func)
        assert stats.ops_fused >= 2
        (after,) = run_function(func, {"x": xv})
        np.testing.assert_allclose(before, after)
