"""Unit tests for the metrics plane: instruments, registry, Prometheus I/O."""

from __future__ import annotations

import math

import pytest

from repro.telemetry import (
    MetricsRegistry,
    parse_prometheus_text,
    to_prometheus_text,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def registry(clock: FakeClock) -> MetricsRegistry:
    return MetricsRegistry(clock=clock)


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("skadi_things_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("skadi_things_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_label_sets_are_independent(self, registry):
        registry.counter("skadi_link_bytes_total", link="a<->b").inc(10)
        registry.counter("skadi_link_bytes_total", link="b<->c").inc(3)
        assert registry.value("skadi_link_bytes_total", link="a<->b") == 10
        assert registry.value("skadi_link_bytes_total", link="b<->c") == 3

    def test_timestamped_with_sim_clock(self, registry, clock):
        c = registry.counter("skadi_things_total")
        clock.now = 1.25
        c.inc()
        assert c.last_updated == 1.25


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("skadi_depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0

    def test_samples_record_the_time_series(self, registry, clock):
        g = registry.gauge("skadi_depth")
        g.set(1)
        clock.now = 0.5
        g.set(2)
        clock.now = 1.0
        g.set(3)
        assert g.samples == [(0.0, 1.0), (0.5, 2.0), (1.0, 3.0)]

    def test_same_instant_samples_coalesce(self, registry, clock):
        g = registry.gauge("skadi_depth")
        clock.now = 0.25
        g.set(1)
        g.set(2)  # same virtual instant: only the final value is observable
        assert g.samples == [(0.25, 2.0)]


class TestHistogram:
    def test_exact_percentiles(self, registry):
        h = registry.histogram("skadi_latency_seconds")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0.5) == 50.0
        assert h.percentile(0.95) == 95.0
        assert h.percentile(0.99) == 99.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 100.0

    def test_empty_percentile_is_nan(self, registry):
        h = registry.histogram("skadi_latency_seconds")
        assert math.isnan(h.percentile(0.5))

    def test_count_sum_and_scalar_value(self, registry):
        h = registry.histogram("skadi_latency_seconds")
        h.observe(1.0)
        h.observe(3.0)
        assert h.count == 2
        assert h.sum == 4.0
        assert h.value == 2.0  # uniform collection: count is the scalar

    def test_out_of_range_percentile_rejected(self, registry):
        h = registry.histogram("skadi_latency_seconds")
        with pytest.raises(ValueError):
            h.percentile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        a = registry.counter("skadi_x_total", link="l")
        b = registry.counter("skadi_x_total", link="l")
        assert a is b

    def test_kind_conflict_raises(self, registry):
        registry.counter("skadi_x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("skadi_x_total")

    def test_families_sorted_by_name(self, registry):
        registry.counter("skadi_b_total")
        registry.counter("skadi_a_total")
        assert [f.name for f in registry.families()] == [
            "skadi_a_total",
            "skadi_b_total",
        ]

    def test_value_default_when_absent(self, registry):
        assert registry.value("skadi_missing_total") == 0.0
        assert registry.value("skadi_missing_total", default=7.0) == 7.0


class TestPrometheusRoundTrip:
    def _populated(self, registry: MetricsRegistry) -> MetricsRegistry:
        registry.counter("skadi_tasks_total", "tasks run").inc(12)
        registry.counter("skadi_link_bytes_total", "per-link bytes", link="a<->b").inc(
            4096
        )
        registry.gauge("skadi_depth", "queue depth", device="gpu0").set(3)
        # the overload-control surface: per-scope admission depth gauges and
        # the shed counter, labeled by reason
        registry.gauge(
            "skadi_admission_queue_depth", "admitted, unconcluded attempts",
            scope="scheduler",
        ).set(5)
        registry.gauge(
            "skadi_admission_queue_depth", "admitted, unconcluded attempts",
            scope="raylet:server0",
        ).set(2)
        registry.counter(
            "skadi_shed_tasks_total", "tasks shed by overload control",
            reason="admission_reject",
        ).inc(7)
        registry.counter(
            "skadi_shed_tasks_total", "tasks shed by overload control",
            reason="retry_budget_exhausted",
        ).inc(3)
        h = registry.histogram("skadi_latency_seconds", "task latency")
        for v in (0.1, 0.2, 0.3, 0.4):
            h.observe(v)
        return registry

    def test_export_has_help_and_type_framing(self, registry):
        text = to_prometheus_text(self._populated(registry))
        assert "# HELP skadi_tasks_total tasks run" in text
        assert "# TYPE skadi_tasks_total counter" in text
        assert "# TYPE skadi_latency_seconds summary" in text

    def test_export_is_deterministic(self, registry, clock):
        text1 = to_prometheus_text(self._populated(registry))
        other = self._populated(MetricsRegistry(clock=clock))
        assert text1 == to_prometheus_text(other)

    def test_round_trip_preserves_values(self, registry):
        text = to_prometheus_text(self._populated(registry))
        parsed = parse_prometheus_text(text)
        assert parsed.value("skadi_tasks_total") == 12
        assert parsed.value("skadi_link_bytes_total", link="a<->b") == 4096
        assert parsed.value("skadi_depth", device="gpu0") == 3
        assert parsed.value("skadi_admission_queue_depth", scope="scheduler") == 5
        assert parsed.value("skadi_admission_queue_depth", scope="raylet:server0") == 2
        assert (
            parsed.value("skadi_shed_tasks_total", reason="admission_reject") == 7
        )
        assert (
            parsed.value("skadi_shed_tasks_total", reason="retry_budget_exhausted")
            == 3
        )
        assert parsed.value("skadi_latency_seconds_count") == 4
        assert parsed.value("skadi_latency_seconds_sum") == pytest.approx(1.0)
        assert parsed.value("skadi_latency_seconds", quantile="0.5") == 0.2

    def test_parsed_types_and_helps(self, registry):
        parsed = parse_prometheus_text(to_prometheus_text(self._populated(registry)))
        assert parsed.types["skadi_tasks_total"] == "counter"
        assert parsed.types["skadi_depth"] == "gauge"
        assert parsed.helps["skadi_tasks_total"] == "tasks run"

    def test_unknown_sample_raises(self, registry):
        parsed = parse_prometheus_text(to_prometheus_text(self._populated(registry)))
        with pytest.raises(KeyError):
            parsed.value("skadi_not_a_metric")
