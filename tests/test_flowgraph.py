"""Tests for the logical FlowGraph, graph optimizer, and physical lowering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.caching.columnar import RecordBatch
from repro.flowgraph import (
    FlowGraph,
    GatherMode,
    GraphValidationError,
    collect_sink,
    fuse_linear_chains,
    launch_physical_graph,
    optimize,
    prune_dead_vertices,
    to_physical,
)
from repro.ir import Builder, FrameType, col, lit
from repro.runtime import ServerlessRuntime
from repro.cluster import build_physical_disagg

SCHEMA = FrameType((("k", "int64"), ("x", "float64")))


def ir_identity(name="ident"):
    b = Builder(name)
    p = b.add_param("in", SCHEMA)
    out = b.emit("df", "select", [p], {"columns": ("k", "x")})
    return b.ret(out.result())


def ir_filter(threshold=0.5):
    b = Builder("filter")
    p = b.add_param("in", SCHEMA)
    out = b.emit("df", "where", [p], {"pred": col("x") > lit(threshold)})
    return b.ret(out.result())


class TestLogicalGraph:
    def test_vertex_payload_exclusivity(self):
        g = FlowGraph()
        with pytest.raises(GraphValidationError, match="exactly one payload"):
            g.add_vertex("bad", ir_func=ir_identity(), py_func=lambda x: x)
        with pytest.raises(GraphValidationError):
            g.add_vertex("empty")

    def test_validation_checks_ir_arity(self):
        g = FlowGraph()
        g.add_vertex("f", ir_func=ir_filter())  # needs one input
        with pytest.raises(GraphValidationError, match="expects 1 inputs"):
            g.validate()

    def test_port_density_checked(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t")
        v = g.add_vertex("v", py_func=lambda a, b: a)
        g.add_edge(s, v, dst_port=0)
        g.add_edge(s, v, dst_port=2)  # gap
        with pytest.raises(GraphValidationError, match="not dense"):
            g.validate()

    def test_cycle_detection(self):
        g = FlowGraph()
        a = g.add_vertex("a", py_func=lambda x: x)
        b = g.add_vertex("b", py_func=lambda x: x)
        g.add_edge(a, b)
        g.add_edge(b, a)
        with pytest.raises(GraphValidationError, match="cycle"):
            g.topological_order()

    def test_topological_order(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t")
        m = g.add_vertex("m", ir_func=ir_identity())
        r = g.add_vertex("r", ir_func=ir_identity("r"))
        g.add_edge(s, m)
        g.add_edge(m, r)
        order = [v.name for v in g.topological_order()]
        assert order == ["s", "m", "r"]

    def test_sources_and_sinks(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t")
        m = g.add_vertex("m", ir_func=ir_identity())
        g.add_edge(s, m)
        assert [v.name for v in g.sources()] == ["s"]
        assert [v.name for v in g.sinks()] == ["m"]

    def test_foreign_vertex_rejected(self):
        g1, g2 = FlowGraph(), FlowGraph()
        a = g1.add_vertex("a", source_table="t")
        b = g2.add_vertex("b", ir_func=ir_identity())
        with pytest.raises(GraphValidationError):
            g1.add_edge(a, b)


class TestOptimizer:
    def chain_graph(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=2)
        f1 = g.add_vertex("f1", ir_func=ir_filter(0.2), parallelism=2)
        f2 = g.add_vertex("f2", ir_func=ir_identity(), parallelism=2)
        g.add_edge(s, f1)
        g.add_edge(f1, f2)
        return g, s, f1, f2

    def test_fuse_linear_chain(self):
        g, s, f1, f2 = self.chain_graph()
        fused = fuse_linear_chains(g)
        assert fused == 1
        assert len(g.vertices) == 2  # source + fused op
        fused_vertex = next(v for v in g.vertices.values() if v.ir_func is not None)
        assert len(fused_vertex.ir_func.ops) == 2
        assert fused_vertex.compute_cost == pytest.approx(
            f1.compute_cost + f2.compute_cost
        )

    def test_fusion_respects_keyed_edges(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=2)
        f1 = g.add_vertex("f1", ir_func=ir_filter(), parallelism=2)
        f2 = g.add_vertex("f2", ir_func=ir_identity(), parallelism=2)
        g.add_edge(s, f1)
        g.add_edge(f1, f2, key="k")  # shuffle boundary
        assert fuse_linear_chains(g) == 0

    def test_fusion_respects_parallelism_mismatch(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=2)
        f1 = g.add_vertex("f1", ir_func=ir_filter(), parallelism=2)
        f2 = g.add_vertex("f2", ir_func=ir_identity(), parallelism=1)
        g.add_edge(s, f1)
        g.add_edge(f1, f2)
        assert fuse_linear_chains(g) == 0

    def test_prune_dead_vertices(self):
        g, s, f1, f2 = self.chain_graph()
        dead = g.add_vertex("dead", ir_func=ir_identity("dead"), parallelism=2)
        g.add_edge(s, dead)
        removed = prune_dead_vertices(g, live_sinks=[f2])
        assert removed == 1
        assert "dead" not in [v.name for v in g.vertices.values()]

    def test_fused_execution_equivalence(self, rng):
        table = RecordBatch.from_arrays(
            {"k": rng.integers(0, 4, 200), "x": rng.random(200)}
        )

        def run(graph, sink):
            rt = ServerlessRuntime(build_physical_disagg())
            outs = launch_physical_graph(rt, to_physical(graph), tables={"t": table})
            return collect_sink(rt, outs, sink)

        g1, _, _, f2 = self.chain_graph()
        plain = run(g1, f2)
        g2, _, _, f2b = self.chain_graph()
        optimize(g2)
        fused_sink = g2.sinks()[0]
        fused = run(g2, fused_sink)
        assert plain == fused


class TestPhysicalLowering:
    def test_shard_counts(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=3)
        m = g.add_vertex("m", ir_func=ir_identity(), parallelism=3)
        g.add_edge(s, m)
        pg = to_physical(g)
        assert pg.num_tasks == 6
        assert len(pg.shards_of[m.vertex_id]) == 3

    def test_keyed_edge_creates_split_tasks(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=3)
        r = g.add_vertex("r", ir_func=ir_identity(), parallelism=2)
        g.add_edge(s, r, key="k")
        pg = to_physical(g)
        splits = [t for t in pg.tasks.values() if t.kind == "split"]
        assert len(splits) == 3 * 2
        # each reduce shard gathers one partition from each source shard
        reduce_tasks = [pg.tasks[t] for t in pg.shards_of[r.vertex_id]]
        for task in reduce_tasks:
            mode, producers = task.inputs[0]
            assert mode == GatherMode.CONCAT
            assert len(producers) == 3

    def test_broadcast_and_gather_modes(self):
        g = FlowGraph()
        one = g.add_vertex("one", source_table="t", parallelism=1)
        wide = g.add_vertex("wide", ir_func=ir_identity(), parallelism=4)
        sink = g.add_vertex("sink", ir_func=ir_identity("sink"), parallelism=1)
        g.add_edge(one, wide)  # broadcast 1 -> 4
        g.add_edge(wide, sink)  # gather 4 -> 1
        pg = to_physical(g)
        sink_task = pg.tasks[pg.shards_of[sink.vertex_id][0]]
        mode, producers = sink_task.inputs[0]
        assert mode == GatherMode.CONCAT and len(producers) == 4

    def test_unkeyed_reshard_rejected(self):
        g = FlowGraph()
        a = g.add_vertex("a", source_table="t", parallelism=3)
        b = g.add_vertex("b", ir_func=ir_identity(), parallelism=2)
        g.add_edge(a, b)
        with pytest.raises(GraphValidationError, match="keyed edge"):
            to_physical(g)

    def test_parallelism_override_and_pins(self):
        cluster = build_physical_disagg()
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=1)
        m = g.add_vertex("m", ir_func=ir_identity())
        g.add_edge(s, m)
        pg = to_physical(g, parallelism_overrides={m.vertex_id: 1},
                         device_pins={m.vertex_id: ["server0/cpu"]})
        task = pg.tasks[pg.shards_of[m.vertex_id][0]]
        assert task.pinned_device == "server0/cpu"

    def test_pin_count_mismatch_rejected(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t")
        m = g.add_vertex("m", ir_func=ir_identity(), parallelism=2)
        g.add_edge(s, m)
        with pytest.raises(GraphValidationError, match="pins"):
            to_physical(g, device_pins={m.vertex_id: ["a"]})

    def test_cost_divided_across_shards(self):
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=4)
        m = g.add_vertex("m", ir_func=ir_identity(), parallelism=4, compute_cost=1.0)
        g.add_edge(s, m)
        pg = to_physical(g)
        for ptid in pg.shards_of[m.vertex_id]:
            assert pg.tasks[ptid].compute_cost == pytest.approx(0.25)


class TestLaunch:
    def test_sharded_source_covers_table(self, rng):
        table = RecordBatch.from_arrays(
            {"k": rng.integers(0, 5, 100), "x": rng.random(100)}
        )
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=4)
        m = g.add_vertex("m", ir_func=ir_identity(), parallelism=4)
        g.add_edge(s, m)
        rt = ServerlessRuntime(build_physical_disagg())
        outs = launch_physical_graph(rt, to_physical(g), tables={"t": table})
        merged = collect_sink(rt, outs, m)
        assert merged.num_rows == 100
        np.testing.assert_array_equal(
            np.sort(merged.column("x")), np.sort(table.column("x"))
        )

    def test_missing_table_raises(self):
        g = FlowGraph()
        g.add_vertex("s", source_table="nope")
        rt = ServerlessRuntime(build_physical_disagg())
        with pytest.raises(KeyError, match="nope"):
            launch_physical_graph(rt, to_physical(g), tables={})

    def test_gang_launch_runs_graph(self, rng):
        table = RecordBatch.from_arrays(
            {"k": rng.integers(0, 5, 40), "x": rng.random(40)}
        )
        g = FlowGraph()
        s = g.add_vertex("s", source_table="t", parallelism=2)
        m = g.add_vertex("m", ir_func=ir_identity(), parallelism=2)
        g.add_edge(s, m)
        rt = ServerlessRuntime(build_physical_disagg())
        outs = launch_physical_graph(
            rt, to_physical(g), tables={"t": table}, gang_group="all"
        )
        merged = collect_sink(rt, outs, m)
        assert merged.num_rows == 40
