"""Tests for dialect type inference rules and kernels."""

from __future__ import annotations

import pytest

from repro.caching.columnar import RecordBatch
from repro.ir import Builder, FrameType, TensorType, col, lit, run_function
from repro.ir.kernels import HANDCRAFTED, hash_partition, register_handcrafted


def frame():
    return FrameType((("k", "int64"), ("x", "float64")))


def scan(b, schema=None, table="t"):
    return b.emit("relational", "scan", (), {"table": table, "schema": schema or frame()})


class TestRelationalInference:
    def test_filter_keeps_schema(self):
        b = Builder("f")
        s = scan(b)
        f = b.emit("relational", "filter", [s.result()], {"pred": col("x") > lit(0)})
        assert f.result().type.names == ("k", "x")
        assert f.result().type.num_rows is None

    def test_filter_unknown_column_rejected(self):
        b = Builder("f")
        s = scan(b)
        with pytest.raises(KeyError, match="unknown column"):
            b.emit("relational", "filter", [s.result()], {"pred": col("zzz") > lit(0)})

    def test_project_derives_types(self):
        b = Builder("f")
        s = scan(b)
        p = b.emit(
            "relational",
            "project",
            [s.result()],
            {"columns": ("k",), "derived": (("y", col("x") * 2, "float64"),)},
        )
        assert p.result().type.columns == (("k", "int64"), ("y", "float64"))

    def test_project_empty_rejected(self):
        b = Builder("f")
        s = scan(b)
        with pytest.raises(ValueError, match="no columns"):
            b.emit("relational", "project", [s.result()], {"columns": ()})

    def test_join_renames_collisions(self):
        b = Builder("f")
        left = scan(b)
        right = scan(b, FrameType((("k2", "int64"), ("x", "float64"))), "u")
        j = b.emit(
            "relational",
            "join",
            [left.result(), right.result()],
            {"left_on": "k", "right_on": "k2"},
        )
        assert j.result().type.names == ("k", "x", "r_x")

    def test_join_missing_key_rejected(self):
        b = Builder("f")
        left, right = scan(b), scan(b, table="u")
        with pytest.raises(KeyError):
            b.emit(
                "relational",
                "join",
                [left.result(), right.result()],
                {"left_on": "nope", "right_on": "k"},
            )

    def test_aggregate_output_types(self):
        b = Builder("f")
        s = scan(b)
        a = b.emit(
            "relational",
            "aggregate",
            [s.result()],
            {
                "keys": ("k",),
                "aggs": (("s", "sum", "x"), ("n", "count", "x"), ("m", "mean", "x")),
            },
        )
        assert a.result().type.columns == (
            ("k", "int64"),
            ("s", "float64"),
            ("n", "int64"),
            ("m", "float64"),
        )

    def test_aggregate_unknown_fn_rejected(self):
        b = Builder("f")
        s = scan(b)
        with pytest.raises(ValueError, match="unknown agg"):
            b.emit(
                "relational",
                "aggregate",
                [s.result()],
                {"keys": (), "aggs": (("x", "median", "x"),)},
            )

    def test_limit_validation(self):
        b = Builder("f")
        s = scan(b)
        with pytest.raises(ValueError):
            b.emit("relational", "limit", [s.result()], {"n": -1})


class TestLinalgInference:
    def test_matmul_shapes(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((4, 8)))
        y = b.add_param("y", TensorType((8, 3)))
        mm = b.emit("linalg", "matmul", [x, y])
        assert mm.result().type == TensorType((4, 3))

    def test_matmul_mismatch_rejected(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((4, 8)))
        y = b.add_param("y", TensorType((9, 3)))
        with pytest.raises(TypeError, match="inner dims"):
            b.emit("linalg", "matmul", [x, y])

    def test_broadcast_rules(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((4, 8)))
        y = b.add_param("y", TensorType((1, 8)))
        add = b.emit("linalg", "add", [x, y])
        assert add.result().type == TensorType((4, 8))

    def test_broadcast_dynamic_dim(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((None, 8)))
        y = b.add_param("y", TensorType((4, 8)))
        add = b.emit("linalg", "add", [x, y])
        assert add.result().type.shape == (None, 8)

    def test_incompatible_broadcast_rejected(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((4, 8)))
        y = b.add_param("y", TensorType((4, 7)))
        with pytest.raises(TypeError, match="broadcast"):
            b.emit("linalg", "add", [x, y])

    def test_reduce_axis(self):
        b = Builder("f")
        x = b.add_param("x", TensorType((4, 8)))
        r = b.emit("linalg", "reduce_sum", [x], {"axis": 1})
        assert r.result().type == TensorType((4,))
        full = b.emit("linalg", "reduce_sum", [x])
        assert full.result().type == TensorType(())
        with pytest.raises(ValueError):
            b.emit("linalg", "reduce_sum", [x], {"axis": 5})

    def test_frame_to_tensor(self):
        b = Builder("f")
        s = scan(b)
        t = b.emit("linalg", "frame_to_tensor", [s.result()], {"columns": ("x",)})
        assert t.result().type.shape == (None, 1)


class TestKernelExecution:
    def test_sort_and_limit(self):
        b = Builder("f")
        s = scan(b)
        srt = b.emit("relational", "sort", [s.result()], {"by": ("x",), "ascending": False})
        lim = b.emit("relational", "limit", [srt.result()], {"n": 2})
        func = b.ret(lim.result())
        t = RecordBatch.from_pydict({"k": [1, 2, 3], "x": [5.0, 1.0, 9.0]})
        (out,) = run_function(func, tables={"t": t})
        assert out.column("x").tolist() == [9.0, 5.0]

    def test_global_aggregate(self):
        b = Builder("f")
        s = scan(b)
        agg = b.emit(
            "relational",
            "aggregate",
            [s.result()],
            {"keys": (), "aggs": (("total", "sum", "x"), ("n", "count", "x"))},
        )
        func = b.ret(agg.result())
        t = RecordBatch.from_pydict({"k": [1, 1], "x": [2.0, 3.0]})
        (out,) = run_function(func, tables={"t": t})
        assert out.column("total").tolist() == [5.0]
        assert out.column("n").tolist() == [2]

    def test_min_max_mean_aggregates(self):
        b = Builder("f")
        s = scan(b)
        agg = b.emit(
            "relational",
            "aggregate",
            [s.result()],
            {
                "keys": ("k",),
                "aggs": (("lo", "min", "x"), ("hi", "max", "x"), ("avg", "mean", "x")),
            },
        )
        func = b.ret(agg.result())
        t = RecordBatch.from_pydict({"k": [0, 0, 1], "x": [1.0, 3.0, 7.0]})
        (out,) = run_function(func, tables={"t": t})
        assert out.column("lo").tolist() == [1.0, 7.0]
        assert out.column("hi").tolist() == [3.0, 7.0]
        assert out.column("avg").tolist() == [2.0, 7.0]

    def test_scan_missing_table(self):
        b = Builder("f")
        s = scan(b)
        func = b.ret(s.result())
        with pytest.raises(KeyError, match="unknown table"):
            run_function(func, tables={})


class TestHandcrafted:
    def test_top_k(self):
        t = RecordBatch.from_pydict({"k": [1, 2, 3], "x": [5.0, 9.0, 1.0]})
        out = HANDCRAFTED["misc.top_k"](t, "x", 2)
        assert out.column("x").tolist() == [9.0, 5.0]

    def test_distinct(self):
        t = RecordBatch.from_pydict({"k": [3, 1, 3, 2]})
        assert HANDCRAFTED["misc.distinct"](t, "k").tolist() == [1, 2, 3]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_handcrafted("misc.top_k")(lambda: None)

    def test_kernel_call_in_ir(self):
        b = Builder("f")
        s = scan(b)
        call = b.emit(
            "kernel",
            "call",
            [s.result()],
            {
                "kernel": "misc.top_k",
                "kwargs": {"column": "x", "k": 1},
                "result_type": frame(),
            },
        )
        func = b.ret(call.result())
        t = RecordBatch.from_pydict({"k": [1, 2], "x": [5.0, 9.0]})
        (out,) = run_function(func, tables={"t": t})
        assert out.column("x").tolist() == [9.0]


class TestHashPartition:
    def test_partitions_are_disjoint_and_complete(self, rng):
        t = RecordBatch.from_arrays({"k": rng.integers(0, 100, 1000), "x": rng.random(1000)})
        parts = hash_partition(t, "k", 4)
        assert sum(p.num_rows for p in parts) == 1000
        # equal keys land in the same partition
        for p in parts:
            keys_here = set(p.column("k").tolist())
            for q in parts:
                if p is q:
                    continue
                assert keys_here.isdisjoint(set(q.column("k").tolist()))

    def test_single_partition_is_identity(self, small_batch):
        (only,) = hash_partition(small_batch, "k", 1)
        assert only == small_batch

    def test_invalid_partition_count(self, small_batch):
        with pytest.raises(ValueError):
            hash_partition(small_batch, "k", 0)
