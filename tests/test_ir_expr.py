"""Tests for scalar expression trees (with property-based checks)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import BinOp, FuncCall, UnaryOp, col, lit


class TestEvaluation:
    def test_column_lookup(self):
        env = {"x": np.array([1.0, 2.0])}
        assert col("x").evaluate(env).tolist() == [1.0, 2.0]
        with pytest.raises(KeyError, match="not bound"):
            col("y").evaluate(env)

    def test_arithmetic(self):
        env = {"x": np.array([1.0, 2.0, 3.0])}
        expr = (col("x") * lit(2) + lit(1)) / lit(2)
        np.testing.assert_allclose(expr.evaluate(env), [1.5, 2.5, 3.5])

    def test_comparison_and_logic(self):
        env = {"x": np.array([1, 5, 10])}
        expr = (col("x") > lit(2)) & (col("x") < lit(8))
        assert expr.evaluate(env).tolist() == [False, True, False]
        assert (~(col("x") == lit(5))).evaluate(env).tolist() == [True, False, True]
        assert ((col("x") < 2) | (col("x") > 8)).evaluate(env).tolist() == [
            True,
            False,
            True,
        ]

    def test_unary_and_funcs(self):
        env = {"x": np.array([4.0, 9.0])}
        assert (-col("x")).evaluate(env).tolist() == [-4.0, -9.0]
        np.testing.assert_allclose(
            FuncCall("sqrt", (col("x"),)).evaluate(env), [2.0, 3.0]
        )

    def test_scalar_auto_wrapping(self):
        env = {"x": np.array([1.0])}
        assert (col("x") + 1).evaluate(env).tolist() == [2.0]
        assert (col("x") % 2).evaluate(env).tolist() == [1.0]

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", lit(1), lit(2))
        with pytest.raises(ValueError):
            UnaryOp("!", lit(1))
        with pytest.raises(ValueError):
            FuncCall("tan", (lit(1),))


class TestIntrospection:
    def test_referenced_columns(self):
        expr = (col("a") + col("b")) * col("a")
        assert sorted(set(expr.referenced_columns())) == ["a", "b"]
        assert lit(5).referenced_columns() == []

    def test_repr_is_stable(self):
        expr = (col("x") > lit(3)) & (col("y") == lit(1))
        assert repr(expr) == "((col(x) > 3) and (col(y) == 1))"


@st.composite
def arith_expr(draw, depth=0):
    """Random arithmetic expression over columns a, b."""
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return col(draw(st.sampled_from(["a", "b"])))
        return lit(draw(st.integers(-5, 5)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinOp(op, draw(arith_expr(depth + 1)), draw(arith_expr(depth + 1)))


class TestProperties:
    @given(expr=arith_expr(), seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_rowwise(self, expr, seed):
        """Evaluating on arrays == evaluating per row (vectorization law)."""
        rng = np.random.default_rng(seed)
        env = {
            "a": rng.integers(-10, 10, 20),
            "b": rng.integers(-10, 10, 20),
        }
        vectorized = np.asarray(expr.evaluate(env))
        rowwise = np.asarray(
            [
                expr.evaluate({"a": env["a"][i], "b": env["b"][i]})
                for i in range(20)
            ]
        )
        np.testing.assert_array_equal(
            np.broadcast_to(vectorized, rowwise.shape), rowwise
        )

    @given(expr=arith_expr())
    @settings(max_examples=30, deadline=None)
    def test_referenced_columns_sufficient(self, expr):
        """Evaluation succeeds with exactly the referenced columns bound."""
        env = {name: np.arange(4) for name in set(expr.referenced_columns())}
        expr.evaluate(env)  # must not raise
