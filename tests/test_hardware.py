"""Tests for device models."""

from __future__ import annotations

import pytest

from repro.cluster.hardware import (
    CPU_SERVER_SPEC,
    DPU_SPEC,
    FPGA_SPEC,
    GB,
    GPU_SPEC,
    MEMORY_BLADE_SPEC,
    Device,
    DeviceKind,
)


class TestDeviceSpec:
    def test_scaled_duration_divides_by_compute_scale(self):
        assert GPU_SPEC.scaled_duration(4.0) == pytest.approx(4.0 / 40.0)
        assert CPU_SERVER_SPEC.scaled_duration(4.0) == pytest.approx(4.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CPU_SERVER_SPEC.scaled_duration(-1.0)

    def test_with_overrides_returns_new_spec(self):
        fat = CPU_SERVER_SPEC.with_overrides(memory_bytes=128 * GB)
        assert fat.memory_bytes == 128 * GB
        assert CPU_SERVER_SPEC.memory_bytes == 64 * GB
        assert fat.kind == DeviceKind.CPU

    def test_accelerator_classification(self):
        assert DeviceKind.GPU.is_accelerator
        assert DeviceKind.FPGA.is_accelerator
        assert not DeviceKind.CPU.is_accelerator
        assert not DeviceKind.DPU.is_accelerator

    def test_catalog_relative_speeds(self):
        # the paper's premise: accelerators beat CPUs, DPUs are weak cores
        assert GPU_SPEC.compute_scale > FPGA_SPEC.compute_scale > 1.0
        assert DPU_SPEC.compute_scale < 1.0
        assert MEMORY_BLADE_SPEC.memory_bytes > CPU_SERVER_SPEC.memory_bytes


class TestDeviceMemory:
    def test_reserve_and_free(self, sim):
        dev = Device(sim, FPGA_SPEC, node_id="n0")
        assert dev.reserve_memory(1 * GB)
        assert dev.memory_used == 1 * GB
        dev.free_memory(1 * GB)
        assert dev.memory_used == 0

    def test_reserve_beyond_capacity_fails(self, sim):
        dev = Device(sim, FPGA_SPEC, node_id="n0")
        assert not dev.reserve_memory(FPGA_SPEC.memory_bytes + 1)
        assert dev.memory_used == 0

    def test_free_more_than_reserved_raises(self, sim):
        dev = Device(sim, FPGA_SPEC, node_id="n0")
        dev.reserve_memory(100)
        with pytest.raises(ValueError):
            dev.free_memory(200)

    def test_negative_amounts_rejected(self, sim):
        dev = Device(sim, FPGA_SPEC, node_id="n0")
        with pytest.raises(ValueError):
            dev.reserve_memory(-1)
        with pytest.raises(ValueError):
            dev.free_memory(-1)


class TestDeviceExecution:
    def test_execute_charges_overhead_plus_scaled_time(self, sim):
        dev = Device(sim, GPU_SPEC, node_id="n0")
        p = dev.execute(0.4)  # 0.4 cpu-sec -> 10 ms on a 40x GPU
        sim.run()
        expected = GPU_SPEC.dispatch_overhead + 0.4 / 40.0
        assert p.value == pytest.approx(expected)
        assert sim.now == pytest.approx(expected)

    def test_slots_limit_concurrency(self, sim):
        spec = FPGA_SPEC.with_overrides(slots=1, dispatch_overhead=0.0)
        dev = Device(sim, spec, node_id="n0")
        dev.execute(12.0)  # 1 sec on 12x fpga
        dev.execute(12.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_parallel_slots_overlap(self, sim):
        spec = FPGA_SPEC.with_overrides(slots=2, dispatch_overhead=0.0)
        dev = Device(sim, spec, node_id="n0")
        dev.execute(12.0)
        dev.execute(12.0)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_device_ids_unique(self, sim):
        a = Device(sim, GPU_SPEC, node_id="n0")
        b = Device(sim, GPU_SPEC, node_id="n0")
        assert a.device_id != b.device_id

    def test_busy_seconds_accumulate(self, sim):
        spec = FPGA_SPEC.with_overrides(slots=2, dispatch_overhead=0.0)
        dev = Device(sim, spec, node_id="n0")
        dev.execute(12.0)  # 1 virtual second each on a 12x device
        dev.execute(12.0)
        sim.run()
        assert dev.busy_seconds == pytest.approx(2.0)
        # both ran in parallel over a 1s horizon on 2 slots: fully busy
        assert dev.utilization(sim.now) == pytest.approx(1.0)

    def test_utilization_of_idle_horizon(self, sim):
        dev = Device(sim, FPGA_SPEC.with_overrides(dispatch_overhead=0.0), node_id="n0")
        dev.execute(12.0)
        sim.run()
        # 1 busy slot-second over a 10-second horizon with 2 slots
        assert dev.utilization(10.0) == pytest.approx(1.0 / 20.0)
        assert dev.utilization(0.0) == 0.0
