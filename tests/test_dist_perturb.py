"""Schedule perturbation: the seeded tie-reranker and the hunt/shrink loop."""

from __future__ import annotations

import pytest

from repro.analysis.dist.perturb import ddmin, default_predicate, hunt
from repro.analysis.dist.report import SanitizerReport
from repro.chaos.perturb import TiePerturbation, jitter_fraction, tie_rank
from repro.cluster import build_serverful
from repro.cluster.hardware import DeviceKind
from repro.cluster.simtime import SimulationError, Simulator
from repro.runtime import (
    ResolutionMode,
    RuntimeConfig,
    ServerlessRuntime,
    TaskState,
)


class TestTiePerturbation:
    def test_ranks_are_seed_deterministic(self):
        assert tie_rank(1, 42) == tie_rank(1, 42)
        assert tie_rank(1, 42) != tie_rank(2, 42)
        assert 0.0 <= jitter_fraction(1, 42) <= 1.0

    def test_inactive_events_keep_legacy_rank(self):
        p = TiePerturbation(seed=1, active={5})
        assert p(4, 0.0) == (0, 0.0)
        rank, _ = p(5, 0.0)
        assert rank == tie_rank(1, 5)
        assert p.perturbed == 1
        assert p.last_seq == 5

    def test_jitter_stretches_only_positive_delays(self):
        p = TiePerturbation(seed=1, jitter=0.5)
        _, zero = p(1, 0.0)
        assert zero == 0.0  # run-to-completion steps stay immediate
        _, stretched = p(2, 1.0)
        assert 1.0 <= stretched <= 1.5

    def test_negative_jitter_is_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            TiePerturbation(seed=1, jitter=-0.1)


class TestSimulatorIntegration:
    def test_install_requires_idle_queue(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        with pytest.raises(SimulationError, match="idle simulator"):
            sim.set_perturbation(TiePerturbation(seed=1))

    def test_same_instant_ties_are_reordered_but_causality_holds(self):
        def run(perturbation):
            sim = Simulator()
            if perturbation is not None:
                sim.set_perturbation(perturbation)
            order = []

            def worker(name):
                yield sim.timeout(1e-3)  # all wake at the same instant
                order.append(name)

            for name in "abcd":
                sim.process(worker(name))
            sim.run()
            return order

        legacy = run(None)
        assert legacy == list("abcd")
        seen = {tuple(run(TiePerturbation(seed=s))) for s in range(1, 9)}
        assert all(sorted(o) == list("abcd") for o in seen)  # nothing lost
        assert len(seen) > 1  # some seed found a different linearization

    def test_perturbed_runtime_preserves_results(self):
        """Any linearization of the causal order computes the same answer."""

        def run(perturbation):
            cluster = build_serverful(n_servers=2)
            rt = ServerlessRuntime(
                cluster, RuntimeConfig(resolution=ResolutionMode.PULL)
            )
            if perturbation is not None:
                rt.sim.set_perturbation(perturbation)
            a = rt.submit(lambda: 2, compute_cost=1e-3)
            fan = [rt.submit(lambda x, i=i: x + i, (a,)) for i in range(4)]
            return rt.get(rt.submit(lambda *xs: sum(xs), tuple(fan)))

        expected = run(None)
        for seed in (1, 2, 3):
            assert run(TiePerturbation(seed=seed, jitter=0.05)) == expected


class TestDdmin:
    def test_shrinks_to_the_single_culprit(self):
        trials = []

        def test_fn(subset):
            trials.append(tuple(subset))
            return 7 in subset

        assert ddmin(test_fn, list(range(1, 33))) == (7,)

    def test_shrinks_a_conjunction(self):
        def test_fn(subset):
            return 3 in subset and 11 in subset

        assert sorted(ddmin(test_fn, list(range(1, 17)))) == [3, 11]

    def test_budget_bounds_trials(self):
        calls = [0]

        def test_fn(subset):
            calls[0] += 1
            return 5 in subset

        ddmin(test_fn, list(range(1, 129)), max_trials=10)
        assert calls[0] <= 10


class TestHunt:
    def test_default_predicate_wants_a_report(self):
        assert default_predicate(SanitizerReport()) is False
        dirty = SanitizerReport()
        dirty.dangling_recvs = 0
        from repro.analysis.dist.invariants import Violation

        dirty.violations.append(Violation(monitor="m", message="x"))
        assert default_predicate(dirty) is True
        with pytest.raises(TypeError, match="SanitizerReport"):
            default_predicate({"clean": True})

    def test_failing_baseline_short_circuits_with_empty_schedule(self):
        def scenario(perturbation):
            report = SanitizerReport()
            from repro.analysis.dist.invariants import Violation

            report.violations.append(Violation(monitor="m", message="always"))
            return report

        result = hunt(scenario, seeds=range(1, 4))
        assert result.baseline_failed
        assert result.minimal == ()
        assert result.found_failure
        assert "baseline already fails" in result.describe()

    def test_clean_scenario_reports_no_failure(self):
        result = hunt(lambda p: SanitizerReport(), seeds=range(1, 4))
        assert not result.found_failure
        assert result.failing_seed is None
        assert "no failure found" in result.describe()

    def test_hunt_finds_and_shrinks_an_order_bug(self):
        """A scenario whose bug is exposed only under one tie reordering:
        two same-instant writers; the legacy order hides the race window,
        a perturbed order where 'b' lands first trips the predicate."""

        def scenario(perturbation):
            sim = Simulator()
            if perturbation is not None:
                sim.set_perturbation(perturbation)
            order = []

            def worker(name):
                yield sim.timeout(1e-3)
                order.append(name)

            for name in "ab":
                sim.process(worker(name))
            sim.run()
            return order

        result = hunt(
            scenario,
            seeds=range(1, 20),
            predicate=lambda order: order == ["b", "a"],
        )
        assert result.found_failure and not result.baseline_failed
        assert result.failing_seed is not None
        assert result.minimal is not None and len(result.minimal) >= 1
        # the shrunk schedule still reproduces: replay it directly
        replayed = scenario(
            TiePerturbation(result.failing_seed, active=result.minimal)
        )
        assert replayed == ["b", "a"]
        assert "shrunk to" in result.describe()
        payload = result.to_dict()
        assert payload["failing_seed"] == result.failing_seed
        assert payload["minimal_schedule"] == list(result.minimal)


def free_under_consumer_scenario(perturbation, force=False, free_at=52e-3):
    """The free-vs-consumer ordering scenario, fixed and legacy variants.

    A driver frees an object ``free_at`` in while a cross-node consumer
    may still be reading it (b lands at ~50.8ms in the legacy schedule).
    The hunt in this file originally *found* the ordering bug here:
    delivery jitter that stretched b past the free made the argument
    vanish under the running attempt, unrecoverably (``free`` also drops
    the directory entry, so lineage cannot resurrect it).

    ``free`` now quiesces: a free targeting an object with in-flight
    consumers defers until the last one concludes, so the default path
    survives every schedule.  ``force=True`` replays the legacy unsafe
    drop — kept so the hunt and the HB sanitizer can still demonstrate
    the bug they were built to find.
    """
    cluster = build_serverful(n_servers=2)
    if perturbation is not None:
        cluster.sim.set_perturbation(perturbation)
    cpu0 = cluster.node("server0").first_of_kind(DeviceKind.CPU).device_id
    cpu1 = cluster.node("server1").first_of_kind(DeviceKind.CPU).device_id
    rt = ServerlessRuntime(
        cluster,
        RuntimeConfig(resolution=ResolutionMode.PULL,
                      sanitizers=("hb", "invariants")),
    )
    a = rt.submit(lambda: 5, name="a", compute_cost=1e-4,
                  output_nbytes=1 << 22, pinned_device=cpu0)
    rt.get(a)
    b = rt.submit(lambda x: x + 1, args=(a,), name="b",
                  compute_cost=50e-3, pinned_device=cpu1)

    def _free_later():
        yield rt.sim.timeout(free_at)
        rt.free(a, force=force)

    rt.sim.process(_free_later(), name="driver:free")
    rt.sim.run()
    return rt, rt._ctx_of_object[b.object_id]


def legacy_free_scenario(perturbation):
    return free_under_consumer_scenario(perturbation, force=True)


class TestFreeQuiescesConsumers:
    """Satellite fix: ``free`` defers until in-flight consumers drain.

    These tests used to pin the *bug* (the hunt reliably exposed it);
    they now assert the fix, and the legacy ``force=True`` path keeps the
    old behavior reproducible for the sanitizer's benefit.
    """

    def test_hunt_finds_no_failure_on_the_fixed_path(self):
        def consumer_broken(outcome):
            _rt, ctx = outcome
            return ctx.state != TaskState.FINISHED

        result = hunt(
            free_under_consumer_scenario,
            seeds=range(1, 13),
            jitter=0.25,
            predicate=consumer_broken,
            shrink_budget=24,
        )
        assert not result.baseline_failed
        assert not result.found_failure, (
            "free stopped quiescing in-flight consumers"
        )

    def test_deferred_free_completes_after_the_consumer(self):
        """A free that arrives mid-consumer defers, then lands: the
        consumer finishes, the bytes are released, and the HB layer sees
        no race (the GCS orders the drop after the done-report)."""
        rt, ctx = free_under_consumer_scenario(None, free_at=25e-3)
        assert ctx.state == TaskState.FINISHED
        kinds = [e.kind for e in rt.events]
        assert "free_deferred" in kinds
        assert "free_completed" in kinds
        deferred = next(e for e in rt.events if e.kind == "free_deferred")
        completed = next(e for e in rt.events if e.kind == "free_completed")
        assert completed.time > deferred.time
        assert completed["nbytes"] > 0  # the bytes really came back
        assert not rt.ownership.contains(completed["object"])
        report = rt.probe.report(partial=True)
        race_kinds = {
            frozenset((r.first.kind, r.second.kind)) for r in report.races
        }
        assert frozenset(("dir_read", "own_free")) not in race_kinds
        assert frozenset(("own_add_location", "own_free")) not in race_kinds


class TestHuntPinsLegacyFreeBug:
    """The hunt still exposes the legacy (``force=True``) ordering bug —
    proof the fix changed the protocol, not the detector."""

    def test_hunt_exposes_and_shrinks_the_timing_dependence(self):
        def consumer_broken(outcome):
            _rt, ctx = outcome
            return ctx.state != TaskState.FINISHED

        result = hunt(
            legacy_free_scenario,
            seeds=range(1, 13),
            jitter=0.25,
            predicate=consumer_broken,
            shrink_budget=24,
        )
        assert not result.baseline_failed  # legacy timing hides the bug
        assert result.found_failure, "jitter no longer exposes the free bug"
        assert result.minimal is not None and len(result.minimal) >= 1
        # the shrunk minimal schedule replays the failure deterministically
        replay = TiePerturbation(
            result.failing_seed, active=result.minimal, jitter=0.25
        )
        _rt, ctx = legacy_free_scenario(replay)
        assert ctx.state != TaskState.FINISHED

    def test_sanitizer_localizes_the_failing_schedule(self):
        """On any schedule where the free lands first, HB names the race."""
        result = hunt(
            legacy_free_scenario,
            seeds=range(1, 13),
            jitter=0.25,
            predicate=lambda outcome: outcome[1].state != TaskState.FINISHED,
            shrink=False,
        )
        assert result.found_failure
        rt, _ctx = result.minimal_result
        report = rt.probe.report(partial=True)
        kinds = {frozenset((r.first.kind, r.second.kind)) for r in report.races}
        assert frozenset(("dir_read", "own_free")) in kinds

    def test_baseline_race_is_flagged_even_when_timing_saves_the_run(self):
        """The unperturbed forced run passes, but only by accident — the
        HB layer still reports the free as concurrent with the consumer's
        reads."""
        rt, ctx = legacy_free_scenario(None)
        assert ctx.state == TaskState.FINISHED  # timing luck
        report = rt.probe.report(partial=True)
        kinds = {frozenset((r.first.kind, r.second.kind)) for r in report.races}
        assert frozenset(("dir_read", "own_free")) in kinds
