"""Edge semantics of the rebuilt simulator core (ISSUE 10).

The kernel now runs on a two-tier queue (microtask ring + bucket calendar)
with same-instant batching and an opt-in idle fast-forward.  These tests pin
the behaviors the rebuild must not have changed:

* ``run(until=)`` stopping exactly at an event's timestamp,
* ``schedule_at`` clamping into the current instant mid-run,
* ``peek()`` agreeing across both queue tiers and the legacy heap,
* interrupt-vs-trigger races under the microtask ring,
* a determinism witness — the frozen pre-rebuild kernel
  (``repro.bench.legacy_simtime``) and every feature stage of the new one
  produce identical traces on a randomized process soup,
* the satellite fixes (AnyOf loser detach, interrupt-safe ``Resource.use``,
  ``Channel.cancel_get``) and the fast-forward contract.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import legacy_simtime as legacy
from repro.cluster import simtime as live
from repro.cluster.simtime import (
    Resource,
    SimulationError,
    Simulator,
)

# every feature stage of the new kernel (cumulative switches)
STAGE_FLAGS = [
    ("heap", dict(bucket_queue=False, instant_batching=False, microtask_ring=False)),
    ("bucket", dict(bucket_queue=True, instant_batching=False, microtask_ring=False)),
    ("batch", dict(bucket_queue=True, instant_batching=True, microtask_ring=False)),
    ("ring", dict(bucket_queue=True, instant_batching=True, microtask_ring=True)),
]


def new_sim(flags):
    return Simulator(**flags)


# ---------------------------------------------------------------------------
# randomized process soup: one script, replayed on every kernel


def run_soup(mod, sim, seed: int):
    """Run a scripted random soup; returns (trace, final_now, n_procs)."""
    rng = random.Random(seed)
    trace: list = []
    chan = mod.Channel(sim, name="c")
    res = mod.Resource(sim, capacity=2, name="r")

    scripts = []
    for _ in range(12):
        ops = []
        for _ in range(rng.randint(3, 8)):
            r = rng.random()
            if r < 0.30:
                ops.append(("sleep", rng.choice([0.0, 1e-4, 3e-4, 1e-3])))
            elif r < 0.45:
                ops.append(("put", rng.randint(0, 99)))
            elif r < 0.60:
                ops.append(("get",))
            elif r < 0.72:
                ops.append(("res", rng.choice([1e-4, 2e-4])))
            elif r < 0.86:
                ops.append(("spawn", rng.random() * 5e-4))
            else:
                ops.append(("race", rng.choice([1e-4, 2e-4]), rng.choice([1e-4, 2e-4])))
        scripts.append(ops)

    def child(delay, i, k):
        yield sim.timeout(delay)
        trace.append(("child", i, k, round(sim.now, 9)))
        return i * 1000 + k

    def worker(i, ops):
        for k, op in enumerate(ops):
            kind = op[0]
            if kind == "sleep":
                yield sim.timeout(op[1])
            elif kind == "put":
                chan.put(op[1])
            elif kind == "get":
                v = yield chan.get()
                trace.append(("got", i, v, round(sim.now, 9)))
            elif kind == "res":
                grant = res.request()
                yield grant
                yield sim.timeout(op[1])
                res.release()
            elif kind == "spawn":
                v = yield sim.process(child(op[1], i, k), name=f"ch{i}.{k}")
                trace.append(("joined", i, v, round(sim.now, 9)))
            elif kind == "race":
                won = yield mod.AnyOf(
                    sim, [sim.timeout(op[1], "a"), sim.timeout(op[2], "b")]
                )
                trace.append(("race", i, won, round(sim.now, 9)))
            trace.append(("step", i, k, round(sim.now, 9)))
        return i

    procs = [sim.process(worker(i, ops), name=f"w{i}") for i, ops in enumerate(scripts)]

    def director():
        yield sim.timeout(4e-4)
        procs[3].interrupt("boom")
        yield sim.timeout(2e-4)
        procs[7].interrupt("boom")
        trace.append(("director", round(sim.now, 9)))

    sim.process(director(), name="dir")
    end = sim.run()
    return trace, round(end, 9), sum(p.triggered for p in procs)


class TestDeterminismWitness:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_every_stage_matches_the_frozen_kernel(self, seed):
        reference = run_soup(legacy, legacy.Simulator(), seed)
        for name, flags in STAGE_FLAGS:
            got = run_soup(live, new_sim(flags), seed)
            assert got == reference, f"stage {name!r} diverged on seed {seed}"

    def test_event_counts_agree_across_stages(self):
        # inline resumptions replace queue dispatches one-for-one, so the
        # total executed-event count is stage-invariant
        counts = set()
        for _, flags in STAGE_FLAGS:
            sim = new_sim(flags)
            run_soup(live, sim, seed=9)
            n = sim.events_executed()
            assert n > 0
            counts.add(n)
        assert len(counts) == 1, f"stage counts diverged: {counts}"


class TestRunUntil:
    @pytest.mark.parametrize("name,flags", STAGE_FLAGS)
    def test_event_exactly_at_until_fires(self, name, flags):
        sim = new_sim(flags)
        fired = []
        sim.schedule(1e-3, fired.append, "at-until")
        sim.schedule(2e-3, fired.append, "beyond")
        end = sim.run(until=1e-3)
        assert fired == ["at-until"]
        assert end == 1e-3 and sim.now == 1e-3
        # the later event is intact and fires on the next run
        assert sim.peek() == 2e-3
        sim.run()
        assert fired == ["at-until", "beyond"]

    @pytest.mark.parametrize("name,flags", STAGE_FLAGS)
    def test_until_with_no_event_advances_clock(self, name, flags):
        sim = new_sim(flags)
        sim.schedule(5e-3, lambda: None)
        assert sim.run(until=2e-3) == 2e-3
        assert sim.now == 2e-3
        assert sim.pending_events() == 1


class TestScheduleAt:
    @pytest.mark.parametrize("name,flags", STAGE_FLAGS)
    def test_past_deadline_clamps_to_current_instant(self, name, flags):
        sim = new_sim(flags)
        log = []

        def proc():
            yield sim.timeout(5e-4)
            # "at 1e-4" is already in the past: runs this instant, after
            # anything already queued here
            sim.schedule_at(1e-4, lambda: log.append(("clamped", sim.now)))
            yield sim.timeout(0.0)
            log.append(("after", sim.now))

        sim.process(proc())
        sim.run()
        assert log == [("clamped", 5e-4), ("after", 5e-4)]


class TestPeekAcrossTiers:
    def test_idle_peek_is_none(self):
        assert Simulator().peek() is None

    def test_ring_and_calendar(self):
        sim = Simulator()
        sim.schedule(1e-3, lambda: None)  # calendar
        assert sim.peek() == 1e-3
        sim.schedule(0.0, lambda: None)  # ring (current instant)
        assert sim.peek() == 0.0

    def test_heap_stage(self):
        sim = new_sim(dict(STAGE_FLAGS[0][1]))
        sim.schedule(2e-3, lambda: None)
        sim.schedule(1e-3, lambda: None)
        assert sim.peek() == 1e-3

    def test_mid_run_peek_sees_current_instant(self):
        sim = Simulator()
        seen = []

        def proc():
            yield sim.timeout(1e-3)
            sim.schedule(0.0, lambda: None)
            seen.append(sim.peek())

        sim.process(proc())
        sim.run()
        assert seen == [1e-3]


class TestInterruptVsTriggerRaces:
    @pytest.mark.parametrize("name,flags", STAGE_FLAGS)
    def test_trigger_then_interrupt_same_instant(self, name, flags):
        # the succeed is scheduled before the interrupt in the same instant:
        # the waiter resumes with the value first, then the interrupt lands
        # at its next yield
        sim = new_sim(flags)
        mod_sig = live.Signal(sim)
        log = []

        def waiter():
            try:
                v = yield mod_sig
                log.append(("value", v))
                yield sim.timeout(1e-3)
                log.append("never")
            except live.Interrupt as i:
                log.append(("interrupted", i.cause))

        p = sim.process(waiter())

        def driver():
            yield sim.timeout(1e-4)
            mod_sig.succeed("won")
            p.interrupt("lost")

        sim.process(driver())
        sim.run()
        assert log == [("value", "won"), ("interrupted", "lost")]

    @pytest.mark.parametrize("name,flags", STAGE_FLAGS)
    def test_interrupt_then_synchronous_trigger(self, name, flags):
        # interrupt() only *schedules* delivery; succeed() is synchronous.
        # Calling interrupt then succeed in one handler therefore resumes
        # the waiter with the value first, and the in-flight interrupt
        # lands on a completed process — a no-op.
        sim = new_sim(flags)
        sig = live.Signal(sim)
        log = []

        def waiter():
            try:
                v = yield sig
                log.append(("value", v))
            except live.Interrupt:
                log.append("interrupted")

        p = sim.process(waiter())

        def driver():
            yield sim.timeout(1e-4)
            p.interrupt("first")
            sig.succeed("late")

        sim.process(driver())
        sim.run()
        assert log == [("value", "late")]

    @pytest.mark.parametrize("name,flags", STAGE_FLAGS)
    def test_stale_waiter_after_interrupt_is_not_resumed(self, name, flags):
        # the process unwinds via interrupt and re-waits on something else;
        # the original signal's later fire hits a stale waiter slot and
        # must not resume the process out of its new wait
        sim = new_sim(flags)
        sig = live.Signal(sim)
        log = []

        def waiter():
            try:
                yield sig
                log.append("value")
            except live.Interrupt:
                log.append("interrupted")
                yield sim.timeout(5e-4)
                log.append(("moved-on", round(sim.now, 9)))

        p = sim.process(waiter())

        def driver():
            yield sim.timeout(1e-4)
            p.interrupt("boom")
            yield sim.timeout(1e-4)
            sig.succeed("late")

        sim.process(driver())
        sim.run()
        assert log == ["interrupted", ("moved-on", 6e-4)]
        assert sig.triggered  # the succeed itself still happened


class TestAnyOfLoserDetach:
    def test_losers_are_detached_when_winner_fires(self):
        sim = Simulator()
        slow = live.Signal(sim)  # a long-lived signal (e.g. a breaker probe)
        race = sim.any_of([sim.timeout(1e-4, "fast"), slow])
        got = []

        def waiter():
            got.append((yield race))

        sim.process(waiter())
        sim.run()
        assert got == [(0, "fast")]
        # the loser no longer references the dead combinator
        assert len(slow._callbacks) == 0
        assert race._child_cbs == []
        # and a late fire of the loser is inert
        slow.succeed("late")
        sim.run()
        assert got == [(0, "fast")]

    def test_already_triggered_loser_callback_noops(self):
        # two children tie at one instant: the loser's in-flight callback
        # lands on a triggered AnyOf and must no-op
        sim = Simulator()
        race = sim.any_of([sim.timeout(1e-4, "a"), sim.timeout(1e-4, "b")])
        got = []

        def waiter():
            got.append((yield race))

        sim.process(waiter())
        sim.run()
        assert got == [(0, "a")]


class TestResourceInterruptSafety:
    def test_queued_request_interrupt_does_not_leak_slot(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, name="slot")
        holder = res.use(5e-4)
        waiter = res.use(1e-4)
        assert holder is not None

        def killer():
            yield sim.timeout(1e-4)
            waiter.interrupt("die")

        sim.process(killer())
        sim.run()
        assert res.in_use == 0
        assert res.queued == 0
        # the slot is genuinely free: a fresh user acquires immediately
        done = []

        def user():
            yield res.use(1e-4)
            done.append(sim.now)

        sim.process(user())
        sim.run()
        assert done and res.in_use == 0

    def test_cancel_of_issued_grant_hands_slot_to_next_waiter(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()  # queued
        order = []

        def consumer(grant, tag):
            yield grant
            order.append(tag)
            if tag == "second":
                res.release()

        sim.process(consumer(second, "second"))
        # first's owner unwound before consuming: cancel returns the slot
        res.cancel(first)
        sim.run()
        assert order == ["second"]
        assert res.in_use == 0


class TestChannelCancelGet:
    def test_waiting_getter_is_withdrawn(self):
        sim = Simulator()
        chan = live.Channel(sim)
        sig = chan.get()  # no items: parked
        chan.cancel_get(sig)
        chan.put("x")
        assert len(chan) == 1  # nobody consumed it

    def test_delivered_item_is_returned_to_head(self):
        sim = Simulator()
        chan = live.Channel(sim)
        chan.put("a")
        chan.put("b")
        sig = chan.get()  # "a" dispatched into sig
        sim.run()
        assert sig.triggered and sig.value == "a"
        chan.cancel_get(sig)  # consumer unwound: item back at the head
        got = []

        def consumer():
            got.append((yield chan.get()))
            got.append((yield chan.get()))

        sim.process(consumer())
        sim.run()
        assert got == ["a", "b"]


class TestFastForward:
    def _poll_loop(self, sim, ticks, rounds):
        def poller():
            for _ in range(rounds):
                yield sim.poll_timeout(1e-3)
                ticks.append(round(sim.now, 9))

        sim.process(poller())

    def test_pure_poller_region_jumps(self):
        sim = Simulator()
        sim.fast_forward = True
        ticks: list = []
        self._poll_loop(sim, ticks, rounds=1000)
        jumps: list = []
        sim.add_fast_forward_listener(lambda old, new: jumps.append((old, new)))
        end = sim.run(until=1.0)
        assert end == 1.0
        assert sim.ff_jumps >= 1 and sim.ff_ticks_deferred >= 1
        assert jumps and jumps[0][1] > jumps[0][0]
        # far fewer simulated wake-ups than the thousand exact rounds
        assert len(ticks) < 10

    def test_armed_poller_blocks_jumps(self):
        sim = Simulator()
        sim.fast_forward = True
        sim.arm_poller()
        ticks: list = []
        self._poll_loop(sim, ticks, rounds=20)
        sim.run()
        assert sim.ff_jumps == 0
        assert len(ticks) == 20  # every round simulated exactly
        sim.disarm_poller()
        with pytest.raises(SimulationError):
            sim.disarm_poller()

    def test_regular_event_in_instant_blocks_skip(self):
        sim = Simulator()
        sim.fast_forward = True
        ticks: list = []
        self._poll_loop(sim, ticks, rounds=5)
        marks: list = []
        for k in range(1, 6):
            sim.schedule(k * 1e-3, marks.append, k)  # shares every poll instant
        sim.run()
        assert sim.ff_jumps == 0
        assert len(ticks) == 5 and marks == [1, 2, 3, 4, 5]

    def test_poll_timeout_identical_with_ff_off(self):
        def scenario(factory):
            sim = Simulator()
            out = []

            def proc():
                for _ in range(5):
                    yield factory(sim)(1e-3)
                    out.append(round(sim.now, 9))

            sim.process(proc())
            sim.run()
            return out, sim.events_executed()

        a = scenario(lambda s: s.timeout)
        b = scenario(lambda s: s.poll_timeout)
        assert a == b

    def test_perturbation_disables_fast_forward(self):
        sim = Simulator()
        sim.set_perturbation(lambda seq, delay: (seq, delay))
        sim.fast_forward = True
        ticks: list = []
        self._poll_loop(sim, ticks, rounds=10)
        sim.run()
        assert sim.ff_jumps == 0
        assert len(ticks) == 10


class TestConfigurationGuards:
    def test_flag_dependencies_enforced(self):
        with pytest.raises(ValueError):
            Simulator(bucket_queue=False, instant_batching=True)
        with pytest.raises(ValueError):
            Simulator(instant_batching=False, microtask_ring=True)

    def test_configure_requires_idle_queue(self):
        sim = Simulator()
        sim.schedule(1e-3, lambda: None)
        with pytest.raises(SimulationError):
            sim.configure(bucket_queue=False)

    def test_perturbation_requires_idle_queue(self):
        sim = Simulator()
        sim.schedule(1e-3, lambda: None)
        with pytest.raises(SimulationError):
            sim.set_perturbation(lambda seq, delay: (seq, delay))

    def test_perturbation_falls_back_to_heap_and_restores(self):
        sim = Simulator()
        assert not sim._use_heap
        sim.set_perturbation(lambda seq, delay: (seq, delay))
        assert sim._use_heap
        sim.set_perturbation(None)
        assert not sim._use_heap
