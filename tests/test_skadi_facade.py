"""Tests for the Skadi facade and the IR->FlowGraph planner."""

from __future__ import annotations

import pytest

from repro import Skadi, col, lit
from repro.cluster import build_physical_disagg, build_serverful
from repro.core.planner import PlanningError, ir_to_flowgraph
from repro.frontends.dataframe import from_batch
from repro.frontends.sql import sql_to_ir
from repro.ir import Builder, TensorType, run_function
from repro.runtime import Generation, ResolutionMode, RuntimeConfig

from conftest import assert_batches_close


class TestPlanner:
    def test_scan_becomes_sharded_source(self, catalog):
        func = sql_to_ir("SELECT oid FROM orders", catalog)
        from repro.ir.lowering import lower_relational_to_df

        graph, sink = ir_to_flowgraph(lower_relational_to_df(func), shards=4)
        source = next(v for v in graph.vertices.values() if v.is_source)
        assert source.parallelism == 4

    def test_join_gets_keyed_edges(self, catalog):
        func = sql_to_ir(
            "SELECT oid FROM orders JOIN customers ON cust = cid", catalog
        )
        from repro.ir.lowering import lower_relational_to_df

        graph, _ = ir_to_flowgraph(lower_relational_to_df(func), shards=3)
        keyed = [e for e in graph.edges if e.key is not None]
        assert {e.key for e in keyed} == {"cust", "cid"}

    def test_keyed_aggregate_shuffles(self, catalog):
        func = sql_to_ir(
            "SELECT cust, SUM(amount) AS s FROM orders GROUP BY cust", catalog
        )
        from repro.ir.lowering import lower_relational_to_df

        graph, _ = ir_to_flowgraph(lower_relational_to_df(func), shards=3)
        keyed = [e for e in graph.edges if e.key == "cust"]
        assert len(keyed) == 1

    def test_global_aggregate_gathers(self, catalog):
        func = sql_to_ir("SELECT SUM(amount) AS s FROM orders", catalog)
        from repro.ir.lowering import lower_relational_to_df

        graph, sink = ir_to_flowgraph(lower_relational_to_df(func), shards=3)
        assert sink.parallelism == 1

    def test_open_function_rejected(self):
        b = Builder("f")
        b.add_param("x", TensorType((2, 2)))
        func = b.ret(b.emit("linalg", "relu", [b.function.params[0]]).result())
        with pytest.raises(PlanningError, match="closed query"):
            ir_to_flowgraph(func)

    def test_invalid_shards(self, catalog):
        func = sql_to_ir("SELECT oid FROM orders", catalog)
        with pytest.raises(PlanningError):
            ir_to_flowgraph(func, shards=0)


class TestSkadiSQL:
    @pytest.fixture
    def skadi(self):
        return Skadi(shards=3)

    def oracle(self, sql, catalog, tables):
        (out,) = run_function(sql_to_ir(sql, catalog), tables=tables)
        return out

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_aggregation_matches_oracle_across_shards(
        self, shards, catalog, orders
    ):
        sql = (
            "SELECT cust, SUM(amount) AS total, COUNT(*) AS n FROM orders "
            "GROUP BY cust ORDER BY cust"
        )
        skadi = Skadi(shards=shards)
        out = skadi.sql(sql, {"orders": orders})
        assert_batches_close(out, self.oracle(sql, catalog, {"orders": orders}))

    def test_join_query_matches_oracle(self, skadi, catalog, orders, customers):
        sql = (
            "SELECT region, SUM(amount) AS total FROM orders "
            "JOIN customers ON cust = cid WHERE amount > 20 "
            "GROUP BY region ORDER BY region"
        )
        tables = {"orders": orders, "customers": customers}
        out = skadi.sql(sql, tables)
        assert_batches_close(out, self.oracle(sql, catalog, tables))

    def test_sort_limit_query(self, skadi, catalog, orders):
        sql = "SELECT oid, amount FROM orders ORDER BY amount DESC LIMIT 7"
        out = skadi.sql(sql, {"orders": orders})
        assert_batches_close(out, self.oracle(sql, catalog, {"orders": orders}))

    def test_report_populated(self, skadi, orders):
        skadi.sql("SELECT oid FROM orders WHERE amount > 50", {"orders": orders})
        report = skadi.last_report
        assert report.physical_tasks > 0
        assert report.sim_seconds > 0
        assert "relational.scan" in report.ir_text
        assert "df.source" in report.lowered_text

    def test_ir_fusion_reduces_tasks_and_keeps_answers(self, orders):
        sql = "SELECT oid, amount * qty AS r FROM orders WHERE amount > 10"
        plain = Skadi(shards=2, optimize_graph=False, optimize_ir=False)
        out_plain = plain.sql(sql, {"orders": orders})
        unopt_tasks = plain.last_report.physical_tasks
        opt = Skadi(shards=2)
        out_opt = opt.sql(sql, {"orders": orders})
        assert opt.last_report.physical_tasks < unopt_tasks
        mask = orders.column("amount") > 10
        assert out_opt.num_rows == out_plain.num_rows == int(mask.sum())

    def test_fused_query_keeps_parallelism(self, orders):
        skadi = Skadi(shards=4)
        skadi.sql(
            "SELECT oid, amount * qty AS r FROM orders WHERE amount > 10",
            {"orders": orders},
        )
        # fused elementwise stage still runs 4-wide (not gathered to 1)
        assert skadi.last_report.physical_tasks >= 8

    def test_dataframe_entry_point(self, skadi, orders):
        df = (
            from_batch("orders", orders)
            .filter(col("amount") > lit(50))
            .groupby("cust")
            .agg(n=("count", "oid"))
            .sort("cust")
        )
        out = skadi.dataframe(df, {"orders": orders})
        local = df.collect({"orders": orders})
        assert_batches_close(out, local)

    def test_task_api_passthrough(self, skadi):
        ref = skadi.submit(lambda a, b: a + b, (skadi.put(1), 2))
        assert skadi.get(ref) == 3
        assert skadi.sim_now > 0

    def test_runs_on_alternative_clusters(self, orders):
        for cluster in (build_serverful(3), build_physical_disagg()):
            skadi = Skadi(cluster=cluster, shards=2)
            out = skadi.sql(
                "SELECT COUNT(*) AS n FROM orders", {"orders": orders}
            )
            assert out.column("n").tolist() == [orders.num_rows]

    def test_runtime_config_respected(self, orders):
        skadi = Skadi(
            config=RuntimeConfig(
                generation=Generation.GEN1, resolution=ResolutionMode.PULL
            ),
            shards=2,
        )
        out = skadi.sql("SELECT COUNT(*) AS n FROM orders", {"orders": orders})
        assert out.column("n").tolist() == [orders.num_rows]
