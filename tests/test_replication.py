"""Tests for GF(256) arithmetic and redundancy schemes (incl. property tests)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.gf256 import EXP, LOG, gf_inv, gf_mat_inv, gf_matmul, gf_mul, gf_pow
from repro.caching.replication import ErasureCode, ReplicationScheme


class TestGF256:
    def test_exp_log_are_inverse_tables(self):
        for x in range(1, 256):
            assert EXP[LOG[x]] == x

    def test_multiplicative_identity_and_zero(self):
        a = np.arange(256, dtype=np.uint8)
        assert np.array_equal(gf_mul(a, 1), a)
        assert np.all(gf_mul(a, 0) == 0)

    def test_field_has_no_zero_divisors(self):
        a = np.arange(1, 256, dtype=np.uint8)
        for b in (1, 2, 37, 255):
            assert np.all(gf_mul(a, b) != 0)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_associativity_and_distributivity(self, a, b, c):
        ab_c = gf_mul(gf_mul(a, b), c)
        a_bc = gf_mul(a, gf_mul(b, c))
        assert int(ab_c) == int(a_bc)
        left = gf_mul(a, b ^ c)
        right = int(gf_mul(a, b)) ^ int(gf_mul(a, c))
        assert int(left) == right

    def test_inverse(self):
        a = np.arange(1, 256, dtype=np.uint8)
        assert np.all(gf_mul(a, gf_inv(a)) == 1)
        with pytest.raises(ZeroDivisionError):
            gf_inv(np.uint8(0))

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(0, 5) == 0
        assert gf_pow(0, 0) == 1
        assert gf_pow(3, 1) == 3
        # g^255 == 1 for any nonzero g
        for g in (2, 3, 7):
            assert gf_pow(g, 255) == 1

    def test_matrix_inverse_round_trip(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(1, 6))
            while True:
                m = rng.integers(0, 256, (n, n)).astype(np.uint8)
                try:
                    inv = gf_mat_inv(m)
                    break
                except np.linalg.LinAlgError:
                    continue
            assert np.array_equal(gf_matmul(m, inv), np.eye(n, dtype=np.uint8))

    def test_singular_matrix_raises(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_mat_inv(m)

    def test_matmul_shape_check(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))


class TestReplicationScheme:
    def test_encode_makes_identical_replicas(self):
        scheme = ReplicationScheme(3)
        shards = scheme.encode(b"hello")
        assert len(shards) == 3
        assert all(s.payload == b"hello" for s in shards)
        assert scheme.storage_overhead == 3.0
        assert scheme.tolerates() == 2

    def test_decode_from_any_survivor(self):
        scheme = ReplicationScheme(3)
        shards = scheme.encode(b"data")
        assert scheme.decode([None, None, shards[2]], 4) == b"data"

    def test_all_lost_raises(self):
        scheme = ReplicationScheme(2)
        with pytest.raises(ValueError, match="unrecoverable"):
            scheme.decode([None, None], 4)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            ReplicationScheme(0)


class TestErasureCode:
    def test_overhead_and_tolerance(self):
        ec = ErasureCode(4, 2)
        assert ec.storage_overhead == pytest.approx(1.5)
        assert ec.tolerates() == 2

    def test_exhaustive_two_loss_recovery(self):
        ec = ErasureCode(4, 2)
        data = bytes(range(256)) * 4 + b"tail"
        shards = ec.encode(data)
        for lost in itertools.combinations(range(6), 2):
            survivors = [None if i in lost else shards[i] for i in range(6)]
            assert ec.decode(survivors, len(data)) == data

    def test_too_many_losses_raises(self):
        ec = ErasureCode(4, 2)
        shards = ec.encode(b"x" * 100)
        survivors = [None, None, None, shards[3], shards[4], shards[5]]
        with pytest.raises(ValueError, match="needs 4"):
            ec.decode(survivors[:3] + [None, None, None], 100)

    def test_data_shards_are_systematic(self):
        ec = ErasureCode(2, 1)
        data = b"abcdef"
        shards = ec.encode(data)
        assert shards[0].payload + shards[1].payload == data
        assert not shards[0].is_parity and shards[2].is_parity

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ErasureCode(0, 1)
        with pytest.raises(ValueError):
            ErasureCode(200, 100)

    @given(
        data=st.binary(min_size=0, max_size=500),
        k=st.integers(1, 8),
        m=st.integers(0, 4),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_recovery_property(self, data, k, m, seed):
        """Any m losses out of k+m shards are always recoverable."""
        ec = ErasureCode(k, m)
        shards = ec.encode(data)
        rng = np.random.default_rng(seed)
        lost = rng.choice(k + m, size=m, replace=False) if m else []
        survivors = [None if i in lost else shards[i] for i in range(k + m)]
        assert ec.decode(survivors, len(data)) == data
