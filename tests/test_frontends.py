"""Tests for dataframe, MapReduce, graph, and ML frontends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.caching.columnar import RecordBatch
from repro.cluster import build_physical_disagg
from repro.flowgraph import collect_sink, launch_physical_graph, to_physical
from repro.frontends import (
    EdgeList,
    LinearModel,
    LogisticModel,
    MapReduceJob,
    ParameterServer,
    connected_components,
    from_batch,
    group_apply,
    make_classification,
    make_regression,
    pagerank,
    pagerank_flowgraph,
    sssp,
    training_flowgraph,
)
from repro.ir import col, lit
from repro.runtime import ServerlessRuntime


class TestDataFrame:
    def test_filter_select_collect(self, small_batch):
        df = (
            from_batch("t", small_batch)
            .filter(col("x") > lit(2.0))
            .select("k", doubled=col("x") * 2)
        )
        out = df.collect({"t": small_batch})
        assert out.column("doubled").tolist() == [6.0, 8.0, 10.0]

    def test_groupby_agg(self, small_batch):
        df = (
            from_batch("t", small_batch)
            .groupby("k")
            .agg(s=("sum", "x"), n=("count", "x"))
            .sort("k")
        )
        out = df.collect({"t": small_batch})
        assert out.column("s").tolist() == [4.0, 6.0, 5.0]
        assert out.column("n").tolist() == [2, 2, 1]

    def test_join(self, orders, customers):
        df_o = from_batch("orders", orders)
        df_c = from_batch("customers", customers)
        joined = df_o.join(df_c, left_on="cust", right_on="cid")
        out = joined.collect({"orders": orders, "customers": customers})
        assert "region" in out.schema.names
        assert out.num_rows == orders.num_rows  # every cust has a customer

    def test_schema_validation(self, small_batch):
        df = from_batch("t", small_batch)
        with pytest.raises(KeyError):
            df.filter(col("ghost") > lit(1))
        with pytest.raises(KeyError):
            df.groupby("ghost")

    def test_sort_limit(self, small_batch):
        df = from_batch("t", small_batch).sort("x", ascending=False).limit(2)
        out = df.collect({"t": small_batch})
        assert out.column("x").tolist() == [5.0, 4.0]

    def test_plans_are_immutable(self, small_batch):
        base = from_batch("t", small_batch)
        filtered = base.filter(col("x") > lit(3))
        assert base.collect({"t": small_batch}).num_rows == 5
        assert filtered.collect({"t": small_batch}).num_rows == 2

    def test_agg_validation(self, small_batch):
        with pytest.raises(ValueError):
            from_batch("t", small_batch).groupby("k").agg()


class TestMapReduce:
    def make_job(self, **kw):
        return MapReduceJob(
            mapper=lambda b: b,
            reducer=lambda k, g: {"k": k, "total": float(g.column("x").sum())},
            key="k",
            **kw,
        )

    def test_distributed_matches_local(self, rng):
        table = RecordBatch.from_arrays(
            {"k": rng.integers(0, 6, 500), "x": rng.random(500)}
        )
        job = self.make_job(map_parallelism=3, reduce_parallelism=2)
        rt = ServerlessRuntime(build_physical_disagg())
        dist = job.run(rt, table)
        local = job.run_local(table)
        got = dict(zip(dist.column("k").tolist(), dist.column("total").tolist(), strict=False))
        want = dict(zip(local.column("k").tolist(), local.column("total").tolist(), strict=False))
        assert set(got) == set(want)
        for k in want:
            assert got[k] == pytest.approx(want[k])

    def test_mapper_must_emit_key(self, rng):
        table = RecordBatch.from_arrays({"k": rng.integers(0, 3, 10), "x": rng.random(10)})
        job = MapReduceJob(
            mapper=lambda b: b.select(["x"]),  # drops the key
            reducer=lambda k, g: {"k": k},
            key="k",
        )
        rt = ServerlessRuntime(build_physical_disagg())
        from repro.runtime import TaskError

        with pytest.raises(TaskError, match="missing the shuffle key"):
            job.run(rt, table)

    def test_group_apply(self, small_batch):
        out = group_apply(
            small_batch, "k", lambda k, g: {"k": int(k), "n": g.num_rows}
        )
        assert dict(zip(out.column("k").tolist(), out.column("n").tolist(), strict=False)) == {
            0: 2,
            1: 2,
            2: 1,
        }

    def test_group_apply_empty_rejected(self):
        empty = RecordBatch.from_arrays({"k": np.array([], dtype=np.int64)})
        with pytest.raises(ValueError, match="empty"):
            group_apply(empty, "k", lambda k, g: {"k": k})


class TestGraphAlgorithms:
    def test_pagerank_sums_to_one(self):
        el = EdgeList.random(200, 800, seed=0)
        pr = pagerank(el, iterations=15)
        assert pr.sum() == pytest.approx(1.0)
        assert np.all(pr > 0)

    def test_pagerank_star_center_dominates(self):
        # edges all pointing at vertex 0
        n = 10
        el = EdgeList(n, np.arange(1, n), np.zeros(n - 1, dtype=np.int64))
        pr = pagerank(el, iterations=30)
        assert pr[0] == max(pr)
        assert pr[0] > 5 * pr[1]

    def test_sssp_simple_path(self):
        el = EdgeList(
            3,
            np.array([0, 1]),
            np.array([1, 2]),
            weight=np.array([1.5, 2.5]),
        )
        dist = sssp(el, 0)
        np.testing.assert_allclose(dist, [0.0, 1.5, 4.0])

    def test_sssp_unreachable_is_inf(self):
        el = EdgeList(3, np.array([0]), np.array([1]), weight=np.array([1.0]))
        assert sssp(el, 0)[2] == np.inf

    def test_sssp_requires_weights(self):
        el = EdgeList(2, np.array([0]), np.array([1]))
        with pytest.raises(ValueError, match="weights"):
            sssp(el, 0)
        with pytest.raises(ValueError, match="out of range"):
            sssp(EdgeList(2, np.array([0]), np.array([1]), np.array([1.0])), 5)

    def test_connected_components_two_islands(self):
        el = EdgeList(6, np.array([0, 1, 3, 4]), np.array([1, 2, 4, 5]))
        labels = connected_components(el)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_edge_list_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            EdgeList(2, np.array([0]), np.array([5]))
        with pytest.raises(ValueError, match="length"):
            EdgeList(2, np.array([0]), np.array([1, 0]))

    def test_pagerank_flowgraph_matches_local(self):
        el = EdgeList.random(80, 300, seed=4)
        graph, sink, tables = pagerank_flowgraph(el, iterations=3)
        rt = ServerlessRuntime(build_physical_disagg())
        outs = launch_physical_graph(rt, to_physical(graph), tables=tables)
        result = collect_sink(rt, outs, sink)
        got = np.zeros(80)
        got[result.column("vid")] = result.column("rank")
        np.testing.assert_allclose(got, pagerank(el, iterations=3))

    @pytest.mark.parametrize("partitions", [1, 2, 4])
    def test_partitioned_pagerank_matches_local(self, partitions):
        from repro.frontends.graph import pagerank_partitioned_flowgraph

        el = EdgeList.random(120, 500, seed=5)
        graph, sink, tables = pagerank_partitioned_flowgraph(
            el, iterations=4, partitions=partitions
        )
        rt = ServerlessRuntime(build_physical_disagg())
        outs = launch_physical_graph(rt, to_physical(graph), tables=tables)
        result = collect_sink(rt, outs, sink)
        got = np.zeros(120)
        got[result.column("dst")] = result.column("rank")
        np.testing.assert_allclose(got, pagerank(el, iterations=4))
        assert result.num_rows == 120  # every vertex survived the shuffles

    def test_partitioned_pagerank_validation(self):
        from repro.frontends.graph import pagerank_partitioned_flowgraph

        el = EdgeList.random(10, 20, seed=0)
        with pytest.raises(ValueError, match="partitions"):
            pagerank_partitioned_flowgraph(el, partitions=0)


class TestML:
    def test_linear_model_converges(self):
        X, y, w_true = make_regression(500, 6, noise=0.01, seed=1)
        model = LinearModel(6, lr=0.05)
        losses = model.fit(X, y, epochs=40)
        assert losses[-1] < losses[0] / 50
        assert np.abs(model.weights - w_true).max() < 0.1

    def test_logistic_model_accuracy(self):
        X, y = make_classification(600, 5, seed=2)
        model = LogisticModel(5, lr=0.2)
        model.fit(X, y, epochs=40)
        assert model.accuracy(X, y) > 0.9

    def test_training_flowgraph_matches_serial_gd(self):
        """Synchronous data-parallel SGD == serial full-batch GD when shards
        partition the data and gradients are averaged."""
        X, y, _ = make_regression(200, 4, seed=3)
        epochs, lr = 4, 0.05
        graph, sink, tables = training_flowgraph(X, y, epochs=epochs, workers=4, lr=lr)
        rt = ServerlessRuntime(build_physical_disagg())
        outs = launch_physical_graph(rt, to_physical(graph), tables=tables)
        w_dist = collect_sink(rt, outs, sink).column("w")

        w = np.zeros(4)
        shards = [(X[i::4], y[i::4]) for i in range(4)]
        for _ in range(epochs):
            grads = [2.0 * Xs.T @ (Xs @ w - ys) / len(ys) for Xs, ys in shards]
            w = w - lr * np.mean(grads, axis=0)
        np.testing.assert_allclose(w_dist, w, rtol=1e-9)

    def test_training_flowgraph_validates_lengths(self):
        with pytest.raises(ValueError):
            training_flowgraph(np.zeros((3, 2)), np.zeros(4))

    def test_parameter_server_learns(self):
        X, y, w_true = make_regression(300, 5, seed=4)
        rt = ServerlessRuntime(build_physical_disagg())
        ps = ParameterServer(rt, 5, lr=0.05)
        w = ps.train(X, y, rounds=25, workers=3)
        assert np.abs(w - w_true).max() < 0.1

    def test_parameter_server_update_count(self):
        rt = ServerlessRuntime(build_physical_disagg())
        ps = ParameterServer(rt, 3, lr=0.1)
        refs = [ps.push_gradient(np.ones(3) * 0.1) for _ in range(4)]
        rt.get(refs)
        # 4 sequential applications of -0.1*0.1
        np.testing.assert_allclose(ps.get_weights(), -0.04 * np.ones(3))
