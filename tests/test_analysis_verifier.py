"""The collect-all verifier: one deliberately broken module per rule."""

import numpy as np
import pytest

from repro.analysis import strict_verify, verify_function, verify_module
from repro.ir import Builder, FusedStep, IRVerificationError, Module
from repro.ir.core import Function, Operation, Value
from repro.ir.types import TensorType, f64


def _tensor(n=4):
    return TensorType((n,), "float64")


def _chain():
    b = Builder("chain")
    x = b.add_param("x", _tensor())
    add = b.emit("linalg", "add", [x, x])
    relu = b.emit("linalg", "relu", [add.result()])
    return b.ret(relu.result()), x, add, relu


def test_clean_function_has_no_diagnostics():
    func, *_ = _chain()
    assert not verify_function(func)


def test_duplicate_param_value():
    v = Value("x", _tensor())
    func = Function("f", [v, v])
    diags = verify_function(func)
    assert "duplicate-param" in diags.codes()


def test_duplicate_param_name():
    func = Function("f", [Value("x", _tensor()), Value("x", _tensor())])
    assert "duplicate-param" in verify_function(func).codes()


def test_unknown_op():
    func, x, *_ = _chain()
    ghost = Operation("nope", "mystery", [x], {})
    ghost.results = [Value("g", _tensor(), producer=ghost)]
    func.ops.insert(0, ghost)
    diags = verify_function(func)
    assert "unknown-op" in diags.codes()
    assert any("nope.mystery" in d.message for d in diags)


def test_operand_arity():
    func, x, add, _ = _chain()
    add.operands.append(x)  # linalg.add wants exactly 2
    diags = verify_function(func)
    assert "operand-arity" in diags.codes()


def test_use_before_def():
    func, x, add, relu = _chain()
    func.ops.reverse()  # relu now reads add's result before it exists
    assert "use-before-def" in verify_function(func).codes()


def test_cross_function_operand():
    other, _, add_other, _ = _chain()
    func, x, add, _ = _chain()
    add.operands[1] = add_other.result()
    diags = verify_function(func)
    assert "cross-function-operand" in diags.codes()
    assert any("different function" in d.message for d in diags)


def test_op_invariant_via_dialect_hook():
    func, x, *_ = _chain()
    bad = Operation(
        "kernel",
        "fused",
        [x],
        {
            "result_type": _tensor(),
            # step 0 reads step 5's buffer, which never exists
            "steps": (FusedStep("linalg", "relu", (-6,)),),
        },
    )
    bad.results = [Value("k", _tensor(), producer=bad)]
    func.ops.insert(0, bad)
    diags = verify_function(func)
    assert "op-invariant" in diags.codes()


def test_infer_failed():
    func, x, *_ = _chain()
    bad = Operation("linalg", "add", [x, Value("s", f64)], {})
    bad.results = [Value("r", _tensor(), producer=bad)]
    # parameter-like scalar so the operand itself is defined
    func.params.append(bad.operands[1])
    func.ops.insert(0, bad)
    assert "infer-failed" in verify_function(func).codes()


def test_result_arity():
    func, x, add, _ = _chain()
    add.results.append(Value("extra", _tensor(), producer=add))
    assert "result-arity" in verify_function(func).codes()


def test_type_mismatch():
    func, x, add, _ = _chain()
    add.result().type = TensorType((99,), "int64")
    diags = verify_function(func)
    assert "type-mismatch" in diags.codes()
    assert any("inference says" in d.message for d in diags)


def test_producer_link_broken():
    func, x, add, _ = _chain()
    add.result().producer = None
    assert "producer-link-broken" in verify_function(func).codes()


def test_duplicate_result():
    func, x, add, relu = _chain()
    relu.results = [add.result()]  # relu claims to define add's value again
    assert "duplicate-result" in verify_function(func).codes()


def test_undefined_return():
    func, *_ = _chain()
    func.returns = [Value("phantom", _tensor())]
    assert "undefined-return" in verify_function(func).codes()


def test_op_after_return():
    func, x, *_ = _chain()
    tail = Operation("linalg", "exp", [x], {})
    tail.results = [Value("t", _tensor(), producer=tail)]
    func.ops.append(tail)
    diags = verify_function(func)
    assert "op-after-return" in diags.codes()
    assert any(d.op_index == len(func.ops) - 1 for d in diags)


def test_collect_all_reports_every_violation_at_once():
    func, x, add, relu = _chain()
    add.result().type = TensorType((9,), "float64")  # type-mismatch
    func.returns.append(Value("phantom", _tensor()))  # undefined-return
    tail = Operation("linalg", "exp", [x], {})
    tail.results = [Value("t", _tensor(), producer=tail)]
    func.ops.append(tail)  # op-after-return
    diags = verify_function(func)
    codes = diags.codes()
    assert {"type-mismatch", "undefined-return", "op-after-return"} <= set(codes)
    assert len(diags.errors) >= 3


def test_strict_verify_raises_with_rendered_report():
    func, x, add, _ = _chain()
    add.result().type = TensorType((9,), "float64")
    with pytest.raises(IRVerificationError, match="type-mismatch"):
        strict_verify(func)


def test_verify_module_walks_every_function():
    good, *_ = _chain()
    bad, _, add, _ = _chain()
    bad.name = "bad"
    add.result().type = TensorType((9,), "float64")
    module = Module()
    module.add(good)
    module.add(bad)
    diags = verify_module(module)
    assert [d.func for d in diags.errors] == ["bad"] * len(diags.errors)


def test_diagnostic_rendering_mentions_op_text_and_hint():
    func, x, add, _ = _chain()
    add.result().type = TensorType((9,), "float64")
    report = verify_function(func).render()
    assert "linalg.add" in report
    assert "hint:" in report


def test_core_verify_and_collect_all_agree():
    """Every broken module the strict verifier rejects, the collect-all
    verifier must flag too (same invariants, two reporting styles)."""
    breakers = []

    def dup_result(func, x, add, relu):
        relu.results = [add.result()]

    def tail_op(func, x, add, relu):
        t = Operation("linalg", "exp", [x], {})
        t.results = [Value("t", _tensor(), producer=t)]
        func.ops.append(t)

    def bad_type(func, x, add, relu):
        add.result().type = TensorType((9,), "int64")

    breakers = [dup_result, tail_op, bad_type]
    for breaker in breakers:
        func, x, add, relu = _chain()
        breaker(func, x, add, relu)
        with pytest.raises(IRVerificationError):
            func.verify()
        assert not verify_function(func).ok
