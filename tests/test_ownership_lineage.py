"""Tests for the heterogeneity-aware ownership table and lineage graph."""

from __future__ import annotations

import pytest

from repro.runtime.lineage import LineageGraph, UnrecoverableObjectError
from repro.runtime.object_ref import ObjectRef
from repro.runtime.ownership import OwnershipTable, ValueState
from repro.runtime.task import TaskSpec


class TestOwnershipTable:
    def test_create_starts_pending(self):
        table = OwnershipTable()
        entry = table.create("o1", owner="driver", task_id="t1")
        assert entry.state == ValueState.PENDING
        assert not table.is_ready("o1")

    def test_duplicate_create_rejected(self):
        table = OwnershipTable()
        table.create("o1", "driver", "t1")
        with pytest.raises(KeyError):
            table.create("o1", "driver", "t2")

    def test_mark_ready_records_device_fields(self):
        """Figure 3: the table gains DeviceID and DeviceHandle columns."""
        table = OwnershipTable()
        table.create("o1", "w1", "t1")
        entry = table.mark_ready("o1", "gpucard0", 1024, device_id="gpucard0/gpu0")
        assert entry.state == ValueState.READY
        assert entry.device_id == "gpucard0/gpu0"
        assert entry.device_handle is not None
        assert entry.nbytes == 1024
        assert table.locations("o1") == ["gpucard0"]

    def test_device_handles_are_unique(self):
        table = OwnershipTable()
        table.create("a", "w", "t1")
        table.create("b", "w", "t2")
        ha = table.mark_ready("a", "n0", 1, device_id="d0").device_handle
        hb = table.mark_ready("b", "n0", 1, device_id="d1").device_handle
        assert ha != hb

    def test_drop_last_location_marks_lost(self):
        table = OwnershipTable()
        table.create("o1", "w", "t")
        table.mark_ready("o1", "n0", 10)
        table.drop_location("o1", "n0")
        assert table.entry("o1").state == ValueState.LOST

    def test_extra_location_keeps_ready(self):
        table = OwnershipTable()
        table.create("o1", "w", "t")
        table.mark_ready("o1", "n0", 10)
        table.add_location("o1", "n1")
        table.drop_location("o1", "n0")
        assert table.is_ready("o1")
        assert table.locations("o1") == ["n1"]

    def test_drop_node_reports_lost_objects(self):
        table = OwnershipTable()
        for oid in ("a", "b", "c"):
            table.create(oid, "w", f"t-{oid}")
        table.mark_ready("a", "n0", 1)
        table.mark_ready("b", "n0", 1)
        table.add_location("b", "n1")
        table.mark_ready("c", "n2", 1)
        lost = table.drop_node("n0")
        assert lost == ["a"]
        assert table.is_ready("b") and table.is_ready("c")

    def test_add_location_revives_lost(self):
        table = OwnershipTable()
        table.create("o1", "w", "t")
        table.mark_ready("o1", "n0", 10)
        table.drop_node("n0")
        table.add_location("o1", "n1")
        assert table.is_ready("o1")

    def test_unknown_object_raises(self):
        table = OwnershipTable()
        with pytest.raises(KeyError):
            table.entry("ghost")


def _task(task_id, func=lambda: None, args=()):
    return TaskSpec(task_id=task_id, func=func, args=args)


class TestLineageGraph:
    def test_producer_lookup(self):
        lineage = LineageGraph()
        t = _task("t1")
        lineage.record(t, ["o1"])
        assert lineage.producer("o1") is t
        assert lineage.producer("ghost") is None
        assert lineage.outputs_of("t1") == ["o1"]

    def test_plan_recovers_chain_in_dependency_order(self):
        table = OwnershipTable()
        lineage = LineageGraph()
        t1 = _task("t1")
        t2 = _task("t2", args=(ObjectRef("o1"),))
        t3 = _task("t3", args=(ObjectRef("o2"),))
        for t, oid in ((t1, "o1"), (t2, "o2"), (t3, "o3")):
            table.create(oid, "w", t.task_id)
            lineage.record(t, [oid])
        # everything lost
        plan = lineage.plan_recovery("o3", table)
        assert [t.task_id for t in plan] == ["t1", "t2", "t3"]

    def test_plan_stops_at_ready_objects(self):
        table = OwnershipTable()
        lineage = LineageGraph()
        t1, t2 = _task("t1"), _task("t2", args=(ObjectRef("o1"),))
        for t, oid in ((t1, "o1"), (t2, "o2")):
            table.create(oid, "w", t.task_id)
            lineage.record(t, [oid])
        table.mark_ready("o1", "n0", 1)
        plan = lineage.plan_recovery("o2", table)
        assert [t.task_id for t in plan] == ["t2"]

    def test_diamond_recovers_each_task_once(self):
        table = OwnershipTable()
        lineage = LineageGraph()
        base = _task("base")
        left = _task("left", args=(ObjectRef("ob"),))
        right = _task("right", args=(ObjectRef("ob"),))
        join = _task("join", args=(ObjectRef("ol"), ObjectRef("or")))
        for t, oid in ((base, "ob"), (left, "ol"), (right, "or"), (join, "oj")):
            table.create(oid, "w", t.task_id)
            lineage.record(t, [oid])
        plan = lineage.plan_recovery("oj", table)
        ids = [t.task_id for t in plan]
        assert ids.count("base") == 1
        assert ids.index("base") < ids.index("left")
        assert ids.index("base") < ids.index("right")
        assert ids[-1] == "join"

    def _diamond(self):
        table = OwnershipTable()
        lineage = LineageGraph()
        base = _task("base")
        left = _task("left", args=(ObjectRef("ob"),))
        right = _task("right", args=(ObjectRef("ob"),))
        join = _task("join", args=(ObjectRef("ol"), ObjectRef("or")))
        for t, oid in ((base, "ob"), (left, "ol"), (right, "or"), (join, "oj")):
            table.create(oid, "w", t.task_id)
            lineage.record(t, [oid])
        return table, lineage

    def test_diamond_with_lost_intermediates_plans_minimally(self):
        """Only the LOST branch replays: the READY sibling is reused."""
        table, lineage = self._diamond()
        for oid in ("ob", "ol", "or", "oj"):
            table.mark_ready(oid, "n0", 1)
        # a device failure takes out the left intermediate and the join
        for oid in ("ol", "oj"):
            table.drop_location(oid, "n0")
            assert table.entry(oid).state == ValueState.LOST
        plan = lineage.plan_recovery("oj", table)
        ids = [t.task_id for t in plan]
        assert ids == ["left", "join"]  # dependency order, nothing extra

    def test_diamond_with_lost_base_replays_the_whole_slice(self):
        table, lineage = self._diamond()
        for oid in ("ob", "ol", "or", "oj"):
            table.mark_ready(oid, "n0", 1)
        for oid in ("ob", "ol", "oj"):  # right survives on another node
            table.drop_location(oid, "n0")
        plan = lineage.plan_recovery("oj", table)
        ids = [t.task_id for t in plan]
        assert ids.count("base") == 1 and "right" not in ids
        assert ids.index("base") < ids.index("left") < ids.index("join")

    def test_truncated_lineage_raises_unrecoverable(self):
        """A LOST ancestor with no recorded producer poisons the plan."""
        table = OwnershipTable()
        lineage = LineageGraph()
        # o1 was put by the driver (no lineage), o2 computed from it
        table.create("o1", "driver", "")
        t2 = _task("t2", args=(ObjectRef("o1"),))
        table.create("o2", "w", "t2")
        lineage.record(t2, ["o2"])
        table.mark_ready("o1", "n0", 1)
        table.mark_ready("o2", "n0", 1)
        table.drop_node("n0")  # both copies gone
        with pytest.raises(UnrecoverableObjectError):
            lineage.plan_recovery("o2", table)

    def test_no_lineage_raises(self):
        table = OwnershipTable()
        lineage = LineageGraph()
        table.create("o1", "driver", "")
        with pytest.raises(UnrecoverableObjectError):
            lineage.plan_recovery("o1", table)

    def test_ready_object_yields_empty_plan(self):
        table = OwnershipTable()
        lineage = LineageGraph()
        t = _task("t1")
        table.create("o1", "w", "t1")
        lineage.record(t, ["o1"])
        table.mark_ready("o1", "n0", 1)
        assert lineage.plan_recovery("o1", table) == []
