"""Dataflow framework: def-use, liveness, reaching defs, buffer effects."""

from repro.analysis import (
    Liveness,
    ReachingDefinitions,
    buffer_effects,
    def_use,
)
from repro.analysis.dataflow import PARAM_SITE
from repro.ir import Builder
from repro.ir.types import TensorType


def _tensor(n=4):
    return TensorType((n,), "float64")


def _sample():
    """x -> add(x,x) -> relu -> return, plus a dead exp and an opaque call."""
    b = Builder("sample")
    x = b.add_param("x", _tensor())
    add = b.emit("linalg", "add", [x, x])
    dead = b.emit("linalg", "exp", [x])
    call = b.emit(
        "kernel", "call", [add.result()], {"kernel": "blackbox", "result_type": _tensor()}
    )
    relu = b.emit("linalg", "relu", [add.result()])
    func = b.ret(relu.result())
    return func, x, add, dead, call, relu


# -- def-use ---------------------------------------------------------------------


def test_def_sites_cover_params_and_ops():
    func, x, add, dead, call, relu = _sample()
    chains = def_use(func)
    assert chains.def_site[id(x)] == PARAM_SITE
    assert chains.def_site[id(add.result())] == 0
    assert chains.def_site[id(relu.result())] == 3


def test_use_sites_and_returns():
    func, x, add, dead, call, relu = _sample()
    chains = def_use(func)
    assert chains.uses_of(x) == [0, 0, 1]  # both add operands + exp
    assert chains.uses_of(add.result()) == [2, 3]
    assert id(relu.result()) in chains.returned
    assert not chains.is_dead(relu.result())


def test_dead_results_found():
    func, x, add, dead, call, relu = _sample()
    chains = def_use(func)
    dead_entries = chains.dead_results()
    assert (1, dead, dead.result()) in dead_entries
    # the opaque call's result is also unused (but that is lint's concern)
    assert any(op is call for _, op, _ in dead_entries)


# -- liveness --------------------------------------------------------------------


def test_liveness_backward():
    func, x, add, dead, call, relu = _sample()
    live = Liveness(func).solve()
    # before op0 (add): x is live, add's result not yet defined
    assert id(x) in live.in_sets[0]
    # add's result stays live until relu consumes it
    assert live.is_live_after(0, add.result())
    assert live.is_live_after(2, add.result())
    assert not live.is_live_after(3, add.result())
    # the returned value is live at the exit
    assert live.is_live_after(3, relu.result())


def test_liveness_kills_definitions():
    func, x, add, dead, call, relu = _sample()
    live = Liveness(func).solve()
    # before its definition the relu result is not live anywhere
    assert id(relu.result()) not in live.in_sets[3]


# -- reaching definitions --------------------------------------------------------


def test_reaching_definitions_prefix_property():
    func, x, add, dead, call, relu = _sample()
    reach = ReachingDefinitions(func).solve()
    assert reach.reaches(0, x)
    assert not reach.reaches(0, add.result())
    assert reach.reaches(1, add.result())
    assert reach.reaches(3, add.result())
    # in SSA nothing is killed: everything defined reaches the end
    assert id(x) in reach.out_sets[3]


def test_reaching_matches_verifier_def_before_use():
    """reaches(i, operand) is exactly the verifier's legality rule."""
    func, *_ = _sample()
    reach = ReachingDefinitions(func).solve()
    for index, op in enumerate(func.ops):
        for operand in op.operands:
            assert reach.reaches(index, operand)


# -- buffer effects / aliasing ---------------------------------------------------


def test_pure_ops_write_fresh_buffers():
    func, x, add, dead, call, relu = _sample()
    summary = buffer_effects(func)
    effect = summary.effect_of(0)
    assert not effect.opaque
    assert effect.reads == (id(x), id(x))
    assert effect.writes == (id(add.result()),)
    assert not summary.aliases.may_alias(x, add.result())


def test_opaque_call_may_alias_operands():
    func, x, add, dead, call, relu = _sample()
    summary = buffer_effects(func)
    effect = summary.effect_of(2)
    assert effect.opaque
    assert id(add.result()) in effect.writes  # may mutate its input
    assert summary.aliases.may_alias(call.result(), add.result())
    assert not summary.aliases.may_alias(call.result(), x)
    assert summary.opaque_ops() == [effect]


def test_alias_is_reflexive():
    func, x, *_ = _sample()
    summary = buffer_effects(func)
    assert summary.aliases.may_alias(x, x)
