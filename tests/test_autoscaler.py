"""Tests for the autoscaling vs. reserved provisioning models."""

from __future__ import annotations

import pytest

from repro.bench.workloads import bursty_trace, poisson_trace
from repro.cluster.simtime import Simulator
from repro.runtime.autoscaler import AutoscalingPool, Job, ReservedPool, run_trace


class TestReservedPool:
    def test_all_jobs_complete(self, sim):
        jobs = [Job(i, arrival=float(i), duration=0.5) for i in range(10)]
        stats = run_trace(sim, ReservedPool(sim, size=2), jobs)
        assert stats.completed == 10
        assert stats.mean_wait == 0.0  # arrivals are spaced out

    def test_queueing_when_undersized(self, sim):
        jobs = [Job(i, arrival=0.0, duration=1.0) for i in range(4)]
        stats = run_trace(sim, ReservedPool(sim, size=1), jobs)
        assert stats.completed == 4
        # FIFO: waits are 0,1,2,3
        assert stats.total_wait == pytest.approx(6.0)
        assert stats.max_wait == pytest.approx(3.0)

    def test_billed_for_full_horizon(self, sim):
        jobs = [Job(0, arrival=0.0, duration=1.0), Job(1, arrival=99.0, duration=1.0)]
        stats = run_trace(sim, ReservedPool(sim, size=5), jobs)
        assert stats.provisioned_seconds == pytest.approx(5 * 100.0)
        assert stats.utilization == pytest.approx(2.0 / 500.0)

    def test_invalid_size(self, sim):
        with pytest.raises(ValueError):
            ReservedPool(sim, size=0)


class TestAutoscalingPool:
    def test_scales_from_zero(self, sim):
        pool = AutoscalingPool(sim, min_workers=0, max_workers=4, cold_start=0.5)
        jobs = [Job(i, arrival=0.0, duration=1.0) for i in range(3)]
        stats = run_trace(sim, pool, jobs)
        assert stats.completed == 3
        assert stats.cold_starts >= 3
        assert stats.max_wait >= 0.5  # paid at least one cold start

    def test_respects_max_workers(self, sim):
        pool = AutoscalingPool(sim, min_workers=0, max_workers=2, cold_start=0.1)
        jobs = [Job(i, arrival=0.0, duration=1.0) for i in range(6)]
        stats = run_trace(sim, pool, jobs)
        assert stats.completed == 6
        assert stats.peak_workers <= 2
        # 6 jobs over 2 workers: about 3 serial rounds
        assert sim.now >= 3.0

    def test_idle_workers_get_reaped(self, sim):
        pool = AutoscalingPool(
            sim, min_workers=0, max_workers=8, cold_start=0.1, idle_timeout=1.0
        )
        jobs = [Job(0, arrival=0.0, duration=0.5)]
        run_trace(sim, pool, jobs)
        assert len(pool.active_workers) == 0

    def test_min_workers_never_reaped(self, sim):
        pool = AutoscalingPool(
            sim, min_workers=2, max_workers=8, cold_start=0.1, idle_timeout=0.5
        )
        jobs = [Job(0, arrival=0.0, duration=0.2)]
        run_trace(sim, pool, jobs)
        assert len(pool.active_workers) >= 2

    def test_invalid_bounds(self, sim):
        with pytest.raises(ValueError):
            AutoscalingPool(sim, min_workers=5, max_workers=2)


class TestEconomics:
    """The paper's serverless claim: pay-as-you-go beats reservation for
    bursty workloads, at a modest latency cost."""

    def test_autoscaling_cheaper_on_bursty_trace(self):
        jobs = bursty_trace(bursts=8, jobs_per_burst=15, burst_interval=100.0, seed=3)
        sim_r = Simulator()
        reserved = run_trace(sim_r, ReservedPool(sim_r, size=15), jobs)
        sim_a = Simulator()
        auto = run_trace(
            sim_a,
            AutoscalingPool(sim_a, min_workers=1, max_workers=30, cold_start=1.0),
            jobs,
        )
        assert auto.provisioned_seconds < reserved.provisioned_seconds / 3
        assert auto.utilization > reserved.utilization
        assert auto.mean_wait < 5.0  # the latency price is bounded

    def test_cost_helper(self):
        stats = ReservedPool(Simulator(), size=1).stats
        stats.provisioned_seconds = 3600.0
        assert stats.cost(0.0001) == pytest.approx(0.36)


class TestTraces:
    def test_bursty_trace_deterministic(self):
        a = bursty_trace(seed=1)
        b = bursty_trace(seed=1)
        assert a == b

    def test_poisson_trace_rate(self):
        jobs = poisson_trace(rate=2.0, horizon=1000.0, seed=0)
        assert 1600 < len(jobs) < 2400  # ~2 jobs/sec
        assert all(0 <= j.arrival < 1000.0 for j in jobs)

    def test_run_trace_detects_stuck_queue(self, sim):
        # max_workers=0 impossible -> but constructor forbids; instead jam
        # the queue by submitting into a pool and never running workers:
        pool = ReservedPool(sim, size=1)
        jobs = [Job(0, arrival=0.0, duration=1.0)]
        stats = run_trace(sim, pool, jobs)
        assert stats.completed == 1
