"""Analysis sessions and the ``python -m repro.analysis`` CLI."""

import numpy as np
import pytest

from repro.analysis import analysis_session, current_session
from repro.analysis.cli import main
from repro.caching.columnar import RecordBatch
from repro.core.skadi import Skadi
from repro.ir import Builder, MiscompileError, PassManager
from repro.ir.passes import Pass
from repro.ir.types import TensorType


def _tensor(n=4):
    return TensorType((n,), "float64")


# -- sessions --------------------------------------------------------------------


def test_session_activates_and_deactivates():
    assert current_session() is None
    with analysis_session("t") as session:
        assert current_session() is session
    assert current_session() is None


def test_nested_sessions_reuse_the_outer_one():
    with analysis_session("outer") as outer:
        with analysis_session("inner") as inner:
            assert inner is outer


def test_session_records_functions_once():
    b = Builder("f")
    x = b.add_param("x", _tensor())
    relu = b.emit("linalg", "relu", [x])
    func = b.ret(relu.result())
    with analysis_session() as session:
        session.record_function(func)
        session.record_function(func)
    assert session.functions_checked == 1
    assert session.clean


def test_session_sees_skadi_query_end_to_end():
    table = RecordBatch.from_pydict(
        {"a": np.arange(50, dtype="int64"), "b": np.ones(50)}
    )
    with analysis_session("q") as session:
        result = Skadi().sql("SELECT a FROM t WHERE a > 5", {"t": table})
    assert result.num_rows == 44
    assert session.functions_checked >= 1
    assert session.plans_checked >= 1
    assert session.clean, session.render()


def test_session_forces_verify_each_and_records_miscompile():
    class Breaks(Pass):
        name = "breaks"

        def run(self, func, stats):
            if func.ops and func.ops[-1].name != "gone":
                del func.ops[0]
                return True
            return False

    b = Builder("f")
    x = b.add_param("x", _tensor())
    add = b.emit("linalg", "add", [x, x])
    relu = b.emit("linalg", "relu", [add.result()])
    func = b.ret(relu.result())

    with analysis_session() as session:
        with pytest.raises(MiscompileError):
            PassManager([Breaks()]).run(func)  # session forces verify_each
    assert len(session.miscompiles) == 1
    assert session.miscompiles[0].pass_name == "breaks"
    assert "miscompile" in session.diagnostics.codes()


def test_session_render_mentions_counts():
    with analysis_session("named") as session:
        pass
    assert "0 function(s)" in session.render()
    assert "[named]" in session.render()


# -- CLI -------------------------------------------------------------------------


def _write_program(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(body)
    return path


CLEAN_PROGRAM = """
import numpy as np
from repro.caching.columnar import RecordBatch
from repro.core.skadi import Skadi

table = RecordBatch.from_pydict({"a": np.arange(30, dtype="int64"),
                                 "b": np.ones(30)})
out = Skadi().sql("SELECT a, b FROM t WHERE a > 3", {"t": table})
print("rows:", out.num_rows)
"""

CRASHING_PROGRAM = """
raise RuntimeError("boom")
"""


def test_cli_clean_program_exits_zero(tmp_path, capsys):
    path = _write_program(tmp_path, "clean.py", CLEAN_PROGRAM)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "no diagnostics" in out
    assert "rows:" not in out  # program stdout is suppressed


def test_cli_crashing_program_exits_nonzero(tmp_path, capsys):
    path = _write_program(tmp_path, "crash.py", CRASHING_PROGRAM)
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "program-crashed" in out
    assert "boom" in out


def test_cli_expands_directories(tmp_path, capsys):
    _write_program(tmp_path, "a.py", "x = 1\n")
    _write_program(tmp_path, "b.py", "y = 2\n")
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "a.py" in out and "b.py" in out


def test_cli_missing_file(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 1
    assert "no-such-file" in capsys.readouterr().out


def test_cli_sql_mode_clean(capsys):
    code = main(
        [
            "--sql",
            "SELECT a, b FROM orders WHERE a > 1",
            "--table",
            "orders=a:int64,b:float64",
        ]
    )
    assert code == 0
    assert "no diagnostics" in capsys.readouterr().out


def test_cli_sql_mode_bad_query(capsys):
    code = main(["--sql", "SELECT missing FROM orders", "--table", "orders=a:int64"])
    assert code == 1
    assert "planning-failed" in capsys.readouterr().out


def test_cli_requires_some_target(capsys):
    with pytest.raises(SystemExit):
        main([])
