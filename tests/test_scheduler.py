"""Tests for placement policies and gang scheduling."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import build_physical_disagg
from repro.cluster.hardware import DeviceKind
from repro.runtime.config import SchedulingPolicy
from repro.runtime.object_ref import ObjectRef
from repro.runtime.ownership import OwnershipTable
from repro.runtime.scheduler import PlacementError, Scheduler
from repro.runtime.task import ANY_COMPUTE_KIND, TaskSpec


def make_scheduler(policy=SchedulingPolicy.ROUND_ROBIN):
    cluster = build_physical_disagg()
    ownership = OwnershipTable()
    devices = [
        d
        for d in cluster.all_devices()
        if d.kind in (DeviceKind.CPU, DeviceKind.GPU, DeviceKind.FPGA)
    ]
    sched = Scheduler(
        cluster, ownership, policy, devices, endpoint="server0/cpu"
    )
    return cluster, ownership, sched


def task(task_id="t", kinds=frozenset({DeviceKind.CPU}), args=(), **kw):
    return TaskSpec(task_id=task_id, func=lambda: None, args=args,
                    supported_kinds=kinds, **kw)


class TestCandidates:
    def test_kind_filtering(self):
        _, _, sched = make_scheduler()
        gpu_only = sched.candidates(task(kinds=frozenset({DeviceKind.GPU})))
        assert gpu_only and all(d.kind == DeviceKind.GPU for d in gpu_only)

    def test_unsupported_kind_raises(self):
        cluster, ownership, _ = make_scheduler()
        cpu_devices = [d for d in cluster.all_devices() if d.kind == DeviceKind.CPU]
        sched = Scheduler(
            cluster, ownership, SchedulingPolicy.ROUND_ROBIN, cpu_devices, "e"
        )
        with pytest.raises(PlacementError, match="no schedulable device"):
            sched.candidates(task(kinds=frozenset({DeviceKind.GPU})))

    def test_pinned_device(self):
        cluster, _, sched = make_scheduler()
        gpu = cluster.devices_of_kind(DeviceKind.GPU)[0]
        placed = sched.place(task(pinned_device=gpu.device_id))
        assert placed is gpu

    def test_pinned_unknown_raises(self):
        _, _, sched = make_scheduler()
        with pytest.raises(PlacementError, match="pinned"):
            sched.place(task(pinned_device="ghost"))

    def test_alive_filter_excludes(self):
        _, _, sched = make_scheduler()
        all_cpu = sched.candidates(task())
        dead = all_cpu[0].device_id
        sched.alive_filter = lambda d: d != dead
        remaining = sched.candidates(task())
        assert dead not in [d.device_id for d in remaining]

    def test_no_devices_at_all(self):
        cluster, ownership, _ = make_scheduler()
        with pytest.raises(PlacementError):
            Scheduler(cluster, ownership, SchedulingPolicy.ROUND_ROBIN, [], "e")


class TestPolicies:
    def test_round_robin_cycles(self):
        _, _, sched = make_scheduler(SchedulingPolicy.ROUND_ROBIN)
        kinds = ANY_COMPUTE_KIND
        first = sched.place(task("t0", kinds))
        second = sched.place(task("t1", kinds))
        assert first is not second

    def test_least_loaded_avoids_busy_device(self):
        _, _, sched = make_scheduler(SchedulingPolicy.LEAST_LOADED)
        busy = sched.place(task("t0"))
        sched.task_started(busy.device_id)
        other = sched.place(task("t1"))
        assert other is not busy
        sched.task_finished(busy.device_id)
        assert sched.outstanding(busy.device_id) == 0

    def test_locality_follows_data(self):
        cluster, ownership, sched = make_scheduler(SchedulingPolicy.LOCALITY)
        gpu = cluster.devices_of_kind(DeviceKind.GPU)[0]
        gpu_node = cluster.node_of_device(gpu.device_id)
        ownership.create("big", "w", "t")
        ownership.mark_ready("big", gpu_node.node_id, 512 << 20, device_id=gpu.device_id)
        t = task("t1", ANY_COMPUTE_KIND, args=(ObjectRef("big"),))
        placed = sched.place(t)
        assert placed.node_id == gpu_node.node_id

    def test_locality_ignores_pending_objects(self):
        _, ownership, sched = make_scheduler(SchedulingPolicy.LOCALITY)
        ownership.create("pending", "w", "t")
        placed = sched.place(task("t1", ANY_COMPUTE_KIND, args=(ObjectRef("pending"),)))
        assert placed is not None  # falls back to compute/queue terms

    def test_locality_prefers_fast_device_without_data(self):
        _, _, sched = make_scheduler(SchedulingPolicy.LOCALITY)
        heavy = task("t1", ANY_COMPUTE_KIND, compute_cost=10.0)
        placed = sched.place(heavy)
        assert placed.kind == DeviceKind.GPU  # fastest for pure compute


class TestGang:
    def test_gang_gets_distinct_devices(self):
        _, _, sched = make_scheduler(SchedulingPolicy.LEAST_LOADED)
        tasks = [task(f"g{i}", frozenset({DeviceKind.FPGA}), gang_group="g") for i in range(4)]
        placements = sched.place_gang(tasks)
        ids = [d.device_id for d in placements.values()]
        assert len(set(ids)) == 4

    def test_gang_too_big_raises(self):
        cluster, _, sched = make_scheduler()
        n_fpga = len(cluster.devices_of_kind(DeviceKind.FPGA))
        tasks = [
            task(f"g{i}", frozenset({DeviceKind.FPGA}), gang_group="g")
            for i in range(n_fpga + 1)
        ]
        with pytest.raises(PlacementError, match="gang"):
            sched.place_gang(tasks)

    def test_empty_gang(self):
        _, _, sched = make_scheduler()
        assert sched.place_gang([]) == {}
