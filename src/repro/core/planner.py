"""IR -> FlowGraph planning: one vertex per relational/df op, sharded.

This is the middle of Figure 2: the optimized logical function becomes a
FlowGraph whose vertices carry single-op IR functions, with parallelism
degrees and keyed edges chosen by operator kind:

* scans become sharded source-scan vertices (data-parallel);
* elementwise ops (filter/project) inherit their input's parallelism;
* joins hash-shuffle both inputs on the join keys (partition-wise join);
* keyed aggregates hash-shuffle on the first group key, so each shard owns
  its keys entirely and local aggregation is exact;
* global aggregates, sorts, and limits gather to parallelism 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..flowgraph.logical import FlowGraph, Vertex
from ..ir.backends import op_work_elements
from ..ir.core import Builder, Function, Operation
from ..ir.types import FrameType

__all__ = ["ir_to_flowgraph", "PlanningError"]

_ELEMENTWISE = {"filter", "project", "where", "select"}
_SECONDS_PER_ELEMENT = 1e-9


class PlanningError(ValueError):
    pass


def _estimate_rows(op: Operation, est_rows: Dict[int, float], default_rows: int) -> float:
    """Textbook cardinality guesses (no statistics: shapes, not numbers)."""
    ins = [est_rows.get(id(v), float(default_rows)) for v in op.operands]
    base = ins[0] if ins else float(default_rows)
    if op.name in ("filter", "where"):
        return base * _FILTER_SELECTIVITY
    if op.name in ("join", "hash_join"):
        return max(ins) if ins else base
    if op.name in ("aggregate", "hash_aggregate"):
        return max(base * 0.1, 1.0)
    if op.name == "limit":
        return min(base, float(op.attrs.get("n", base)))
    if op.name == "distinct":
        return max(base * 0.5, 1.0)
    return base


def _single_op_func(op: Operation, name: str) -> Function:
    """Wrap one op as a standalone IR function over its operands."""
    builder = Builder(name)
    params = [
        builder.add_param(f"in{i}", operand.type)
        for i, operand in enumerate(op.operands)
    ]
    emitted = builder.emit(op.dialect, op.name, params, dict(op.attrs))
    func = builder.ret(emitted.result())
    func.verify()
    return func


_FILTER_SELECTIVITY = 0.5  # planning estimate when statistics are absent


def ir_to_flowgraph(
    func: Function,
    shards: int = 1,
    name: Optional[str] = None,
    default_rows: int = 100_000,
    table_rows: Optional[Dict[str, int]] = None,
    broadcast_threshold: int = 0,
) -> Tuple[FlowGraph, Vertex]:
    """Plan an IR function (relational or df dialect) into a FlowGraph.

    Returns (graph, sink vertex).  The function must take no parameters
    (scans are its only sources) and return one frame.

    ``table_rows`` supplies base-table cardinalities; when
    ``broadcast_threshold`` > 0, a join whose smaller input is estimated
    at or below the threshold becomes a *broadcast join*: the small side
    is replicated to every shard of the big side instead of hash-shuffling
    both (the standard distributed-SQL optimization).
    """
    if func.params:
        raise PlanningError(
            "ir_to_flowgraph expects a closed query (scans as sources); "
            f"{func.name!r} has parameters"
        )
    if len(func.returns) != 1:
        raise PlanningError("query functions must return exactly one value")
    if shards < 1:
        raise PlanningError(f"shards must be >= 1, got {shards}")

    table_rows = dict(table_rows or {})
    graph = FlowGraph(name or func.name)
    produced: Dict[int, Tuple[Vertex, int]] = {}  # value id -> (vertex, parallelism)
    est_rows: Dict[int, float] = {}  # value id -> estimated cardinality

    for op in func.ops:
        cost = op_work_elements(op, default_rows) * _SECONDS_PER_ELEMENT
        if op.name in ("scan", "source"):
            vertex = graph.add_vertex(
                f"scan:{op.attrs['table']}",
                source_table=op.attrs["table"],
                parallelism=shards,
                compute_cost=cost,
            )
            produced[id(op.result())] = (vertex, shards)
            est_rows[id(op.result())] = float(
                table_rows.get(op.attrs["table"], default_rows)
            )
            continue

        in_info = [produced[id(v)] for v in op.operands]
        wrapped = _single_op_func(op, f"{func.name}:{op.qualified}")

        if op.qualified == "kernel.fused" and len(op.operands) == 1:
            # fused elementwise chains stay row-parallel like their inputs
            parallelism = in_info[0][1]
            vertex = graph.add_vertex(
                op.qualified, ir_func=wrapped, parallelism=parallelism, compute_cost=cost
            )
            graph.add_edge(in_info[0][0], vertex, dst_port=0)
        elif op.name in _ELEMENTWISE:
            parallelism = in_info[0][1]
            vertex = graph.add_vertex(
                op.qualified, ir_func=wrapped, parallelism=parallelism, compute_cost=cost
            )
            graph.add_edge(in_info[0][0], vertex, dst_port=0)
        elif op.name in ("join", "hash_join"):
            ests = [est_rows.get(id(v), float(default_rows)) for v in op.operands]
            small = 0 if ests[0] <= ests[1] else 1
            big = 1 - small
            use_broadcast = (
                broadcast_threshold > 0
                and shards > 1
                and ests[small] <= broadcast_threshold
                and in_info[big][1] > 1
            )
            if use_broadcast:
                small_vertex, small_par = in_info[small]
                if small_par > 1:
                    coalesce = graph.add_vertex(
                        f"coalesce:{op.qualified}",
                        py_func=lambda batch: batch,
                        parallelism=1,
                        compute_cost=ests[small] * _SECONDS_PER_ELEMENT,
                    )
                    graph.add_edge(small_vertex, coalesce)
                    small_vertex = coalesce
                big_vertex, big_par = in_info[big]
                vertex = graph.add_vertex(
                    f"{op.qualified}:broadcast",
                    ir_func=wrapped,
                    parallelism=big_par,
                    compute_cost=cost,
                )
                graph.add_edge(big_vertex, vertex, dst_port=big)
                graph.add_edge(small_vertex, vertex, dst_port=small)
            else:
                vertex = graph.add_vertex(
                    op.qualified, ir_func=wrapped, parallelism=shards, compute_cost=cost
                )
                graph.add_edge(
                    in_info[0][0], vertex, dst_port=0, key=op.attrs["left_on"]
                )
                graph.add_edge(
                    in_info[1][0], vertex, dst_port=1, key=op.attrs["right_on"]
                )
        elif op.name in ("aggregate", "hash_aggregate"):
            keys = tuple(op.attrs.get("keys", ()))
            if keys and shards > 1 and in_info[0][1] > 1:
                vertex = graph.add_vertex(
                    op.qualified, ir_func=wrapped, parallelism=shards, compute_cost=cost
                )
                graph.add_edge(in_info[0][0], vertex, dst_port=0, key=keys[0])
            else:
                vertex = graph.add_vertex(
                    op.qualified, ir_func=wrapped, parallelism=1, compute_cost=cost
                )
                graph.add_edge(in_info[0][0], vertex, dst_port=0)
        elif op.name == "distinct":
            in_vertex, in_par = in_info[0]
            frame = op.operands[0].type
            key = frame.names[0] if isinstance(frame, FrameType) else None
            if key is not None and shards > 1 and in_par > 1:
                # identical rows share every column, so hash-sharding on the
                # first column keeps duplicates together: local dedup is exact
                vertex = graph.add_vertex(
                    op.qualified, ir_func=wrapped, parallelism=shards, compute_cost=cost
                )
                graph.add_edge(in_vertex, vertex, dst_port=0, key=key)
            else:
                vertex = graph.add_vertex(
                    op.qualified, ir_func=wrapped, parallelism=1, compute_cost=cost
                )
                graph.add_edge(in_vertex, vertex, dst_port=0)
        elif op.name in ("sort", "limit"):
            vertex = graph.add_vertex(
                op.qualified, ir_func=wrapped, parallelism=1, compute_cost=cost
            )
            graph.add_edge(in_info[0][0], vertex, dst_port=0)
        else:
            # generic op: gather everything to one task
            vertex = graph.add_vertex(
                op.qualified, ir_func=wrapped, parallelism=1, compute_cost=cost
            )
            for port, (src_vertex, _) in enumerate(in_info):
                graph.add_edge(src_vertex, vertex, dst_port=port)
        produced[id(op.result())] = (vertex, vertex.parallelism)
        est_rows[id(op.result())] = _estimate_rows(op, est_rows, default_rows)

    sink, _ = produced[id(func.returns[0])]
    graph.validate()
    return graph, sink
