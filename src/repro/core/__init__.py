"""Skadi's core: the facade tying access layer to serverless runtime."""

from .planner import PlanningError, ir_to_flowgraph
from .skadi import QueryReport, Skadi

__all__ = ["Skadi", "QueryReport", "ir_to_flowgraph", "PlanningError"]
