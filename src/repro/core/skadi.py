"""The Skadi facade: one runtime for SQL, dataframes, MapReduce, graphs, ML.

"Skadi enables users to use only one runtime to express all of their
programs" (§2.1).  This class wires the whole stack: declarative input ->
relational IR -> optimization -> FlowGraph -> physical sharded graph ->
stateful serverless runtime over a simulated disaggregated cluster — and
returns real values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..caching.columnar import RecordBatch, concat_batches
from ..cluster.cluster import Cluster, build_physical_disagg
from ..flowgraph.launch import collect_sink, launch_physical_graph
from ..flowgraph.logical import FlowGraph, Vertex
from ..flowgraph.optimizer import GraphOptStats, optimize
from ..flowgraph.physical import to_physical
from ..frontends.dataframe import DataFrame
from ..frontends.sql.planner import sql_to_ir
from ..ir.core import Function
from ..ir.lowering import lower_relational_to_df
from ..ir.passes import PassManager
from ..ir.relational_passes import relational_optimizer
from ..ir.types import FrameType
from ..runtime.config import RuntimeConfig
from ..runtime.object_ref import ObjectRef
from ..runtime.runtime import ServerlessRuntime
from .planner import ir_to_flowgraph

__all__ = ["Skadi", "QueryReport"]


def _catalog_of(tables: Mapping[str, RecordBatch]) -> Dict[str, FrameType]:
    return {
        name: FrameType(tuple((f.name, f.dtype.name) for f in batch.schema.fields))
        for name, batch in tables.items()
    }


@dataclass
class QueryReport:
    """What happened while answering one declarative query."""

    ir_text: str = ""
    lowered_text: str = ""
    graph_vertices: int = 0
    physical_tasks: int = 0
    sim_seconds: float = 0.0
    bytes_moved: int = 0
    control_messages: int = 0
    opt_stats: Optional[GraphOptStats] = None


class Skadi:
    """The distributed runtime, end to end."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        config: Optional[RuntimeConfig] = None,
        shards: int = 2,
        optimize_graph: bool = True,
        optimize_ir: bool = True,
        broadcast_threshold: int = 5_000,
    ):
        self.cluster = cluster or build_physical_disagg()
        self.runtime = ServerlessRuntime(self.cluster, config)
        self.shards = shards
        self.optimize_graph = optimize_graph
        self.optimize_ir = optimize_ir
        self.broadcast_threshold = broadcast_threshold
        self.last_report = QueryReport()

    # -- declarative entry points -------------------------------------------------

    def sql(self, query: str, tables: Mapping[str, RecordBatch]) -> RecordBatch:
        """Run a SQL query distributed over the cluster."""
        func = sql_to_ir(query, _catalog_of(tables))
        return self._run_ir(func, tables)

    def dataframe(self, frame: DataFrame, tables: Mapping[str, RecordBatch]) -> RecordBatch:
        """Execute a lazy dataframe plan distributed over the cluster."""
        return self._run_ir(frame.to_ir(), tables)

    def explain(self, query: str, tables: Mapping[str, RecordBatch]) -> str:
        """Plan a SQL query without executing it; returns the plan report.

        Shows the logical relational IR, the optimized/lowered df IR, and
        the FlowGraph/physical shape — the tiers of Figure 2 as text.
        """
        func = sql_to_ir(query, _catalog_of(tables))
        lines = ["== logical (relational) IR ==", func.to_text()]
        if self.optimize_ir:
            PassManager(relational_optimizer()).run(func)
            lines += ["", "== after relational rules ==", func.to_text()]
        lowered = lower_relational_to_df(func)
        if self.optimize_ir:
            PassManager().run(lowered)
        lines += ["", "== lowered (df/kernel) IR ==", lowered.to_text()]
        graph, sink = ir_to_flowgraph(
            lowered,
            shards=self.shards,
            table_rows={name: batch.num_rows for name, batch in tables.items()},
            broadcast_threshold=self.broadcast_threshold,
        )
        if self.optimize_graph:
            optimize(graph)
            sink = self._sink_after_optimize(graph, sink)
        pgraph = to_physical(graph)
        lines += ["", "== flowgraph =="]
        lines.extend(
            f"  {vertex.vertex_id} {vertex.name} x{vertex.parallelism}"
            for vertex in graph.topological_order()
        )
        for edge in graph.edges:
            keyed = f" [shuffle on {edge.key!r}]" if edge.key else ""
            lines.append(f"  {edge.src} -> {edge.dst}:{edge.dst_port}{keyed}")
        lines.append(f"  physical tasks: {pgraph.num_tasks}")
        return "\n".join(lines)

    def _run_ir(self, func: Function, tables: Mapping[str, RecordBatch]) -> RecordBatch:
        report = QueryReport(ir_text=func.to_text())
        if self.optimize_ir:
            # relational rules first (filter pushdown shrinks the shuffles),
            # then the generic dialect-agnostic passes after lowering
            PassManager(relational_optimizer()).run(func)
        lowered = lower_relational_to_df(func)
        if self.optimize_ir:
            PassManager().run(lowered)
        report.lowered_text = lowered.to_text()
        self._record_for_analysis(lowered)
        graph, sink = ir_to_flowgraph(
            lowered,
            shards=self.shards,
            table_rows={name: batch.num_rows for name, batch in tables.items()},
            broadcast_threshold=self.broadcast_threshold,
        )
        if self.optimize_graph:
            report.opt_stats = optimize(graph)
            # fusion may replace the sink vertex; re-locate it
            sink = self._sink_after_optimize(graph, sink)
        report.graph_vertices = len(graph.vertices)
        result = self.run_flowgraph(graph, sink, tables, report=report)
        self.last_report = report
        return result

    @staticmethod
    def _record_for_analysis(func: Function) -> None:
        """Hand the post-optimization IR to the active analysis session
        (``python -m repro.analysis``), when one exists."""
        try:
            from ..analysis.session import current_session
        except ImportError:  # analysis layer absent/optional
            return
        session = current_session()
        if session is not None:
            session.record_function(func)

    @staticmethod
    def _sink_after_optimize(graph: FlowGraph, sink: Vertex) -> Vertex:
        if sink.vertex_id in graph.vertices:
            return sink
        sinks = graph.sinks()
        if len(sinks) != 1:
            raise RuntimeError(
                f"cannot identify query sink after optimization ({len(sinks)} sinks)"
            )
        return sinks[0]

    # -- graph execution ------------------------------------------------------------

    def run_flowgraph(
        self,
        graph: FlowGraph,
        sink: Vertex,
        tables: Mapping[str, Any],
        report: Optional[QueryReport] = None,
        strict: Optional[bool] = None,
    ) -> Any:
        pgraph = to_physical(graph)
        start_time = self.runtime.sim.now
        start_bytes = self.runtime.bytes_moved
        start_msgs = self.runtime.control_messages
        outputs = launch_physical_graph(
            self.runtime, pgraph, tables=tables, strict=strict
        )
        result = collect_sink(self.runtime, outputs, sink)
        if report is not None:
            report.physical_tasks = pgraph.num_tasks
            report.sim_seconds = self.runtime.sim.now - start_time
            report.bytes_moved = self.runtime.bytes_moved - start_bytes
            report.control_messages = self.runtime.control_messages - start_msgs
        if isinstance(result, list) and all(isinstance(b, RecordBatch) for b in result):
            result = concat_batches([b for b in result if b.num_rows])
        return result

    # -- task API passthrough ----------------------------------------------------------

    def submit(self, func, args=(), **kwargs) -> ObjectRef:
        return self.runtime.submit(func, args, **kwargs)

    def get(self, refs):
        return self.runtime.get(refs)

    def put(self, value) -> ObjectRef:
        return self.runtime.put(value)

    @property
    def sim_now(self) -> float:
        return self.runtime.sim.now
