"""Skadi-lint: static analysis over the IR, flowgraph, and runtime tiers.

A compiler stack is only as trustworthy as its invariants: this package
holds the strict collect-all IR verifier, a reusable dataflow framework
(def-use, liveness, reaching definitions, buffer effects), lint rules for
missed optimizations, a physical-plan sanitizer the scheduler runs in
strict mode, and pass-level miscompile bisection.  ``python -m
repro.analysis`` lints whole programs end to end.
"""

from .bisect import MiscompileReport, bisect_miscompile, clone_function
from .dataflow import (
    AliasSets,
    BufferSummary,
    DataflowAnalysis,
    DefUse,
    Effect,
    Liveness,
    ReachingDefinitions,
    buffer_effects,
    def_use,
)
from .diagnostics import Diagnostic, DiagnosticSet, Severity
from .lint import LINT_RULES, LintRule, lint_function, lint_module
from .sanitizer import DeviceView, PlanSanitizerError, sanitize_plan, strict_sanitize
from .session import AnalysisSession, analysis_session, current_session
from .verifier import strict_verify, verify_function, verify_module

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticSet",
    "verify_function",
    "verify_module",
    "strict_verify",
    "DefUse",
    "def_use",
    "DataflowAnalysis",
    "Liveness",
    "ReachingDefinitions",
    "Effect",
    "BufferSummary",
    "buffer_effects",
    "AliasSets",
    "LintRule",
    "LINT_RULES",
    "lint_function",
    "lint_module",
    "sanitize_plan",
    "strict_sanitize",
    "DeviceView",
    "PlanSanitizerError",
    "MiscompileReport",
    "bisect_miscompile",
    "clone_function",
    "AnalysisSession",
    "analysis_session",
    "current_session",
]
