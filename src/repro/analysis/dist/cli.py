"""``python -m repro.analysis.dist`` — sanitize dumped runtime traces.

Targets are dist-trace JSON files (``DistTrace.dump``) or directories of
them (every ``*.json`` underneath that sniffs as a dist trace).  Each
target gets the full treatment: protocol invariant monitors plus
happens-before race detection.  Exit status is 0 only when every target
is clean.

Benchmarks dump traces into their artifact directories when
``BENCH_ARTIFACTS`` is set, so CI runs exactly::

    python -m repro.analysis.dist artifacts/
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Sequence

from .events import DistTrace
from .report import SanitizerReport, sanitize_trace

__all__ = ["main", "expand_trace_targets", "sanitize_path"]


def expand_trace_targets(paths: Sequence[str]) -> List[Path]:
    """Resolve files/directories to the dist-trace files underneath.

    Explicit file arguments are kept even if they don't sniff (the user
    named them; a format error should be loud).  Directory scans keep
    only files that sniff as dist traces, so a directory holding mixed
    benchmark artifacts (BENCH_*.json et al.) works unmodified.
    """
    targets: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            targets.extend(
                candidate
                for candidate in sorted(path.rglob("*.json"))
                if DistTrace.is_trace_file(str(candidate))
            )
        else:
            targets.append(path)
    return targets


def sanitize_path(
    path: Path,
    hb: bool = True,
    partial: bool = False,
    dedup_races: bool = True,
) -> SanitizerReport:
    trace = DistTrace.load(str(path))
    return sanitize_trace(
        trace, hb=hb, partial=partial, source=str(path), dedup_races=dedup_races
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.dist",
        description="Sanitize distributed-runtime protocol traces "
        "(invariant monitors + happens-before race detection).",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="dist-trace JSON files, or directories to scan for them",
    )
    parser.add_argument(
        "--no-hb",
        action="store_true",
        help="skip happens-before race detection (monitors only)",
    )
    parser.add_argument(
        "--partial",
        action="store_true",
        help="trace was cut mid-run: skip end-of-trace completeness checks",
    )
    parser.add_argument(
        "--all-races",
        action="store_true",
        help="report every race instance instead of one per race class",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON report per target",
    )
    args = parser.parse_args(argv)

    targets = expand_trace_targets(args.paths)
    if not targets:
        print("dist-sanitizer: no trace files found")
        return 0

    failures = 0
    for path in targets:
        try:
            report = sanitize_path(
                path,
                hb=not args.no_hb,
                partial=args.partial,
                dedup_races=not args.all_races,
            )
        except (OSError, ValueError, KeyError) as exc:
            print(f"error[bad-trace]: {path}: {exc}")
            failures += 1
            continue
        if args.json:
            print(json.dumps(report.to_dict()))
        else:
            print(report.render())
        failures += 0 if report.clean else 1

    return 0 if failures == 0 else 1
