"""Protocol-event trace: the substrate Skadi-TSan reasons over.

The runtime's :class:`~repro.runtime.events.EventLog` is the *observable*
record — its signature is the determinism contract benchmarks replay
bit-for-bit.  The sanitizer needs strictly more: which logical *site*
performed an action, which message keys causally link two actions, and
which shared control-plane variables were touched and how.  Rather than
widen ``RuntimeEvent`` (and silently change every signature), the probe
emits a parallel stream of :class:`ProtoEvent` records into a
:class:`DistTrace`.  The trace is JSON-serializable so CI can sanitize
benchmark artifacts offline.

Sites
-----
``driver``
    the user-facing API surface (submit/put/get, replay orchestration).
``gcs``
    the logically-centralized control plane: scheduler, failure detector,
    admission gate, retry budgets, circuit breakers.  One site — these
    components share state and run interleaved on the head node today
    (ROADMAP item 2 is precisely about splitting this site; the sanitizer
    exists so that split can be checked).
``attempt:<task>#<n>``
    one execution attempt of one task — a fresh site per attempt, since
    attempts of the same task may overlap under speculation.
``push:<oid>-><dev>`` / ``raylet@<endpoint>``
    data-plane push processes and per-raylet local state (fetch-dedup
    registry, heartbeat sender).
``chaos``
    the external adversary.  Chaos events have no causal ancestry: a
    fault races with everything not ordered after its effects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["ProtoEvent", "DistTrace", "ACCESS_CLASSES", "CONFLICTS"]

# Access classes for shared control-plane variables:
#   'w'   exclusive write   (create, mark_ready, drops, state flips)
#   'acc' commutative update (add_location: any interleaving converges)
#   'r'   stability-assuming read (fetch path acting on directory state)
ACCESS_CLASSES = ("w", "acc", "r")

# Unordered pairs of access classes that constitute a data race when the
# accesses are causally concurrent.  r-r, r-acc and acc-acc commute.
CONFLICTS = frozenset({("w", "w"), ("w", "acc"), ("w", "r")})


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


class ProtoEvent(NamedTuple):
    """One protocol-level action at one site.

    ``sends``/``recvs`` carry message keys: a recv of key ``k`` joins the
    vector clock of the latest prior send of ``k`` (a recv with no prior
    send contributes no edge — the monitors, not the HB builder, decide
    whether that is a protocol violation).  ``accesses`` lists
    ``(variable, access_class)`` pairs touched by this action.

    A ``NamedTuple`` rather than a dataclass: the online probe constructs
    one per protocol event on the runtime's hot path, and tuple
    construction is measurably cheaper than frozen-dataclass ``__init__``.
    """

    seq: int
    time: float
    site: str
    kind: str
    detail: Tuple[Tuple[str, Any], ...] = ()
    sends: Tuple[str, ...] = ()
    recvs: Tuple[str, ...] = ()
    accesses: Tuple[Tuple[str, str], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def describe(self) -> str:
        parts = [f"#{self.seq} t={self.time:.6f} [{self.site}] {self.kind}"]
        if self.detail:
            parts.append(" ".join(f"{k}={v}" for k, v in self.detail))
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "site": self.site,
            "kind": self.kind,
            "detail": [[k, _json_safe(v)] for k, v in self.detail],
            "sends": list(self.sends),
            "recvs": list(self.recvs),
            "accesses": [list(a) for a in self.accesses],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProtoEvent":
        return cls(
            seq=int(data["seq"]),
            time=float(data["time"]),
            site=str(data["site"]),
            kind=str(data["kind"]),
            detail=tuple((str(k), v) for k, v in data.get("detail", ())),
            sends=tuple(data.get("sends", ())),
            recvs=tuple(data.get("recvs", ())),
            accesses=tuple(
                (str(var), str(cls_)) for var, cls_ in data.get("accesses", ())
            ),
        )


@dataclass
class DistTrace:
    """An append-only, JSON-round-trippable sequence of protocol events."""

    events: List[ProtoEvent] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def record(
        self,
        time: float,
        site: str,
        kind: str,
        detail: Tuple[Tuple[str, Any], ...] = (),
        sends: Tuple[str, ...] = (),
        recvs: Tuple[str, ...] = (),
        accesses: Tuple[Tuple[str, str], ...] = (),
    ) -> ProtoEvent:
        event = ProtoEvent(
            seq=len(self.events),
            time=time,
            site=site,
            kind=kind,
            detail=detail,
            sends=sends,
            recvs=recvs,
            accesses=accesses,
        )
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ProtoEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> ProtoEvent:
        return self.events[index]

    def sites(self) -> List[str]:
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.site, None)
        return list(seen)

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def signature(self) -> List[Tuple[float, str, str, str]]:
        """A comparable fingerprint (time, site, kind, detail-repr)."""
        return [
            (round(e.time, 12), e.site, e.kind, repr(e.detail))
            for e in self.events
        ]

    # ------------------------------------------------------------------
    # JSON round-trip (CI sanitizes dumped benchmark traces offline)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro.dist-trace/v1",
            "meta": {k: _json_safe(v) for k, v in self.meta.items()},
            "events": [e.to_dict() for e in self.events],
        }

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DistTrace":
        if data.get("format") != "repro.dist-trace/v1":
            raise ValueError(
                f"not a dist-trace payload (format={data.get('format')!r})"
            )
        trace = cls(meta=dict(data.get("meta", {})))
        trace.events = [ProtoEvent.from_dict(e) for e in data.get("events", ())]
        return trace

    @classmethod
    def load(cls, path: str) -> "DistTrace":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def from_events(cls, events: Iterable[ProtoEvent]) -> "DistTrace":
        trace = cls()
        trace.events = list(events)
        return trace

    @staticmethod
    def is_trace_file(path: str) -> bool:
        """Cheap sniff: does ``path`` look like a dumped dist trace?"""
        try:
            with open(path) as fh:
                head = fh.read(256)
        except OSError:
            return False
        return "repro.dist-trace/v1" in head
