"""Declarative protocol invariant monitors.

Each monitor owns one protocol's correctness story and consumes the
probe's :class:`~repro.analysis.dist.events.ProtoEvent` stream — the same
code path runs *online* (events fed as the runtime emits them, behind
``RuntimeConfig(sanitizers=("invariants",))``) and *offline* (replayed
over a dumped trace in CI).  Monitors are incremental: ``on_event`` does
O(1)-ish bookkeeping, and ``finish`` checks end-of-trace obligations
(e.g. no dedup follower left parked).  Offline sanitization of a trace
cut mid-run passes ``partial=True`` to skip the end-of-trace checks.

The monitors:

============================  =======================================================
SingleOwnerMonitor            at most one live owner record per object id
DirectoryStateMonitor         object-directory transitions follow the legal FSM
LineageAcyclicityMonitor      lineage edges never form a cycle
BreakerMonitor                CLOSED→OPEN→HALF_OPEN→{CLOSED,OPEN} legality
AdmissionBoundsMonitor        queued-task counter stays within the configured depth
DeadlineMonotonicityMonitor   effective deadline == min(own, inherited-from-producers)
FetchRegistryMonitor          dedup begin/end pairing; cancelled leaders release followers
TaskLifecycleMonitor          submit once; at most one terminal per incarnation
LeaderPerEpochMonitor         at most one GCS leader installed per fencing epoch
EpochMonotonicityMonitor      leader epochs strictly increase; fencing is consistent
============================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .events import DistTrace, ProtoEvent

__all__ = [
    "Violation",
    "Monitor",
    "InvariantEngine",
    "default_monitors",
    "SingleOwnerMonitor",
    "DirectoryStateMonitor",
    "LineageAcyclicityMonitor",
    "BreakerMonitor",
    "AdmissionBoundsMonitor",
    "DeadlineMonotonicityMonitor",
    "FetchRegistryMonitor",
    "TaskLifecycleMonitor",
    "LeaderPerEpochMonitor",
    "EpochMonotonicityMonitor",
]


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant violation, anchored to the event that exposed it."""

    monitor: str
    message: str
    seq: Optional[int] = None
    subject: Optional[str] = None

    def describe(self) -> str:
        where = f" @#{self.seq}" if self.seq is not None else " @end"
        subject = f" [{self.subject}]" if self.subject else ""
        return f"{self.monitor}{where}{subject}: {self.message}"


class Monitor:
    """Base class: subclasses override ``on_event`` and/or ``finish``.

    ``kinds`` declares the event kinds the monitor reacts to so the
    engine can route events instead of broadcasting: the online probe
    sits on the runtime's hot path, and most protocol events interest no
    monitor at all.  An empty ``kinds`` means "subscribe to everything"
    (the safe default for ad-hoc subclasses).
    """

    name = "monitor"
    kinds: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def flag(
        self,
        message: str,
        seq: Optional[int] = None,
        subject: Optional[str] = None,
    ) -> None:
        self.violations.append(
            Violation(monitor=self.name, message=message, seq=seq, subject=subject)
        )

    def on_event(self, event: ProtoEvent) -> None:  # pragma: no cover - interface
        pass

    def finish(self, partial: bool = False) -> None:  # pragma: no cover - interface
        pass


class SingleOwnerMonitor(Monitor):
    """Every object id is created at most once per incarnation.

    ``own_replay_reset`` is the sanctioned reincarnation path (lineage
    replay resets the entry in place); a second ``own_create`` for a live
    id means two owners both believe they minted the object.
    """

    name = "single-owner"
    kinds = ("own_create",)

    def __init__(self) -> None:
        super().__init__()
        self._live: Set[str] = set()

    def on_event(self, event: ProtoEvent) -> None:
        if event.kind != "own_create":
            return
        obj = event.get("object")
        if obj in self._live:
            self.flag(f"duplicate owner record created for {obj}", event.seq, obj)
        else:
            self._live.add(obj)


class DirectoryStateMonitor(Monitor):
    """Object-directory transitions must follow the legal state machine.

    Legal ops per (op, old-state), plus two structural obligations that
    hold after *every* op: READY entries have at least one location and
    LOST entries have none.
    """

    name = "directory-state"
    kinds = (
        "own_create",
        "own_mark_ready",
        "own_add_location",
        "own_drop_location",
        "own_drop_node",
        "own_drop_device",
        "own_replay_reset",
        "own_restore",
    )

    # op -> {legal old states}; None stands for "entry absent".
    # ``own_restore`` is the control-plane HA reset: a failover replays a
    # WAL snapshot (or re-registration re-creates an entry), always with
    # old=None, and re-seeds the tracked state to whatever it installs.
    _LEGAL_OLD: Dict[str, Tuple[Optional[str], ...]] = {
        "own_create": (None,),
        "own_mark_ready": ("PENDING", "READY", "LOST"),
        "own_add_location": ("READY", "LOST"),
        "own_drop_location": ("READY", "LOST"),
        "own_drop_node": ("READY", "LOST"),
        "own_drop_device": ("PENDING", "READY", "LOST"),
        "own_replay_reset": ("READY", "LOST"),
        "own_restore": (None,),
    }
    _LEGAL_NEW: Dict[str, Tuple[str, ...]] = {
        "own_create": ("PENDING",),
        "own_mark_ready": ("READY",),
        "own_add_location": ("READY",),
        "own_drop_location": ("READY", "LOST"),
        "own_drop_node": ("READY", "LOST"),
        "own_drop_device": ("PENDING", "READY", "LOST"),
        "own_replay_reset": ("PENDING",),
        "own_restore": ("PENDING", "READY", "LOST"),
    }

    def __init__(self) -> None:
        super().__init__()
        self._state: Dict[str, str] = {}

    def on_event(self, event: ProtoEvent) -> None:
        legal_old = self._LEGAL_OLD.get(event.kind)
        if legal_old is None:
            return
        obj = event.get("object")
        old = event.get("old")
        new = event.get("new")
        locations = event.get("locations")
        tracked = self._state.get(obj)
        if tracked is not None and old is not None and tracked != old:
            self.flag(
                f"{event.kind}: observed old state {old} but tracked {tracked}",
                event.seq,
                obj,
            )
        if old not in legal_old:
            self.flag(f"{event.kind} illegal from state {old}", event.seq, obj)
        if new not in self._LEGAL_NEW[event.kind]:
            self.flag(f"{event.kind} produced illegal state {new}", event.seq, obj)
        if new == "READY" and isinstance(locations, int) and locations < 1:
            self.flag("READY entry with zero locations", event.seq, obj)
        if new == "LOST" and isinstance(locations, int) and locations != 0:
            self.flag(
                f"LOST entry still lists {locations} location(s)", event.seq, obj
            )
        if new is not None:
            self._state[obj] = new


class LineageAcyclicityMonitor(Monitor):
    """The lineage graph (object -> producing dependencies) stays acyclic."""

    name = "lineage-acyclic"
    kinds = ("lineage_record",)

    def __init__(self) -> None:
        super().__init__()
        self._deps: Dict[str, Tuple[str, ...]] = {}

    def on_event(self, event: ProtoEvent) -> None:
        if event.kind != "lineage_record":
            return
        obj = event.get("object")
        deps = tuple(event.get("deps") or ())
        self._deps[obj] = deps
        # DFS from the new node only: a fresh edge is the only way to
        # close a cycle, and it must pass through ``obj``
        stack = list(deps)
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node == obj:
                self.flag(f"lineage cycle through {obj}", event.seq, obj)
                return
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._deps.get(node, ()))


class BreakerMonitor(Monitor):
    """Circuit breakers may only move along the legal edges."""

    name = "breaker-fsm"
    kinds = ("breaker_flip",)

    _LEGAL = frozenset(
        {
            ("CLOSED", "OPEN"),
            ("OPEN", "HALF_OPEN"),
            ("HALF_OPEN", "CLOSED"),
            ("HALF_OPEN", "OPEN"),
        }
    )

    def __init__(self) -> None:
        super().__init__()
        self._state: Dict[str, str] = {}

    def on_event(self, event: ProtoEvent) -> None:
        if event.kind != "breaker_flip":
            return
        device = event.get("device")
        old = event.get("old")
        new = event.get("new")
        tracked = self._state.get(device)
        if tracked is not None and tracked != old:
            self.flag(
                f"flip claims old={old} but tracked state is {tracked}",
                event.seq,
                device,
            )
        if (old, new) not in self._LEGAL:
            self.flag(f"illegal transition {old} -> {new}", event.seq, device)
        self._state[device] = new


class AdmissionBoundsMonitor(Monitor):
    """The admission queue never exceeds its depth or goes negative."""

    name = "admission-bounds"
    kinds = ("adm_queue", "adm_release")

    def __init__(self) -> None:
        super().__init__()
        self._depth = 0
        self._queued: Set[str] = set()

    def on_event(self, event: ProtoEvent) -> None:
        if event.kind == "adm_queue":
            task = event.get("task")
            limit = event.get("limit")
            self._depth += 1
            self._queued.add(task)
            if isinstance(limit, int) and self._depth > limit:
                self.flag(
                    f"queue depth {self._depth} exceeds limit {limit}",
                    event.seq,
                    task,
                )
        elif event.kind == "adm_release":
            task = event.get("task")
            if task not in self._queued:
                self.flag(f"release of {task} which was never queued", event.seq, task)
                return
            self._queued.discard(task)
            self._depth -= 1

    def finish(self, partial: bool = False) -> None:
        if not partial and self._queued:
            parked = ", ".join(sorted(self._queued)[:5])
            self.flag(f"{len(self._queued)} task(s) still parked at drain: {parked}")


class DeadlineMonotonicityMonitor(Monitor):
    """Effective deadline == min(own, inherited) — never looser than either."""

    name = "deadline-monotonic"
    kinds = ("deadline_inherit",)

    _EPS = 1e-9

    def on_event(self, event: ProtoEvent) -> None:
        if event.kind != "deadline_inherit":
            return
        task = event.get("task")
        own = event.get("own")
        inherited = event.get("inherited")
        effective = event.get("effective")
        if effective is None:
            if own is not None or inherited is not None:
                self.flag("deadline dropped during inheritance", event.seq, task)
            return
        bounds = [b for b in (own, inherited) if b is not None]
        if not bounds:
            self.flag(f"effective deadline {effective} appeared from nowhere",
                      event.seq, task)
            return
        expected = min(bounds)
        if abs(effective - expected) > self._EPS:
            self.flag(
                f"effective {effective} != min(own={own}, inherited={inherited})",
                event.seq,
                task,
            )


class FetchRegistryMonitor(Monitor):
    """Fetch-dedup bookkeeping pairs up and cancelled leaders free followers.

    A leader ``fetch_begin`` must be closed by exactly one matching
    ``fetch_end`` or ``fetch_abort``.  Followers (``fetch_dedup``) may only
    join an active fetch, and each must be released — ``fetch_join`` on
    leader success, or covered by a ``fetch_abort`` — by the time the
    trace drains.
    """

    name = "fetch-registry"
    kinds = ("fetch_begin", "fetch_end", "fetch_abort", "fetch_dedup", "fetch_join")

    def __init__(self) -> None:
        super().__init__()
        self._active: Set[Tuple[str, str]] = set()
        self._followers: Dict[Tuple[str, str], int] = {}
        self._begin_seq: Dict[Tuple[str, str], int] = {}

    @staticmethod
    def _key(event: ProtoEvent) -> Tuple[str, str]:
        return (event.get("object"), event.get("device"))

    def on_event(self, event: ProtoEvent) -> None:
        if event.kind == "fetch_begin":
            key = self._key(event)
            if key in self._active:
                self.flag(
                    f"second leader fetch for {key[0]} at {key[1]}",
                    event.seq,
                    key[0],
                )
            self._active.add(key)
            self._begin_seq[key] = event.seq
        elif event.kind in ("fetch_end", "fetch_abort"):
            key = self._key(event)
            if key not in self._active:
                self.flag(
                    f"{event.kind} without an active fetch for {key[0]} at {key[1]}",
                    event.seq,
                    key[0],
                )
                return
            self._active.discard(key)
            if event.kind == "fetch_abort":
                # the abort path fails every parked follower signal
                self._followers.pop(key, None)
        elif event.kind == "fetch_dedup":
            key = self._key(event)
            if key not in self._active:
                self.flag(
                    f"dedup join with no active fetch for {key[0]} at {key[1]}",
                    event.seq,
                    key[0],
                )
                return
            self._followers[key] = self._followers.get(key, 0) + 1
        elif event.kind == "fetch_join":
            key = self._key(event)
            count = self._followers.get(key, 0)
            if count <= 0:
                self.flag(
                    f"follower resumed with no recorded dedup join for {key[0]}",
                    event.seq,
                    key[0],
                )
                return
            if count == 1:
                self._followers.pop(key, None)
            else:
                self._followers[key] = count - 1

    def finish(self, partial: bool = False) -> None:
        if partial:
            return
        for key in sorted(self._active):
            self.flag(
                f"fetch of {key[0]} at {key[1]} never ended (begin @#"
                f"{self._begin_seq.get(key)})",
                subject=key[0],
            )
        for key, count in sorted(self._followers.items()):
            self.flag(
                f"{count} dedup follower(s) for {key[0]} at {key[1]} "
                "never released",
                subject=key[0],
            )


class TaskLifecycleMonitor(Monitor):
    """Tasks are submitted once and reach at most one terminal state.

    Lineage replay legitimately re-runs a finished task: a ``replay``
    event for the task re-arms its terminal slot.  Speculative clones
    share the task id, so attempts are deliberately not constrained here
    (overlapping attempts are the *point* of speculation); the HB layer
    checks their directory effects instead.
    """

    name = "task-lifecycle"
    kinds = ("submit", "replay", "task_finish", "task_fail", "task_cancel")

    _TERMINALS = ("task_finish", "task_fail", "task_cancel")

    def __init__(self) -> None:
        super().__init__()
        self._submitted: Set[str] = set()
        self._terminal: Dict[str, str] = {}

    def on_event(self, event: ProtoEvent) -> None:
        task = event.get("task")
        if event.kind == "submit":
            if task in self._submitted:
                self.flag(f"task {task} submitted twice", event.seq, task)
            self._submitted.add(task)
        elif event.kind == "replay":
            self._terminal.pop(task, None)
        elif event.kind in self._TERMINALS:
            prior = self._terminal.get(task)
            if prior is not None and not (
                prior == "task_cancel" and event.kind == "task_cancel"
            ):
                self.flag(
                    f"task {task} reached {event.kind} after {prior}",
                    event.seq,
                    task,
                )
            self._terminal[task] = event.kind


class LeaderPerEpochMonitor(Monitor):
    """At most one GCS leader is ever installed per fencing epoch.

    Two ``ha_leader`` events claiming the same epoch would mean two
    elections both believed they won the same term — split brain at the
    control plane, the exact failure fencing epochs exist to prevent.
    """

    name = "leader-per-epoch"
    kinds = ("ha_leader",)

    def __init__(self) -> None:
        super().__init__()
        self._leader_of_epoch: Dict[int, str] = {}

    def on_event(self, event: ProtoEvent) -> None:
        if event.kind != "ha_leader":
            return
        epoch = event.get("epoch")
        node = event.get("node")
        prior = self._leader_of_epoch.get(epoch)
        if prior is not None:
            self.flag(
                f"epoch {epoch} has two leaders: {prior} then {node}",
                event.seq,
                node,
            )
        else:
            self._leader_of_epoch[epoch] = node


class EpochMonotonicityMonitor(Monitor):
    """Fencing epochs only move forward.

    Globally, each installed leader's epoch strictly exceeds the last;
    per raylet, the observed epoch never decreases, and an *accepted*
    lease never carries an epoch below what that raylet had already
    observed (accepting one would un-fence a deposed leader).
    """

    name = "epoch-monotonic"
    kinds = ("ha_leader", "ha_fence")

    def __init__(self) -> None:
        super().__init__()
        self._last_leader_epoch: Optional[int] = None
        self._observed: Dict[str, int] = {}

    def on_event(self, event: ProtoEvent) -> None:
        if event.kind == "ha_leader":
            epoch = event.get("epoch")
            last = self._last_leader_epoch
            if last is not None and epoch <= last:
                self.flag(
                    f"leader installed for epoch {epoch} after epoch {last}",
                    event.seq,
                    event.get("node"),
                )
            self._last_leader_epoch = epoch
        elif event.kind == "ha_fence":
            endpoint = event.get("endpoint")
            lease = event.get("lease_epoch")
            raylet = event.get("raylet_epoch")
            seen = self._observed.get(endpoint)
            if seen is not None and raylet < seen:
                self.flag(
                    f"raylet {endpoint} epoch went backwards: {seen} -> {raylet}",
                    event.seq,
                    endpoint,
                )
            if event.get("accepted") and lease < raylet:
                self.flag(
                    f"raylet {endpoint} accepted stale lease epoch {lease} "
                    f"while at {raylet}",
                    event.seq,
                    endpoint,
                )
            observed = max(raylet, lease) if event.get("accepted") else raylet
            self._observed[endpoint] = max(seen or 0, observed)


def default_monitors() -> List[Monitor]:
    return [
        SingleOwnerMonitor(),
        DirectoryStateMonitor(),
        LineageAcyclicityMonitor(),
        BreakerMonitor(),
        AdmissionBoundsMonitor(),
        DeadlineMonotonicityMonitor(),
        FetchRegistryMonitor(),
        TaskLifecycleMonitor(),
        LeaderPerEpochMonitor(),
        EpochMonotonicityMonitor(),
    ]


@dataclass
class InvariantEngine:
    """Feeds events through a monitor set, online or over a stored trace."""

    monitors: List[Monitor] = field(default_factory=default_monitors)
    _finished: bool = False
    _routes: Dict[str, Tuple[Monitor, ...]] = field(
        default_factory=dict, repr=False
    )

    def route(self, kind: str) -> Tuple[Monitor, ...]:
        """The monitors subscribed to ``kind``, in registration order.

        Cached per kind so the online hot path pays one dict lookup for
        the (common) events no monitor cares about.
        """
        cached = self._routes.get(kind)
        if cached is None:
            cached = tuple(
                m for m in self.monitors if not m.kinds or kind in m.kinds
            )
            self._routes[kind] = cached
        return cached

    def on_event(self, event: ProtoEvent) -> None:
        for monitor in self.route(event.kind):
            monitor.on_event(event)

    def finish(self, partial: bool = False) -> None:
        if self._finished:
            return
        self._finished = True
        for monitor in self.monitors:
            monitor.finish(partial=partial)

    def violations(self) -> List[Violation]:
        out: List[Violation] = []
        for monitor in self.monitors:
            out.extend(monitor.violations)
        out.sort(key=lambda v: (v.seq is None, v.seq if v.seq is not None else 0))
        return out

    @classmethod
    def run(cls, trace: DistTrace, partial: bool = False) -> "InvariantEngine":
        engine = cls()
        for event in trace:
            engine.on_event(event)
        engine.finish(partial=partial)
        return engine
