"""Sanitizer reports: one structured answer to "was this run clean?"."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .events import DistTrace
from .hb import HBResult, Race, build_hb
from .invariants import InvariantEngine, Violation

__all__ = ["SanitizerReport", "sanitize_trace"]


@dataclass
class SanitizerReport:
    """The combined verdict of the invariant monitors and the race detector."""

    events: int = 0
    sites: int = 0
    violations: List[Violation] = field(default_factory=list)
    races: List[Race] = field(default_factory=list)
    dangling_recvs: int = 0
    partial: bool = False
    source: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.violations and not self.races

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clean": self.clean,
            "events": self.events,
            "sites": self.sites,
            "partial": self.partial,
            "source": self.source,
            "violations": [
                {
                    "monitor": v.monitor,
                    "message": v.message,
                    "seq": v.seq,
                    "subject": v.subject,
                }
                for v in self.violations
            ],
            "races": [
                {
                    "var": r.var,
                    "first": {
                        "seq": r.first.seq,
                        "site": r.first.site,
                        "kind": r.first.kind,
                        "cls": r.first.cls,
                    },
                    "second": {
                        "seq": r.second.seq,
                        "site": r.second.site,
                        "kind": r.second.kind,
                        "cls": r.second.cls,
                    },
                }
                for r in self.races
            ],
            "dangling_recvs": self.dangling_recvs,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"dist-sanitizer: {self.events} events over {self.sites} site(s)"
            + (f" from {self.source}" if self.source else "")
            + (" (partial trace)" if self.partial else "")
        ]
        if self.clean:
            lines.append("  clean: no invariant violations, no races")
            return "\n".join(lines)
        if self.violations:
            lines.append(f"  {len(self.violations)} invariant violation(s):")
            lines.extend(f"    {v.describe()}" for v in self.violations[:50])
            if len(self.violations) > 50:
                lines.append(f"    ... and {len(self.violations) - 50} more")
        if self.races:
            lines.append(f"  {len(self.races)} race class(es):")
            lines.extend(f"    {r.describe()}" for r in self.races[:50])
            if len(self.races) > 50:
                lines.append(f"    ... and {len(self.races) - 50} more")
        return "\n".join(lines)


def sanitize_trace(
    trace: DistTrace,
    hb: bool = True,
    partial: bool = False,
    source: Optional[str] = None,
    engine: Optional[InvariantEngine] = None,
    dedup_races: bool = True,
) -> SanitizerReport:
    """Run the monitors (and optionally the race detector) over a trace.

    ``engine`` lets an online run hand over its already-fed monitors so
    events are not replayed twice; by default a fresh
    :class:`InvariantEngine` replays the stored trace.
    """
    if engine is None:
        engine = InvariantEngine.run(trace, partial=partial)
    else:
        engine.finish(partial=partial)
    hb_result: Optional[HBResult] = build_hb(trace) if hb else None
    races: List[Race] = []
    dangling = 0
    if hb_result is not None:
        races = hb_result.deduped_races() if dedup_races else hb_result.races
        dangling = len(hb_result.dangling_recvs)
    return SanitizerReport(
        events=len(trace),
        sites=len(trace.sites()),
        violations=engine.violations(),
        races=races,
        dangling_recvs=dangling,
        partial=partial,
        source=source,
    )
