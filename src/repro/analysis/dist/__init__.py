"""Skadi-TSan: a sanitizer layer for the distributed runtime's protocols.

Four cooperating parts (ISSUE 8):

- **Happens-before inference** (:mod:`.hb`): vector clocks over the
  probe's protocol-event stream, flagging conflicting causally-unordered
  accesses to shared control-plane state (object-directory entries,
  breaker state).
- **Protocol invariant monitors** (:mod:`.invariants`): declarative
  checkers for single ownership, directory-state legality, lineage
  acyclicity, breaker FSM legality, admission bounds, deadline
  monotonicity, and fetch-dedup cancel-cascade completeness — runnable
  online behind ``RuntimeConfig(sanitizers=...)`` or offline over a
  dumped trace.
- **Replay-divergence checking** (:mod:`.replay`): same seed twice,
  diff signatures, localize the first diverging event.
- **Schedule perturbation** (:mod:`.perturb`): seeded reordering of
  same-instant ties (source: :mod:`repro.chaos.perturb`), re-running the
  monitors per trial and shrinking failures to a minimal schedule.

``python -m repro.analysis.dist trace.json`` sanitizes dumped traces;
the runtime emits them when ``sanitizers=("trace",)`` (or ``"hb"``) is
set and ``probe.trace.dump(path)`` is called.
"""

from .events import ACCESS_CLASSES, CONFLICTS, DistTrace, ProtoEvent
from .hb import Access, HBResult, Race, build_hb, vc_leq
from .invariants import (
    AdmissionBoundsMonitor,
    BreakerMonitor,
    DeadlineMonotonicityMonitor,
    DirectoryStateMonitor,
    FetchRegistryMonitor,
    InvariantEngine,
    LineageAcyclicityMonitor,
    Monitor,
    SingleOwnerMonitor,
    TaskLifecycleMonitor,
    Violation,
    default_monitors,
)
from .perturb import HuntResult, TrialRecord, ddmin, default_predicate, hunt
from .probe import DistProbe
from .replay import Divergence, ReplayReport, check_replay, diff_signatures
from .report import SanitizerReport, sanitize_trace

__all__ = [
    "ProtoEvent",
    "DistTrace",
    "ACCESS_CLASSES",
    "CONFLICTS",
    "Access",
    "Race",
    "HBResult",
    "build_hb",
    "vc_leq",
    "Violation",
    "Monitor",
    "InvariantEngine",
    "default_monitors",
    "SingleOwnerMonitor",
    "DirectoryStateMonitor",
    "LineageAcyclicityMonitor",
    "BreakerMonitor",
    "AdmissionBoundsMonitor",
    "DeadlineMonotonicityMonitor",
    "FetchRegistryMonitor",
    "TaskLifecycleMonitor",
    "DistProbe",
    "Divergence",
    "ReplayReport",
    "check_replay",
    "diff_signatures",
    "TrialRecord",
    "HuntResult",
    "hunt",
    "ddmin",
    "default_predicate",
    "SanitizerReport",
    "sanitize_trace",
]
