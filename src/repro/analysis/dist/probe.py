"""The online probe: the runtime's single point of contact with Skadi-TSan.

``ServerlessRuntime`` creates one :class:`DistProbe` when
``RuntimeConfig.sanitizers`` is non-empty and calls its hook methods at
the protocol's synchronization points.  The probe owns the event
vocabulary — message-key formats, site names, access classes — so the
runtime hooks stay one-liners and the HB builder and monitors agree on
the encoding by construction.

Modes (``sanitizers`` tuple values):

``"trace"``
    collect a :class:`DistTrace` (needed for offline analysis / dumps).
``"invariants"``
    feed the protocol monitors online, event by event.
``"hb"``
    implies trace collection; ``report(hb=True)`` runs race detection
    over the collected trace.

With all modes off the runtime never constructs a probe, and every hook
site is a ``probe is not None`` check — the bit-for-bit legacy path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from .events import DistTrace, ProtoEvent
from .invariants import InvariantEngine, Violation
from .report import SanitizerReport, sanitize_trace

__all__ = ["DistProbe"]

VALID_SANITIZERS = ("trace", "invariants", "hb")


class DistProbe:
    """Collects protocol events and/or feeds them to online monitors."""

    # event kinds that exist purely to induce happens-before edges (no
    # default monitor subscribes to them).  The runtime checks
    # ``any_live(*HB_EDGE_KINDS)`` once at wiring time and drops the
    # whole hook family when only monitors are on, so the invariants-only
    # mode never even evaluates these hooks' arguments.
    HB_EDGE_KINDS = (
        "dispatch",
        "attempt_start",
        "attempt_commit",
        "attempt_fail",
        "retry",
        "object_ready",
        "get_resolve",
        "speculate",
        "dir_read",
        "push_start",
        "hb_send",
        "hb_recv",
    )

    def __init__(
        self,
        sanitizers: Sequence[str],
        clock: Callable[[], float],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        unknown = [s for s in sanitizers if s not in VALID_SANITIZERS]
        if unknown:
            raise ValueError(
                f"unknown sanitizers {unknown}; valid: {list(VALID_SANITIZERS)}"
            )
        self.sanitizers = tuple(sanitizers)
        self.wants_hb = "hb" in self.sanitizers
        self.wants_trace = self.wants_hb or "trace" in self.sanitizers
        self.wants_invariants = "invariants" in self.sanitizers
        self._clock = clock
        self._seq = 0
        self.trace = DistTrace(meta=dict(meta or {}))
        self.engine: Optional[InvariantEngine] = (
            InvariantEngine() if self.wants_invariants else None
        )
        # invariants-only mode: precompute which event kinds any monitor
        # subscribes to, so hook methods can skip building events nobody
        # will look at.  ``None`` means every kind is live (trace mode, or
        # a monitor that subscribes to everything).
        self._live_kinds: Optional[FrozenSet[str]] = None
        if not self.wants_trace:
            if self.engine is None:
                self._live_kinds = frozenset()
            elif all(m.kinds for m in self.engine.monitors):
                self._live_kinds = frozenset(
                    kind for m in self.engine.monitors for kind in m.kinds
                )
        # ambient site for ownership-observer attribution: the runtime sets
        # this immediately before a table mutation (no yield points between
        # the set and the mutation, so it cannot be clobbered mid-flight)
        self.site = "driver"
        # replay incarnation per task id: replayed attempts get distinct
        # attempt sites so a replay is not confused with its first life
        self._incarnation: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # core emission
    # ------------------------------------------------------------------

    def _skip(self, kind: str) -> bool:
        """True when no sink wants ``kind`` (invariants-only fast path)."""
        live = self._live_kinds
        return live is not None and kind not in live

    def any_live(self, *kinds: str) -> bool:
        """Whether any of ``kinds`` has a sink.  Hot call sites use this
        at wiring time to skip even the hook-argument evaluation for
        event families nobody subscribed to."""
        live = self._live_kinds
        return live is None or any(kind in live for kind in kinds)

    def emit(
        self,
        site: str,
        kind: str,
        detail: Tuple[Tuple[str, Any], ...] = (),
        sends: Tuple[str, ...] = (),
        recvs: Tuple[str, ...] = (),
        accesses: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        seq = self._seq
        self._seq = seq + 1
        engine = self.engine
        if not self.wants_trace:
            # invariants-only hot path: most protocol events interest no
            # monitor — skip even the ProtoEvent construction for those
            if engine is None:
                return
            interested = engine.route(kind)
            if not interested:
                return
            event = ProtoEvent(
                seq, self._clock(), site, kind, detail, sends, recvs, accesses
            )
            for monitor in interested:
                monitor.on_event(event)
            return
        event = ProtoEvent(
            seq, self._clock(), site, kind, detail, sends, recvs, accesses
        )
        self.trace.events.append(event)
        if engine is not None:
            for monitor in engine.route(kind):
                monitor.on_event(event)

    # ------------------------------------------------------------------
    # site helpers
    # ------------------------------------------------------------------

    def attempt_site(self, task_id: str, attempt: int, clone: bool = False) -> str:
        inc = self._incarnation.get(task_id, 0)
        base = f"attempt:{task_id}" if not inc else f"attempt:{task_id}r{inc}"
        return f"{base}#{attempt}~" if clone else f"{base}#{attempt}"

    @staticmethod
    def raylet_site(endpoint: str) -> str:
        return f"raylet@{endpoint}"

    # ------------------------------------------------------------------
    # task lifecycle (driver / gcs)
    # ------------------------------------------------------------------

    def submit(self, task_id: str) -> None:
        if self._skip("submit"):
            return
        self.emit(
            "driver", "submit", (("task", task_id),), sends=(f"submit:{task_id}",)
        )

    def dispatch(
        self,
        task_id: str,
        attempt: int,
        device: str,
        deps: Iterable[str] = (),
    ) -> None:
        if self._skip("dispatch"):
            return
        recvs: Tuple[str, ...] = tuple(f"ready:{dep}" for dep in deps)
        if attempt == 1:
            recvs = (f"submit:{task_id}", *recvs)
        self.emit(
            "gcs",
            "dispatch",
            (("task", task_id), ("attempt", attempt), ("device", device)),
            sends=(self._lease_key(task_id, attempt),),
            recvs=recvs,
        )

    def _lease_key(self, task_id: str, attempt: int) -> str:
        inc = self._incarnation.get(task_id, 0)
        return f"lease:{task_id}:{inc}:{attempt}"

    def _clone_lease_key(self, task_id: str) -> str:
        inc = self._incarnation.get(task_id, 0)
        return f"lease:{task_id}:{inc}:clone"

    def attempt_start(self, task_id: str, attempt: int, clone: bool = False) -> None:
        if self._skip("attempt_start"):
            return
        lease = (
            self._clone_lease_key(task_id)
            if clone
            else self._lease_key(task_id, attempt)
        )
        self.emit(
            self.attempt_site(task_id, attempt, clone),
            "attempt_start",
            (("task", task_id), ("attempt", attempt)),
            recvs=(lease,),
        )

    def attempt_commit(
        self, task_id: str, attempt: int, object_id: str, clone: bool = False
    ) -> None:
        if self._skip("attempt_commit"):
            return
        self.emit(
            self.attempt_site(task_id, attempt, clone),
            "attempt_commit",
            (("task", task_id), ("attempt", attempt), ("object", object_id)),
            sends=(f"done:{task_id}",),
        )

    def object_ready(self, site: str, object_id: str) -> None:
        """An object reached READY (commit, put, or recovery): the
        announcement every consumer-side ``ready:`` recv pairs with."""
        if self._skip("object_ready"):
            return
        self.emit(
            site,
            "object_ready",
            (("object", object_id),),
            sends=(f"ready:{object_id}",),
        )

    def attempt_fail(
        self, task_id: str, attempt: int, reason: str, clone: bool = False
    ) -> None:
        if self._skip("attempt_fail"):
            return
        self.emit(
            self.attempt_site(task_id, attempt, clone),
            "attempt_fail",
            (("task", task_id), ("attempt", attempt), ("reason", reason)),
            sends=(f"rep:{task_id}:{attempt}",),
        )

    def retry(self, task_id: str, attempt: int) -> None:
        if self._skip("retry"):
            return
        self.emit(
            "gcs",
            "retry",
            (("task", task_id), ("attempt", attempt)),
            recvs=(f"rep:{task_id}:{attempt}",),
        )

    def task_finish(self, task_id: str) -> None:
        self.emit(
            "gcs", "task_finish", (("task", task_id),), recvs=(f"done:{task_id}",)
        )

    def get_resolve(self, object_ids: Sequence[str]) -> None:
        """``get`` returned to the driver: each value's READY announcement
        flowed back, so everything its producer did is ordered before
        whatever the driver does next (e.g. ``free``)."""
        if self._skip("get_resolve"):
            return
        self.emit(
            "driver",
            "get_resolve",
            tuple(("object", oid) for oid in object_ids),
            recvs=tuple(f"ready:{oid}" for oid in object_ids),
        )

    def task_fail(self, task_id: str, attempt: int, reason: str) -> None:
        self.emit(
            "gcs",
            "task_fail",
            (("task", task_id), ("reason", reason)),
            recvs=(f"rep:{task_id}:{attempt}",) if attempt else (),
        )

    def task_cancel(self, task_id: str, reason: str) -> None:
        self.emit("gcs", "task_cancel", (("task", task_id), ("reason", reason)))

    def speculate(self, task_id: str) -> None:
        """The speculation decision: launches a backup clone (its own lease)."""
        if self._skip("speculate"):
            return
        self.emit(
            "gcs",
            "speculate",
            (("task", task_id),),
            sends=(self._clone_lease_key(task_id),),
        )

    def replay(self, task_id: str) -> int:
        """Mark a lineage-replay reincarnation; returns the new incarnation.

        Recovery is a control-plane act: emitting at the gcs site orders
        the replay after the death declaration that caused it (same-site
        program order) and before the reincarnation's re-dispatch.
        """
        inc = self._incarnation.get(task_id, 0) + 1
        self._incarnation[task_id] = inc
        self.emit("gcs", "replay", (("task", task_id), ("incarnation", inc)))
        return inc

    # ------------------------------------------------------------------
    # ownership / object directory
    # ------------------------------------------------------------------

    _OWN_ACCESS = {
        "create": "w",
        "mark_ready": "w",
        "add_location": "acc",
        "drop_location": "w",
        "drop_node": "w",
        "drop_device": "w",
        "replay_reset": "w",
    }

    def ownership_op(
        self,
        op: str,
        object_id: str,
        old: Optional[str],
        new: Optional[str],
        locations: int,
    ) -> None:
        """Observer callback for :class:`OwnershipTable` mutations.

        Attribution uses the ambient ``self.site`` (set by the runtime just
        before the mutation); the access class encodes whether interleaving
        matters (``add_location`` commutes, everything else is exclusive).
        """
        kind = f"own_{op}"
        live = self._live_kinds
        if live is not None and kind not in live:
            return
        self.emit(
            self.site,
            kind,
            (
                ("object", object_id),
                ("old", old),
                ("new", new),
                ("locations", locations),
            ),
            (),
            (),
            ((f"dir:{object_id}", self._OWN_ACCESS.get(op, "w")),),
        )

    def dir_read(self, site: str, object_id: str, state: Optional[str]) -> None:
        """A stability-assuming read of a directory entry (fetch path)."""
        if self._skip("dir_read"):
            return
        self.emit(
            site,
            "dir_read",
            (("object", object_id), ("state", state)),
            accesses=((f"dir:{object_id}", "r"),),
        )

    # ------------------------------------------------------------------
    # overload protection (gcs)
    # ------------------------------------------------------------------

    def breaker_flip(
        self, device: str, old: str, new: str, site: str = "gcs"
    ) -> None:
        self.emit(
            site,
            "breaker_flip",
            (("device", device), ("old", old), ("new", new)),
            accesses=((f"breaker:{device}", "w"),),
        )

    def adm_queue(self, task_id: str, limit: int) -> None:
        self.emit("gcs", "adm_queue", (("task", task_id), ("limit", limit)))

    def adm_release(self, task_id: str) -> None:
        self.emit("gcs", "adm_release", (("task", task_id),))

    def adm_reject(self, task_id: str) -> None:
        self.emit("gcs", "adm_reject", (("task", task_id),))

    def deadline_inherit(
        self,
        task_id: str,
        own: Optional[float],
        inherited: Optional[float],
        effective: Optional[float],
    ) -> None:
        self.emit(
            "gcs",
            "deadline_inherit",
            (
                ("task", task_id),
                ("own", own),
                ("inherited", inherited),
                ("effective", effective),
            ),
        )

    # ------------------------------------------------------------------
    # data plane: fetch dedup registry (per-raylet) + arrivals
    # ------------------------------------------------------------------

    def fetch_begin(self, endpoint: str, object_id: str, device: str) -> None:
        if self._skip("fetch_begin"):
            return
        self.emit(
            self.raylet_site(endpoint),
            "fetch_begin",
            (("object", object_id), ("device", device)),
        )

    def fetch_end(self, endpoint: str, object_id: str, device: str) -> None:
        if self._skip("fetch_end"):
            return
        self.emit(
            self.raylet_site(endpoint),
            "fetch_end",
            (("object", object_id), ("device", device)),
            sends=(f"fend:{object_id}:{device}",),
        )

    def fetch_abort(self, endpoint: str, object_id: str, device: str) -> None:
        if self._skip("fetch_abort"):
            return
        self.emit(
            self.raylet_site(endpoint),
            "fetch_abort",
            (("object", object_id), ("device", device)),
        )

    def fetch_dedup(self, endpoint: str, object_id: str, device: str) -> None:
        if self._skip("fetch_dedup"):
            return
        self.emit(
            self.raylet_site(endpoint),
            "fetch_dedup",
            (("object", object_id), ("device", device)),
        )

    def push_start(self, site: str, object_id: str, targets: int = 1) -> None:
        """A push/multicast process woke up to distribute a ready object.

        The ``ready:`` recv is what orders the push's ``add_location``
        writes after the producer's commit (or the driver's put).
        """
        if self._skip("push_start"):
            return
        self.emit(
            site,
            "push_start",
            (("object", object_id), ("targets", targets)),
            recvs=(f"ready:{object_id}",),
        )

    def fetch_join(self, site: str, object_id: str, device: str) -> None:
        """A parked follower resumed after its leader's fetch completed."""
        if self._skip("fetch_join"):
            return
        self.emit(
            site,
            "fetch_join",
            (("object", object_id), ("device", device)),
            recvs=(f"fend:{object_id}:{device}",),
        )

    # ------------------------------------------------------------------
    # health plane
    # ------------------------------------------------------------------

    def hb_send(self, endpoint: str, round_no: int) -> None:
        if self._skip("hb_send"):
            return
        self.emit(
            self.raylet_site(endpoint),
            "hb_send",
            (("endpoint", endpoint), ("n", round_no)),
            sends=(f"hb:{endpoint}:{round_no}",),
        )

    def hb_recv(self, endpoint: str, round_no: int) -> None:
        if self._skip("hb_recv"):
            return
        self.emit(
            "gcs",
            "hb_recv",
            (("endpoint", endpoint), ("n", round_no)),
            recvs=(f"hb:{endpoint}:{round_no}",),
        )

    # ------------------------------------------------------------------
    # control-plane HA (leader elections, fencing)
    # ------------------------------------------------------------------

    def ha_leader(self, epoch: int, node: str) -> None:
        """A failover installed ``node`` as the leader for ``epoch``.

        Exclusive write on the singleton leadership cell: two same-epoch
        installs would be split brain, which LeaderPerEpochMonitor flags.
        """
        if self._skip("ha_leader"):
            return
        self.emit(
            "gcs",
            "ha_leader",
            (("epoch", epoch), ("node", node)),
            accesses=(("ha:leader", "w"),),
        )

    def ha_fence(
        self, endpoint: str, lease_epoch: int, raylet_epoch: int, accepted: bool
    ) -> None:
        """A raylet compared a lease's epoch against its observed epoch."""
        if self._skip("ha_fence"):
            return
        self.emit(
            self.raylet_site(endpoint),
            "ha_fence",
            (
                ("endpoint", endpoint),
                ("lease_epoch", lease_epoch),
                ("raylet_epoch", raylet_epoch),
                ("accepted", accepted),
            ),
        )

    # ------------------------------------------------------------------
    # lineage / spans / chaos
    # ------------------------------------------------------------------

    def lineage_record(
        self, object_id: str, task_id: str, deps: Iterable[str]
    ) -> None:
        if self._skip("lineage_record"):
            return
        self.emit(
            "gcs",
            "lineage_record",
            (("object", object_id), ("task", task_id), ("deps", tuple(deps))),
        )

    def span_link(self, span_id: str, parent_id: Optional[str], name: str) -> None:
        """Span parent edges from the telemetry plane (trace enrichment)."""
        if self._skip("span_link"):
            return
        self.emit(
            self.site,
            "span_link",
            (("span", span_id), ("parent", parent_id), ("name", name)),
        )

    def chaos(self, kind: str, **detail: Any) -> None:
        event_kind = f"chaos_{kind}"
        if self._skip(event_kind):
            return
        self.emit("chaos", event_kind, tuple(sorted(detail.items())))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def violations(self) -> list[Violation]:
        """Violations flagged so far (end-of-trace checks not yet run)."""
        return self.engine.violations() if self.engine is not None else []

    def report(
        self, hb: Optional[bool] = None, partial: bool = False
    ) -> SanitizerReport:
        """Finalize and summarize.

        ``hb`` defaults to whether the ``"hb"`` sanitizer was requested;
        forcing it on requires a collected trace.
        """
        if hb is None:
            hb = self.wants_hb
        if hb and not self.wants_trace:
            raise ValueError(
                'race detection needs a collected trace: enable the "hb" or '
                '"trace" sanitizer'
            )
        return sanitize_trace(
            self.trace if self.wants_trace else DistTrace(),
            hb=hb,
            partial=partial,
            engine=self.engine,
        )
