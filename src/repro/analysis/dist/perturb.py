"""Schedule-perturbation harness: hunt for order bugs, shrink what fails.

A scenario here is a callable that builds its world from scratch, runs it
under an optionally-installed :class:`~repro.chaos.perturb.TiePerturbation`,
and returns any result object; a *predicate* decides whether that result
counts as a failure (default: a :class:`SanitizerReport` that is not
clean).  The harness:

1. runs the unperturbed baseline (a failing baseline is reported as-is —
   the minimal failing schedule is then *empty*);
2. sweeps seeds, each re-ranking all same-instant ties and optionally
   jittering delivery, until the predicate fires;
3. shrinks the failing perturbation window with ddmin to a minimal set
   of scheduler sequence numbers whose re-ranking still triggers the
   failure — the "minimal failing schedule" a human can actually read.

Determinism: every trial is a pure function of (scenario, seed, window,
jitter), so a shrunk schedule replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ...chaos.perturb import TiePerturbation
from .report import SanitizerReport

__all__ = ["TrialRecord", "HuntResult", "default_predicate", "hunt", "ddmin"]

Scenario = Callable[[Optional[TiePerturbation]], Any]
Predicate = Callable[[Any], bool]


def default_predicate(result: Any) -> bool:
    """Failure = a sanitizer report that is not clean."""
    if isinstance(result, SanitizerReport):
        return not result.clean
    raise TypeError(
        f"default predicate needs a SanitizerReport, got {type(result).__name__}; "
        "pass an explicit predicate for other result types"
    )


@dataclass(frozen=True, slots=True)
class TrialRecord:
    """One executed trial, for the report."""

    seed: Optional[int]  # None = unperturbed baseline
    window: Optional[int]  # active-window size; None = all ties
    jitter: float
    failed: bool


@dataclass
class HuntResult:
    """Outcome of a perturbation hunt (plus shrink, if anything failed)."""

    trials: List[TrialRecord] = field(default_factory=list)
    baseline_failed: bool = False
    failing_seed: Optional[int] = None
    minimal: Optional[Tuple[int, ...]] = None
    minimal_result: Any = None

    @property
    def found_failure(self) -> bool:
        return self.baseline_failed or self.failing_seed is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trials": len(self.trials),
            "baseline_failed": self.baseline_failed,
            "failing_seed": self.failing_seed,
            "minimal_schedule": list(self.minimal) if self.minimal is not None else None,
            "minimal_result": (
                self.minimal_result.to_dict()
                if isinstance(self.minimal_result, SanitizerReport)
                else repr(self.minimal_result)
                if self.minimal_result is not None
                else None
            ),
        }

    def describe(self) -> str:
        if self.baseline_failed:
            return (
                "perturbation-hunt: baseline already fails the predicate — "
                "minimal failing schedule is empty (no reordering needed)"
            )
        if self.failing_seed is None:
            return f"perturbation-hunt: {len(self.trials)} trial(s), no failure found"
        window = "?" if self.minimal is None else len(self.minimal)
        return (
            f"perturbation-hunt: seed {self.failing_seed} fails; shrunk to a "
            f"{window}-event reorder window after {len(self.trials)} trial(s)"
        )


def ddmin(
    test: Callable[[Sequence[int]], bool],
    items: Sequence[int],
    max_trials: int = 64,
) -> Tuple[int, ...]:
    """Classic delta-debugging minimization of a failing item set.

    ``test(subset)`` must return True when the failure still reproduces
    with only ``subset`` active.  ``items`` is assumed to fail as a whole.
    The trial budget bounds runtime on huge windows; the result is the
    smallest failing set found within budget (1-minimal if budget allows).
    """
    current = list(items)
    trials = 0
    granularity = 2
    while len(current) >= 2 and trials < max_trials:
        chunk_size = max(1, len(current) // granularity)
        chunks = [
            current[i : i + chunk_size] for i in range(0, len(current), chunk_size)
        ]
        reduced = False
        for chunk in chunks:
            if trials >= max_trials:
                break
            trials += 1
            if test(chunk):
                current = list(chunk)
                granularity = 2
                reduced = True
                break
        if not reduced and granularity > 2:
            for chunk in chunks:
                if trials >= max_trials:
                    break
                complement = [i for i in current if i not in set(chunk)]
                if not complement:
                    continue
                trials += 1
                if test(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return tuple(current)


def hunt(
    scenario: Scenario,
    seeds: Iterable[int] = range(1, 9),
    jitter: float = 0.0,
    predicate: Predicate = default_predicate,
    shrink: bool = True,
    shrink_budget: int = 64,
) -> HuntResult:
    """Sweep perturbation seeds over a scenario; shrink the first failure."""
    result = HuntResult()

    baseline = scenario(None)
    baseline_failed = predicate(baseline)
    result.trials.append(
        TrialRecord(seed=None, window=None, jitter=0.0, failed=baseline_failed)
    )
    if baseline_failed:
        result.baseline_failed = True
        result.minimal = ()
        result.minimal_result = baseline
        return result

    for seed in seeds:
        perturbation = TiePerturbation(seed, jitter=jitter)
        outcome = scenario(perturbation)
        failed = predicate(outcome)
        result.trials.append(
            TrialRecord(seed=seed, window=None, jitter=jitter, failed=failed)
        )
        if not failed:
            continue
        result.failing_seed = seed
        result.minimal_result = outcome
        if not shrink:
            return result
        universe = range(1, perturbation.last_seq + 1)

        def rerun(subset: Sequence[int]) -> bool:
            sub = TiePerturbation(seed, active=subset, jitter=jitter)
            trial = scenario(sub)
            failed_here = predicate(trial)
            result.trials.append(
                TrialRecord(
                    seed=seed, window=len(subset), jitter=jitter, failed=failed_here
                )
            )
            if failed_here:
                result.minimal_result = trial
            return failed_here

        result.minimal = ddmin(rerun, list(universe), max_trials=shrink_budget)
        return result

    return result
