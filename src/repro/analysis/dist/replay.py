"""Replay-divergence checking: catch nondeterminism before it poisons runs.

Every benchmark in this repo is a seeded discrete-event simulation whose
event-log signature is supposed to be a pure function of its
configuration.  Nondeterminism — dict-iteration order feeding the
scheduler, id allocation leaking wall-clock state, a stray ``random``
call off the seeded stream — breaks that silently: baselines drift,
equivalence tests flap.  The checker here runs the same scenario twice
(or more), diffs the signatures element-by-element, and localizes the
*first* diverging event with surrounding context, which is almost always
enough to name the culprit subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["Divergence", "ReplayReport", "diff_signatures", "check_replay"]


@dataclass(frozen=True, slots=True)
class Divergence:
    """The first point where two signatures disagree."""

    index: int
    first: Any
    second: Any
    # the last few agreeing entries before the split, newest last
    context: Tuple[Any, ...] = ()

    def describe(self) -> str:
        lines = [f"first divergence at event {self.index}:"]
        lines.extend(f"    = {entry!r}" for entry in self.context)
        lines.append(f"  run A: {self.first!r}")
        lines.append(f"  run B: {self.second!r}")
        return "\n".join(lines)


@dataclass
class ReplayReport:
    """Verdict from re-running one scenario ``runs`` times."""

    deterministic: bool
    runs: int
    lengths: List[int] = field(default_factory=list)
    divergence: Optional[Divergence] = None
    diverged_run: Optional[int] = None

    def describe(self) -> str:
        if self.deterministic:
            return (
                f"replay-check: deterministic across {self.runs} run(s) "
                f"({self.lengths[0] if self.lengths else 0} events)"
            )
        head = (
            f"replay-check: run {self.diverged_run} diverged from run 0 "
            f"(lengths {self.lengths})"
        )
        if self.divergence is None:
            return head
        return f"{head}\n{self.divergence.describe()}"


def diff_signatures(
    a: Sequence[Any], b: Sequence[Any], context: int = 3
) -> Optional[Divergence]:
    """Locate the first index where ``a`` and ``b`` disagree, else None."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            lo = max(0, i - context)
            return Divergence(
                index=i, first=a[i], second=b[i], context=tuple(a[lo:i])
            )
    if len(a) != len(b):
        longer = a if len(a) > len(b) else b
        tail = longer[limit]
        return Divergence(
            index=limit,
            first=tail if len(a) > len(b) else "<end of run A>",
            second=tail if len(b) > len(a) else "<end of run B>",
            context=tuple(a[max(0, limit - context):limit]),
        )
    return None


def check_replay(
    run_fn: Callable[[], Sequence[Any]], runs: int = 2, context: int = 3
) -> ReplayReport:
    """Execute ``run_fn`` ``runs`` times and compare every signature to run 0.

    ``run_fn`` must build the scenario from scratch (fresh simulator,
    fresh runtime) and return its event signature; sharing state between
    invocations would mask exactly the bugs this exists to find.
    """
    if runs < 2:
        raise ValueError("replay checking needs at least 2 runs")
    baseline = list(run_fn())
    lengths = [len(baseline)]
    for n in range(1, runs):
        candidate = list(run_fn())
        lengths.append(len(candidate))
        divergence = diff_signatures(baseline, candidate, context=context)
        if divergence is not None:
            return ReplayReport(
                deterministic=False,
                runs=n + 1,
                lengths=lengths,
                divergence=divergence,
                diverged_run=n,
            )
    return ReplayReport(deterministic=True, runs=runs, lengths=lengths)
