"""Happens-before inference and race detection over a protocol trace.

The builder makes one pass over the trace in global sequence order,
maintaining a vector clock per *site* (driver, gcs, each attempt, each
push process, each raylet, chaos).  Program order advances a site's own
component; a ``recv`` of message key ``k`` joins the clock of the latest
prior ``send`` of ``k``.  The causal edges the runtime emits are exactly
the protocol's real synchronization points — task submit→dispatch→attempt
→commit→finish, dependency-ready fan-out, failure reports, heartbeat
rounds, fetch-dedup join, lineage replay — so two events with
incomparable clocks genuinely could have executed in either order.

Race detection then runs the classic vector-clock algorithm per shared
variable (``dir:<oid>`` directory entries, ``breaker:<device>`` breaker
state): conflicting access classes (see ``events.CONFLICTS``) on
causally-concurrent events are flagged.  Access history per variable is
pruned FastTrack-style: an older access is dropped once a newer access
happens-after it and subsumes it for future conflict checks (same class,
or the newer one is a write — a write conflicts with everything a
previous access would have).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .events import CONFLICTS, DistTrace, ProtoEvent

__all__ = ["Race", "Access", "HBResult", "build_hb", "vc_leq", "site_class"]

VectorClock = Dict[str, int]


def vc_leq(a: VectorClock, b: VectorClock) -> bool:
    """True iff clock ``a`` happens-before-or-equals clock ``b``."""
    return all(v <= b.get(site, 0) for site, v in a.items())


def site_class(site: str) -> str:
    """Collapse a concrete site to its role, for race deduplication."""
    return site.split(":", 1)[0].split("@", 1)[0]


@dataclass(frozen=True, slots=True)
class Access:
    """One recorded access to a shared variable."""

    seq: int
    site: str
    kind: str
    cls: str
    vc: Tuple[Tuple[str, int], ...]

    def clock(self) -> VectorClock:
        return dict(self.vc)


@dataclass(frozen=True, slots=True)
class Race:
    """Two conflicting, causally-unordered accesses to one variable."""

    var: str
    first: Access
    second: Access

    def key(self) -> Tuple[str, str, str, str, str]:
        """Dedup key: variable family + operation pair + site-role pair."""
        family = self.var.split(":", 1)[0]
        return (
            family,
            self.first.kind,
            self.second.kind,
            site_class(self.first.site),
            site_class(self.second.site),
        )

    def describe(self) -> str:
        return (
            f"race on {self.var}: "
            f"{self.first.kind}({self.first.cls}) at {self.first.site} #{self.first.seq}"
            f" || "
            f"{self.second.kind}({self.second.cls}) at {self.second.site} #{self.second.seq}"
        )


@dataclass
class HBResult:
    """Vector clocks for every event plus the detected races."""

    clocks: List[VectorClock] = field(default_factory=list)
    races: List[Race] = field(default_factory=list)
    dangling_recvs: List[Tuple[int, str]] = field(default_factory=list)

    def concurrent(self, a: int, b: int) -> bool:
        """True iff events ``a`` and ``b`` (by seq) are causally unordered."""
        ca, cb = self.clocks[a], self.clocks[b]
        return not vc_leq(ca, cb) and not vc_leq(cb, ca)

    def ordered(self, a: int, b: int) -> bool:
        return vc_leq(self.clocks[a], self.clocks[b])

    def deduped_races(self) -> List[Race]:
        """One representative per (variable family, op pair, site-role pair)."""
        seen: Dict[Tuple[str, str, str, str, str], Race] = {}
        for race in self.races:
            seen.setdefault(race.key(), race)
        return list(seen.values())


def build_hb(trace: DistTrace, max_races: int = 1000) -> HBResult:
    """One-pass HB construction + per-variable race detection."""
    result = HBResult()
    site_clocks: Dict[str, VectorClock] = {}
    # latest send clock per message key
    send_clocks: Dict[str, VectorClock] = {}
    # per-variable access history, pruned as accesses are subsumed
    history: Dict[str, List[Access]] = {}

    for event in trace:
        clock = site_clocks.setdefault(event.site, {})
        for key in event.recvs:
            sent = send_clocks.get(key)
            if sent is None:
                result.dangling_recvs.append((event.seq, key))
                continue
            for site, tick in sent.items():
                if tick > clock.get(site, 0):
                    clock[site] = tick
        clock[event.site] = clock.get(event.site, 0) + 1
        snapshot = dict(clock)
        result.clocks.append(snapshot)
        for key in event.sends:
            send_clocks[key] = snapshot

        for var, cls in event.accesses:
            _check_var(result, history, var, event, cls, snapshot, max_races)

    return result


def _check_var(
    result: HBResult,
    history: Dict[str, List[Access]],
    var: str,
    event: ProtoEvent,
    cls: str,
    clock: VectorClock,
    max_races: int,
) -> None:
    past = history.setdefault(var, [])
    new = Access(
        seq=event.seq,
        site=event.site,
        kind=event.kind,
        cls=cls,
        vc=tuple(sorted(clock.items())),
    )
    survivors: List[Access] = []
    for old in past:
        old_clock = old.clock()
        if vc_leq(old_clock, clock):
            # happens-before: no race; drop the old access if the new one
            # subsumes it for every future conflict check
            if old.cls == cls or cls == "w":
                continue
            survivors.append(old)
            continue
        pair = (old.cls, cls) if (old.cls, cls) in CONFLICTS else (cls, old.cls)
        if pair in CONFLICTS and len(result.races) < max_races:
            result.races.append(Race(var=var, first=old, second=new))
        survivors.append(old)
    survivors.append(new)
    history[var] = survivors
