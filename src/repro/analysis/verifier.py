"""Collect-all strict IR verifier.

``Function.verify()`` raises on the *first* broken invariant — right for a
compiler pipeline that must stop.  A linter wants the opposite: every
violation in one pass, as structured diagnostics.  This module re-checks
the same invariants (plus a few only a whole-program view can see) and
keeps going after each finding, so the CLI can print one complete report.

Every diagnostic code here maps to exactly one invariant:

====================== ========================================================
code                   invariant
====================== ========================================================
duplicate-param        two params share a Value (or a name)
unknown-op             op not in the dialect registry
operand-arity          operand count differs from the OpDef
use-before-def         operand used before any definition in this function
cross-function-operand operand's producer lives in a different function
op-invariant           the dialect's per-op ``verify`` hook failed
infer-failed           type inference itself raised
result-arity           inference yields a different number of results
type-mismatch          a result's recorded type differs from inference
producer-link-broken   a result's ``producer`` back-pointer is not its op
duplicate-result       a Value is defined twice
undefined-return       the function returns a value nothing defines
op-after-return        an op sits past the last op that must execute
====================== ========================================================
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.core import Function, IRVerificationError, Module, Operation
from .diagnostics import DiagnosticSet

__all__ = ["verify_function", "verify_module", "strict_verify"]


def _safe_text(op: Operation) -> str:
    try:
        return op.to_text()
    except Exception:  # noqa: BLE001 — a broken op must not break its report
        return repr(op)


def verify_function(
    func: Function, diags: Optional[DiagnosticSet] = None
) -> DiagnosticSet:
    """Check every IR invariant on ``func``; never raises, always finishes."""
    diags = diags if diags is not None else DiagnosticSet()
    name = func.name

    if len({id(p) for p in func.params}) != len(func.params):
        diags.error("duplicate-param", "two parameters share one SSA value", func=name)
    param_names = [p.name for p in func.params]
    if len(set(param_names)) != len(param_names):
        diags.error(
            "duplicate-param",
            f"duplicate parameter names {param_names}",
            func=name,
            hint="rename the colliding parameters",
        )

    own_ops = None  # built lazily: only the error paths consult it
    defined: Dict[int, str] = {id(v): v.name for v in func.params}
    defns: list = []

    for index, op in enumerate(func.ops):
        # op text is rendered only on the error paths; formatting every op
        # eagerly would dominate the cost of verifying clean functions
        try:
            defn = op.defn
            defns.append(defn)
        except KeyError:
            defns.append(None)
            diags.error(
                "unknown-op",
                f"{op.qualified} is not registered in any dialect",
                func=name,
                op_index=index,
                op_text=_safe_text(op),
                hint="register an OpDef or fix the dialect/name spelling",
            )
            for value in op.results:  # still define results: avoid cascades
                defined.setdefault(id(value), value.name)
            continue

        for operand in op.operands:
            if id(operand) in defined:
                continue
            if own_ops is None:
                own_ops = {id(o) for o in func.ops}
            if operand.producer is not None and id(operand.producer) not in own_ops:
                diags.error(
                    "cross-function-operand",
                    f"{op.qualified} operand {operand!r} is produced by "
                    f"{operand.producer.qualified} in a different function",
                    func=name,
                    op_index=index,
                    op_text=_safe_text(op),
                    hint="pass the value through a parameter instead",
                )
            else:
                diags.error(
                    "use-before-def",
                    f"{op.qualified} uses {operand!r} before its definition",
                    func=name,
                    op_index=index,
                    op_text=_safe_text(op),
                )

        if defn.num_operands is not None and len(op.operands) != defn.num_operands:
            diags.error(
                "operand-arity",
                f"{op.qualified} expects {defn.num_operands} operands, "
                f"got {len(op.operands)}",
                func=name,
                op_index=index,
                op_text=_safe_text(op),
            )

        if defn.verify is not None:
            try:
                problem = defn.verify(op)
            except Exception as exc:  # noqa: BLE001 — hook bugs become findings
                problem = f"verify hook raised {type(exc).__name__}: {exc}"
            if problem is not None:
                diags.error(
                    "op-invariant",
                    f"{op.qualified}: {problem}",
                    func=name,
                    op_index=index,
                    op_text=_safe_text(op),
                )

        inferred = None
        try:
            inferred = defn.infer([v.type for v in op.operands], op.attrs)
        except Exception as exc:  # noqa: BLE001 — inference errors are findings
            diags.error(
                "infer-failed",
                f"{op.qualified} type inference failed: {exc}",
                func=name,
                op_index=index,
                op_text=_safe_text(op),
            )

        if inferred is not None:
            if len(inferred) != len(op.results):
                diags.error(
                    "result-arity",
                    f"{op.qualified} has {len(op.results)} results, "
                    f"inference says {len(inferred)}",
                    func=name,
                    op_index=index,
                    op_text=_safe_text(op),
                )
            for value, expected in zip(op.results, inferred, strict=False):
                if value.type != expected:
                    diags.error(
                        "type-mismatch",
                        f"{op.qualified} result {value!r} has type "
                        f"{value.type!r}, inference says {expected!r}",
                        func=name,
                        op_index=index,
                        op_text=_safe_text(op),
                        hint="rebuild the op through Builder.emit so types "
                        "come from inference",
                    )

        for value in op.results:
            if value.producer is not op:
                diags.error(
                    "producer-link-broken",
                    f"result {value!r} does not point back at its defining op",
                    func=name,
                    op_index=index,
                    op_text=_safe_text(op),
                )
            if id(value) in defined:
                diags.error(
                    "duplicate-result",
                    f"value {value!r} is defined a second time "
                    f"(first as {defined[id(value)]!r})",
                    func=name,
                    op_index=index,
                    op_text=_safe_text(op),
                )
            else:
                defined[id(value)] = value.name

    for ret in func.returns:
        if id(ret) not in defined:
            diags.error(
                "undefined-return",
                f"function returns {ret!r} but nothing defines it",
                func=name,
            )

    _check_ops_after_return(func, defns, diags)
    return diags


def _check_ops_after_return(
    func: Function, defns: list, diags: DiagnosticSet
) -> None:
    """Mirror of ``Function._verify_no_ops_after_return`` as a diagnostic:
    flag every op past the last one that must execute (a returned value's
    producer, an impure op, or anything feeding either).  Walking backward,
    the first must-execute op *is* the last one, so the scan usually stops
    after a single step."""
    if not func.returns:
        return
    live = {id(v) for v in func.returns}
    last_must_execute = -1
    for index in range(len(func.ops) - 1, -1, -1):
        op = func.ops[index]
        defn = defns[index]
        pure = defn.pure if defn is not None else False
        if not pure or any(id(r) in live for r in op.results):
            last_must_execute = index
            break
    for index in range(last_must_execute + 1, len(func.ops)):
        op = func.ops[index]
        diags.error(
            "op-after-return",
            f"{op.qualified} appears after the return and can never be observed",
            func=func.name,
            op_index=index,
            op_text=_safe_text(op),
            hint="move the op before the return or drop it",
        )


def verify_module(
    module: Module, diags: Optional[DiagnosticSet] = None
) -> DiagnosticSet:
    diags = diags if diags is not None else DiagnosticSet()
    for func in module.functions.values():
        verify_function(func, diags)
    return diags


def strict_verify(target) -> DiagnosticSet:
    """Collect-all verify, then raise :class:`IRVerificationError` with the
    full rendered report when any ERROR was found.  Returns the (possibly
    warning-bearing) diagnostic set otherwise."""
    diags = (
        verify_module(target)
        if isinstance(target, Module)
        else verify_function(target)
    )
    if not diags.ok:
        raise IRVerificationError(diags.render())
    return diags
