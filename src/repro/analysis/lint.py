"""Lint rules: things that are *legal* IR but leave performance on the table.

Each rule corresponds to an optimization the pass pipeline would perform —
so on post-pipeline IR the linter should be silent, and a warning means
either the pipeline was skipped or a pass regressed.  Rules:

* ``dead-value`` — a pure op's result is never used (DCE fodder)
* ``redundant-materialization`` — two structurally identical pure ops
  (CSE fodder: the value is computed, and materialized, twice)
* ``refusable-fusion`` — an elementwise producer feeding a single
  elementwise consumer (FuseElementwise fodder: two launches, one kernel)
* ``constant-foldable`` — a foldable op whose operands are all constants
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.core import Function, Module
from ..ir.passes import _attr_key, _fusable, _is_pure
from .dataflow import DefUse, def_use
from .diagnostics import DiagnosticSet

__all__ = ["LintRule", "LINT_RULES", "lint_function", "lint_module"]


class LintRule:
    """One rule: inspect a function (with its def-use chains precomputed)
    and append WARNING diagnostics."""

    code = "lint"

    def run(self, func: Function, chains: DefUse, diags: DiagnosticSet) -> None:
        raise NotImplementedError


class DeadValueRule(LintRule):
    code = "dead-value"

    def run(self, func: Function, chains: DefUse, diags: DiagnosticSet) -> None:
        for index, op, value in chains.dead_results():
            if not _is_pure(op):
                continue  # opaque calls run for their effects; not dead
            diags.warning(
                self.code,
                f"result {value!r} of {op.qualified} is never used",
                func=func.name,
                op_index=index,
                op_text=op.to_text(),
                hint="run DeadCodeElimination or drop the op",
            )


class RedundantMaterializationRule(LintRule):
    code = "redundant-materialization"

    def run(self, func: Function, chains: DefUse, diags: DiagnosticSet) -> None:
        # group by the cheap (op, operand-ids) key first; the repr-based
        # attr key is only worth computing for ops that actually collide
        groups: Dict[Tuple[str, Tuple[int, ...]], List[int]] = {}
        for index, op in enumerate(func.ops):
            if not _is_pure(op) or len(op.results) != 1:
                continue
            key = (op.qualified, tuple(id(v) for v in op.operands))
            groups.setdefault(key, []).append(index)
        for indices in groups.values():
            if len(indices) < 2:
                continue
            seen: Dict[str, int] = {}
            for index in indices:
                op = func.ops[index]
                attr_key = _attr_key(op.attrs) if op.attrs else ""
                first = seen.get(attr_key)
                if first is not None:
                    diags.warning(
                        self.code,
                        f"{op.qualified} recomputes (and rematerializes) the "
                        f"value already produced by op#{first}",
                        func=func.name,
                        op_index=index,
                        op_text=op.to_text(),
                        hint="run CommonSubexpressionElimination or reuse "
                        f"op#{first}'s result",
                    )
                else:
                    seen[attr_key] = index


class RefusableFusionRule(LintRule):
    code = "refusable-fusion"

    def run(self, func: Function, chains: DefUse, diags: DiagnosticSet) -> None:
        for index, op in enumerate(func.ops):
            if not _fusable(op):
                continue
            for value in op.operands:
                producer = value.producer
                if producer is None or not _fusable(producer):
                    continue
                if len(chains.uses_of(value)) != 1 or id(value) in chains.returned:
                    continue  # result feeds several consumers: fusion blocked
                diags.warning(
                    self.code,
                    f"elementwise chain {producer.qualified} -> {op.qualified} "
                    "is unfused (two kernel launches where one would do)",
                    func=func.name,
                    op_index=index,
                    op_text=op.to_text(),
                    hint="run FuseElementwise",
                )
                break  # one report per consumer is enough


class ConstantFoldableRule(LintRule):
    code = "constant-foldable"

    def run(self, func: Function, chains: DefUse, diags: DiagnosticSet) -> None:
        for index, op in enumerate(func.ops):
            if op.dialect != "linalg" or op.name == "constant":
                continue
            if len(op.results) != 1 or not op.operands:
                continue
            producers = [v.producer for v in op.operands]
            if any(p is None or p.qualified != "linalg.constant" for p in producers):
                continue
            diags.warning(
                self.code,
                f"{op.qualified} consumes only constants; it could be folded "
                "at compile time",
                func=func.name,
                op_index=index,
                op_text=op.to_text(),
                hint="run ConstantFold",
            )


LINT_RULES: List[LintRule] = [
    DeadValueRule(),
    RedundantMaterializationRule(),
    RefusableFusionRule(),
    ConstantFoldableRule(),
]


def _lint_all(func: Function, chains: DefUse, diags: DiagnosticSet) -> None:
    """All four builtin rules in one walk over the ops (same findings as
    running ``LINT_RULES`` one by one, interleaved per op instead of
    grouped per rule).  The linter runs inside every strict pipeline, so
    the clean-function path — one dialect lookup per op, no text
    rendering — is kept as tight as the verifier's."""
    use_sites = chains.use_sites
    returned = chains.returned
    # redundant-materialization state: cheap key -> first op index, widened
    # to {attr_key: first index} only when a cheap key actually collides
    cse_groups: Dict[Tuple[str, Tuple[int, ...]], object] = {}

    for index, op in enumerate(func.ops):
        try:
            defn = op.defn
        except KeyError:
            defn = None  # the verifier reports unknown-op; lint stays quiet
        pure = defn.pure if defn is not None else False

        if pure:
            for value in op.results:
                if not use_sites.get(id(value)) and id(value) not in returned:
                    diags.warning(
                        DeadValueRule.code,
                        f"result {value!r} of {op.qualified} is never used",
                        func=func.name,
                        op_index=index,
                        op_text=op.to_text(),
                        hint="run DeadCodeElimination or drop the op",
                    )

            if len(op.results) == 1:
                key = (op.qualified, tuple(id(v) for v in op.operands))
                entry = cse_groups.get(key)
                if entry is None:
                    cse_groups[key] = index
                else:
                    if isinstance(entry, int):
                        first_op = func.ops[entry]
                        entry = {
                            (_attr_key(first_op.attrs) if first_op.attrs else ""): entry
                        }
                        cse_groups[key] = entry
                    attr_key = _attr_key(op.attrs) if op.attrs else ""
                    first = entry.get(attr_key)
                    if first is not None:
                        diags.warning(
                            RedundantMaterializationRule.code,
                            f"{op.qualified} recomputes (and rematerializes) the "
                            f"value already produced by op#{first}",
                            func=func.name,
                            op_index=index,
                            op_text=op.to_text(),
                            hint="run CommonSubexpressionElimination or reuse "
                            f"op#{first}'s result",
                        )
                    else:
                        entry[attr_key] = index

        if op.qualified == "kernel.fused" or (
            defn is not None and defn.elementwise
        ):
            for value in op.operands:
                producer = value.producer
                if producer is None or not _fusable(producer):
                    continue
                if len(use_sites.get(id(value), ())) != 1 or id(value) in returned:
                    continue  # result feeds several consumers: fusion blocked
                diags.warning(
                    RefusableFusionRule.code,
                    f"elementwise chain {producer.qualified} -> {op.qualified} "
                    "is unfused (two kernel launches where one would do)",
                    func=func.name,
                    op_index=index,
                    op_text=op.to_text(),
                    hint="run FuseElementwise",
                )
                break  # one report per consumer is enough

        if (
            op.dialect == "linalg"
            and op.name != "constant"
            and len(op.results) == 1
            and op.operands
            and all(
                v.producer is not None and v.producer.qualified == "linalg.constant"
                for v in op.operands
            )
        ):
            diags.warning(
                ConstantFoldableRule.code,
                f"{op.qualified} consumes only constants; it could be folded "
                "at compile time",
                func=func.name,
                op_index=index,
                op_text=op.to_text(),
                hint="run ConstantFold",
            )


def lint_function(
    func: Function,
    diags: Optional[DiagnosticSet] = None,
    rules: Optional[List[LintRule]] = None,
) -> DiagnosticSet:
    diags = diags if diags is not None else DiagnosticSet()
    chains = def_use(func)
    if rules is None:
        _lint_all(func, chains, diags)
    else:
        for rule in rules:
            rule.run(func, chains, diags)
    return diags


def lint_module(
    module: Module,
    diags: Optional[DiagnosticSet] = None,
    rules: Optional[List[LintRule]] = None,
) -> DiagnosticSet:
    diags = diags if diags is not None else DiagnosticSet()
    for func in module.functions.values():
        lint_function(func, diags, rules)
    return diags
