"""Structured diagnostics: the currency of the static-analysis layer.

Every checker — the IR verifier, the lint rules, the plan sanitizer —
reports findings as :class:`Diagnostic` values: a severity, a stable
machine-readable code, the location (function + op index + printed op), a
human message, and an optional fix-it hint.  :class:`DiagnosticSet`
collects them and renders the compiler-style report the CLI prints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

__all__ = ["Severity", "Diagnostic", "DiagnosticSet"]


class Severity(enum.IntEnum):
    """Ordered so that max() over a set yields the worst finding."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to where in the program it was observed."""

    severity: Severity
    code: str  # stable kebab-case rule id, e.g. "use-before-def"
    message: str
    func: str = ""  # IR function (or plan/graph) name
    op_index: Optional[int] = None  # position in the op list / task order
    op_text: str = ""  # printed form of the offending op or task
    hint: str = ""  # fix-it suggestion, when the rule knows one

    def render(self) -> str:
        where = f"@{self.func}" if self.func else ""
        if self.op_index is not None:
            where += f" op#{self.op_index}"
        parts = [f"{self.severity}[{self.code}]{(' ' + where.strip()) if where else ''}:"]
        parts.append(self.message)
        line = " ".join(parts)
        if self.op_text:
            line += f"\n    | {self.op_text}"
        if self.hint:
            line += f"\n    = hint: {self.hint}"
        return line

    def __str__(self) -> str:
        return self.render()


@dataclass
class DiagnosticSet:
    """An ordered collection of findings with severity accounting."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def error(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.add(Diagnostic(Severity.ERROR, code, message, **kwargs))

    def warning(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.add(Diagnostic(Severity.WARNING, code, message, **kwargs))

    def info(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.add(Diagnostic(Severity.INFO, code, message, **kwargs))

    def extend(self, other: Iterable[Diagnostic]) -> "DiagnosticSet":
        for diag in other:
            self.add(diag)
        return self

    # -- queries -------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No errors (warnings and notes are allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """Nothing above INFO."""
        return not self.errors and not self.warnings

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- rendering -----------------------------------------------------------

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} note(s)"
        )

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)
