"""Static plan sanitizer: check a physical graph before any task launches.

The runtime's failures at launch time (``PlacementError``, ``KeyError`` on a
missing input) surface one at a time, deep inside the event loop.  The
sanitizer walks the whole :class:`PhysicalGraph` up front, against the
simulated cluster spec and the scheduler's live blacklist, and reports every
hazard at once:

* ``plan-cycle`` — the task dependency relation is not a DAG
* ``unknown-input`` — a task reads a producer id the plan does not contain
* ``no-input-compute`` — a compute task with no inputs (it would starve)
* ``orphan-task`` — a non-sink task whose output nothing consumes
* ``pin-unknown-device`` / ``pin-kind-mismatch`` / ``pin-dead-device`` —
  placement hazards for pinned tasks
* ``unplaceable-kind`` — no schedulable device of any supported kind
* ``input-unresolvable`` — a task is placeable but one of its producers is
  not: its inputs can never resolve
* ``device-memory-oversubscribed`` / ``kind-memory-oversubscribed`` —
  static output-size accounting exceeds the device (ERROR) or the device
  kind's aggregate memory (WARNING)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..cluster.hardware import Device, DeviceKind
from ..flowgraph.physical import PhysicalGraph, PhysicalTask
from .diagnostics import DiagnosticSet, Severity

__all__ = ["DeviceView", "sanitize_plan", "strict_sanitize", "PlanSanitizerError"]


class DeviceView:
    """Prebuilt placement view of the cluster (id index, blacklist, and the
    set of kinds with at least one live device).  The scheduler keeps one
    and reuses it across launches until the blacklist changes, so repeated
    sanitizer runs skip rebuilding these structures."""

    __slots__ = ("devices", "by_id", "blacklist", "placeable_kinds")

    def __init__(self, devices: Iterable[Device], blacklisted: Iterable[str] = ()):
        self.devices: List[Device] = list(devices)
        self.by_id: Dict[str, Device] = {d.device_id: d for d in self.devices}
        self.blacklist: Set[str] = set(blacklisted)
        self.placeable_kinds: Set[DeviceKind] = {
            d.kind for d in self.devices if d.device_id not in self.blacklist
        }


class PlanSanitizerError(RuntimeError):
    """Raised in strict mode; carries the full diagnostic set."""

    def __init__(self, diags: DiagnosticSet):
        self.diagnostics = diags
        super().__init__("plan sanitizer found errors:\n" + diags.render())


def _task_text(task: PhysicalTask) -> str:
    pins = f" pin={task.pinned_device}" if task.pinned_device else ""
    kinds = ",".join(sorted(k.value for k in task.supported_kinds))
    return f"{task.ptask_id} [{task.kind}] {task.name} kinds={kinds}{pins}"


def sanitize_plan(
    pgraph: PhysicalGraph,
    devices: Optional[Iterable[Device]] = None,
    blacklisted: Iterable[str] = (),
    diags: Optional[DiagnosticSet] = None,
) -> DiagnosticSet:
    """Check every static invariant of a physical plan.

    ``devices`` is the schedulable device list (omit to skip placement and
    capacity checks); ``blacklisted`` holds device ids the failure detector
    currently excludes.
    """
    diags = diags if diags is not None else DiagnosticSet()
    graph_name = pgraph.logical.name
    tasks = pgraph.tasks

    placement = devices is not None
    if placement:
        if isinstance(devices, DeviceView) and not blacklisted:
            view = devices
        else:
            extra = set(blacklisted)
            if isinstance(devices, DeviceView):
                view = DeviceView(devices.devices, devices.blacklist | extra)
            else:
                view = DeviceView(devices, extra)
        device_list = view.devices
        by_id = view.by_id
        blacklist = view.blacklist
        placeable_kinds = view.placeable_kinds
        kind_verdicts: Dict[frozenset, bool] = {}
        pinned_bytes: Dict[str, int] = {}
        kind_only_bytes: Dict[DeviceKind, int] = {}

    # one fused walk in plan order: flatten inputs, build the consumer
    # relation, and run the per-task structural / placement / capacity
    # checks together — the sanitizer sits on every strict-mode launch, so
    # its cost must stay a small fraction of building the plan itself
    inputs_by_task: Dict[str, List[str]] = {}
    consumers: Dict[str, List[str]] = {pid: [] for pid in tasks}
    unplaceable: Set[str] = set()
    seen: Set[str] = set()
    order_is_topological = True

    for order_index, ptask_id in enumerate(pgraph.order):
        task = tasks[ptask_id]
        inputs = [pid for _, pids in task.inputs for pid in pids]
        inputs_by_task[ptask_id] = inputs
        for pid in inputs:
            feeds = consumers.get(pid)
            if feeds is None:
                diags.error(
                    "unknown-input",
                    f"reads {pid!r}, which is not a task in this plan",
                    func=graph_name,
                    op_index=order_index,
                    op_text=_task_text(task),
                )
            else:
                feeds.append(ptask_id)
                if pid not in seen:
                    order_is_topological = False
        seen.add(ptask_id)
        if not inputs and task.kind != "source":
            diags.error(
                "no-input-compute",
                f"{task.kind} task has no inputs and would starve",
                func=graph_name,
                op_index=order_index,
                op_text=_task_text(task),
                hint="sources must carry a source_table; everything else "
                "needs at least one in-edge",
            )

        if not placement:
            continue

        pin = task.pinned_device
        if pin is None:
            kinds = task.supported_kinds
            placeable = kind_verdicts.get(kinds)
            if placeable is None:
                placeable = bool(kinds & placeable_kinds)
                kind_verdicts[kinds] = placeable
            if not placeable:
                diags.error(
                    "unplaceable-kind",
                    "no schedulable (non-blacklisted) device of kinds "
                    f"{sorted(k.value for k in kinds)}",
                    func=graph_name,
                    op_index=order_index,
                    op_text=_task_text(task),
                )
                unplaceable.add(ptask_id)
            size = task.output_nbytes or 0
            if size and len(task.supported_kinds) == 1:
                (kind,) = tuple(task.supported_kinds)
                kind_only_bytes[kind] = kind_only_bytes.get(kind, 0) + size
        else:
            if not _check_pin(
                task, order_index, by_id, blacklist, diags, graph_name
            ):
                unplaceable.add(ptask_id)
            size = task.output_nbytes or 0
            if size and pin in by_id:
                pinned_bytes[pin] = pinned_bytes.get(pin, 0) + size

    if not order_is_topological:
        _check_cycles(tasks, inputs_by_task, consumers, diags, graph_name)
    _check_orphans(pgraph, consumers, diags, graph_name)

    if not placement:
        return diags

    # a placeable task whose producer is unplaceable still can never run
    if unplaceable:
        _check_inputs_resolvable(
            pgraph, inputs_by_task, unplaceable, diags, graph_name
        )

    if pinned_bytes or kind_only_bytes:
        _report_capacity(
            pinned_bytes, kind_only_bytes, device_list, by_id, diags, graph_name
        )
    return diags


def _check_inputs_resolvable(
    pgraph: PhysicalGraph,
    inputs_by_task: Dict[str, List[str]],
    unplaceable: Set[str],
    diags: DiagnosticSet,
    graph_name: str,
) -> None:
    tasks = pgraph.tasks
    for order_index, ptask_id in enumerate(pgraph.order):
        task = tasks[ptask_id]
        if ptask_id in unplaceable:
            continue
        bad = [pid for pid in inputs_by_task[ptask_id] if pid in unplaceable]
        if bad:
            diags.error(
                "input-unresolvable",
                f"inputs {bad} can never be produced (their tasks are "
                "unplaceable), so this task would wait forever",
                func=graph_name,
                op_index=order_index,
                op_text=_task_text(task),
            )


def _check_cycles(
    tasks: Dict[str, PhysicalTask],
    inputs_by_task: Dict[str, List[str]],
    consumers: Dict[str, List[str]],
    diags: DiagnosticSet,
    graph_name: str,
) -> None:
    """Kahn's algorithm; only reached when the plan order itself is not a
    valid topological order (some task reads a producer listed later)."""
    indegree = {
        pid: sum(1 for dep in inputs_by_task[pid] if dep in tasks)
        for pid in tasks
    }
    ready = sorted(pid for pid, deg in indegree.items() if deg == 0)
    visited = 0
    while ready:
        pid = ready.pop()
        visited += 1
        for consumer in consumers[pid]:
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                ready.append(consumer)
    if visited != len(tasks):
        stuck = sorted(pid for pid, deg in indegree.items() if deg > 0)
        diags.error(
            "plan-cycle",
            f"dependency cycle through {stuck[:6]}"
            + ("..." if len(stuck) > 6 else ""),
            func=graph_name,
            hint="physical plans must be DAGs; break the cycle with an "
            "explicit materialization",
        )


def _check_orphans(
    pgraph: PhysicalGraph,
    consumers: Dict[str, List[str]],
    diags: DiagnosticSet,
    graph_name: str,
) -> None:
    sink_ids = {pid for pids in pgraph.sink_tasks().values() for pid in pids}
    tasks = pgraph.tasks
    for order_index, ptask_id in enumerate(pgraph.order):
        if not consumers[ptask_id] and ptask_id not in sink_ids:
            diags.warning(
                "orphan-task",
                "output feeds no consumer and is not a sink shard; the task "
                "would run for nothing",
                func=graph_name,
                op_index=order_index,
                op_text=_task_text(tasks[ptask_id]),
                hint="drop the task or wire its output somewhere",
            )


def _check_pin(
    task: PhysicalTask,
    order_index: int,
    by_id: Dict[str, Device],
    blacklist: Set[str],
    diags: DiagnosticSet,
    graph_name: str,
) -> bool:
    """Returns False when the pinned task can never be placed."""
    device = by_id.get(task.pinned_device)
    if device is None:
        diags.error(
            "pin-unknown-device",
            f"pinned to {task.pinned_device!r}, which is not a "
            "schedulable device in this cluster",
            func=graph_name,
            op_index=order_index,
            op_text=_task_text(task),
        )
        return False
    if task.pinned_device in blacklist:
        diags.error(
            "pin-dead-device",
            f"pinned to {task.pinned_device!r}, which the failure "
            "detector has blacklisted",
            func=graph_name,
            op_index=order_index,
            op_text=_task_text(task),
            hint="unpin the task or wait for the device to recover",
        )
        return False
    if device.kind not in task.supported_kinds:
        diags.error(
            "pin-kind-mismatch",
            f"pinned to {task.pinned_device!r} ({device.kind.value}) but "
            f"only supports "
            f"{sorted(k.value for k in task.supported_kinds)}",
            func=graph_name,
            op_index=order_index,
            op_text=_task_text(task),
        )
        return False
    return True


def _report_capacity(
    pinned_bytes: Dict[str, int],
    kind_only_bytes: Dict[DeviceKind, int],
    devices: List[Device],
    by_id: Dict[str, Device],
    diags: DiagnosticSet,
    graph_name: str,
) -> None:
    """Static output-size accounting against the cluster spec.

    Conservative in both directions — it assumes every output is resident
    at once (no eviction), so findings are sized-based warnings/errors, not
    proofs; a single pinned device asked to hold more bytes than it has is
    still always a real hazard."""
    for device_id, total in sorted(pinned_bytes.items()):
        budget = by_id[device_id].spec.memory_bytes
        if total > budget:
            diags.error(
                "device-memory-oversubscribed",
                f"tasks pinned to {device_id!r} produce {total} bytes but the "
                f"device has {budget}",
                func=graph_name,
                hint="spread the pins or raise the device's memory in the "
                "cluster spec",
            )

    for kind, total in sorted(kind_only_bytes.items(), key=lambda kv: kv[0].value):
        budget = sum(d.spec.memory_bytes for d in devices if d.kind == kind)
        if budget and total > budget:
            diags.warning(
                "kind-memory-oversubscribed",
                f"tasks restricted to {kind.value} produce {total} bytes; all "
                f"{kind.value} devices together hold {budget}",
                func=graph_name,
                hint="relax supported_kinds or shrink shard outputs",
            )


def strict_sanitize(
    pgraph: PhysicalGraph,
    devices: Optional[Iterable[Device]] = None,
    blacklisted: Iterable[str] = (),
) -> DiagnosticSet:
    """Sanitize and raise :class:`PlanSanitizerError` on any ERROR."""
    diags = sanitize_plan(pgraph, devices=devices, blacklisted=blacklisted)
    if not diags.ok:
        raise PlanSanitizerError(diags)
    return diags


def worst_severity(diags: DiagnosticSet) -> Optional[Severity]:
    return max((d.severity for d in diags), default=None)
