"""Reusable dataflow analyses over flat SSA functions.

The IR's functions are single straight-line regions, so every classical
bit-vector analysis degenerates to one forward or backward sweep — but the
framework is written in the standard gen/kill style so new analyses are a
subclass, not a new algorithm:

* :func:`def_use` — def-use chains (where each value is defined and used)
* :class:`Liveness` — which values are live before/after each op
* :class:`ReachingDefinitions` — which definitions reach each program point
* :func:`buffer_effects` — read/write/opaque effect summaries plus a
  may-alias relation for the kernel dialect (opaque ``kernel.call`` results
  may alias their operand buffers; everything else produces fresh buffers)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..ir.core import Function, Operation, Value

__all__ = [
    "DefUse",
    "def_use",
    "DataflowAnalysis",
    "Liveness",
    "ReachingDefinitions",
    "Effect",
    "BufferSummary",
    "buffer_effects",
    "AliasSets",
]


# -- def-use chains --------------------------------------------------------------

PARAM_SITE = -1  # def site index meaning "function parameter"


@dataclass
class DefUse:
    """Def-use chains: value id -> def site (op index or PARAM_SITE) and
    the op indices that read it (returns tracked separately)."""

    func: Function
    def_site: Dict[int, int] = field(default_factory=dict)
    use_sites: Dict[int, List[int]] = field(default_factory=dict)
    returned: Set[int] = field(default_factory=set)
    values: Dict[int, Value] = field(default_factory=dict)

    def uses_of(self, value: Value) -> List[int]:
        return list(self.use_sites.get(id(value), []))

    def is_dead(self, value: Value) -> bool:
        return not self.use_sites.get(id(value)) and id(value) not in self.returned

    def dead_results(self) -> List[Tuple[int, Operation, Value]]:
        """(op index, op, result) for every result nothing consumes."""
        return [
            (index, op, value)
            for index, op in enumerate(self.func.ops)
            for value in op.results
            if self.is_dead(value)
        ]


def def_use(func: Function) -> DefUse:
    chains = DefUse(func)
    for param in func.params:
        chains.def_site[id(param)] = PARAM_SITE
        chains.values[id(param)] = param
    for index, op in enumerate(func.ops):
        for operand in op.operands:
            chains.use_sites.setdefault(id(operand), []).append(index)
        for value in op.results:
            chains.def_site[id(value)] = index
            chains.values[id(value)] = value
    for value in func.returns:
        chains.returned.add(id(value))
    return chains


# -- gen/kill framework ----------------------------------------------------------


class DataflowAnalysis:
    """Classical gen/kill dataflow over the op list.

    Subclasses define direction and the per-op ``gen``/``kill`` sets over
    value ids; ``solve`` produces the in/out set at every op index.  On a
    straight-line region a single sweep reaches the fixpoint, but the
    solver iterates anyway so region-structured IR can reuse it later.
    """

    FORWARD = "forward"
    BACKWARD = "backward"

    direction = FORWARD

    def __init__(self, func: Function):
        self.func = func
        self.in_sets: List[FrozenSet[int]] = []
        self.out_sets: List[FrozenSet[int]] = []

    # subclass interface ----------------------------------------------------

    def boundary(self) -> Set[int]:
        """The set at the region entry (forward) or exit (backward)."""
        return set()

    def gen(self, op: Operation) -> Set[int]:
        raise NotImplementedError

    def kill(self, op: Operation) -> Set[int]:
        raise NotImplementedError

    # solver ----------------------------------------------------------------

    def transfer(self, op: Operation, state: Set[int]) -> Set[int]:
        return (state - self.kill(op)) | self.gen(op)

    def solve(self) -> "DataflowAnalysis":
        ops = self.func.ops
        n = len(ops)
        ins: List[Set[int]] = [set() for _ in range(n)]
        outs: List[Set[int]] = [set() for _ in range(n)]
        changed = True
        while changed:
            changed = False
            if self.direction == self.FORWARD:
                state = self.boundary()
                for i in range(n):
                    if ins[i] != state:
                        ins[i] = set(state)
                        changed = True
                    state = self.transfer(ops[i], state)
                    if outs[i] != state:
                        outs[i] = set(state)
                        changed = True
            else:
                state = self.boundary()
                for i in range(n - 1, -1, -1):
                    if outs[i] != state:
                        outs[i] = set(state)
                        changed = True
                    state = self.transfer(ops[i], state)
                    if ins[i] != state:
                        ins[i] = set(state)
                        changed = True
        self.in_sets = [frozenset(s) for s in ins]
        self.out_sets = [frozenset(s) for s in outs]
        return self


class Liveness(DataflowAnalysis):
    """Backward: a value is live where a later use (or the return) needs it.

    ``in_sets[i]`` is live-before op ``i``; ``out_sets[i]`` live-after."""

    direction = DataflowAnalysis.BACKWARD

    def boundary(self) -> Set[int]:
        return {id(v) for v in self.func.returns}

    def gen(self, op: Operation) -> Set[int]:
        return {id(v) for v in op.operands}

    def kill(self, op: Operation) -> Set[int]:
        return {id(v) for v in op.results}

    def live_after(self, index: int) -> FrozenSet[int]:
        return self.out_sets[index]

    def is_live_after(self, index: int, value: Value) -> bool:
        return id(value) in self.out_sets[index]


class ReachingDefinitions(DataflowAnalysis):
    """Forward: which definitions reach each program point.  In SSA nothing
    is ever killed, so ``in_sets[i]`` is exactly the set of values legal to
    use at op ``i`` — the verifier's def-before-use rule as a lattice."""

    direction = DataflowAnalysis.FORWARD

    def boundary(self) -> Set[int]:
        return {id(p) for p in self.func.params}

    def gen(self, op: Operation) -> Set[int]:
        return {id(v) for v in op.results}

    def kill(self, op: Operation) -> Set[int]:
        return set()  # SSA: a definition is never re-defined

    def reaches(self, index: int, value: Value) -> bool:
        return id(value) in self.in_sets[index]


# -- buffer effects / aliasing (kernel dialect) ----------------------------------


@dataclass(frozen=True)
class Effect:
    """What one op does to buffers, as far as the analysis can prove.

    ``opaque`` ops (handcrafted ``kernel.call``) may read or write anything
    reachable from their operands; their results may alias operand buffers.
    Everything else reads its operands and writes only fresh result buffers.
    """

    op_index: int
    qualified: str
    reads: Tuple[int, ...]  # value ids read
    writes: Tuple[int, ...]  # value ids (buffers) written
    opaque: bool = False


class AliasSets:
    """Union-find over value ids: ``may_alias(a, b)`` is True when the two
    values may share storage."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def _find(self, x: int) -> int:
        self._parent.setdefault(x, x)
        while self._parent[x] != x:
            self._parent[x] = self._parent[self._parent[x]]
            x = self._parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[rb] = ra

    def may_alias(self, a: Value, b: Value) -> bool:
        if a is b:
            return True
        return self._find(id(a)) == self._find(id(b))


@dataclass
class BufferSummary:
    effects: List[Effect]
    aliases: AliasSets

    def effect_of(self, index: int) -> Effect:
        return self.effects[index]

    def opaque_ops(self) -> List[Effect]:
        return [e for e in self.effects if e.opaque]


def buffer_effects(func: Function) -> BufferSummary:
    """Per-op buffer effect summaries plus the may-alias relation.

    Only ``kernel.call`` is opaque; a fused kernel's internal step buffers
    are private, so its effect is still read-operands/write-result."""
    effects: List[Effect] = []
    aliases = AliasSets()
    for index, op in enumerate(func.ops):
        try:
            pure = op.defn.pure
        except KeyError:
            pure = False  # unknown op: treat as opaque
        opaque = not pure
        reads = tuple(id(v) for v in op.operands)
        writes = tuple(id(v) for v in op.results)
        if opaque:
            # an opaque kernel may return a view of (or mutate) any operand
            writes = writes + reads
            for result in op.results:
                for operand in op.operands:
                    aliases.union(id(result), id(operand))
        effects.append(Effect(index, op.qualified, reads, writes, opaque))
    return BufferSummary(effects, aliases)
