"""``python -m repro.analysis`` — lint whole programs end to end.

Three modes:

* **file mode** — run each Python program (or every ``*.py`` under a
  directory) inside an analysis session: the pipeline hooks verify every
  IR function after each pass, lint the optimized IR, and sanitize every
  physical plan the program launches.  The program's own stdout is
  suppressed; only the diagnostic report is printed.
* **trace mode** — a target that is a dumped dist-trace JSON file (or a
  directory containing them) is routed through the distributed sanitizer
  (``repro.analysis.dist``): protocol invariant monitors plus
  happens-before race detection.  Mixed directories work: ``*.py`` files
  are linted, ``*.json`` files that sniff as dist traces are sanitized.
* **SQL mode** — ``--sql QUERY --table name=col:dtype,...`` plans the query
  through the full relational -> df/kernel pipeline and lints the result,
  without needing any data.

Exit status is 0 only when every target is clean (INFO notes allowed).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import runpy
from pathlib import Path
from typing import Dict, List

from .session import analysis_session

__all__ = ["main"]


def _expand_targets(paths: List[str]) -> List[Path]:
    from .dist.events import DistTrace

    targets: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            targets.extend(sorted(path.glob("*.py")))
            # dist traces can sit anywhere under an artifact directory
            targets.extend(
                candidate
                for candidate in sorted(path.rglob("*.json"))
                if DistTrace.is_trace_file(str(candidate))
            )
        else:
            targets.append(path)
    return targets


def _sanitize_dist_trace(path: Path) -> "tuple[bool, str]":
    """Route a dumped dist trace through the distributed sanitizer."""
    from .dist.cli import sanitize_path

    try:
        report = sanitize_path(path)
    except (OSError, ValueError, KeyError) as exc:
        return False, f"error[bad-trace]: {path}: {exc}"
    return report.clean, report.render()


def _lint_program(path: Path) -> "tuple[bool, str]":
    """Run one program under analysis; returns (clean, report)."""
    with analysis_session(name=path.name) as session:
        buffer = io.StringIO()
        try:
            with contextlib.redirect_stdout(buffer):
                runpy.run_path(str(path), run_name="__main__")
        except SystemExit as exc:  # argparse-style programs may exit cleanly
            if exc.code not in (None, 0):
                session.diagnostics.error(
                    "program-exit",
                    f"program exited with status {exc.code}",
                    func=path.name,
                )
        except Exception as exc:  # noqa: BLE001 — a crash is the finding
            session.diagnostics.error(
                "program-crashed",
                f"{type(exc).__name__}: {exc}",
                func=path.name,
            )
        return session.clean, session.render()


def _parse_table(spec: str) -> "tuple[str, tuple[tuple[str, str], ...]]":
    """``orders=user_id:int64,amount:float64`` -> (name, ((col, dtype), ...))."""
    name, _, columns = spec.partition("=")
    if not name or not columns:
        raise argparse.ArgumentTypeError(
            f"table spec {spec!r} must look like name=col:dtype,col:dtype"
        )
    parsed = []
    for column in columns.split(","):
        col_name, _, dtype = column.partition(":")
        if not col_name or not dtype:
            raise argparse.ArgumentTypeError(
                f"column {column!r} in {spec!r} must look like col:dtype"
            )
        parsed.append((col_name.strip(), dtype.strip()))
    return name.strip(), tuple(parsed)


def _lint_sql(query: str, table_specs: List[str]) -> "tuple[bool, str]":
    from ..frontends.sql.planner import sql_to_ir
    from ..ir.passes import PassManager
    from ..ir.relational_passes import relational_optimizer
    from ..ir.lowering import lower_relational_to_df
    from ..ir.types import FrameType

    catalog: Dict[str, FrameType] = {}
    for spec in table_specs:
        name, columns = _parse_table(spec)
        catalog[name] = FrameType(columns)

    with analysis_session(name="sql") as session:
        try:
            func = sql_to_ir(query, catalog)
            PassManager(relational_optimizer()).run(func)
            lowered = lower_relational_to_df(func)
            PassManager().run(lowered)
            session.record_function(lowered)
        except Exception as exc:  # noqa: BLE001 — planning errors are findings
            session.diagnostics.error(
                "planning-failed", f"{type(exc).__name__}: {exc}", func="sql"
            )
        return session.clean, session.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over IR pipelines and physical plans.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Python programs (or directories of them) to run under analysis",
    )
    parser.add_argument("--sql", help="lint one SQL query instead of programs")
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=COL:DTYPE,...",
        help="table schema for --sql (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.sql is None and not args.paths:
        parser.error("give program paths, or --sql QUERY --table ...")

    failures = 0
    if args.sql is not None:
        clean, report = _lint_sql(args.sql, args.table)
        print(report)
        failures += 0 if clean else 1

    for path in _expand_targets(args.paths):
        if not path.exists():
            print(f"error[no-such-file]: {path}")
            failures += 1
            continue
        if path.suffix == ".json":
            clean, report = _sanitize_dist_trace(path)
        else:
            clean, report = _lint_program(path)
        print(report)
        failures += 0 if clean else 1

    return 0 if failures == 0 else 1
