"""Pass-level miscompile bisection.

When an optimized program is wrong, the question is never "is the pipeline
broken" but "*which pass* broke it".  ``PassManager(verify_each=True)``
already answers that by verifying after every individual pass application
and raising :class:`MiscompileError` naming the first offender; this module
wraps it into a report with the IR diff across the guilty rewrite, and a
non-destructive entry point that works on a clone of the function.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.core import Function, Operation, Value
from ..ir.passes import MiscompileError, Pass, PassManager

__all__ = ["MiscompileReport", "bisect_miscompile", "clone_function"]


def clone_function(func: Function) -> Function:
    """Structural deep copy: fresh Value/Operation objects, shared attrs.

    Values are identified by object id, so passes mutate functions in
    place; cloning first lets the bisector run the (possibly broken)
    pipeline without destroying the caller's IR."""
    mapping: Dict[int, Value] = {}

    def remap(value: Value) -> Value:
        copy = mapping.get(id(value))
        if copy is None:
            copy = Value(value.name, value.type)
            mapping[id(value)] = copy
        return copy

    clone = Function(func.name, [remap(p) for p in func.params])
    for op in func.ops:
        new_op = Operation(op.dialect, op.name, [remap(v) for v in op.operands], dict(op.attrs))
        new_op.results = [remap(v) for v in op.results]
        for result in new_op.results:
            result.producer = new_op
        clone.ops.append(new_op)
    clone.returns = [remap(v) for v in func.returns]
    return clone


@dataclass
class MiscompileReport:
    """Which pass first broke which invariant, with the offending rewrite."""

    pass_name: str
    function_name: str
    iteration: int
    cause: str
    before_text: str
    after_text: str

    @classmethod
    def from_error(cls, exc: MiscompileError) -> "MiscompileReport":
        return cls(
            pass_name=exc.pass_name,
            function_name=exc.function_name,
            iteration=exc.iteration,
            cause=exc.cause,
            before_text=exc.before_text,
            after_text=exc.after_text,
        )

    def diff(self) -> str:
        """Unified diff of the guilty rewrite (before vs after the pass)."""
        return "".join(
            difflib.unified_diff(
                self.before_text.splitlines(keepends=True),
                self.after_text.splitlines(keepends=True),
                fromfile=f"{self.function_name} (before {self.pass_name})",
                tofile=f"{self.function_name} (after {self.pass_name})",
                lineterm="\n",
            )
        )

    def render(self) -> str:
        return (
            f"miscompile: pass {self.pass_name!r} broke {self.function_name!r} "
            f"on iteration {self.iteration}\n"
            f"invariant: {self.cause}\n"
            f"{self.diff()}"
        )


def bisect_miscompile(
    func: Function,
    passes: Optional[List[Pass]] = None,
    max_iterations: int = 50,
    in_place: bool = False,
) -> Optional[MiscompileReport]:
    """Run the pipeline with verify-after-each-pass and report the first
    invariant-breaking pass, or None when the pipeline is clean.

    By default the pipeline runs on a clone, so the input function is left
    untouched whatever happens; pass ``in_place=True`` to keep the (partly
    optimized, possibly broken) IR for inspection."""
    target = func if in_place else clone_function(func)
    manager = PassManager(passes, max_iterations=max_iterations, verify_each=True)
    try:
        manager.run(target)
    except MiscompileError as exc:
        return MiscompileReport.from_error(exc)
    return None
