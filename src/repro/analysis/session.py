"""Analysis sessions: observe a whole program run and lint everything in it.

The CLI cannot see a user program's intermediate IR or physical plans — they
live inside ``Skadi`` calls.  An :class:`AnalysisSession` is a thread-local
collector that the pipeline reports into from three choke points (the hooks
are lazy one-liners in the production code):

* ``PassManager.run`` — forces verify-after-each-pass and, once a function
  reaches its fixpoint, strict-verifies and lints it
* ``Skadi._run_ir`` — catches functions that skip the pass pipeline
* ``launch_physical_graph`` — sanitizes every physical plan against the
  runtime's cluster and blacklist before it launches

While a session is active the program still runs normally; the session only
accumulates diagnostics (a :class:`MiscompileError` still propagates — a
miscompiled program must not keep running).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Set

from .diagnostics import DiagnosticSet
from .lint import lint_function
from .verifier import verify_function

__all__ = ["AnalysisSession", "analysis_session", "current_session"]

_STATE = threading.local()


def current_session() -> Optional["AnalysisSession"]:
    """The active session of this thread, or None (the common, zero-cost case)."""
    return getattr(_STATE, "session", None)


class AnalysisSession:
    """Collects diagnostics from every function and plan a program touches."""

    def __init__(self, name: str = "analysis"):
        self.name = name
        self.diagnostics = DiagnosticSet()
        self.functions_checked = 0
        self.plans_checked = 0
        self.miscompiles: list = []
        self._seen_functions: Set[int] = set()
        self._seen_plans: Set[int] = set()

    # -- hook entry points (called from the pipeline) ------------------------

    def record_function(self, func) -> None:
        """Strict-verify and lint one IR function (idempotent per object)."""
        if id(func) in self._seen_functions:
            return
        self._seen_functions.add(id(func))
        self.functions_checked += 1
        verify_function(func, self.diagnostics)
        lint_function(func, self.diagnostics)

    def record_plan(self, pgraph, devices=None, blacklisted=(), diags=None) -> None:
        """Sanitize one physical plan (idempotent per object).

        When the caller already ran the sanitizer (the launch path, which
        knows the scheduler's blacklist) it hands the findings in via
        ``diags`` instead of re-running."""
        if id(pgraph) in self._seen_plans:
            return
        self._seen_plans.add(id(pgraph))
        self.plans_checked += 1
        if diags is not None:
            self.diagnostics.extend(diags)
            return
        from .sanitizer import sanitize_plan

        sanitize_plan(
            pgraph, devices=devices, blacklisted=blacklisted, diags=self.diagnostics
        )

    def record_miscompile(self, exc) -> None:
        """A verify-after-each-pass failure: keep the structured report."""
        from .bisect import MiscompileReport

        report = MiscompileReport.from_error(exc)
        self.miscompiles.append(report)
        self.diagnostics.error(
            "miscompile",
            f"pass {report.pass_name!r} broke {report.function_name!r}: "
            f"{report.cause}",
            func=report.function_name,
            hint="see the bisection diff (MiscompileReport.diff())",
        )

    # -- reporting -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.diagnostics.ok

    @property
    def clean(self) -> bool:
        return self.diagnostics.clean

    def render(self) -> str:
        header = (
            f"[{self.name}] checked {self.functions_checked} function(s), "
            f"{self.plans_checked} plan(s)"
        )
        return f"{header}\n{self.diagnostics.render()}"


@contextmanager
def analysis_session(name: str = "analysis") -> Iterator[AnalysisSession]:
    """Activate a session for this thread; nesting reuses the outer session."""
    outer = current_session()
    if outer is not None:
        yield outer
        return
    session = AnalysisSession(name)
    _STATE.session = session
    try:
        yield session
    finally:
        _STATE.session = None
