"""FlowGraph: the logical graph tier of the access layer.

"FlowGraph is a classical data flow graph" (§2.2): vertices are ops —
either hardware-agnostic IR functions (the MLIR-based vertices) or
handcrafted Python/numpy operators — and directed edges dictate how data
flows between them.  Edges may be *keyed* (Figure 2's dashed edges): the
physical tier shards them with a hash scheme.

The graph says nothing about when or who executes a vertex — "a task
delegated to Skadi's stateful serverless runtime" (§1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from ..cluster.hardware import DeviceKind
from ..ir.core import Function
from ..runtime.task import ANY_COMPUTE_KIND

__all__ = ["Vertex", "Edge", "FlowGraph", "GraphValidationError"]


class GraphValidationError(ValueError):
    pass


@dataclass
class Vertex:
    """One operator in the logical graph.

    Exactly one of ``ir_func`` / ``py_func`` / ``source_table`` is set:

    * ``ir_func`` — a hardware-agnostic IR function (MLIR-based vertex);
      its params bind the vertex inputs in order.
    * ``py_func`` — a handcrafted operator ``fn(*inputs) -> output``.
    * ``source_table`` — a named input table (graph source).
    """

    vertex_id: str
    name: str
    ir_func: Optional[Function] = None
    py_func: Optional[Callable[..., Any]] = None
    source_table: Optional[str] = None
    compute_cost: float = 1e-4  # CPU-seconds for the whole (unsharded) vertex
    output_nbytes: Optional[int] = None
    supported_kinds: FrozenSet[DeviceKind] = frozenset({DeviceKind.CPU})
    parallelism: int = 1  # default degree, refined at physical lowering

    def __post_init__(self) -> None:
        payloads = [
            p for p in (self.ir_func, self.py_func, self.source_table) if p is not None
        ]
        if len(payloads) != 1:
            raise GraphValidationError(
                f"vertex {self.vertex_id!r} must have exactly one payload, got {len(payloads)}"
            )
        if self.parallelism < 1:
            raise GraphValidationError(
                f"vertex {self.vertex_id!r} has parallelism {self.parallelism}"
            )
        if self.compute_cost < 0:
            raise GraphValidationError(f"vertex {self.vertex_id!r} has negative cost")

    @property
    def is_source(self) -> bool:
        return self.source_table is not None

    @property
    def num_inputs(self) -> int:
        if self.is_source:
            return 0
        if self.ir_func is not None:
            return len(self.ir_func.params)
        return -1  # py_func: variadic, checked against edges at validation

    def __repr__(self) -> str:
        return f"Vertex({self.vertex_id}:{self.name})"


@dataclass(frozen=True)
class Edge:
    """Directed data flow from ``src`` into input slot ``dst_port`` of ``dst``.

    ``key`` names a column for hash sharding (a keyed edge).
    """

    src: str
    dst: str
    dst_port: int = 0
    key: Optional[str] = None


class FlowGraph:
    """A DAG of vertices and (possibly keyed) edges."""

    def __init__(self, name: str = "flow"):
        self.name = name
        self.vertices: Dict[str, Vertex] = {}
        self.edges: List[Edge] = []
        self._ids = itertools.count()

    # -- construction ------------------------------------------------------------

    def add_vertex(
        self,
        name: str,
        *,
        ir_func: Optional[Function] = None,
        py_func: Optional[Callable[..., Any]] = None,
        source_table: Optional[str] = None,
        compute_cost: float = 1e-4,
        output_nbytes: Optional[int] = None,
        supported_kinds: Optional[FrozenSet[DeviceKind]] = None,
        parallelism: int = 1,
    ) -> Vertex:
        vertex_id = f"v{next(self._ids)}"
        if supported_kinds is None:
            # IR vertices are hardware-agnostic; handcrafted ops default to CPU
            supported_kinds = (
                ANY_COMPUTE_KIND if ir_func is not None else frozenset({DeviceKind.CPU})
            )
        vertex = Vertex(
            vertex_id=vertex_id,
            name=name,
            ir_func=ir_func,
            py_func=py_func,
            source_table=source_table,
            compute_cost=compute_cost,
            output_nbytes=output_nbytes,
            supported_kinds=supported_kinds,
            parallelism=parallelism,
        )
        self.vertices[vertex_id] = vertex
        return vertex

    def add_edge(
        self, src: Vertex, dst: Vertex, dst_port: int = 0, key: Optional[str] = None
    ) -> Edge:
        for vertex in (src, dst):
            if self.vertices.get(vertex.vertex_id) is not vertex:
                raise GraphValidationError(f"{vertex!r} is not in this graph")
        edge = Edge(src.vertex_id, dst.vertex_id, dst_port, key)
        self.edges.append(edge)
        return edge

    # -- structure queries ----------------------------------------------------------

    def in_edges(self, vertex_id: str) -> List[Edge]:
        return sorted(
            (e for e in self.edges if e.dst == vertex_id), key=lambda e: e.dst_port
        )

    def out_edges(self, vertex_id: str) -> List[Edge]:
        return [e for e in self.edges if e.src == vertex_id]

    def sources(self) -> List[Vertex]:
        has_in = {e.dst for e in self.edges}
        return [v for v in self.vertices.values() if v.vertex_id not in has_in]

    def sinks(self) -> List[Vertex]:
        has_out = {e.src for e in self.edges}
        return [v for v in self.vertices.values() if v.vertex_id not in has_out]

    def topological_order(self) -> List[Vertex]:
        in_degree = {vid: len(self.in_edges(vid)) for vid in self.vertices}
        ready = sorted(vid for vid, deg in in_degree.items() if deg == 0)
        order: List[Vertex] = []
        while ready:
            vid = ready.pop(0)
            order.append(self.vertices[vid])
            decremented = []
            for edge in self.out_edges(vid):
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    decremented.append(edge.dst)
            ready.extend(sorted(set(decremented)))
        if len(order) != len(self.vertices):
            raise GraphValidationError(f"graph {self.name!r} has a cycle")
        return order

    # -- validation --------------------------------------------------------------------

    def validate(self) -> None:
        self.topological_order()  # raises on cycles
        for edge in self.edges:
            if edge.src not in self.vertices or edge.dst not in self.vertices:
                raise GraphValidationError(f"edge {edge} references unknown vertex")
        for vertex in self.vertices.values():
            in_edges = self.in_edges(vertex.vertex_id)
            ports = [e.dst_port for e in in_edges]
            if sorted(ports) != list(range(len(ports))):
                raise GraphValidationError(
                    f"{vertex!r}: input ports {sorted(ports)} are not dense from 0"
                )
            expected = vertex.num_inputs
            if expected >= 0 and len(in_edges) != expected:
                raise GraphValidationError(
                    f"{vertex!r} expects {expected} inputs, has {len(in_edges)} edges"
                )
            if vertex.is_source and in_edges:
                raise GraphValidationError(f"source {vertex!r} has incoming edges")

    def __repr__(self) -> str:
        return (
            f"FlowGraph({self.name}, {len(self.vertices)} vertices, "
            f"{len(self.edges)} edges)"
        )
