"""Launching physical graphs on the stateful serverless runtime.

The bridge Figure 2 sketches as pseudo-code ("b = [B.remote() ...]"): walk
the physical graph in topological order and submit one runtime task per
physical task, passing futures between them.  Tables are ``put`` once;
source shards slice them; split tasks hash-partition for keyed edges.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..caching.columnar import RecordBatch, concat_batches
from ..ir.interpreter import Interpreter
from ..ir.kernels import hash_partition
from ..runtime.object_ref import ObjectRef
from ..runtime.runtime import ServerlessRuntime
from .logical import GraphValidationError, Vertex
from .physical import GatherMode, PhysicalGraph, PhysicalTask

__all__ = ["launch_physical_graph", "collect_sink"]


def _gather(mode: GatherMode, values: List[Any]) -> Any:
    if mode == GatherMode.DIRECT:
        return values[0]
    if mode == GatherMode.LIST:
        return values
    if all(isinstance(v, RecordBatch) for v in values):
        return concat_batches(values)
    raise TypeError(
        "CONCAT gather over non-RecordBatch values; use a keyed edge or "
        "an explicit combiner vertex"
    )


def _make_source_fn(vertex: Vertex, shard: int, n: int):
    def run_source(table: Any) -> Any:
        if not isinstance(table, RecordBatch):
            if n != 1:
                raise GraphValidationError(
                    f"source {vertex.name!r}: only RecordBatch tables can be sharded"
                )
            return table
        rows = table.num_rows
        lo = rows * shard // n
        hi = rows * (shard + 1) // n
        return table.slice(lo, hi - lo)

    run_source.__name__ = f"source_{vertex.name}"
    return run_source


def _make_compute_fn(vertex: Vertex, task: PhysicalTask, tables: Mapping[str, Any]):
    modes = [mode for mode, _ in task.inputs]

    def run_compute(*port_values: Any) -> Any:
        values = [_gather(mode, list(v)) for mode, v in zip(modes, port_values, strict=False)]
        if vertex.ir_func is not None:
            inputs = {
                param.name: value
                for param, value in zip(vertex.ir_func.params, values, strict=False)
            }
            outs = Interpreter(tables).run(vertex.ir_func, inputs)
            return outs[0] if len(outs) == 1 else tuple(outs)
        assert vertex.py_func is not None
        return vertex.py_func(*values)

    run_compute.__name__ = vertex.name or "compute"
    return run_compute


def _make_split_fn(task: PhysicalTask):
    key, index, n = task.split_key, task.split_index, task.split_n

    def run_split(batch: Any) -> Any:
        batch = _gather(GatherMode.DIRECT, [batch])
        if not isinstance(batch, RecordBatch):
            raise TypeError(f"keyed edge over non-RecordBatch value ({type(batch)})")
        return hash_partition(batch, key, n)[index]

    run_split.__name__ = f"split_{key}_{index}"
    return run_split


def _sanitize_before_launch(
    runtime: ServerlessRuntime, pgraph: PhysicalGraph, strict: Optional[bool]
) -> None:
    """Static plan checks before any task is submitted.

    Strict mode (explicit, or ``RuntimeConfig.strict_plans``) refuses to
    launch a plan with errors; an active analysis session additionally
    collects every finding even when not strict."""
    if strict is None:
        strict = runtime.config.strict_plans
    session = _analysis_session()
    if not strict and session is None:
        return
    diags = runtime.scheduler.sanitize_plan(pgraph)
    if session is not None:
        session.record_plan(pgraph, diags=diags)
    if strict and not diags.ok:
        from ..analysis.sanitizer import PlanSanitizerError

        raise PlanSanitizerError(diags)


def _analysis_session():
    try:
        from ..analysis.session import current_session
    except ImportError:  # analysis layer absent/optional
        return None
    return current_session()


def launch_physical_graph(
    runtime: ServerlessRuntime,
    pgraph: PhysicalGraph,
    tables: Optional[Mapping[str, Any]] = None,
    gang_group: Optional[str] = None,
    strict: Optional[bool] = None,
) -> Dict[str, List[ObjectRef]]:
    """Submit every physical task; returns vertex_id -> shard output refs.

    ``tables`` backs source vertices and IR ``scan`` ops.  When
    ``gang_group`` is given, all tasks are submitted as one gang (SPMD).
    ``strict`` sanitizes the plan first and refuses to launch on errors
    (defaults to the runtime's ``strict_plans`` config).
    """
    _sanitize_before_launch(runtime, pgraph, strict)
    tables = dict(tables or {})
    table_refs: Dict[str, ObjectRef] = {}
    refs: Dict[str, ObjectRef] = {}

    for ptask_id in pgraph.order:
        task = pgraph.tasks[ptask_id]
        vertex = pgraph.logical.vertices[task.vertex_id]

        if task.kind == "source":
            table_name = vertex.source_table
            assert table_name is not None
            if table_name not in tables:
                raise KeyError(
                    f"source vertex {vertex.name!r} needs table {table_name!r}"
                )
            if table_name not in table_refs:
                table_refs[table_name] = runtime.put(tables[table_name])
            fn = _make_source_fn(vertex, task.shard, task.parallelism)
            args = (table_refs[table_name],)
        elif task.kind == "split":
            fn = _make_split_fn(task)
            args = (refs[task.inputs[0][1][0]],)
        else:
            fn = _make_compute_fn(vertex, task, tables)
            args = tuple([refs[pid] for pid in pids] for _, pids in task.inputs)

        refs[ptask_id] = runtime.submit(
            fn,
            args,
            compute_cost=task.compute_cost,
            output_nbytes=task.output_nbytes,
            supported_kinds=task.supported_kinds,
            pinned_device=task.pinned_device,
            name=task.name,
            gang_group=gang_group,
        )

    if gang_group is not None:
        runtime.launch_gang(gang_group)

    return {
        vertex_id: [refs[pid] for pid in ptask_ids]
        for vertex_id, ptask_ids in pgraph.shards_of.items()
    }


def collect_sink(
    runtime: ServerlessRuntime,
    outputs: Dict[str, List[ObjectRef]],
    vertex: Vertex,
) -> Any:
    """Fetch and merge one vertex's shard outputs (concat for frames)."""
    values = runtime.get(outputs[vertex.vertex_id])
    if len(values) == 1:
        return values[0]
    if all(isinstance(v, RecordBatch) for v in values):
        return concat_batches(values)
    return values
