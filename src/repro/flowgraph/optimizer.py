"""Graph-level optimization rules over FlowGraphs.

§2.1 step (2): Skadi "optimizes the graph using predefined rules".  Rules
here operate across application domains because every vertex already
speaks the common IR:

* :func:`fuse_linear_chains` — merge producer->consumer pairs of IR
  vertices when the producer has exactly one consumer and parallelism
  matches; the merged vertex concatenates the two IR functions, so one
  task materializes one output instead of two.
* :func:`prune_dead_vertices` — drop vertices that cannot reach a sink the
  caller marked live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..ir.core import Builder, Function, Value
from .logical import Edge, FlowGraph, GraphValidationError, Vertex

__all__ = ["optimize", "fuse_linear_chains", "prune_dead_vertices", "GraphOptStats"]


@dataclass
class GraphOptStats:
    vertices_fused: int = 0
    vertices_pruned: int = 0


def _concat_ir(producer: Function, consumer: Function, port: int, name: str) -> Function:
    """Inline ``producer`` into ``consumer``'s param ``port``."""
    builder = Builder(name)
    mapping: Dict[int, Value] = {}
    for param in producer.params:
        mapping[id(param)] = builder.add_param(param.name, param.type)
    for op in producer.ops:
        new = builder.emit(
            op.dialect, op.name, [mapping[id(v)] for v in op.operands], dict(op.attrs)
        )
        for old_v, new_v in zip(op.results, new.results, strict=False):
            mapping[id(old_v)] = new_v
    if len(producer.returns) != 1:
        raise GraphValidationError("can only fuse single-output producer vertices")
    produced = mapping[id(producer.returns[0])]
    for i, param in enumerate(consumer.params):
        if i == port:
            mapping[id(param)] = produced
        else:
            mapping[id(param)] = builder.add_param(f"c_{param.name}", param.type)
    for op in consumer.ops:
        new = builder.emit(
            op.dialect, op.name, [mapping[id(v)] for v in op.operands], dict(op.attrs)
        )
        for old_v, new_v in zip(op.results, new.results, strict=False):
            mapping[id(old_v)] = new_v
    fused = builder.ret(*[mapping[id(v)] for v in consumer.returns])
    fused.verify()
    return fused


def fuse_linear_chains(graph: FlowGraph, stats: Optional[GraphOptStats] = None) -> int:
    """Repeatedly merge single-consumer IR vertex pairs; returns #fusions."""
    stats = stats or GraphOptStats()
    fused_total = 0
    changed = True
    while changed:
        changed = False
        for edge in list(graph.edges):
            src = graph.vertices.get(edge.src)
            dst = graph.vertices.get(edge.dst)
            if src is None or dst is None:
                continue
            if src.ir_func is None or dst.ir_func is None:
                continue
            if edge.key is not None:
                continue  # keyed edges force a shuffle; cannot fuse across
            if len(graph.out_edges(src.vertex_id)) != 1:
                continue
            if src.parallelism != dst.parallelism:
                continue
            if graph.in_edges(src.vertex_id) and any(
                e.key is not None for e in graph.in_edges(src.vertex_id)
            ):
                pass  # producer's own inputs may be keyed; that is fine
            fused_func = _concat_ir(
                src.ir_func, dst.ir_func, edge.dst_port, f"{src.name}+{dst.name}"
            )
            fused_vertex = graph.add_vertex(
                f"{src.name}+{dst.name}",
                ir_func=fused_func,
                compute_cost=src.compute_cost + dst.compute_cost,
                output_nbytes=dst.output_nbytes,
                supported_kinds=src.supported_kinds & dst.supported_kinds
                or src.supported_kinds,
                parallelism=dst.parallelism,
            )
            _rewire_after_fusion(graph, src, dst, edge, fused_vertex)
            fused_total += 1
            stats.vertices_fused += 1
            changed = True
            break
    graph.validate()
    return fused_total


def _rewire_after_fusion(
    graph: FlowGraph, src: Vertex, dst: Vertex, via: Edge, fused: Vertex
) -> None:
    """Producer inputs come first in the fused param list, then consumer's
    remaining inputs (consumer port ``via.dst_port`` was inlined)."""
    new_edges: List[Edge] = []
    n_src_inputs = len(graph.in_edges(src.vertex_id))
    for edge in graph.edges:
        if edge is via:
            continue
        if edge.dst == src.vertex_id:
            new_edges.append(Edge(edge.src, fused.vertex_id, edge.dst_port, edge.key))
        elif edge.dst == dst.vertex_id:
            port = edge.dst_port
            new_port = n_src_inputs + (port if port < via.dst_port else port - 1)
            new_edges.append(Edge(edge.src, fused.vertex_id, new_port, edge.key))
        elif edge.src == dst.vertex_id:
            new_edges.append(Edge(fused.vertex_id, edge.dst, edge.dst_port, edge.key))
        elif edge.src == src.vertex_id:
            raise GraphValidationError("producer had multiple consumers")  # guarded above
        else:
            new_edges.append(edge)
    graph.edges = new_edges
    del graph.vertices[src.vertex_id]
    del graph.vertices[dst.vertex_id]


def prune_dead_vertices(
    graph: FlowGraph,
    live_sinks: Optional[Sequence[Vertex]] = None,
    stats: Optional[GraphOptStats] = None,
) -> int:
    """Remove vertices from which no live sink is reachable."""
    stats = stats or GraphOptStats()
    live: Set[str] = {
        v.vertex_id for v in (live_sinks if live_sinks is not None else graph.sinks())
    }
    changed = True
    while changed:
        changed = False
        for edge in graph.edges:
            if edge.dst in live and edge.src not in live:
                live.add(edge.src)
                changed = True
    dead = [vid for vid in graph.vertices if vid not in live]
    for vid in dead:
        del graph.vertices[vid]
        stats.vertices_pruned += 1
    graph.edges = [e for e in graph.edges if e.src in live and e.dst in live]
    graph.validate()
    return len(dead)


def optimize(graph: FlowGraph) -> GraphOptStats:
    """The default rule set: prune, then fuse."""
    stats = GraphOptStats()
    prune_dead_vertices(graph, stats=stats)
    fuse_linear_chains(graph, stats=stats)
    return stats
