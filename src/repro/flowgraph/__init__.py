"""FlowGraph: logical and physical graph tiers of the access layer."""

from .launch import collect_sink, launch_physical_graph
from .logical import Edge, FlowGraph, GraphValidationError, Vertex
from .optimizer import (
    GraphOptStats,
    fuse_linear_chains,
    optimize,
    prune_dead_vertices,
)
from .physical import GatherMode, PhysicalGraph, PhysicalTask, to_physical

__all__ = [
    "FlowGraph",
    "Vertex",
    "Edge",
    "GraphValidationError",
    "optimize",
    "fuse_linear_chains",
    "prune_dead_vertices",
    "GraphOptStats",
    "PhysicalGraph",
    "PhysicalTask",
    "GatherMode",
    "to_physical",
    "launch_physical_graph",
    "collect_sink",
]
