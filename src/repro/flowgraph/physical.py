"""The physical sharded graph tier.

Lowering a logical FlowGraph means "possibly creating sharded vertices
along keyed edges and then mapping vertices to hardware operators" (§1).
Concretely:

* every logical vertex becomes ``parallelism`` physical tasks (Figure 2's
  subscripts);
* a keyed edge from an m-way producer to an n-way consumer becomes a
  shuffle: m*n *split* tasks select hash partitions, and each consumer
  shard gathers its n partitions (split tasks co-locate with their
  producer under data-centric scheduling, so only the partition crosses
  the network);
* hardware mapping is carried as ``supported_kinds`` plus optional
  per-shard device pins (how Figure 2's D becomes D1-gpu and D2-fpga).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..cluster.hardware import DeviceKind
from .logical import FlowGraph, GraphValidationError, Vertex

__all__ = ["PhysicalTask", "PhysicalGraph", "GatherMode", "to_physical"]


class GatherMode(enum.Enum):
    DIRECT = "direct"  # exactly one producer: pass its value through
    CONCAT = "concat"  # many producers: concatenate record batches
    LIST = "list"  # many producers: pass the list as-is


@dataclass
class PhysicalTask:
    ptask_id: str
    kind: str  # "source" | "compute" | "split"
    vertex_id: str
    name: str
    shard: int
    parallelism: int
    inputs: List[Tuple[GatherMode, List[str]]] = field(default_factory=list)
    compute_cost: float = 1e-5
    output_nbytes: Optional[int] = None
    supported_kinds: FrozenSet[DeviceKind] = frozenset({DeviceKind.CPU})
    pinned_device: Optional[str] = None
    # split-task parameters
    split_key: Optional[str] = None
    split_index: int = 0
    split_n: int = 1

    def __repr__(self) -> str:
        return f"PhysicalTask({self.ptask_id}:{self.name})"


class PhysicalGraph:
    def __init__(self, logical: FlowGraph):
        self.logical = logical
        self.tasks: Dict[str, PhysicalTask] = {}
        self.order: List[str] = []  # topological
        self.shards_of: Dict[str, List[str]] = {}  # vertex_id -> ptask ids
        self._sink_cache: Optional[Dict[str, List[str]]] = None

    def add(self, task: PhysicalTask) -> PhysicalTask:
        if task.ptask_id in self.tasks:
            raise GraphValidationError(f"duplicate physical task {task.ptask_id!r}")
        self.tasks[task.ptask_id] = task
        self.order.append(task.ptask_id)
        self._sink_cache = None
        return task

    def sink_tasks(self) -> Dict[str, List[str]]:
        if self._sink_cache is None:
            self._sink_cache = {
                v.vertex_id: self.shards_of[v.vertex_id]
                for v in self.logical.sinks()
            }
        return self._sink_cache

    def consumers(self) -> Dict[str, List[str]]:
        """ptask id -> the tasks that read its output (dangling producer
        ids are kept under their own key so callers can spot them)."""
        table: Dict[str, List[str]] = {pid: [] for pid in self.tasks}
        for pid, task in self.tasks.items():
            for _, producer_ids in task.inputs:
                for producer in producer_ids:
                    table.setdefault(producer, []).append(pid)
        return table

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:
        return f"PhysicalGraph({self.logical.name}, {self.num_tasks} tasks)"


def to_physical(
    graph: FlowGraph,
    parallelism_overrides: Optional[Dict[str, int]] = None,
    device_pins: Optional[Dict[str, Sequence[str]]] = None,
) -> PhysicalGraph:
    """Lower a validated FlowGraph to its physical sharded form.

    ``parallelism_overrides`` maps vertex_id -> degree (else the vertex's
    default); ``device_pins`` maps vertex_id -> one device id per shard.
    """
    graph.validate()
    parallelism_overrides = parallelism_overrides or {}
    device_pins = device_pins or {}
    pgraph = PhysicalGraph(graph)

    def degree(vertex: Vertex) -> int:
        return parallelism_overrides.get(vertex.vertex_id, vertex.parallelism)

    for vertex in graph.topological_order():
        n = degree(vertex)
        pins = device_pins.get(vertex.vertex_id)
        if pins is not None and len(pins) != n:
            raise GraphValidationError(
                f"{vertex!r}: {len(pins)} device pins for {n} shards"
            )
        shard_ids: List[str] = []
        # Keyed out-edges force the single-consumer restriction (see split logic).
        keyed_out = [e for e in graph.out_edges(vertex.vertex_id) if e.key is not None]
        if keyed_out and len(graph.out_edges(vertex.vertex_id)) > 1:
            raise GraphValidationError(
                f"{vertex!r} has a keyed out-edge and multiple consumers; "
                "materialize an explicit copy vertex first"
            )

        for shard in range(n):
            ptask_id = f"{vertex.vertex_id}.{shard}"
            inputs = _shard_inputs(graph, pgraph, vertex, shard, n, degree)
            task = PhysicalTask(
                ptask_id=ptask_id,
                kind="source" if vertex.is_source else "compute",
                vertex_id=vertex.vertex_id,
                name=f"{vertex.name}[{shard}/{n}]",
                shard=shard,
                parallelism=n,
                inputs=inputs,
                compute_cost=vertex.compute_cost / n,
                output_nbytes=(
                    None
                    if vertex.output_nbytes is None
                    else max(1, vertex.output_nbytes // n)
                ),
                supported_kinds=vertex.supported_kinds,
                pinned_device=pins[shard] if pins is not None else None,
            )
            pgraph.add(task)
            shard_ids.append(ptask_id)
        pgraph.shards_of[vertex.vertex_id] = shard_ids
    return pgraph


def _shard_inputs(
    graph: FlowGraph,
    pgraph: PhysicalGraph,
    vertex: Vertex,
    shard: int,
    n: int,
    degree,
) -> List[Tuple[GatherMode, List[str]]]:
    inputs: List[Tuple[GatherMode, List[str]]] = []
    for edge in graph.in_edges(vertex.vertex_id):
        src_vertex = graph.vertices[edge.src]
        m = degree(src_vertex)
        src_shards = pgraph.shards_of[edge.src]
        if edge.key is not None:
            # shuffle: per-producer split tasks, consumer gathers partition i
            part_ids = [
                _split_task(pgraph, src_vertex, src_ptask, edge.key, shard, n, j)
                for j, src_ptask in enumerate(src_shards)
            ]
            mode = GatherMode.CONCAT if len(part_ids) > 1 else GatherMode.DIRECT
            inputs.append((mode, part_ids))
        elif m == n:
            inputs.append((GatherMode.DIRECT, [src_shards[shard]]))
        elif m == 1:
            inputs.append((GatherMode.DIRECT, [src_shards[0]]))  # broadcast
        elif n == 1:
            inputs.append((GatherMode.CONCAT, list(src_shards)))  # gather
        else:
            raise GraphValidationError(
                f"edge {edge.src}->{edge.dst}: resharding {m}->{n} requires a keyed edge"
            )
    return inputs


def _split_task(
    pgraph: PhysicalGraph,
    src_vertex: Vertex,
    src_ptask: str,
    key: str,
    part_index: int,
    num_parts: int,
    src_shard: int,
) -> str:
    ptask_id = f"{src_ptask}.part{part_index}"
    if ptask_id in pgraph.tasks:
        return ptask_id
    src = pgraph.tasks[src_ptask]
    task = PhysicalTask(
        ptask_id=ptask_id,
        kind="split",
        vertex_id=src_vertex.vertex_id,
        name=f"split:{src_vertex.name}[{src_shard}]->{part_index}",
        shard=part_index,
        parallelism=num_parts,
        inputs=[(GatherMode.DIRECT, [src_ptask])],
        compute_cost=1e-6,
        output_nbytes=(
            None
            if src.output_nbytes is None
            else max(1, src.output_nbytes // num_parts)
        ),
        supported_kinds=src_vertex.supported_kinds,
        split_key=key,
        split_index=part_index,
        split_n=num_parts,
    )
    pgraph.add(task)
    return ptask_id
