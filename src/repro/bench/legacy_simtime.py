"""Discrete-event simulation kernel.

This is the virtual-time substrate for the disaggregated data-center model.
The paper's performance claims are about where control messages and data
travel (trips through a DPU, pull vs push round-trips, bytes over the
fabric); a deterministic event-driven simulator with explicit cost models
reproduces those shapes without the authors' hardware.

The kernel is deliberately SimPy-like: model code is written as generator
*processes* that ``yield`` awaitables (:class:`Timeout`, :class:`Signal`,
:class:`AllOf`, ...) and the :class:`Simulator` interleaves them in virtual
time.  Determinism is guaranteed: ties in time are broken by a monotonically
increasing sequence number, never by wall-clock or hash order.
"""

# ---------------------------------------------------------------------------
# FROZEN SNAPSHOT — do not modify.
#
# This is the simulator kernel exactly as it stood before the PR 10 speed
# rebuild (single binary heap of dataclass events, trampolined zero-delay
# hops).  It exists for two jobs only:
#
#   * the "seed" stage of BENCH_SIMCORE, so the events/sec trajectory is
#     measured against the real before-state rather than a reconstructed one;
#   * the determinism witness in tests/test_simcore_kernel.py, which replays
#     randomized process soups on this kernel and on the live one and
#     asserts identical event orders.
#
# Production code must import repro.cluster.simtime.
# ---------------------------------------------------------------------------

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Signal",
    "AllOf",
    "AnyOf",
    "Resource",
    "Channel",
    "SimulationError",
    "Interrupt",
]


class SimulationError(RuntimeError):
    """Raised for structural errors in a simulation (e.g. deadlock)."""


class Interrupt(Exception):
    """Injected into a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Awaitable:
    """Base class for things a process may ``yield``.

    An awaitable is *triggered* at most once with a value; processes waiting
    on it are resumed with that value.
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[["Awaitable"], None]] = []

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Awaitable"], None]) -> None:
        if self.triggered:
            # Run on the event loop to preserve run-to-completion semantics.
            self.sim.schedule(0.0, lambda: cb(self))
        else:
            self._callbacks.append(cb)


class Timeout(Awaitable):
    """Fires after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self.trigger, value)


class Signal(Awaitable):
    """A one-shot event that model code triggers explicitly.

    Multiple processes may wait on the same signal; all are resumed with the
    signalled value.  Use :meth:`succeed` from model code.
    """

    # Signals are the single hottest allocation in transfer-heavy runs
    # (every link grant and every chunk arrival is one); an empty __slots__
    # keeps them dict-free like the other awaitables.
    __slots__ = ()

    def succeed(self, value: Any = None) -> None:
        self.trigger(value)

    @property
    def ok(self) -> bool:
        return self.triggered


class AllOf(Awaitable):
    """Triggered when every child awaitable has triggered.

    The value is the list of child values in the given order.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, sim: "Simulator", children: Iterable[Awaitable]):
        super().__init__(sim)
        self._children = list(children)
        self._pending = len(self._children)
        if self._pending == 0:
            sim.schedule(0.0, self.trigger, [])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, _child: Awaitable) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.trigger([c.value for c in self._children])


class AnyOf(Awaitable):
    """Triggered when the first child awaitable triggers.

    The value is ``(index, value)`` of the first child to fire.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", children: Iterable[Awaitable]):
        super().__init__(sim)
        self._children = list(children)
        if not self._children:
            raise ValueError("AnyOf requires at least one child")
        for i, child in enumerate(self._children):
            child.add_callback(lambda c, i=i: self._on_child(i, c))

    def _on_child(self, index: int, child: Awaitable) -> None:
        if not self.triggered:
            self.trigger((index, child.value))


class Process(Awaitable):
    """A running generator; itself awaitable (fires when the generator ends).

    The value is the generator's return value (``StopIteration.value``).
    """

    __slots__ = ("name", "_gen", "_waiting_on", "_interrupted")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._waiting_on: Optional[Awaitable] = None
        self._interrupted: Optional[Interrupt] = None
        sim.schedule(0.0, self._step, None, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            return
        self._interrupted = Interrupt(cause)
        # Detach from whatever it was waiting on; resume immediately.
        self.sim.schedule(0.0, self._maybe_deliver_interrupt)

    def _maybe_deliver_interrupt(self) -> None:
        if self.triggered or self._interrupted is None:
            return
        exc, self._interrupted = self._interrupted, None
        self._waiting_on = None
        self._step(None, exc)

    def _on_waited(self, awaited: Awaitable) -> None:
        # Stale wake-up after an interrupt already resumed us.
        if self._waiting_on is not awaited:
            return
        self._waiting_on = None
        self._step(awaited.value, None)

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        try:
            if throw_exc is not None:
                awaited = self._gen.throw(throw_exc)
            else:
                awaited = self._gen.send(send_value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as clean exit.
            self.trigger(None)
            return
        if not isinstance(awaited, Awaitable):
            raise SimulationError(
                f"process {self.name!r} yielded {awaited!r}, expected an Awaitable"
            )
        if awaited.triggered:
            self.sim.schedule(0.0, self._step, awaited.value, None)
        else:
            self._waiting_on = awaited
            awaited.add_callback(self._on_waited)


class Resource:
    """A counted resource (execution slots on a device, NIC queues, ...).

    ``request()`` returns an awaitable that fires when a slot is granted; the
    holder must call ``release()`` exactly once.  FIFO granting keeps the
    model deterministic.
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_queue")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Signal] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Awaitable:
        grant = Signal(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            self.sim.schedule(0.0, grant.succeed)
        else:
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            self.sim.schedule(0.0, grant.succeed)
        else:
            self._in_use -= 1

    def use(self, duration: float) -> Process:
        """Convenience: hold one slot for ``duration`` virtual time."""

        def _use() -> Generator:
            yield self.request()
            try:
                yield Timeout(self.sim, duration)
            finally:
                self.release()

        return self.sim.process(_use())


class Channel:
    """An unbounded FIFO message channel between processes."""

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            self.sim.schedule(0.0, getter.succeed, item)
        else:
            self._items.append(item)

    def get(self) -> Awaitable:
        sig = Signal(self.sim)
        if self._items:
            item = self._items.popleft()
            self.sim.schedule(0.0, sig.succeed, item)
        else:
            self._getters.append(sig)
        return sig


@dataclass(order=True, slots=True)
class _ScheduledEvent:
    time: float
    # a bare int normally; ``(rank, int)`` when a perturbation is installed
    # (both orderings are total because the int component stays unique)
    seq: Any
    fn: Callable = field(compare=False)
    args: tuple = field(compare=False, default=())


class Simulator:
    """The event loop: a priority queue of timestamped callbacks."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        # schedule perturbation hook: maps (seq, delay) -> (rank, delay).
        # ``rank`` re-keys ties at one instant; ``delay`` may be stretched
        # (never shrunk below zero) to jitter delivery within causal
        # constraints.  None (the default) is the bit-for-bit legacy path.
        self._perturb: Optional[Callable[[int, float], tuple]] = None

    @property
    def now(self) -> float:
        return self._now

    def set_perturbation(
        self, perturb: Optional[Callable[[int, float], tuple]]
    ) -> None:
        """Install (or clear) a schedule perturbation.

        Must be called while the event queue is empty: mixing plain-int and
        ``(rank, int)`` tie keys in one heap would make entries incomparable.
        """
        if self._queue:
            raise SimulationError(
                "a schedule perturbation must be installed on an idle simulator"
            )
        self._perturb = perturb

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        if self._perturb is None:
            key: Any = self._seq
        else:
            rank, delay = self._perturb(self._seq, delay)
            key = (rank, self._seq)
        heapq.heappush(self._queue, _ScheduledEvent(self._now + delay, key, fn, args))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn`` at an *absolute* virtual time.

        Chaos schedules are authored in absolute time ("crash server1 at
        t=0.5"); this clamps events whose time already passed to "now"
        rather than raising, so a schedule can be attached mid-run.
        """
        self.schedule(max(0.0, when - self._now), fn, *args)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def signal(self) -> Signal:
        return Signal(self)

    def all_of(self, children: Iterable[Awaitable]) -> AllOf:
        return AllOf(self, children)

    def any_of(self, children: Iterable[Awaitable]) -> AnyOf:
        return AnyOf(self, children)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None when idle."""
        return self._queue[0].time if self._queue else None

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time passes ``until``.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0].time > until:
                    self._now = until
                    break
                ev = heapq.heappop(self._queue)
                self._now = ev.time
                ev.fn(*ev.args)
        finally:
            self._running = False
        return self._now

    def run_until_complete(self, proc: Process, limit: float = math.inf) -> Any:
        """Run until ``proc`` finishes; raise if the queue drains first."""
        self.run(until=None if limit == math.inf else limit)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not complete (deadlock or time limit)"
            )
        return proc.value
