"""Deterministic workload generators for the experiment suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np

from ..caching.columnar import RecordBatch
from ..runtime.autoscaler import Job

__all__ = [
    "orders_table",
    "customers_table",
    "lineitem_like_table",
    "bursty_trace",
    "poisson_trace",
]


def orders_table(num_rows: int, num_customers: int = 100, seed: int = 0) -> RecordBatch:
    rng = np.random.default_rng(seed)
    return RecordBatch.from_arrays(
        {
            "oid": np.arange(num_rows, dtype=np.int64),
            "cust": rng.integers(0, num_customers, num_rows),
            "amount": np.round(rng.random(num_rows) * 100, 2),
            "qty": rng.integers(1, 10, num_rows),
        }
    )


def customers_table(num_customers: int = 100, num_regions: int = 4, seed: int = 1) -> RecordBatch:
    rng = np.random.default_rng(seed)
    return RecordBatch.from_arrays(
        {
            "cid": np.arange(num_customers, dtype=np.int64),
            "region": rng.integers(0, num_regions, num_customers),
            "credit": np.round(rng.random(num_customers) * 1000, 2),
        }
    )


def lineitem_like_table(num_rows: int, seed: int = 2) -> RecordBatch:
    """A TPC-H lineitem-flavoured fact table."""
    rng = np.random.default_rng(seed)
    return RecordBatch.from_arrays(
        {
            "l_orderkey": rng.integers(0, max(num_rows // 4, 1), num_rows),
            "l_partkey": rng.integers(0, 200, num_rows),
            "l_quantity": rng.integers(1, 50, num_rows).astype(np.float64),
            "l_extendedprice": np.round(rng.random(num_rows) * 1e4, 2),
            "l_discount": np.round(rng.random(num_rows) * 0.1, 2),
            "l_tax": np.round(rng.random(num_rows) * 0.08, 2),
            "l_returnflag": rng.integers(0, 3, num_rows),
            "l_linestatus": rng.integers(0, 2, num_rows),
        }
    )


def bursty_trace(
    bursts: int = 10,
    jobs_per_burst: int = 20,
    burst_interval: float = 100.0,
    duration_range: Tuple[float, float] = (0.5, 2.0),
    seed: int = 0,
) -> List[Job]:
    """Bursts of short jobs separated by idle gaps (serverless-friendly)."""
    rng = random.Random(seed)
    jobs: List[Job] = []
    jid = 0
    for burst in range(bursts):
        t0 = burst * burst_interval
        for _ in range(jobs_per_burst):
            jobs.append(
                Job(
                    job_id=jid,
                    arrival=t0 + rng.random() * 2.0,
                    duration=rng.uniform(*duration_range),
                )
            )
            jid += 1
    return jobs


def poisson_trace(
    rate: float = 1.0,
    horizon: float = 500.0,
    duration_range: Tuple[float, float] = (0.5, 2.0),
    seed: int = 0,
) -> List[Job]:
    rng = random.Random(seed)
    jobs: List[Job] = []
    t = 0.0
    jid = 0
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        jobs.append(Job(job_id=jid, arrival=t, duration=rng.uniform(*duration_range)))
        jid += 1
    return jobs
