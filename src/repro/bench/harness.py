"""Result-table formatting for the benchmark harness.

Every experiment prints rows through :class:`ResultTable` so the benches
regenerate paper-style tables/series with a uniform look, and EXPERIMENTS.md
can quote them verbatim.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["ResultTable", "fmt_seconds", "fmt_bytes", "speedup"]


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def fmt_bytes(nbytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(nbytes) < 1024 or unit == "GiB":
            return f"{nbytes:.1f} {unit}" if unit != "B" else f"{int(nbytes)} B"
        nbytes /= 1024
    raise AssertionError("unreachable")


def speedup(baseline: float, measured: float) -> str:
    if measured <= 0:
        return "inf"
    return f"{baseline / measured:.2f}x"


class ResultTable:
    """A fixed-column text table with a title, printed like paper tables."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([str(v) for v in values])

    def to_text(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths, strict=False)))
        lines.append(sep)
        lines.extend(
            " | ".join(c.ljust(w) for c, w in zip(row, widths, strict=False))
            for row in self.rows
        )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.to_text())

    def column_values(self, name: str) -> List[str]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]
