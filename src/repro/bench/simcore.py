"""BENCH_SIMCORE — events/sec on the simulator core, per kernel feature.

The flagship scenarios (E17 soak, E21 data plane, E22/E23 overload+serving,
E25 HA) all bottom out in ``repro.cluster.simtime``; at serving scale the
event loop *is* the hardware.  This module measures the loop itself on
process soups shaped like the flagship scenarios' event mixes — stripped of
model code so the numbers attribute to the kernel, not to scheduler or
placement logic (the "Runtime vs Scheduler" decomposition from the Dask
overhead paper, applied to our own substrate).

Four kernels:

* ``e17_soak_loop`` — the E17 chaos-soak mix, heartbeat-dominated like the
  real soak: per-endpoint senders and blade probes every 1 ms shipping
  multi-hop control messages, a monitor tick, and DAG task lanes with
  execution-slot grants, scattered compute timeouts, chaos interrupts and
  retries.
* ``e21_transfer_loop`` — the E21 data-plane mix: chunked cut-through
  pipelines as channel/grant/timeout chains over contended links.
* ``zero_delay_loop`` — pure same-instant traffic: resolved-future yields,
  ``timeout(0)`` hops, channel ping-pong.  Stresses the microtask ring and
  the inline resumption fast path.
* ``idle_poll`` — 1 ms pollers over long idle spans with sparse real work.
  Stresses the opt-in idle fast-forward.

Each kernel runs under cumulative stages so every change is attributable::

    seed        the frozen pre-rebuild kernel (bench/legacy_simtime.py)
    heap        the live kernel forced onto its legacy single-heap path
    bucket      + per-timestamp bucket calendar (tuple events)
    batching    + same-instant batch drain (one heap pop per instant)
    ring        + microtask ring for zero-delay events + inline resumption
    fastforward + analytic idle skip (only meaningful for idle_poll)

(``seed`` vs ``heap`` isolates the allocation cuts that apply to every
queue discipline: tuple events, shared callback lists, cached bound
methods, flattened constructors.)

Every stage must produce a bit-for-bit identical execution — the kernels
record completion traces and the harness asserts the checksums match,
*including* on the frozen seed kernel (fast-forward is exempt: it coalesces
poller wake-ups by design, so only its model-visible trace is compared).

Run directly for a table + JSON::

    python -m repro.bench.simcore --json BENCH_SIMCORE.json
    python -m repro.bench.simcore --check new.json baselines/BENCH_SIMCORE.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench import legacy_simtime
from repro.cluster import simtime

__all__ = [
    "STAGES",
    "KERNELS",
    "run_stage",
    "run_kernel",
    "run_benchmarks",
    "compare_results",
]

# Cumulative feature stages (each includes everything above it).  The flag
# dict is None for the seed stage: it runs the frozen legacy module, which
# has no switches.
STAGES: List[Tuple[str, Optional[Dict[str, bool]]]] = [
    ("seed", None),
    ("heap", dict(bucket_queue=False, instant_batching=False, microtask_ring=False)),
    ("bucket", dict(bucket_queue=True, instant_batching=False, microtask_ring=False)),
    ("batching", dict(bucket_queue=True, instant_batching=True, microtask_ring=False)),
    ("ring", dict(bucket_queue=True, instant_batching=True, microtask_ring=True)),
    ("fastforward", dict(bucket_queue=True, instant_batching=True, microtask_ring=True)),
]


def _checksum(trace: List) -> str:
    return hashlib.md5(repr(trace).encode()).hexdigest()[:16]


def _cancel_grant(resource: Any, grant: Any) -> None:
    """Withdraw a resource grant, portably across kernel generations.

    The live kernel has ``Resource.cancel``; the frozen seed kernel predates
    it (the slot-leak satellite fix), so the same logic is applied by hand
    there to keep the executions comparable.
    """
    cancel = getattr(resource, "cancel", None)
    if cancel is not None:
        cancel(grant)
        return
    try:
        resource._queue.remove(grant)
    except ValueError:
        resource.release()


# ---------------------------------------------------------------------------
# kernels — each takes the simtime module to run against (the live one or
# the frozen seed) and returns (full_trace, model_trace).  full_trace must
# be bit-for-bit stable across every exact stage *and* the seed kernel;
# model_trace additionally across fast-forward (it excludes poller-
# observation timing).
# ---------------------------------------------------------------------------


def e17_soak_kernel(mod: Any, sim: Any, scale: float = 1.0) -> Tuple[List, List]:
    """The E17 chaos-soak event mix as a pure kernel loop.

    Shaped like the real soak (``benchmarks/test_e17_chaos_soak.py``):
    build_serverful(4) with ``heartbeat_interval=1e-3`` means the event
    stream is dominated by liveness traffic — per-endpoint heartbeat
    senders and per-blade probes every millisecond, each shipping a
    multi-hop message process — over a bed of DAG task lanes contending for
    capacity-2 execution slots, with chaos interrupts forcing retries.
    """
    rng = random.Random(0xE17)
    n_servers = 4
    n_endpoints = 10  # raylet endpoints beating (serverful(4): cpus + head)
    n_blades = 4
    lanes = 16
    depth = max(1, int(100 * scale))
    hb_interval = 1e-3
    hop_latency = 25e-6
    slots = [
        mod.Resource(sim, capacity=2, name=f"server{i}") for i in range(n_servers)
    ]
    active = [True]
    trace: List = []
    # Hoist the factory lookups once for the whole kernel: the metric
    # targets the event loop, so the harness keeps its own attribute-lookup
    # overhead out of the measurement (the event mix is unchanged — both
    # kernel generations run this exact code).
    timeout = sim.timeout
    process = sim.process
    uniform = rng.uniform
    rand = rng.random

    # Every message terminates in the head node's inbox, exactly like the
    # real soak (beats land in the health monitor's receive loop, results in
    # the owning raylet's) — each delivery is a zero-delay channel hand-off,
    # which is what makes ``schedule(0.0, ...)`` ~half of all pushes in real
    # runs (see ISSUE/ROADMAP item 3).
    inbox = mod.Channel(sim, name="head_inbox")
    beats = [0]

    def hop_message(payload):  # the 2-hop message body, hop loop unrolled
        yield timeout(hop_latency)
        yield timeout(hop_latency)
        inbox.put(payload)

    def hop_message1(payload):
        yield timeout(hop_latency)
        inbox.put(payload)

    def head_receiver():
        while active[0]:
            yield inbox.get()
            beats[0] += 1

    def heartbeat_sender(endpoint: int):
        while active[0]:
            yield timeout(hb_interval)
            # beat to the head node: serialize + 2 hops, fire-and-forget
            process(hop_message(endpoint), name="hb")

    def blade_prober(blade: int):
        while active[0]:
            yield timeout(hb_interval)
            process(hop_message1(blade), name="probe")

    def monitor():
        while active[0]:
            yield timeout(hb_interval)

    def task(lane: int, d: int):
        server = (lane + d) % n_servers
        grant = slots[server].request()
        try:
            yield grant
        except mod.Interrupt:
            _cancel_grant(slots[server], grant)
            return "killed"
        try:
            try:
                yield timeout(uniform(2e-3, 8e-3))
            finally:
                slots[server].release()
            # ship the result over two hops, then surface a resolved future
            yield process(hop_message((lane, d)), name="result")
        except mod.Interrupt:
            return "killed"
        ready = mod.Signal(sim)
        ready.succeed(d)
        yield ready  # a consumer waiting on an already-resolved object
        return "ok"

    def killer(victim: Any, after: float):
        yield timeout(after)
        if not victim.triggered:
            victim.interrupt("chaos")

    def lane_proc(lane: int):
        for d in range(depth):
            for attempt in (0, 1):
                p = process(task(lane, d), name=f"task{lane}.{d}")
                if attempt == 0 and rand() < 0.10:
                    process(killer(p, uniform(5e-4, 4e-3)), name="chaos")
                outcome = yield p
                if outcome == "ok":
                    break
            trace.append((lane, d, round(sim.now, 9)))

    for e in range(n_endpoints):
        sim.process(heartbeat_sender(e), name=f"hb{e}")
    for b in range(n_blades):
        sim.process(blade_prober(b), name=f"blade{b}")
    sim.process(monitor(), name="monitor")
    sim.process(head_receiver(), name="head_rx")

    def workload():
        yield mod.AllOf(sim, [sim.process(lane_proc(ln)) for ln in range(lanes)])
        active[0] = False

    sim.process(workload(), name="workload")
    sim.run()
    trace.append(beats[0])
    trace.append(round(sim.now, 9))
    return trace, trace


def e21_transfer_kernel(mod: Any, sim: Any, scale: float = 1.0) -> Tuple[List, List]:
    """The E21 data-plane mix: chunked cut-through pipelines.

    Each route is a 4-stage forwarder chain (channel get → link grant →
    per-chunk latency → release → downstream put) over a shared pool of
    links, so chunk arrivals pile onto shared instants under contention.
    """
    n_routes = max(1, int(48 * scale))
    n_chunks = 24
    hops = 4
    chunk_time = 4e-5
    links = [mod.Resource(sim, capacity=1, name=f"link{i}") for i in range(6)]
    trace: List = []

    def forwarder(route: int, hop: int, inbox: Any, outbox: Optional[Any]):
        link = links[(route + hop) % len(links)]
        for _ in range(n_chunks):
            chunk = yield inbox.get()
            yield link.request()
            try:
                yield sim.timeout(chunk_time)
            finally:
                link.release()
            if outbox is not None:
                outbox.put(chunk)
            else:
                trace.append((route, chunk, round(sim.now, 9)))

    def source(route: int, inbox: Any):
        for c in range(n_chunks):
            inbox.put(c)
            yield sim.timeout(chunk_time)

    for r in range(n_routes):
        chans = [mod.Channel(sim, name=f"r{r}h{h}") for h in range(hops)]
        sim.process(source(r, chans[0]), name=f"src{r}")
        for h in range(hops):
            nxt = chans[h + 1] if h + 1 < hops else None
            sim.process(forwarder(r, h, chans[h], nxt), name=f"fwd{r}.{h}")
    sim.run()
    trace.append(round(sim.now, 9))
    return trace, trace


def zero_delay_kernel(mod: Any, sim: Any, scale: float = 1.0) -> Tuple[List, List]:
    """Pure same-instant traffic: ring + inline-resumption stress."""
    n_workers = 64
    rounds = max(1, int(400 * scale))
    ch = mod.Channel(sim, name="ring")
    trace: List = []

    def worker(i: int):
        total = 0
        for k in range(rounds):
            sig = mod.Signal(sim)
            sig.succeed(k)
            total += yield sig  # resolved future: inline fast path
            yield sim.timeout(0.0)  # explicit trampoline hop
            ch.put((i, k))
            got = yield ch.get()
            total += got[1]
        trace.append((i, total))

    for i in range(n_workers):
        sim.process(worker(i), name=f"w{i}")
    sim.run()
    trace.append(round(sim.now, 9))
    return trace, trace


def idle_poll_kernel(mod: Any, sim: Any, scale: float = 1.0) -> Tuple[List, List]:
    """Pollers every 1 ms across long idle spans; work every 250 ms.

    The poller bodies are pure observations, so the idle fast-forward may
    coalesce their wake-ups; ``model_trace`` holds only the work-visible
    part, which must be identical with and without fast-forward.
    """
    n_pollers = 8
    n_work = max(1, int(8 * scale))
    active = [True]
    observed = [0]
    model_trace: List = []
    poll = getattr(sim, "poll_timeout", sim.timeout)  # seed kernel: plain tick

    def poller(i: int):
        while active[0]:
            yield poll(1e-3)
            observed[0] += 1

    def worker():
        for k in range(n_work):
            yield sim.timeout(0.25)
            model_trace.append((k, round(sim.now, 9)))
        active[0] = False

    for i in range(n_pollers):
        sim.process(poller(i), name=f"poll{i}")
    sim.process(worker(), name="worker")
    sim.run()
    # The final drain time (the last poller wake-up after the work ends) is
    # exact-stage state, not model state: a deferred tick re-arms from its
    # jump target, so its successor differs from the accumulated tick chain
    # in the last float ulp.  The exact stages still pin it via ``full``.
    full = model_trace + [round(sim.now, 9), observed[0]]
    return full, list(model_trace)


KERNELS: List[Tuple[str, Callable[[Any, Any, float], Tuple[List, List]]]] = [
    ("e17_soak_loop", e17_soak_kernel),
    ("e21_transfer_loop", e21_transfer_kernel),
    ("zero_delay_loop", zero_delay_kernel),
    ("idle_poll", idle_poll_kernel),
]


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def run_stage(
    kernel: Callable[[Any, Any, float], Tuple[List, List]],
    stage: str,
    flags: Optional[Dict[str, bool]],
    scale: float,
) -> Dict[str, Any]:
    if flags is None:
        mod: Any = legacy_simtime
        sim = legacy_simtime.Simulator()
    else:
        mod = simtime
        sim = simtime.Simulator(**flags)
        if stage == "fastforward":
            sim.fast_forward = True
    t0 = time.perf_counter()
    full_trace, model_trace = kernel(mod, sim, scale)
    wall = time.perf_counter() - t0
    if flags is None:
        # the frozen kernel predates events_executed(): every scheduled
        # event except the still-pending ones was dispatched
        events = sim._seq - len(sim._queue)
        inline = 0
    else:
        events = sim.events_executed()
        inline = sim.inline_steps
    result: Dict[str, Any] = {
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "inline_steps": inline,
        "checksum": _checksum(full_trace),
        "model_checksum": _checksum(model_trace),
    }
    if stage == "fastforward":
        result["ff_jumps"] = sim.ff_jumps
        result["ff_ticks_deferred"] = sim.ff_ticks_deferred
    return result


def run_kernel(
    name: str,
    kernel: Callable[[Any, Any, float], Tuple[List, List]],
    scale: float,
    repeats: int = 1,
) -> Dict[str, Any]:
    # Interleave the repeats round-robin across stages (not stage-by-stage):
    # machine-speed drift within one benchmark run then biases every stage
    # equally instead of penalizing whichever stage happens to run last;
    # best-of-rounds per stage does the rest.
    stages: Dict[str, Dict[str, Any]] = {}
    for _ in range(max(1, repeats)):
        for stage, flags in STAGES:
            r = run_stage(kernel, stage, flags, scale)
            best = stages.get(stage)
            if best is None or r["wall_s"] < best["wall_s"]:
                stages[stage] = r

    # Bit-for-bit witness: every exact stage — including the frozen seed
    # kernel — replays the same execution.
    exact = [s for s, _ in STAGES if s != "fastforward"]
    checks = {stages[s]["checksum"] for s in exact}
    if len(checks) != 1:
        raise AssertionError(
            f"{name}: stages diverged: "
            + ", ".join(f"{s}={stages[s]['checksum']}" for s in exact)
        )
    # Fast-forward must preserve the model-visible execution.
    if stages["fastforward"]["model_checksum"] != stages["ring"]["model_checksum"]:
        raise AssertionError(f"{name}: fast-forward changed the model-visible trace")

    base = stages["seed"]["events_per_sec"]
    for s, r in stages.items():
        r["speedup_vs_seed"] = r["events_per_sec"] / base if base > 0 else 0.0
    # Wall-clock attribution for fast-forward (it *removes* events, so
    # events/sec is the wrong lens for it).
    ff, ring = stages["fastforward"], stages["ring"]
    ff["wall_speedup_vs_ring"] = (
        ring["wall_s"] / ff["wall_s"] if ff["wall_s"] > 0 else 0.0
    )
    return {
        "scale": scale,
        "events": stages["seed"]["events"],
        "stages": stages,
        "speedup_total": stages["ring"]["speedup_vs_seed"],
    }


def run_benchmarks(scale: float = 1.0, repeats: int = 1) -> Dict[str, Any]:
    kernels = {
        name: run_kernel(name, fn, scale, repeats=repeats) for name, fn in KERNELS
    }
    return {"experiment": "SIMCORE", "scale": scale, "kernels": kernels}


# ---------------------------------------------------------------------------
# regression check (CI)
# ---------------------------------------------------------------------------

REGRESSION_TOLERANCE = 0.20  # >20% speedup-vs-seed drop vs. baseline fails


def compare_results(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Return a list of regression messages (empty = within tolerance).

    Compares each stage's ``speedup_vs_seed``, not raw events/sec: the
    frozen seed kernel runs in the same process, so the ratio cancels out
    machine speed and a CI runner can be meaningfully held against a
    baseline committed from a faster box.  A >``tolerance`` drop in the
    ratio means the fast path itself regressed relative to the seed.
    """
    problems: List[str] = []
    for name, base_k in baseline.get("kernels", {}).items():
        cur_k = current.get("kernels", {}).get(name)
        if cur_k is None:
            problems.append(f"{name}: kernel missing from current results")
            continue
        for stage, base_s in base_k.get("stages", {}).items():
            cur_s = cur_k.get("stages", {}).get(stage)
            if cur_s is None:
                problems.append(f"{name}/{stage}: stage missing from current results")
                continue
            base_ratio = base_s.get("speedup_vs_seed", 0.0)
            cur_ratio = cur_s.get("speedup_vs_seed", 0.0)
            if base_ratio > 0 and cur_ratio < base_ratio * (1.0 - tolerance):
                problems.append(
                    f"{name}/{stage}: {cur_ratio:.2f}x vs seed is "
                    f"{(1 - cur_ratio / base_ratio) * 100:.0f}% below the "
                    f"baseline's {base_ratio:.2f}x"
                )
    return problems


def render_table(results: Dict[str, Any]) -> str:
    from repro.bench.harness import ResultTable

    table = ResultTable(
        "SIMCORE: simulator-core events/sec by kernel feature (cumulative)",
        ["kernel", "stage", "events", "wall", "M ev/s", "vs seed"],
    )
    for name, k in results["kernels"].items():
        for stage, r in k["stages"].items():
            extra = ""
            if stage == "fastforward":
                extra = (
                    f" ({r['ff_jumps']} jumps, "
                    f"{r['wall_speedup_vs_ring']:.1f}x wall vs ring)"
                )
            table.add_row(
                name,
                stage,
                r["events"],
                f"{r['wall_s'] * 1e3:7.1f} ms",
                f"{r['events_per_sec'] / 1e6:6.3f}",
                f"{r['speedup_vs_seed']:5.2f}x" + extra,
            )
    return table.to_text()


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0, help="kernel size multiplier")
    ap.add_argument("--repeats", type=int, default=1, help="take best-of-N walls")
    ap.add_argument("--json", metavar="PATH", help="write results JSON here")
    ap.add_argument(
        "--check",
        nargs=2,
        metavar=("CURRENT", "BASELINE"),
        help="compare two result JSONs; exit 1 on >20%% speedup-vs-seed regression",
    )
    args = ap.parse_args(argv)

    if args.check:
        with open(args.check[0]) as fh:
            current = json.load(fh)
        with open(args.check[1]) as fh:
            baseline = json.load(fh)
        problems = compare_results(current, baseline)
        if problems:
            print("BENCH_SIMCORE regression vs. committed baseline:")
            for p in problems:
                print(f"  REGRESSION {p}")
            return 1
        print("BENCH_SIMCORE: within tolerance of the committed baseline")
        return 0

    results = run_benchmarks(scale=args.scale, repeats=args.repeats)
    print(render_table(results))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
