"""Benchmark harness: workload generators, result tables, Table 1 data."""

from .harness import ResultTable, fmt_bytes, fmt_seconds, speedup
from .related_work import RELATED_WORK, SystemRow, render_table1, skadi_unique_claim
from .workloads import (
    bursty_trace,
    customers_table,
    lineitem_like_table,
    orders_table,
    poisson_trace,
)

__all__ = [
    "ResultTable",
    "fmt_seconds",
    "fmt_bytes",
    "speedup",
    "RELATED_WORK",
    "SystemRow",
    "render_table1",
    "skadi_unique_claim",
    "orders_table",
    "customers_table",
    "lineitem_like_table",
    "bursty_trace",
    "poisson_trace",
]
