"""Table 1 of the paper: the related-work comparison matrix.

The table is data, not prose, so it is regenerable and checkable: the
benchmark renders it and asserts the claims the paper's text makes about
it (e.g. Skadi is the only row with D-API + IR + stateful + PhysDisagg +
Integration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .harness import ResultTable

__all__ = ["SystemRow", "RELATED_WORK", "render_table1", "skadi_unique_claim"]


@dataclass(frozen=True)
class SystemRow:
    name: str
    api: str  # "POSIX" | "I-API" | "D-API"
    ir: Optional[str]  # None | "IR" | "MLIR"
    serverless: Optional[str]  # None | "stateless" | "stateful" | "actor"
    phys_disagg: bool
    integration: bool


RELATED_WORK: List[SystemRow] = [
    SystemRow("Dist. OS", "POSIX", None, None, False, False),
    SystemRow("LegoOS", "POSIX", None, None, True, False),
    SystemRow("FractOS", "I-API", None, None, True, False),
    SystemRow("Molecule", "I-API", None, "stateless", True, False),
    SystemRow("Cloudburst", "I-API", None, "stateful", False, False),
    SystemRow("Pocket", "I-API", None, "stateful", False, False),
    SystemRow("CIEL", "I-API", None, "stateful", False, False),
    SystemRow("Ray", "I-API", None, "stateful", False, True),
    SystemRow("MODC", "I-API", None, "stateful", False, False),
    SystemRow("Pathways", "D-API", "MLIR", "stateful", False, False),
    SystemRow("OneFlow", "D-API", "IR", "actor", False, False),
    SystemRow("Dryad", "D-API", None, "stateless", False, True),
    SystemRow("Naiad", "D-API", None, "stateful", False, True),
    SystemRow("DPA", "D-API", None, "actor", False, True),
    SystemRow("DBOS", "D-API", None, "stateful", False, True),
    SystemRow("TCR", "D-API", "IR", None, False, True),
    SystemRow("DAPHNE", "D-API", "MLIR", "stateless", False, True),
    SystemRow("Skadi", "D-API", "MLIR", "stateful", True, True),
]


def render_table1() -> ResultTable:
    table = ResultTable(
        "Table 1: Related work comparisons",
        ["System", "API", "IR", "Serverless", "PhysDisagg", "Integr."],
    )
    for row in RELATED_WORK:
        table.add_row(
            row.name,
            row.api,
            row.ir or "x",
            row.serverless or "x",
            "yes" if row.phys_disagg else "x",
            "yes" if row.integration else "x",
        )
    return table


def skadi_unique_claim() -> bool:
    """The paper's implicit claim: only Skadi has all five properties."""
    full_house = [
        row.name
        for row in RELATED_WORK
        if row.api == "D-API"
        and row.ir is not None
        and row.serverless == "stateful"
        and row.phys_disagg
        and row.integration
    ]
    return full_house == ["Skadi"]
