"""Multi-tenant serving layer over the distributed runtime.

Turns the single-driver task API into a service: seeded open-loop workload
synthesis for 10k–1M tenants (:mod:`.workload`, :mod:`.arrivals`), tenant
identity/quotas/namespaces (:mod:`.tenants`), an SLO-aware weighted-fair
frontend feeding the runtime's admission machinery (:mod:`.frontend`), and
a head-node load balancer with per-head message-rate tracking, skew
rebalancing and crash failover (:mod:`.balancer`).
"""

from .arrivals import poisson_offsets, uniform_offsets
from .balancer import HeadNodeBalancer, MessageRateTracker
from .frontend import PendingRequest, ServingFrontend
from .tenants import DEFAULT_PROFILES, Tenant, TenantProfile, TenantRegistry
from .workload import (
    DEFAULT_TEMPLATES,
    Request,
    RequestTemplate,
    WorkloadGenerator,
    default_templates,
)

__all__ = [
    "poisson_offsets",
    "uniform_offsets",
    "HeadNodeBalancer",
    "MessageRateTracker",
    "PendingRequest",
    "ServingFrontend",
    "DEFAULT_PROFILES",
    "Tenant",
    "TenantProfile",
    "TenantRegistry",
    "DEFAULT_TEMPLATES",
    "Request",
    "RequestTemplate",
    "WorkloadGenerator",
    "default_templates",
]
