"""Head-node load balancing for serving sessions.

The serving tier terminates client sessions on *head nodes* (the server
nodes that host the GCS in this model).  One head is a single point of
congestion and a single point of failure, so the balancer:

* spreads new sessions across heads, least-loaded first, using a sliding
  window :class:`MessageRateTracker` per head;
* watches for *sustained* skew — one head running hotter than the coldest
  by more than ``skew_threshold`` for ``skew_patience`` consecutive
  observations — and migrates one session at a time from the hottest to
  the coldest head (one at a time, because a bulk migration would just
  trade which head is hot);
* fails over: when chaos kills a head (its raylets die), every session
  homed there is reassigned on its next message, exactly like a client
  noticing its connection broke and re-resolving.

Every decision lands in the runtime's event log (``serving_*`` kinds) and
the per-head rates are exported as ``skadi_serving_head_rate`` gauges, so
chaos runs show a head crash next to the failover storm it causes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..cluster.node import NodeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.runtime import ServerlessRuntime

__all__ = ["MessageRateTracker", "HeadNodeBalancer"]


class MessageRateTracker:
    """Messages per second over a sliding window of virtual time."""

    def __init__(self, window: float = 0.05):
        if window <= 0.0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._times: Deque[float] = deque()

    def note(self, now: float) -> None:
        self._times.append(now)
        self._prune(now)

    def rate(self, now: float) -> float:
        self._prune(now)
        return len(self._times) / self.window

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        times = self._times
        while times and times[0] <= cutoff:
            times.popleft()


class HeadNodeBalancer:
    """Assigns serving sessions to head nodes and keeps the load even."""

    def __init__(
        self,
        runtime: "ServerlessRuntime",
        heads: Optional[Sequence[str]] = None,
        *,
        window: float = 0.05,
        skew_threshold: Optional[float] = None,
        skew_patience: Optional[int] = None,
    ):
        self.runtime = runtime
        cfg = runtime.config
        if heads is None:
            heads = [n.node_id for n in runtime.cluster.nodes_of_kind(NodeKind.SERVER)]
        if not heads:
            raise ValueError("balancer needs at least one head node")
        self.heads: List[str] = sorted(heads)
        self.trackers: Dict[str, MessageRateTracker] = {
            head: MessageRateTracker(window) for head in self.heads
        }
        self.skew_threshold = (
            cfg.serving_rebalance_threshold if skew_threshold is None else skew_threshold
        )
        self.skew_patience = (
            cfg.serving_rebalance_patience if skew_patience is None else skew_patience
        )
        self.sessions: Dict[str, str] = {}  # session id -> head node id
        self.rebalances = 0
        self.failovers = 0
        self._skew_streak = 0

    # -- liveness -------------------------------------------------------------

    def head_alive(self, head: str) -> bool:
        """A head serves sessions while any of its raylets is up.  This is
        the session's own view — a client notices its connection died the
        moment the head does, no failure detector required."""
        raylets = self.runtime._raylets_by_node.get(head, [])
        return any(r.alive for r in raylets)

    def live_heads(self) -> List[str]:
        return [h for h in self.heads if self.head_alive(h)]

    # -- assignment -----------------------------------------------------------

    def assign(self, session_id: str) -> str:
        """Home a new session on the coldest live head (deterministic
        tie-break by node id)."""
        existing = self.sessions.get(session_id)
        if existing is not None:
            return self.head_of(session_id)
        head = self._coldest(self.live_heads())
        self.sessions[session_id] = head
        self.runtime._record("serving_session_assigned", session=session_id, head=head)
        return head

    def head_of(self, session_id: str) -> str:
        """The session's current home, failing over if its head died."""
        head = self.sessions.get(session_id)
        if head is None:
            return self.assign(session_id)
        if not self.head_alive(head):
            live = self.live_heads()
            if not live:
                raise RuntimeError("every head node is dead; serving tier is down")
            new_head = self._coldest(live)
            self.sessions[session_id] = new_head
            self.failovers += 1
            self.runtime.telemetry.registry.counter(
                "skadi_serving_failovers_total",
                "sessions reassigned off a dead head node",
            ).inc()
            self.runtime._record(
                "serving_session_failover",
                session=session_id,
                dead_head=head,
                head=new_head,
            )
            return new_head
        return head

    def note_message(self, session_id: str) -> str:
        """Account one session message against its head; returns the head
        that served it (after any failover) and checks for sustained skew."""
        now = self.runtime.sim.now
        head = self.head_of(session_id)
        tracker = self.trackers[head]
        tracker.note(now)
        self.runtime.telemetry.registry.gauge(
            "skadi_serving_head_rate",
            "per-head serving message rate (sliding window, msgs/s)",
            head=head,
        ).set(tracker.rate(now))
        self._check_skew(now)
        return head

    # -- rebalancing ----------------------------------------------------------

    def _coldest(self, heads: Sequence[str]) -> str:
        """Lowest message rate, then fewest homed sessions (so a burst of
        assignments before any traffic still round-robins), then node id."""
        now = self.runtime.sim.now
        homed: Dict[str, int] = {}
        for head in self.sessions.values():
            homed[head] = homed.get(head, 0) + 1
        return min(
            heads, key=lambda h: (self.trackers[h].rate(now), homed.get(h, 0), h)
        )

    def _check_skew(self, now: float) -> None:
        live = self.live_heads()
        if len(live) < 2:
            self._skew_streak = 0
            return
        rates = {h: self.trackers[h].rate(now) for h in live}
        hot = max(live, key=lambda h: (rates[h], h))
        cold = min(live, key=lambda h: (rates[h], h))
        if rates[hot] > self.skew_threshold * max(rates[cold], 1e-9):
            self._skew_streak += 1
        else:
            self._skew_streak = 0
            return
        if self._skew_streak < self.skew_patience:
            return
        self._skew_streak = 0
        victims = sorted(s for s, h in self.sessions.items() if h == hot)
        if not victims:
            return
        session = victims[0]
        self.sessions[session] = cold
        self.rebalances += 1
        self.runtime.telemetry.registry.counter(
            "skadi_serving_rebalances_total",
            "sessions migrated off a sustained-hot head node",
        ).inc()
        self.runtime._record(
            "serving_rebalanced", session=session, hot_head=hot, cold_head=cold
        )
