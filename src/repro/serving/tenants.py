"""Tenant identity, quotas, and namespace isolation.

A *tenant* is one paying user of the serving layer: it owns a weight (its
fair-queueing share), a priority (what survives shed-lowest-priority
admission), an SLO (a relative completion deadline stamped onto every
request), and a depth quota (how many of its requests may be open at
once).  Tenants are grouped into a handful of *profiles* (free / standard
/ premium by default) so telemetry stays low-cardinality even when the
population is a million strong.

The registry is **lazy**: a million-tenant population costs nothing until
a request actually touches a tenant, and profile assignment is a stable
md5 hash of the tenant name — the same contract the retry-jitter code
uses — so two runs (or two head nodes) agree on every tenant's profile
without coordination.

Namespace isolation: every task a tenant's request submits is named
``<tenant_id>/<...>``, so lineage entries, cache keys and event-log lines
from different tenants can never collide or be confused for one another.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["TenantProfile", "Tenant", "TenantRegistry", "DEFAULT_PROFILES"]


@dataclass(frozen=True)
class TenantProfile:
    """A service class shared by many tenants."""

    name: str
    weight: float  # weighted-fair-queueing share (bigger = more throughput)
    priority: int  # submit(priority=): survives shed-lowest-priority admission
    slo: Optional[float]  # relative deadline per request (None: best-effort)
    max_open: int  # per-tenant quota of open (offered, not finished) requests
    share: float  # fraction of the population in this class

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ValueError(f"profile {self.name!r} needs a positive weight")
        if self.max_open < 1:
            raise ValueError(f"profile {self.name!r} needs max_open >= 1")
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"profile {self.name!r} share must be in (0, 1]")


# free tier dominates the population but not the capacity: premium tenants
# carry 16x the fair-queueing weight, a tighter SLO, and a deeper quota
DEFAULT_PROFILES: Tuple[TenantProfile, ...] = (
    TenantProfile("free", weight=1.0, priority=0, slo=None, max_open=4, share=0.90),
    TenantProfile("standard", weight=4.0, priority=1, slo=0.5, max_open=8, share=0.09),
    TenantProfile("premium", weight=16.0, priority=2, slo=0.2, max_open=16, share=0.01),
)


@dataclass
class Tenant:
    """One materialized tenant (only tenants that receive traffic exist)."""

    tenant_id: str
    profile: TenantProfile
    open_requests: int = 0  # quota accounting (frontend-maintained)

    def qualify(self, name: str) -> str:
        """Namespace a task/object name under this tenant."""
        return f"{self.tenant_id}/{name}"


def _stable_fraction(key: str) -> float:
    """Deterministic [0, 1) hash — md5 for cross-platform stability (the
    same contract as ``overload.backoff_jitter_fraction``)."""
    return int(hashlib.md5(key.encode()).hexdigest()[:8], 16) / 0x100000000


class TenantRegistry:
    """A lazily-materialized population of ``n_tenants`` tenants.

    ``tenant(i)`` mints (and memoizes) tenant ``i``'s identity on first
    touch; profile assignment hashes the tenant name against the profiles'
    cumulative population shares, so it is stable across runs and across
    head nodes without any shared state.
    """

    def __init__(
        self,
        n_tenants: int,
        profiles: Sequence[TenantProfile] = DEFAULT_PROFILES,
        namespace: str = "tenant",
    ):
        if n_tenants < 1:
            raise ValueError(f"need at least one tenant, got {n_tenants}")
        if not profiles:
            raise ValueError("need at least one tenant profile")
        total_share = sum(p.share for p in profiles)
        if abs(total_share - 1.0) > 1e-9:
            raise ValueError(f"profile shares sum to {total_share}, expected 1.0")
        self.n_tenants = n_tenants
        self.profiles = tuple(profiles)
        self.namespace = namespace
        self._materialized: Dict[int, Tenant] = {}

    def __len__(self) -> int:
        return self.n_tenants

    @property
    def touched(self) -> int:
        """How many tenants have actually been materialized."""
        return len(self._materialized)

    def profile_of(self, tenant_id: str) -> TenantProfile:
        """Stable hash-based profile assignment for a tenant name."""
        frac = _stable_fraction(tenant_id)
        cumulative = 0.0
        for profile in self.profiles:
            cumulative += profile.share
            if frac < cumulative:
                return profile
        return self.profiles[-1]  # float-sum slack lands in the last class

    def tenant(self, index: int) -> Tenant:
        if not 0 <= index < self.n_tenants:
            raise IndexError(f"tenant index {index} out of range 0..{self.n_tenants - 1}")
        cached = self._materialized.get(index)
        if cached is None:
            tenant_id = f"{self.namespace}{index:07d}"
            cached = Tenant(tenant_id, self.profile_of(tenant_id))
            self._materialized[index] = cached
        return cached
