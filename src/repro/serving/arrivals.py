"""Seeded open-loop arrival processes.

One shared helper for every open-loop workload in the repo: the chaos
engine's :class:`~repro.chaos.events.LoadBurst` (evenly spaced arrivals
with optional seeded jitter) and the serving frontend's Poisson ingestion
both draw their offsets here.  "Open-loop" means the offered rate is fixed
by the schedule, not by how fast the runtime absorbs it — the defining
property of the metastable-overload experiments.

Determinism contract: for a given seed the returned offsets are
bit-identical across runs, platforms and Python versions.
``uniform_offsets`` reproduces the exact float sequence of the original
``ChaosMonkey._burst`` loop (same RNG construction, same draw order, same
arithmetic), so legacy chaos seeds keep their event-log signatures;
tests/test_serving.py pins this with a regression test.
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = ["uniform_offsets", "poisson_offsets"]


def uniform_offsets(
    n_tasks: int, duration: float, seed: int = 0, jitter: float = 0.0
) -> List[float]:
    """Evenly spaced arrival offsets over ``[0, duration)``.

    With ``jitter > 0`` each arrival is displaced by up to
    ``gap * jitter`` in either direction, drawn from ``random.Random(seed)``
    (clamped at 0 so nothing arrives before the window opens).  The RNG is
    only constructed when jitter is in play — constructing it
    unconditionally would not change the output, but keeping the legacy
    shape makes the bit-compatibility argument a non-argument.
    """
    gap = duration / n_tasks if n_tasks else 0.0
    rng = random.Random(seed) if jitter > 0.0 else None
    offsets: List[float] = []
    for i in range(n_tasks):
        delay = i * gap
        if rng is not None:
            delay += gap * jitter * (2.0 * rng.random() - 1.0)
            delay = max(0.0, delay)
        offsets.append(delay)
    return offsets


def poisson_offsets(
    rate: float,
    duration: Optional[float] = None,
    n: Optional[int] = None,
    seed: int = 0,
) -> List[float]:
    """A seeded Poisson arrival process at ``rate`` arrivals per second.

    Inter-arrival gaps are exponential (``random.Random(seed).expovariate``);
    offsets are relative to the window start.  Bound the process by
    ``duration`` (every offset < duration), by ``n`` (exactly n arrivals),
    or both (whichever limit hits first).
    """
    if rate <= 0.0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if duration is None and n is None:
        raise ValueError("poisson_offsets needs a duration or an arrival count")
    rng = random.Random(seed)
    offsets: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if duration is not None and t >= duration:
            break
        offsets.append(t)
        if n is not None and len(offsets) >= n:
            break
    return offsets
