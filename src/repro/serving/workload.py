"""Multi-tenant workload synthesis: open-loop requests over task-DAG templates.

A *request* is one tenant-attributed unit of service: a small task DAG
stamped out from a :class:`RequestTemplate` (single task, a chain, a
fan-in — the shapes data-system queries actually take).  The generator
lays requests on the virtual clock with a seeded Poisson process, plus
optional trace-driven spikes expressed as the chaos engine's own
:class:`~repro.chaos.events.LoadBurst` records — the serving layer and
the chaos layer share one arrival-process vocabulary
(:mod:`repro.serving.arrivals`).

Everything is seeded: the arrival times, the tenant draw per request, and
the template draw per request, so two runs of a workload are bit-identical
and A/B comparisons (fair queueing on vs off) see the same offered load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..chaos.events import LoadBurst
from .arrivals import poisson_offsets, uniform_offsets
from .tenants import Tenant, TenantRegistry

__all__ = [
    "RequestTemplate",
    "Request",
    "WorkloadGenerator",
    "DEFAULT_TEMPLATES",
    "default_templates",
]


@dataclass(frozen=True)
class RequestTemplate:
    """A small task DAG: ``stages[i] = (name, compute_cost, deps)`` where
    ``deps`` are indices of earlier stages.  The last stage is the sink —
    its output is the request's response."""

    name: str
    stages: Tuple[Tuple[str, float, Tuple[int, ...]], ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"template {self.name!r} has no stages")
        for i, (_stage, cost, deps) in enumerate(self.stages):
            if cost < 0:
                raise ValueError(f"template {self.name!r} stage {i}: negative cost")
            if any(d >= i or d < 0 for d in deps):
                raise ValueError(
                    f"template {self.name!r} stage {i}: deps must point at "
                    f"earlier stages, got {deps}"
                )

    @property
    def n_tasks(self) -> int:
        return len(self.stages)

    @property
    def total_cost(self) -> float:
        return sum(cost for _name, cost, _deps in self.stages)


def default_templates(task_cost: float = 2e-2) -> Tuple[RequestTemplate, ...]:
    """The stock template mix at a given per-task cost: a point lookup, a
    two-stage chain (scan -> reduce), and a two-way fan-in join."""
    return (
        RequestTemplate("lookup", (("lookup", task_cost, ()),)),
        RequestTemplate(
            "chain2",
            (("scan", task_cost, ()), ("reduce", task_cost, (0,))),
        ),
        RequestTemplate(
            "join2",
            (
                ("left", task_cost, ()),
                ("right", task_cost, ()),
                ("join", task_cost, (0, 1)),
            ),
        ),
    )


DEFAULT_TEMPLATES: Tuple[RequestTemplate, ...] = default_templates()


@dataclass
class Request:
    """One tenant-attributed invocation of a template."""

    request_id: str
    tenant: Tenant
    template: RequestTemplate
    arrival: float  # absolute virtual time


class WorkloadGenerator:
    """Synthesizes a seeded open-loop request stream for a tenant population.

    ``rate`` is the steady Poisson request rate over ``duration``; each
    entry in ``bursts`` (plain chaos ``LoadBurst`` records) adds a spike of
    evenly-spaced arrivals on top — the exact machinery
    ``ChaosSchedule.burst`` drives, reused for trace-driven serving load.
    """

    def __init__(
        self,
        tenants: TenantRegistry,
        rate: float,
        duration: float,
        seed: int = 0,
        templates: Sequence[RequestTemplate] = DEFAULT_TEMPLATES,
        bursts: Sequence[LoadBurst] = (),
    ):
        if not templates:
            raise ValueError("workload needs at least one request template")
        self.tenants = tenants
        self.rate = rate
        self.duration = duration
        self.seed = seed
        self.templates = tuple(templates)
        self.bursts = tuple(bursts)

    def arrivals(self) -> List[float]:
        """Absolute arrival times: Poisson steady state + burst spikes."""
        times = poisson_offsets(self.rate, duration=self.duration, seed=self.seed)
        for burst in self.bursts:
            times.extend(
                burst.at + off
                for off in uniform_offsets(
                    burst.n_tasks, burst.duration, burst.seed, burst.jitter
                )
            )
        times.sort()
        return times

    def requests(self) -> List[Request]:
        """The full seeded request stream, in arrival order.

        Tenant and template draws come from their own RNG (seeded off the
        arrival seed) so adding a burst changes *when* requests land but
        not which tenant the i-th request belongs to.
        """
        draw = random.Random(self.seed ^ 0x5EED)
        requests: List[Request] = []
        for i, at in enumerate(self.arrivals()):
            tenant = self.tenants.tenant(draw.randrange(self.tenants.n_tenants))
            template = self.templates[draw.randrange(len(self.templates))]
            requests.append(Request(f"req-{i:06d}", tenant, template, at))
        return requests
