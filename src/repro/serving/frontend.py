"""The multi-tenant serving frontend: SLO-aware fair queueing over the runtime.

This is the layer between "millions of users" and the single-driver task
API.  Requests arrive open-loop (:mod:`repro.serving.workload`); the
frontend decides — per tenant — what to shed, what to queue, and what to
dispatch, then instantiates each admitted request's task DAG through the
ordinary ``submit()`` path so PR 6's admission control, retry budgets and
deadline propagation apply underneath.

Mechanisms, each behind a ``RuntimeConfig`` switch (all-off = a naive
pass-through that submits every request the instant it arrives, which is
exactly the single-driver behavior):

* **pacing** (``serving_max_inflight``): at most N requests in flight in
  the runtime; the rest wait in the frontend's bounded waiting room
  (``serving_queue_depth``; beyond it, requests are shed at the door);
* **weighted fair queueing** (``serving_fair_queueing``): the waiting room
  drains by per-tenant virtual finish time — tenant throughput under
  contention is proportional to profile weight, so a free-tier flood
  cannot starve premium tenants.  Off: strict FIFO;
* **tenant quotas** (``serving_tenant_isolation``): at most
  ``profile.max_open`` open requests per tenant, shed beyond;
* **SLO deadlines** (``serving_slo_deadlines``): each request carries
  ``deadline = arrival + profile.slo`` and the profile's priority into
  ``submit(deadline=, priority=)``, so the runtime's deadline propagation
  and priority shedding act on the tenant's actual promise.

Every request opens a ``control`` span linked to its task spans (the
request joins the causal trace plane), and ``skadi_serving_*`` metrics
are labeled by tenant *class*, not tenant id, so cardinality stays flat
at a million tenants.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..runtime.overload import AdmissionRejectedError
from ..runtime.task import TaskState
from .balancer import HeadNodeBalancer
from .tenants import TenantRegistry
from .workload import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.object_ref import ObjectRef
    from ..runtime.runtime import ServerlessRuntime
    from ..telemetry.spans import Span

__all__ = ["ServingFrontend", "PendingRequest"]


class PendingRequest:
    """Frontend-side bookkeeping for one offered request."""

    __slots__ = (
        "request", "refs", "remaining", "aborted", "finalized", "span",
        "finish_tag",
    )

    def __init__(self, request: Request):
        self.request = request
        self.refs: List["ObjectRef"] = []
        self.remaining = 0  # stage tasks not yet in a terminal state
        self.aborted = False  # a stage failed; siblings were cancelled
        self.finalized = False  # guards against re-entrant completion
        self.span: Optional["Span"] = None
        self.finish_tag = 0.0  # WFQ virtual finish time


class ServingFrontend:
    """Offers requests to the runtime under fair queueing, quotas and SLOs."""

    def __init__(
        self,
        runtime: "ServerlessRuntime",
        tenants: TenantRegistry,
        balancer: Optional[HeadNodeBalancer] = None,
    ):
        self.rt = runtime
        self.sim = runtime.sim
        self.tenants = tenants
        self.balancer = balancer
        cfg = runtime.config
        self.fair_queueing: bool = cfg.serving_fair_queueing
        self.tenant_isolation: bool = cfg.serving_tenant_isolation
        self.slo_deadlines: bool = cfg.serving_slo_deadlines
        self.max_inflight: Optional[int] = cfg.serving_max_inflight
        self.queue_depth: int = cfg.serving_queue_depth
        # waiting room: a WFQ heap of (finish_tag, seq, pending) or a FIFO
        self._heap: List[Tuple[float, int, PendingRequest]] = []
        self._fifo: Deque[PendingRequest] = deque()
        self._seq = 0
        self._vtime = 0.0  # WFQ system virtual time
        self._tenant_finish: Dict[str, float] = {}  # tenant id -> last finish tag
        self.inflight = 0
        # aggregate accounting (per-tenant dicts stay in Python so metric
        # cardinality is per *class*, not per tenant)
        self.offered = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.shed: Dict[str, int] = {}
        self.offered_by_tenant: Dict[str, int] = {}
        self.admitted_by_tenant: Dict[str, int] = {}
        self.shed_by_tenant: Dict[str, int] = {}
        self.latencies: List[float] = []  # completed-ok request latencies

    # -- ingestion ------------------------------------------------------------

    def play(self, requests: Sequence[Request]) -> "ServingFrontend":
        """Pin every request's arrival to the virtual clock (open loop)."""
        for req in requests:
            self.sim.schedule_at(req.arrival, self.offer, req)
        return self

    def offer(self, request: Request) -> Optional[PendingRequest]:
        """One request hits the front door at the current virtual time."""
        tenant = request.tenant
        profile = tenant.profile
        self.offered += 1
        self.offered_by_tenant[tenant.tenant_id] = (
            self.offered_by_tenant.get(tenant.tenant_id, 0) + 1
        )
        self._counter(
            "skadi_serving_requests_offered_total",
            "requests offered to the serving frontend, by tenant class",
            tenant_class=profile.name,
        )
        if self.balancer is not None:
            self.balancer.note_message(tenant.tenant_id)
        if self.tenant_isolation and tenant.open_requests >= profile.max_open:
            self._shed(request, "tenant_quota")
            return None
        pending = PendingRequest(request)
        tenant.open_requests += 1
        if self.max_inflight is None or self.inflight < self.max_inflight:
            self._dispatch(pending)
            return pending
        if self._queued() >= self.queue_depth:
            tenant.open_requests -= 1
            self._shed(request, "queue_full")
            return None
        self._enqueue(pending)
        return pending

    # -- fair queueing --------------------------------------------------------

    def _queued(self) -> int:
        return len(self._heap) + len(self._fifo)

    def _enqueue(self, pending: PendingRequest) -> None:
        self._seq += 1
        if self.fair_queueing:
            req = pending.request
            tenant = req.tenant
            start = max(self._vtime, self._tenant_finish.get(tenant.tenant_id, 0.0))
            pending.finish_tag = start + req.template.total_cost / tenant.profile.weight
            self._tenant_finish[tenant.tenant_id] = pending.finish_tag
            heapq.heappush(self._heap, (pending.finish_tag, self._seq, pending))
        else:
            self._fifo.append(pending)
        self._gauge(
            "skadi_serving_queue_depth",
            "requests waiting in the frontend's bounded waiting room",
        ).set(float(self._queued()))

    def _pop_next(self) -> Optional[PendingRequest]:
        if self._heap:
            tag, _seq, pending = heapq.heappop(self._heap)
            self._vtime = max(self._vtime, tag)
            return pending
        if self._fifo:
            return self._fifo.popleft()
        return None

    def _pump(self) -> None:
        while self.max_inflight is None or self.inflight < self.max_inflight:
            pending = self._pop_next()
            if pending is None:
                break
            self._dispatch(pending)
        self._gauge(
            "skadi_serving_queue_depth",
            "requests waiting in the frontend's bounded waiting room",
        ).set(float(self._queued()))

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self, pending: PendingRequest) -> None:
        """Instantiate the request's task DAG through the ordinary submit
        path; a runtime-level admission rejection sheds the whole request
        (and cancels any stages already in)."""
        req = pending.request
        tenant = req.tenant
        profile = tenant.profile
        deadline = None
        priority = 0
        if self.slo_deadlines:
            priority = profile.priority
            if profile.slo is not None:
                deadline = req.arrival + profile.slo
        self.inflight += 1
        try:
            for stage_name, cost, deps in req.template.stages:
                args = tuple(pending.refs[d] for d in deps)
                n_inputs = len(deps)
                ref = self.rt.submit(
                    lambda *xs, n=n_inputs: n,
                    args,
                    compute_cost=cost,
                    name=tenant.qualify(f"{req.request_id}/{stage_name}"),
                    deadline=deadline,
                    priority=priority,
                    tenant=tenant.tenant_id,
                )
                pending.refs.append(ref)
        except AdmissionRejectedError:
            self.inflight -= 1
            for ref in pending.refs:
                self.rt.cancel(ref, reason="request_rejected")
            tenant.open_requests -= 1
            self._shed(req, "admission")
            return
        self.admitted += 1
        self.admitted_by_tenant[tenant.tenant_id] = (
            self.admitted_by_tenant.get(tenant.tenant_id, 0) + 1
        )
        self._counter(
            "skadi_serving_requests_admitted_total",
            "requests whose task DAG entered the runtime, by tenant class",
            tenant_class=profile.name,
        )
        self._gauge(
            "skadi_serving_inflight",
            "requests dispatched into the runtime and not yet concluded",
        ).set(float(self.inflight))
        # the request-level span joins the first stage's trace and links to
        # every stage task span, so the causal graph shows the whole request
        first = self.rt.span_of(pending.refs[0])
        links = tuple(
            s.span_id
            for s in (self.rt.span_of(r) for r in pending.refs)
            if s is not None
        )
        pending.span = self.rt.telemetry.tracer.start_span(
            f"request:{req.template.name}",
            "control",
            trace_id=first.trace_id if first is not None else None,
            links=links,
            start=req.arrival,
            tenant=tenant.tenant_id,
            tenant_class=profile.name,
            request=req.request_id,
        )
        pending.remaining = len(pending.refs)
        for ref in pending.refs:
            self.rt.when_done(ref, lambda r, p=pending: self._on_stage_done(p, r))

    # -- completion -----------------------------------------------------------

    def _on_stage_done(self, pending: PendingRequest, ref: "ObjectRef") -> None:
        pending.remaining -= 1
        state = self.rt.task_state(ref)
        if state is not TaskState.FINISHED and not pending.aborted:
            # a stage died for good: abort the request's surviving stages so
            # nothing leaks — a serving frontend never strands work behind a
            # failed sibling.  Cancellations fire sibling done-callbacks
            # synchronously, so this frame may re-enter _on_stage_done (the
            # `finalized` flag keeps completion exactly-once).
            pending.aborted = True
            for other in pending.refs:
                if other.object_id != ref.object_id:
                    self.rt.cancel(other, reason="request_aborted")
        if pending.remaining == 0 and not pending.finalized:
            self._finalize(pending)

    def _finalize(self, pending: PendingRequest) -> None:
        pending.finalized = True
        req = pending.request
        tenant = req.tenant
        profile = tenant.profile
        ok = not pending.aborted
        latency = self.sim.now - req.arrival
        tenant.open_requests -= 1
        self.inflight -= 1
        if ok:
            self.completed += 1
            self.latencies.append(latency)
            self.rt.telemetry.registry.histogram(
                "skadi_serving_request_latency",
                "request latency (arrival to last stage done), by tenant class",
                tenant_class=profile.name,
            ).observe(latency)
        else:
            self.failed += 1
        self._counter(
            "skadi_serving_requests_completed_total",
            "requests concluded, by tenant class and outcome",
            tenant_class=profile.name,
            outcome="ok" if ok else "failed",
        )
        if pending.span is not None:
            pending.span.attrs["outcome"] = "ok" if ok else "failed"
            pending.span.finish(self.sim.now)
        self._gauge(
            "skadi_serving_inflight",
            "requests dispatched into the runtime and not yet concluded",
        ).set(float(self.inflight))
        self._pump()

    # -- shedding / telemetry -------------------------------------------------

    def _shed(self, request: Request, reason: str) -> None:
        tenant = request.tenant
        self.shed[reason] = self.shed.get(reason, 0) + 1
        self.shed_by_tenant[tenant.tenant_id] = (
            self.shed_by_tenant.get(tenant.tenant_id, 0) + 1
        )
        self._counter(
            "skadi_serving_requests_shed_total",
            "requests refused by the serving frontend, by tenant class and reason",
            tenant_class=tenant.profile.name,
            reason=reason,
        )
        self.rt._record(
            "serving_request_shed",
            request=request.request_id,
            tenant=tenant.tenant_id,
            reason=reason,
        )

    def _counter(self, name: str, help: str, **labels: str) -> None:
        self.rt.telemetry.registry.counter(name, help, **labels).inc()

    def _gauge(self, name: str, help: str):
        return self.rt.telemetry.registry.gauge(name, help)

    def latency_percentiles(self, tenant_class: Optional[str] = None) -> Dict[str, float]:
        """p50/p99/p999 of completed-request latency (one class or overall),
        using the registry histograms' exact nearest-rank convention."""
        quantiles = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))
        if tenant_class is not None:
            hist = self.rt.telemetry.registry.histogram(
                "skadi_serving_request_latency",
                "request latency (arrival to last stage done), by tenant class",
                tenant_class=tenant_class,
            )
            return {name: hist.percentile(q) for name, q in quantiles}
        values = sorted(self.latencies)
        if not values:
            return {name: float("nan") for name, _q in quantiles}

        def nearest_rank(q: float) -> float:
            return values[max(0, min(len(values) - 1, round(q * len(values)) - 1))]

        return {name: nearest_rank(q) for name, q in quantiles}
