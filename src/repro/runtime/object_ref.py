"""Futures: the pass-by-reference half of the task API.

An :class:`ObjectRef` names an object that a task will (or did) produce.
Functions exchange data "either by value or by reference" (§2.1); refs are
resolved through one of the two protocols in
:mod:`repro.runtime.resolution`.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["ObjectRef", "collect_refs", "replace_refs"]


class ObjectRef:
    """A handle to a (possibly not-yet-computed) remote object."""

    __slots__ = ("object_id", "owner", "task_id")

    def __init__(self, object_id: str, owner: str = "", task_id: str = ""):
        self.object_id = object_id
        self.owner = owner  # worker/driver that created the ref (ownership protocol)
        self.task_id = task_id  # producing task (lineage)

    def __repr__(self) -> str:
        return f"ObjectRef({self.object_id})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObjectRef):
            return NotImplemented
        return self.object_id == other.object_id

    def __hash__(self) -> int:
        return hash(self.object_id)


def collect_refs(value: Any) -> List[ObjectRef]:
    """All ObjectRefs reachable through lists/tuples/dicts in ``value``."""
    out: List[ObjectRef] = []
    _collect(value, out)
    return out


def _collect(value: Any, out: List[ObjectRef]) -> None:
    if isinstance(value, ObjectRef):
        out.append(value)
    elif isinstance(value, (list, tuple)):
        for v in value:
            _collect(v, out)
    elif isinstance(value, dict):
        for v in value.values():
            _collect(v, out)


def replace_refs(value: Any, resolved: dict) -> Any:
    """Structurally substitute refs with their resolved values."""
    if isinstance(value, ObjectRef):
        return resolved[value.object_id]
    if isinstance(value, list):
        return [replace_refs(v, resolved) for v in value]
    if isinstance(value, tuple):
        return tuple(replace_refs(v, resolved) for v in value)
    if isinstance(value, dict):
        return {k: replace_refs(v, resolved) for k, v in value.items()}
    return value
