"""Overload control: admission, retry budgets, and device circuit breakers.

The runtime survives crashes (lineage replay), device-granular faults, and
slow fabrics — but an *overloaded* system fails differently: every queue
grows without bound, retries of timed-out work amplify the very congestion
that caused the timeouts, and the system enters a metastable state where
goodput stays collapsed long after the triggering burst ends.  This module
holds the mechanism objects; the runtime wires them behind
:class:`~repro.runtime.config.RuntimeConfig` switches whose all-off setting
reproduces legacy traces bit-for-bit.

Three mechanism families live here:

* **admission** — :class:`AdmissionRejectedError`, raised to callers when a
  bounded admission queue refuses a task (retryable: the caller may resubmit
  after backing off);
* **retry budgets** — :class:`RetryBudget`, a per-node token bucket refilled
  by first-attempt successes and drained by retries, capping retry volume at
  a fraction of useful volume so storms cannot self-amplify;
* **circuit breakers** — :class:`CircuitBreaker` / :class:`BreakerBoard`,
  per-device state machines (CLOSED -> OPEN -> HALF_OPEN) driven by the
  existing health signals, shedding load from flaky devices instead of
  hammering them.

The deterministic retry-backoff jitter helpers also live here so the hash
contract (documented in ``runtime/config.py``) has a single home.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Callable, Dict, Optional

__all__ = [
    "AdmissionRejectedError",
    "RetryBudget",
    "BreakerState",
    "CircuitBreaker",
    "BreakerBoard",
    "backoff_jitter_fraction",
    "retry_backoff_delay",
]


class AdmissionRejectedError(RuntimeError):
    """A bounded admission queue refused the task.

    Retryable: the submission was rejected *before* any ownership state was
    created, so the caller may back off and resubmit the same payload.
    """

    def __init__(self, message: str, *, reason: str = "admission_reject"):
        super().__init__(message)
        self.reason = reason


# -- deterministic retry backoff ---------------------------------------------


def backoff_jitter_fraction(task_id: str, retries: int) -> float:
    """The pinned jitter fraction in [0, 1] for attempt ``retries`` of a task.

    Hashed (md5) from ``f"{task_id}:{retries}"`` — stable across processes,
    platforms and Python versions, unlike ``hash()`` or ``random``.  A
    regression test pins exact values so refactors cannot silently change
    seeded chaos traces.
    """
    digest = hashlib.md5(f"{task_id}:{retries}".encode()).hexdigest()
    return int(digest[:8], 16) / 0xFFFFFFFF


def retry_backoff_delay(config, task_id: str, retries: int) -> float:
    """Exponential backoff with deterministic per-attempt jitter.

    ``retries`` is the attempt number being scheduled (1 for the first
    retry).  Bit-identical to the pre-overload runtime implementation.
    """
    base = config.retry_backoff_base * config.retry_backoff_factor ** max(
        0, retries - 1
    )
    return base * (1.0 + config.retry_jitter * backoff_jitter_fraction(task_id, retries))


# -- retry budgets ------------------------------------------------------------


class RetryBudget:
    """A per-node token bucket capping retry volume.

    Each node starts with ``cap`` tokens.  A first-attempt success refills
    ``ratio`` tokens (clamped at ``cap``); each retry costs one token.  Over
    any window, retries are therefore bounded by ``ratio`` x the
    first-attempt success volume plus the initial burst allowance — the
    standard defense against retry storms (retries amplify load exactly when
    successes, and thus refills, dry up).
    """

    def __init__(self, ratio: float, cap: float):
        if ratio < 0:
            raise ValueError(f"retry budget ratio must be >= 0, got {ratio}")
        if cap <= 0:
            raise ValueError(f"retry budget cap must be > 0, got {cap}")
        self.ratio = ratio
        self.cap = cap
        self._tokens: Dict[str, float] = {}
        self.consumed = 0
        self.exhausted = 0

    def tokens(self, node_id: str) -> float:
        return self._tokens.get(node_id, self.cap)

    def try_consume(self, node_id: str) -> bool:
        """Spend one token for a retry on ``node_id``; False when exhausted."""
        tokens = self._tokens.get(node_id, self.cap)
        if tokens < 1.0:
            self.exhausted += 1
            return False
        self._tokens[node_id] = tokens - 1.0
        self.consumed += 1
        return True

    def refill(self, node_id: str) -> None:
        """Credit a first-attempt success on ``node_id``."""
        tokens = self._tokens.get(node_id, self.cap)
        self._tokens[node_id] = min(self.cap, tokens + self.ratio)


# -- circuit breakers ---------------------------------------------------------


class BreakerState(enum.Enum):
    CLOSED = "closed"  # healthy: all load admitted
    OPEN = "open"  # tripped: no load until the reset timer elapses
    HALF_OPEN = "half_open"  # probing: one attempt at a time


class CircuitBreaker:
    """A per-device breaker over device-attributed transient failures.

    CLOSED -> OPEN after ``threshold`` consecutive failures; OPEN -> HALF_OPEN
    once ``reset_after`` virtual seconds elapse; HALF_OPEN admits a single
    probe attempt at a time and needs ``probe_successes`` consecutive
    successes to close again (any probe failure re-opens).
    """

    def __init__(
        self,
        device_id: str,
        threshold: int,
        reset_after: float,
        probe_successes: int,
        on_transition: Optional[Callable[[str, BreakerState, BreakerState], None]] = None,
    ):
        self.device_id = device_id
        self.threshold = threshold
        self.reset_after = reset_after
        self.probe_successes = probe_successes
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self._failures = 0
        self._probes_ok = 0
        self._opened_at = 0.0
        self.trips = 0

    def allow(self, now: float, inflight: int) -> bool:
        """May an attempt be placed on this device right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.reset_after:
                self._to_half_open()
            else:
                return False
        # HALF_OPEN: single probe in flight at a time
        return inflight == 0

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probes_ok += 1
            if self._probes_ok >= self.probe_successes:
                self._transition(BreakerState.CLOSED)
                self._failures = 0
        elif self.state is BreakerState.CLOSED:
            self._failures = 0

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._open(now)
        elif self.state is BreakerState.CLOSED:
            self._failures += 1
            if self._failures >= self.threshold:
                self._open(now)

    def force_open(self, now: float) -> None:
        """Trip immediately (the device was declared dead)."""
        if self.state is not BreakerState.OPEN:
            self._open(now)
        else:
            self._opened_at = now

    def on_recovered(self) -> None:
        """The device came back (restart): probe before trusting it."""
        if self.state is BreakerState.OPEN:
            self._to_half_open()

    def _open(self, now: float) -> None:
        self._opened_at = now
        self._probes_ok = 0
        self.trips += 1
        self._transition(BreakerState.OPEN)

    def _to_half_open(self) -> None:
        self._probes_ok = 0
        self._transition(BreakerState.HALF_OPEN)

    def _transition(self, state: BreakerState) -> None:
        old, self.state = self.state, state
        if old is not state and self.on_transition is not None:
            self.on_transition(self.device_id, old, state)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircuitBreaker({self.device_id}, {self.state.value})"


class BreakerBoard:
    """The fleet of per-device breakers, lazily created.

    ``on_transition(device_id, old_state, new_state)`` fires on every state
    change so the runtime can mirror transitions into the event log and
    telemetry without this module importing either.
    """

    def __init__(
        self,
        threshold: int,
        reset_after: float,
        probe_successes: int,
        on_transition: Optional[Callable[[str, BreakerState, BreakerState], None]] = None,
    ):
        self.threshold = threshold
        self.reset_after = reset_after
        self.probe_successes = probe_successes
        self.on_transition = on_transition
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, device_id: str) -> CircuitBreaker:
        br = self._breakers.get(device_id)
        if br is None:
            br = CircuitBreaker(
                device_id,
                self.threshold,
                self.reset_after,
                self.probe_successes,
                on_transition=self.on_transition,
            )
            self._breakers[device_id] = br
        return br

    def allow(self, device_id: str, now: float, inflight: int) -> bool:
        return self.breaker(device_id).allow(now, inflight)

    def record_success(self, device_id: str, now: float) -> None:
        # only devices with a breaker already materialized need the credit
        br = self._breakers.get(device_id)
        if br is not None:
            br.record_success(now)

    def record_failure(self, device_id: str, now: float) -> None:
        self.breaker(device_id).record_failure(now)

    def states(self) -> Dict[str, BreakerState]:
        return {d: b.state for d, b in sorted(self._breakers.items())}
