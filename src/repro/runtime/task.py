"""Task and actor specifications for the distributed task API.

A task carries its *real* Python payload (so results are genuine) plus a
*cost model* (CPU-seconds of nominal work and output size) so the simulator
can charge virtual time on whatever device the scheduler picks.  The
``supported_kinds`` set is how hardware-agnostic IR vertices advertise that
they can run on several backends, while handcrafted ops pin one kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..cluster.hardware import DeviceKind
from .object_ref import ObjectRef, collect_refs

__all__ = ["TaskSpec", "TaskState", "TaskResult", "ActorSpec", "ANY_COMPUTE_KIND"]

ANY_COMPUTE_KIND: FrozenSet[DeviceKind] = frozenset(
    {DeviceKind.CPU, DeviceKind.GPU, DeviceKind.FPGA}
)


class TaskState(enum.Enum):
    PENDING = "pending"  # submitted, deps not ready / not scheduled
    SCHEDULED = "scheduled"  # leased to a raylet
    RESOLVING = "resolving"  # raylet fetching arguments
    RUNNING = "running"  # occupying a device slot
    FINISHED = "finished"
    FAILED = "failed"
    CANCELLED = "cancelled"  # deadline passed, shed under overload, or upstream cancelled


@dataclass
class TaskSpec:
    """One invocation of a remote function."""

    task_id: str
    func: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    # cost model ------------------------------------------------------------
    compute_cost: float = 1e-4  # CPU-seconds of nominal work
    output_nbytes: Optional[int] = None  # None: estimate from the real result
    # placement --------------------------------------------------------------
    supported_kinds: FrozenSet[DeviceKind] = frozenset({DeviceKind.CPU})
    pinned_device: Optional[str] = None  # explicit device id, overrides policy
    gang_group: Optional[str] = None  # SPMD gang id (gang scheduling)
    # overload control --------------------------------------------------------
    deadline: Optional[float] = None  # absolute sim time; propagates to consumers
    priority: int = 0  # higher survives shed-lowest-priority admission
    # multi-tenant serving -----------------------------------------------------
    tenant: Optional[str] = None  # submitting tenant id (serving attribution)
    # bookkeeping --------------------------------------------------------------
    name: str = ""
    actor_id: Optional[str] = None  # set for actor method calls

    def __post_init__(self) -> None:
        if self.compute_cost < 0:
            raise ValueError(f"negative compute cost on {self.task_id}")
        if not self.supported_kinds:
            raise ValueError(f"task {self.task_id} supports no device kinds")
        if not self.name:
            self.name = getattr(self.func, "__name__", "task")

    @cached_property
    def dependencies(self) -> List[ObjectRef]:
        # args/kwargs are fixed at submission, so the recursive ref walk
        # only needs to happen once; this sits on the dispatch hot path
        return collect_refs((self.args, self.kwargs))

    def __repr__(self) -> str:
        return f"TaskSpec({self.task_id}, {self.name})"


@dataclass
class TaskResult:
    task_id: str
    object_id: str
    nbytes: int
    node_id: str
    device_id: str
    finished_at: float
    state: TaskState = TaskState.FINISHED
    error: Optional[str] = None


@dataclass
class ActorSpec:
    """A stateful worker: methods run serially against retained state."""

    actor_id: str
    ctor: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    supported_kinds: FrozenSet[DeviceKind] = frozenset({DeviceKind.CPU})
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = getattr(self.ctor, "__name__", "actor")
