"""Control-plane high availability: replicated GCS metadata and failover.

The GCS — ownership table, object directory, failure detector, breaker
and blacklist state — lives on the head node, which PRs 1-8 treated as
immortal.  This module makes it killable.  The leader appends every
control-plane mutation to a write-ahead log (:class:`WalRecord`) and
flushes the un-synced tail to N standby server nodes over the simulated
network every ``ha_sync_interval`` virtual seconds; the flush doubles as
the liveness beacon the standbys watch.  When ``ha_miss_threshold``
consecutive intervals pass without a sync, a standby calls a seeded
deterministic election: the winner bumps the fencing epoch, replays its
replica of the log to rebuild the directory and failure views, re-points
the control endpoints at itself, re-registers every live raylet (which
re-sends its store inventory and any done-reports the dead head never
acknowledged), and restarts detection.  Leases stamped with the old
epoch are rejected at the raylet (:meth:`Raylet.accepts_epoch`), so a
deposed-but-alive leader — the network-partition case — cannot corrupt
the cluster it lost.

Everything here is built only when ``RuntimeConfig.ha_replicas > 0``;
the zero default leaves every hook on its legacy path so existing event
traces replay bit-for-bit.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

from ..cluster.node import NodeKind
from .health import STALL_TICKS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import ServerlessRuntime

__all__ = ["WalRecord", "HAController"]


class WalRecord:
    """One replicated control-plane mutation.

    ``detail`` is a tuple of sorted ``(key, value)`` pairs — hashable,
    deterministic to iterate, cheap to copy to a replica.
    """

    __slots__ = ("seq", "epoch", "kind", "detail")

    def __init__(self, seq: int, epoch: int, kind: str, detail: Tuple):
        self.seq = seq
        self.epoch = epoch
        self.kind = kind
        self.detail = detail

    def get(self) -> Dict[str, Any]:
        return dict(self.detail)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WalRecord({self.seq}, e{self.epoch}, {self.kind}, {dict(self.detail)})"


class HAController:
    """Replicated WAL, leader liveness, election, and fencing epochs."""

    def __init__(self, runtime: "ServerlessRuntime", config) -> None:
        self.runtime = runtime
        self.cfg = config
        self.sim = runtime.sim
        self.net = runtime.net
        servers = [n.node_id for n in runtime.cluster.nodes_of_kind(NodeKind.SERVER)]
        if not servers:
            raise ValueError("control-plane HA needs at least one server node")
        self.leader_node: str = servers[0]  # matches _head_node()'s legacy pick
        pool = servers[1:]
        if config.ha_replicas > len(pool):
            raise ValueError(
                f"ha_replicas={config.ha_replicas} but only {len(pool)} "
                f"non-head server node(s) can host a standby"
            )
        self.standbys: List[str] = pool[: config.ha_replicas]
        self.epoch = 1
        self.wal: List[WalRecord] = []
        self._seq = 0
        # per-standby replica state (leader-side) and the virtual time of the
        # last sync each standby *received* (standby-side knowledge: this is
        # what silence is measured against)
        self.replica_logs: Dict[str, List[WalRecord]] = {s: [] for s in self.standbys}
        self.last_sync: Dict[str, float] = {}
        self.gcs_up = True
        self.cluster_lost = False
        self.parked: List[Any] = []  # dispatches frozen while the GCS is down
        self.failovers = 0
        self.elections = 0
        self.syncs_delivered = 0
        self.records_replayed = 0
        self.unavailable_since: Optional[float] = None
        self.last_unavailability: Optional[float] = None
        # set by on_leader_killed / finalized by failover: READY-object audit
        self.last_failover_report: Dict[str, Any] = {}
        self._survivable_ready: Dict[str, int] = {}
        self._active = False
        self._gen = 0  # loops from an earlier generation exit on mismatch
        self._election_running = False
        self._failover_span = None
        reg = runtime.telemetry.registry
        self._m_epoch = reg.gauge("skadi_ha_epoch", "current GCS fencing epoch")
        self._m_up = reg.gauge("skadi_ha_gcs_up", "1 while a leader is serving")
        self._m_wal = reg.counter("skadi_ha_wal_records_total", "control-plane mutations logged")
        self._m_syncs = reg.counter("skadi_ha_sync_batches_total", "WAL batches standbys received")
        self._m_elections = reg.counter("skadi_ha_elections_total", "leader elections started")
        self._m_failovers = reg.counter("skadi_ha_failovers_total", "failovers completed")
        self._m_fenced = reg.counter(
            "skadi_ha_stale_leases_rejected_total", "deposed-leader leases fenced at raylets"
        )
        self._m_unavail = reg.histogram(
            "skadi_ha_unavailability_seconds", "head-kill to failover-complete windows"
        )
        self._m_epoch.set(float(self.epoch))
        self._m_up.set(1.0)
        # The WAL sync beacon doubles as the standbys' liveness protocol:
        # eliding sync rounds analytically would hide exactly the silence an
        # election counts, so HA runs pinned to exact simulation (idle
        # fast-forward never skips while a poller is armed).
        self.sim.arm_poller()

    # -- the write-ahead log --------------------------------------------------

    def append(self, kind: str, **detail: Any) -> None:
        """Log one leader write.  No-ops while no leader is serving: a dead
        head cannot make its mutations durable — that window is exactly what
        re-registration recovers."""
        if not self.gcs_up or self.cluster_lost:
            return
        self._seq += 1
        self.wal.append(
            WalRecord(self._seq, self.epoch, kind, tuple(sorted(detail.items())))
        )
        self._m_wal.inc()

    def on_ownership_op(self, op: str, object_id: str) -> None:
        """Directory observer hook: snapshot the entry after every mutation.

        The WAL stores full snapshots rather than deltas, so replay is a
        last-write-wins upsert and needs no per-op semantics.
        """
        rt = self.runtime
        if rt.ownership.contains(object_id):
            e = rt.ownership.entry(object_id)
            self.append(
                "own",
                object=object_id,
                owner=e.owner,
                task=e.task_id,
                state=e.state.name,
                nbytes=e.nbytes,
                locations=tuple(sorted(e.locations)),
                device=e.device_id,
            )
        else:
            self.append("own_drop", object=object_id)

    # -- lifecycle ------------------------------------------------------------

    def _endpoint(self, node_id: str) -> str:
        return self.runtime.cluster.node(node_id).attachment_endpoint

    def _node_alive(self, node_id: str) -> bool:
        return any(
            r.alive for r in self.runtime._raylets_by_node.get(node_id, [])
        )

    def _live(self, gen: int) -> bool:
        return self._gen == gen and not self.cluster_lost

    def ensure_running(self) -> None:
        """Start (or restart) the sync pump and standby watch loops; called
        whenever work is routed, mirroring the heartbeat monitor."""
        if self._active or self.cluster_lost:
            return
        self._active = True
        self._gen += 1
        gen = self._gen
        now = self.sim.now
        for standby in self.standbys:
            self.last_sync.setdefault(standby, now)
            self.sim.process(
                self._watch_loop(standby, gen), name=f"ha:watch:{standby}"
            )
        self.sim.process(self._sync_loop(gen), name="ha:sync")

    def _restart_loops(self) -> None:
        self._active = False
        self._gen += 1
        self.ensure_running()

    # -- replication ----------------------------------------------------------

    def _sync_loop(self, gen: int) -> Generator:
        """Leader-side pump: every interval, ship the un-synced WAL tail to
        each standby as one message.  The batch is also the liveness beacon —
        an idle leader still syncs (empty batches), so silence means death
        or partition, never mere quiet."""
        interval = self.cfg.ha_sync_interval
        stall = 0
        progress = self.runtime._progress_counter()
        while self._live(gen) and self.runtime._has_pending_work():
            yield self.sim.timeout(interval)
            if not self._live(gen):
                return
            if not self.gcs_up:
                return  # the leader is dead; only the watch loops matter now
            leader_ep = self._endpoint(self.leader_node)
            for standby in list(self.standbys):
                delivered = yield self.net.message(
                    leader_ep, self._endpoint(standby), label="ha-sync"
                )
                if not self._live(gen) or not self.gcs_up:
                    return
                if delivered is False or not self._node_alive(standby):
                    continue
                replica = self.replica_logs[standby]
                tail = self.wal[len(replica):]
                replica.extend(tail)
                self.last_sync[standby] = self.sim.now
                self.syncs_delivered += 1
                self._m_syncs.inc()
            latest = self.runtime._progress_counter()
            stall = stall + 1 if latest == progress else 0
            progress = latest
            if stall >= STALL_TICKS:
                # nothing is moving: park the pump (like the heartbeat
                # detector) so the simulation can drain and the driver's
                # get() can run its recovery pass
                self.runtime._record("ha_pump_stalled", loop="sync", ticks=stall)
                break
        if self._gen == gen:
            self._active = False

    # -- detection and election ----------------------------------------------

    def _watch_loop(self, node_id: str, gen: int) -> Generator:
        """Standby-side: count silent sync intervals; elect on the threshold."""
        interval = self.cfg.ha_sync_interval
        deadline = self.cfg.ha_miss_threshold * interval
        stall = 0
        progress = self.runtime._progress_counter()
        while self._live(gen) and self.runtime._has_pending_work():
            yield self.sim.timeout(interval)
            if not self._live(gen):
                return
            if node_id == self.leader_node:
                return  # this standby won an election; it no longer watches
            if not self._node_alive(node_id):
                # a dead standby detects nothing — and if the leader is down
                # too and no standby anywhere is breathing, nobody is left to
                # rebuild the control plane: the cluster is lost, not waiting
                if not self.gcs_up and not any(
                    self._node_alive(s) for s in self.standbys
                ):
                    self._declare_cluster_lost("no live standby to elect")
                    return
                continue
            silent = self.sim.now - self.last_sync.get(node_id, 0.0)
            if silent > deadline and not self._election_running:
                self._election_running = True
                self.sim.process(
                    self._election(node_id, gen), name=f"ha:elect:{node_id}"
                )
            latest = self.runtime._progress_counter()
            stall = stall + 1 if latest == progress else 0
            progress = latest
            if stall >= STALL_TICKS and self.gcs_up and not self._election_running:
                # park only while a live leader is serving — a standby must
                # never stop watching mid-outage, that is its whole job
                self.runtime._record(
                    "ha_pump_stalled", loop=f"watch:{node_id}", ticks=stall
                )
                break
        if self._gen == gen:
            self._active = False

    def _election(self, initiator: str, gen: int) -> Generator:
        """Seeded deterministic election + failover, run by the initiator."""
        rt = self.runtime
        try:
            new_epoch = self.epoch + 1
            candidates = sorted(
                s for s in self.standbys
                if s != self.leader_node and self._node_alive(s)
            )
            if not candidates:
                self._declare_cluster_lost("no live standby to elect")
                return
            self.elections += 1
            self._m_elections.inc()
            rt._record(
                "ha_election_started",
                initiator=initiator,
                epoch=new_epoch,
                candidates=candidates,
            )
            if self._failover_span is None:
                # partition-triggered election: the window opens here
                self._failover_span = rt.telemetry.tracer.start_span(
                    "ha-failover", "control", epoch=new_epoch, cause="sync silence"
                )
            # one vote round-trip from the initiator to each peer candidate:
            # agreement pays the fabric before anyone leads
            init_ep = self._endpoint(initiator)
            for peer in candidates:
                if peer == initiator:
                    continue
                yield self.net.rpc(init_ep, self._endpoint(peer), label="ha-vote")
            if not self._live(gen):
                return
            rng = random.Random((self.cfg.ha_election_seed << 16) ^ new_epoch)
            winner = rng.choice(candidates)
            log = list(self.replica_logs.get(winner, ()))
            if self.cfg.ha_replay_cost > 0.0 and log:
                yield self.sim.timeout(self.cfg.ha_replay_cost * len(log))
            self.records_replayed += len(log)
            yield from rt._complete_failover(winner, new_epoch, log)
        finally:
            self._election_running = False

    # -- leader death and adoption --------------------------------------------

    def on_leader_killed(self) -> None:
        """The chaos monkey killed the head.  Freeze the control plane: stop
        detection (a dead GCS counts nothing), park new dispatches, and let
        the standbys' watch loops notice the sync silence."""
        if not self.gcs_up:
            return
        rt = self.runtime
        self.gcs_up = False
        self._m_up.set(0.0)
        self.unavailable_since = self.sim.now
        # audit baseline for the zero-lost-READY claim: READY objects whose
        # bytes survive somewhere other than the dying head are the ones a
        # correct failover must bring back
        self._survivable_ready = {
            e.object_id: e.nbytes
            for e in rt.ownership.objects()
            if e.state.name == "READY"
            and any(loc != self.leader_node for loc in e.locations)
        }
        if rt.health is not None:
            rt.health.pause()
        self._failover_span = rt.telemetry.tracer.start_span(
            "ha-failover", "control", epoch=self.epoch, cause="head killed"
        )
        # the watch loops may have drained during an idle gap; the kill is
        # itself the event that must restart them
        self.ensure_running()

    def park(self, ctx: Any) -> None:
        if ctx not in self.parked:
            self.parked.append(ctx)

    def adopt(self, winner: str, new_epoch: int, log: List[WalRecord]) -> None:
        """Install the election winner: new epoch, new leader, the replayed
        replica becomes the authoritative WAL, surviving standbys re-sync
        from scratch (one batched flush catches them up)."""
        self.epoch = new_epoch
        self.leader_node = winner
        self.standbys = [s for s in self.standbys if s != winner]
        self.wal = list(log)
        self._seq = len(self.wal)
        self.replica_logs = {s: [] for s in self.standbys}
        now = self.sim.now
        self.last_sync = {s: now for s in self.standbys}
        self.gcs_up = True
        self.cluster_lost = False
        self._m_epoch.set(float(new_epoch))
        self._m_up.set(1.0)

    def on_failover_complete(self) -> None:
        self.failovers += 1
        self._m_failovers.inc()
        rt = self.runtime
        restored = {
            e.object_id
            for e in rt.ownership.objects()
            if e.state.name == "READY"
        }
        survivable = set(self._survivable_ready)
        lost = sorted(survivable - restored)
        self.last_failover_report = {
            "epoch": self.epoch,
            "leader": self.leader_node,
            "ready_survivable": len(survivable),
            "ready_restored": len(survivable & restored),
            "ready_lost": len(lost),
            "lost_objects": lost,
            "wal_records": len(self.wal),
        }
        self._survivable_ready = {}
        if self.unavailable_since is not None:
            window = self.sim.now - self.unavailable_since
            self.last_unavailability = window
            self._m_unavail.observe(window)
            self.unavailable_since = None
        if self._failover_span is not None:
            self._failover_span.finish(self.sim.now)
            self._failover_span = None
        self._restart_loops()

    def on_stale_lease(self) -> None:
        self._m_fenced.inc()

    def _declare_cluster_lost(self, reason: str) -> None:
        """Every standby is gone too: nothing can rebuild the control plane."""
        rt = self.runtime
        self.cluster_lost = True
        self._m_up.set(0.0)
        rt._record("ha_cluster_lost", reason=reason)
        if self._failover_span is not None:
            self._failover_span.finish(self.sim.now)
            self._failover_span = None
        rt._fail_open_tasks(f"control plane lost: {reason}")
